package repro

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/iosim"
	"repro/internal/jpegc"
	"repro/internal/kvstore"
	"repro/internal/loader"
	"repro/internal/nn"
	"repro/internal/recordio"
	"repro/internal/synth"
	"repro/internal/train"
)

// benchConfig builds a small-scale experiment config writing to io.Discard.
// Each Benchmark* below regenerates one paper artifact end to end; run
// `cmd/experiments` for the full-scale, human-readable output.
func benchConfig() *experiments.Config {
	cfg := experiments.NewConfig(io.Discard)
	cfg.Scale = 0.2
	cfg.Epochs = 8
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure -----------------------------------

func BenchmarkTable1DatasetStats(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkFig4TimeToAccuracy(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5HAMTimeToAccuracy(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6CarsTasks(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7MSSIMRegression(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8AdaptiveTuning(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9LoadingRates(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig11StallTrace(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12SizeHistogram(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig14Roofline(b *testing.B)           { benchExperiment(b, "fig14") }
func BenchmarkFig15EncodingTimes(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16ScanSizes(b *testing.B)          { benchExperiment(b, "fig16") }
func BenchmarkFig17MSSIMPerScan(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18ReaderMicrobench(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19GradientCosine(b *testing.B)     { benchExperiment(b, "fig19") }
func BenchmarkFig20CosineTuningHAM(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkFig21CosineTuningCelebA(b *testing.B) { benchExperiment(b, "fig21") }
func BenchmarkFig23to26Grids(b *testing.B)          { benchExperiment(b, "grids") }
func BenchmarkFig27to28AccVsEpoch(b *testing.B)     { benchExperiment(b, "epochs") }
func BenchmarkFig29to30CarsShuffleNet(b *testing.B) { benchExperiment(b, "cars") }
func BenchmarkFig31ExampleScanSizes(b *testing.B)   { benchExperiment(b, "fig31") }
func BenchmarkAppA4SpaceAmplification(b *testing.B) { benchExperiment(b, "spaceamp") }
func BenchmarkAppA5DecodeOverhead(b *testing.B)     { benchExperiment(b, "decodecost") }
func BenchmarkSec5CachePressure(b *testing.B)       { benchExperiment(b, "cachepressure") }

// --- Codec kernels (the §A.5 microbenchmark substance) ----------------------

func benchImages(b *testing.B, n int) [][]byte {
	b.Helper()
	p := synth.Cars
	p.NumImages = 2 * n // 80/20 split: ensure at least n train images
	p.ImageSize = 64
	ds, err := synth.Generate(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	if len(ds.Train) < n {
		b.Fatalf("only %d train images", len(ds.Train))
	}
	var out [][]byte
	for _, s := range ds.Train[:n] {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: 84})
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func BenchmarkDecodeBaseline(b *testing.B) {
	imgs := benchImages(b, 8)
	var total int64
	for _, d := range imgs {
		total += int64(len(d))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range imgs {
			if _, err := jpegc.Decode(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDecodeProgressive(b *testing.B) {
	imgs := benchImages(b, 8)
	var prog [][]byte
	var total int64
	for _, d := range imgs {
		p, err := jpegc.Transcode(d, &jpegc.Options{Progressive: true})
		if err != nil {
			b.Fatal(err)
		}
		prog = append(prog, p)
		total += int64(len(p))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range prog {
			if _, err := jpegc.Decode(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTranscodeToProgressive(b *testing.B) {
	imgs := benchImages(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range imgs {
			if _, err := jpegc.Transcode(d, &jpegc.Options{Progressive: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPCRRecordWrite(b *testing.B) {
	imgs := benchImages(b, 16)
	samples := make([]core.Sample, len(imgs))
	for i, d := range imgs {
		samples[i] = core.Sample{ID: int64(i), Label: int64(i % 4), JPEG: d}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := core.WriteRecord(&buf, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCRSampleReassembly(b *testing.B) {
	imgs := benchImages(b, 16)
	samples := make([]core.Sample, len(imgs))
	for i, d := range imgs {
		samples[i] = core.Sample{ID: int64(i), JPEG: d}
	}
	var buf bytes.Buffer
	meta, err := core.WriteRecord(&buf, samples)
	if err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := range meta.Samples {
			if _, err := meta.SampleJPEG(data, s, 2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkAblationLayout compares the PCR scan-group layout against
// per-image progressive files for an "entire dataset at scan group 2" read
// on a simulated HDD: PCR reads one sequential prefix per record; the
// file-per-image layout pays a seek per image.
func BenchmarkAblationLayout(b *testing.B) {
	p := synth.Cars
	p.NumImages = 64
	p.ImageSize = 64
	ds, err := synth.Generate(p, 3)
	if err != nil {
		b.Fatal(err)
	}
	set, err := train.BuildPCRSet(ds, 16)
	if err != nil {
		b.Fatal(err)
	}
	rbPCR, err := set.RecordBytesAtGroup(2)
	if err != nil {
		b.Fatal(err)
	}
	sizes := set.SampleGroupLens()

	b.Run("pcr-scan-groups", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := iosim.NewDevice(iosim.HDD7200)
			var t float64
			for _, rb := range rbPCR {
				t = dev.Read(rb, t)
			}
			b.ReportMetric(t*1e3, "simms/epoch")
		}
	})
	b.Run("file-per-image", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := iosim.NewDevice(iosim.HDD7200)
			var t float64
			for _, s := range sizes {
				// A per-image progressive file still needs its header plus
				// scans 1-2, but every image is its own random read.
				t = dev.Read(s.HeaderLen+s.GroupLens[0]+s.GroupLens[1], t)
			}
			b.ReportMetric(t*1e3, "simms/epoch")
		}
	})
}

// BenchmarkAblationHuffman measures what per-scan Huffman optimization buys
// in bytes: spec-default tables vs optimized tables on baseline streams.
func BenchmarkAblationHuffman(b *testing.B) {
	p := synth.Cars
	p.NumImages = 8
	p.ImageSize = 64
	ds, err := synth.Generate(p, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts *jpegc.Options
	}{
		{"default-tables", &jpegc.Options{Quality: 84}},
		{"optimized-tables", &jpegc.Options{Quality: 84, OptimizeHuffman: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var bytesOut int64
			for i := 0; i < b.N; i++ {
				bytesOut = 0
				for _, s := range ds.Train {
					data, err := jpegc.Encode(s.Img, mode.opts)
					if err != nil {
						b.Fatal(err)
					}
					bytesOut += int64(len(data))
				}
			}
			b.ReportMetric(float64(bytesOut)/float64(len(ds.Train)), "bytes/img")
		})
	}
}

// BenchmarkAblationRecordSize sweeps images-per-record: bigger records
// amortize seeks but coarsen the shuffle granularity.
func BenchmarkAblationRecordSize(b *testing.B) {
	const images = 256
	const bytesPerImage = 100e3
	for _, perRecord := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("rec%d", perRecord), func(b *testing.B) {
			n := images / perRecord
			rb := make([]int64, n)
			ipr := make([]int, n)
			for i := range rb {
				rb[i] = int64(perRecord * bytesPerImage)
				ipr[i] = perRecord
			}
			for i := 0; i < b.N; i++ {
				cluster, err := iosim.NewCluster(iosim.HDD7200, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := loader.ReadOnlyRate(loader.Config{
					Cluster: cluster, Threads: 4,
					RecordBytes: rb, ImagesPerRecord: ipr,
					Passes: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ImagesPerSec, "img/s")
			}
		})
	}
}

// BenchmarkAblationMetadata compares the kvstore metadata database against a
// flat in-memory rebuild for record-index lookups.
func BenchmarkAblationMetadata(b *testing.B) {
	dir := b.TempDir()
	store, err := kvstore.Open(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	const n = 512
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("record/%05d", i))
		val := make([]byte, 128)
		if err := store.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
	flat := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		flat[fmt.Sprintf("record/%05d", i)] = make([]byte, 128)
	}
	rng := rand.New(rand.NewSource(1))

	b.Run("kvstore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key := []byte(fmt.Sprintf("record/%05d", rng.Intn(n)))
			if _, err := store.Get(key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key := fmt.Sprintf("record/%05d", rng.Intn(n))
			if flat[key] == nil {
				b.Fatal("missing")
			}
		}
	})
}

// BenchmarkAblationCache compares a PCR-aware prefix cache (delta upgrades)
// against a conventional whole-record cache when a training job alternates
// scan groups: the PCR cache fetches only upgrade deltas.
func BenchmarkAblationCache(b *testing.B) {
	const records = 64
	prefixes := map[int]int64{2: 20e3, 5: 60e3, 10: 100e3}
	fetchBytes := int64(0)
	fetch := func(record int, offset, length int64) ([]byte, error) {
		fetchBytes += length
		return make([]byte, length), nil
	}
	b.Run("pcr-prefix-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fetchBytes = 0
			c, err := cache.New(records*prefixes[10]*2, fetch)
			if err != nil {
				b.Fatal(err)
			}
			for _, g := range []int{2, 5, 10, 2} {
				for r := 0; r < records; r++ {
					if _, err := c.Get(r, prefixes[g]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(fetchBytes)/1e6, "MB-fetched")
		}
	})
	b.Run("whole-record-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fetchBytes = 0
			cached := map[int]bool{}
			for _, g := range []int{2, 5, 10, 2} {
				for r := 0; r < records; r++ {
					// A conventional cache keyed on full records must
					// refetch whenever the stored quality differs.
					if !cached[r] || g == 10 {
						fetchBytes += prefixes[g]
						cached[r] = g == 10
					}
				}
			}
			b.ReportMetric(float64(fetchBytes)/1e6, "MB-fetched")
		}
	})
}

// BenchmarkTFRecordFraming measures the baseline record format's framing
// throughput for context alongside the PCR writer.
func BenchmarkTFRecordFraming(b *testing.B) {
	payload := make([]byte, 100<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := recordio.NewWriter(&buf)
		if err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := recordio.NewReader(&buf).Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLPEpoch measures the SGD substrate's step rate.
func BenchmarkMLPEpoch(b *testing.B) {
	m, err := nn.ResNetLike.Build(train.FeatureLen, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	batch := nn.Batch{}
	for i := 0; i < 32; i++ {
		x := make([]float64, train.FeatureLen)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		batch.X = append(batch.X, x)
		batch.Y = append(batch.Y, i%10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _, _, err := m.Gradient(batch)
		if err != nil {
			b.Fatal(err)
		}
		m.Step(g, 0.01, 0.9)
	}
}
