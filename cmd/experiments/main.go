// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig4 [-scale 0.5] [-seed 42] [-epochs 20]
//	experiments -run all
//
// Output is the textual series/rows each figure plots; EXPERIMENTS.md pairs
// them with the paper's reported shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "all", "experiment id or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	seed := flag.Int64("seed", 42, "seed")
	epochs := flag.Int("epochs", 0, "override epoch budgets (0 = per-dataset defaults)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-28s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	cfg := experiments.NewConfig(os.Stdout)
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Epochs = *epochs

	runOne := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *run == "all" {
		for _, e := range experiments.All() {
			runOne(e)
		}
		return
	}
	e, err := experiments.ByID(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		fmt.Fprintln(os.Stderr, "use -list to see available experiments")
		os.Exit(2)
	}
	runOne(e)
}
