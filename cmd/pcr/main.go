// Command pcr creates, inspects, and decodes Progressive Compressed Record
// datasets on disk.
//
// Usage:
//
//	pcr synth   -dataset cars -out DIR [-scale 0.5] [-seed 42] [-per-record 32] [-baseline DIR]
//	pcr encode  -from DIR -out DIR [-per-record 32]
//	pcr inspect -dataset DIR
//	pcr decode  -dataset DIR -record N -group G -out DIR
//
// `synth` generates one of the paper's synthetic dataset profiles and
// encodes it as a PCR dataset (optionally also writing the File-per-Image
// baseline layout). `encode` converts an existing File-per-Image layout of
// JPEGs into PCR form — the jpegtran-and-rearrange role of the paper's
// encoder. `inspect` prints the record index and scan-group sizes.
// `decode` materializes a record's images at a scan group as PNG files.
package main

import (
	"flag"
	"fmt"
	"image/png"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/jpegc"
	"repro/internal/recordio"
	"repro/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pcr <synth|encode|inspect|decode> [flags]
  synth   -dataset NAME -out DIR [-scale F] [-seed N] [-per-record N] [-baseline DIR]
  encode  -from DIR -out DIR [-per-record N]
  inspect -dataset DIR
  decode  -dataset DIR -record N -group G -out DIR`)
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("dataset", "cars", "profile: imagenet, celebahq, ham10000, cars")
	out := fs.String("out", "", "output PCR dataset directory")
	scale := fs.Float64("scale", 1.0, "dataset size multiplier")
	seed := fs.Int64("seed", 42, "generation seed")
	perRecord := fs.Int("per-record", 32, "images per record")
	baseline := fs.String("baseline", "", "also write a File-per-Image baseline layout here")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("synth: -out is required")
	}
	profile, err := synth.ProfileByName(*name)
	if err != nil {
		return err
	}
	ds, err := synth.Generate(profile.Scaled(*scale), *seed)
	if err != nil {
		return err
	}
	w, err := core.CreateDataset(*out, &core.DatasetOptions{ImagesPerRecord: *perRecord})
	if err != nil {
		return err
	}
	var fpi *recordio.FilePerImage
	if *baseline != "" {
		fpi, err = recordio.CreateFilePerImage(*baseline)
		if err != nil {
			return err
		}
	}
	for _, s := range ds.Train {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: profile.JPEGQuality, Subsample420: true})
		if err != nil {
			return err
		}
		if err := w.Append(core.Sample{ID: int64(s.ID), Label: int64(s.Label), JPEG: data}); err != nil {
			return err
		}
		if fpi != nil {
			if err := fpi.Put(int64(s.ID), int64(s.Label), data); err != nil {
				return err
			}
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if fpi != nil {
		if err := fpi.WriteManifest(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d train images of %s to %s\n", len(ds.Train), profile.Name, *out)
	return nil
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	from := fs.String("from", "", "File-per-Image source directory")
	out := fs.String("out", "", "output PCR dataset directory")
	perRecord := fs.Int("per-record", 32, "images per record")
	fs.Parse(args)
	if *from == "" || *out == "" {
		return fmt.Errorf("encode: -from and -out are required")
	}
	src, err := recordio.OpenFilePerImage(*from)
	if err != nil {
		return err
	}
	entries, err := src.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("encode: no images under %s", *from)
	}
	w, err := core.CreateDataset(*out, &core.DatasetOptions{ImagesPerRecord: *perRecord})
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := src.Get(e)
		if err != nil {
			return err
		}
		if err := w.Append(core.Sample{ID: e.ID, Label: e.Label, JPEG: data}); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("encoded %d images into PCR dataset %s\n", len(entries), *out)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("dataset", "", "PCR dataset directory")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("inspect: -dataset is required")
	}
	ds, err := core.OpenDataset(*dir)
	if err != nil {
		return err
	}
	defer ds.Close()
	fmt.Printf("dataset: %s\n  records: %d\n  images:  %d\n  scan groups: %d\n",
		*dir, ds.NumRecords(), ds.NumImages(), ds.NumGroups)
	fmt.Printf("%8s %8s %12s  %s\n", "record", "images", "full bytes", "prefix bytes by scan group")
	for i := 0; i < ds.NumRecords(); i++ {
		n, err := ds.RecordSamples(i)
		if err != nil {
			return err
		}
		full, err := ds.RecordPrefixLen(i, ds.NumGroups)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %8d %12d  ", i, n, full)
		for g := 1; g <= ds.NumGroups; g++ {
			p, err := ds.RecordPrefixLen(i, g)
			if err != nil {
				return err
			}
			fmt.Printf("%d:%d ", g, p)
		}
		fmt.Println()
	}
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dataset", "", "PCR dataset directory")
	record := fs.Int("record", 0, "record index")
	group := fs.Int("group", 1, "scan group to read")
	out := fs.String("out", "", "output directory for PNG files")
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return fmt.Errorf("decode: -dataset and -out are required")
	}
	ds, err := core.OpenDataset(*dir)
	if err != nil {
		return err
	}
	defer ds.Close()
	samples, err := ds.ReadRecordAt(*record, *group)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	bytesRead, err := ds.RecordPrefixLen(*record, *group)
	if err != nil {
		return err
	}
	for _, s := range samples {
		path := filepath.Join(*out, fmt.Sprintf("img-%06d-label%d-scan%d.png", s.ID, s.Label, *group))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := png.Encode(f, s.Img); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("decoded %d images from record %d at scan group %d (%d bytes read) into %s\n",
		len(samples), *record, *group, bytesRead, *out)
	return nil
}
