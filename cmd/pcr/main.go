// Command pcr creates, inspects, and decodes image datasets through the
// public pcr package (see package repro/pcr), in any of its storage formats:
// Progressive Compressed Records, TFRecord framing, or file-per-image.
//
// Usage:
//
//	pcr synth   -dataset cars -out DIR [-format pcr] [-scale 0.5] [-seed 42] [-per-record 32] [-scan-groups N] [-baseline DIR]
//	pcr encode  -from DIR -out DIR [-format pcr] [-per-record 32] [-scan-groups N]
//	pcr inspect -dataset DIR [-format pcr] [-filter "label IN (3, 7)"]
//	pcr decode  -dataset DIR -record N -quality Q -out DIR
//
// `synth` generates one of the paper's synthetic dataset profiles and
// encodes it in the chosen format (optionally also writing the File-per-Image
// baseline layout). `encode` converts an existing File-per-Image layout of
// JPEGs into a record format — the jpegtran-and-rearrange role of the
// paper's encoder. `inspect` prints the record index and per-quality sizes.
// `decode` materializes a record's images at a quality level as PNG files.
package main

import (
	"context"
	"flag"
	"fmt"
	"image/png"
	"os"
	"path/filepath"

	"repro/pcr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "decode":
		err = cmdDecode(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pcr <synth|encode|inspect|decode> [flags]
  synth   -dataset NAME -out DIR [-format pcr|tfrecord|fileperimage] [-scale F] [-seed N] [-per-record N] [-scan-groups N] [-baseline DIR]
  encode  -from DIR -out DIR [-format pcr|tfrecord|fileperimage] [-per-record N] [-scan-groups N]
  inspect -dataset DIR [-format pcr|tfrecord|fileperimage] [-filter EXPR]
  decode  -dataset DIR -record N -quality Q -out DIR`)
}

// formatFlag registers -format and resolves it after parsing.
func formatFlag(fs *flag.FlagSet) func() (pcr.Format, error) {
	name := fs.String("format", "pcr", "storage format: pcr, tfrecord, fileperimage")
	return func() (pcr.Format, error) { return pcr.FormatByName(*name) }
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("dataset", "cars", "profile: imagenet, celebahq, ham10000, cars")
	out := fs.String("out", "", "output dataset directory")
	format := formatFlag(fs)
	scale := fs.Float64("scale", 1.0, "dataset size multiplier")
	seed := fs.Int64("seed", 42, "generation seed")
	perRecord := fs.Int("per-record", 32, "images per record")
	scanGroups := fs.Int("scan-groups", 0, "coalesce progressive scans into N groups (0 = one per scan)")
	baseline := fs.String("baseline", "", "also write a File-per-Image baseline layout here")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("synth: -out is required")
	}
	f, err := format()
	if err != nil {
		return err
	}
	opts := []pcr.Option{
		pcr.WithFormat(f),
		pcr.WithImagesPerRecord(*perRecord),
		pcr.WithScanGroups(*scanGroups),
	}
	n, err := pcr.Synthesize(*out, *name, *scale, *seed, opts...)
	if err != nil {
		return err
	}
	if *baseline != "" {
		// Copy the just-written dataset instead of synthesizing and encoding
		// the images a second time (encoding dominates synth wall time).
		if err := copyToFilePerImage(*out, f, *baseline); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d train images of %s to %s (%s format)\n", n, *name, *out, f.Name())
	return nil
}

// copyToFilePerImage streams the dataset at src (in srcFormat) into a
// File-per-Image baseline layout at dst.
func copyToFilePerImage(src string, srcFormat pcr.Format, dst string) error {
	ds, err := pcr.Open(src, pcr.WithFormat(srcFormat))
	if err != nil {
		return err
	}
	defer ds.Close()
	w, err := pcr.Create(dst, pcr.WithFormat(pcr.FilePerImage))
	if err != nil {
		return err
	}
	for s, err := range ds.ScanEncoded(context.Background(), pcr.Full) {
		if err != nil {
			return err
		}
		if err := w.Append(s); err != nil {
			return err
		}
	}
	return w.Close()
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	from := fs.String("from", "", "File-per-Image source directory")
	out := fs.String("out", "", "output dataset directory")
	format := formatFlag(fs)
	perRecord := fs.Int("per-record", 32, "images per record")
	scanGroups := fs.Int("scan-groups", 0, "coalesce progressive scans into N groups (0 = one per scan)")
	fs.Parse(args)
	if *from == "" || *out == "" {
		return fmt.Errorf("encode: -from and -out are required")
	}
	f, err := format()
	if err != nil {
		return err
	}
	src, err := pcr.Open(*from, pcr.WithFormat(pcr.FilePerImage))
	if err != nil {
		return err
	}
	defer src.Close()
	if src.NumImages() == 0 {
		return fmt.Errorf("encode: no images under %s", *from)
	}
	w, err := pcr.Create(*out, pcr.WithFormat(f), pcr.WithImagesPerRecord(*perRecord), pcr.WithScanGroups(*scanGroups))
	if err != nil {
		return err
	}
	for s, err := range src.ScanEncoded(context.Background(), pcr.Full) {
		if err != nil {
			return err
		}
		if err := w.Append(s); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("encoded %d images into %s dataset %s\n", w.Count(), f.Name(), *out)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("dataset", "", "dataset directory")
	format := formatFlag(fs)
	filter := fs.String("filter", "", `plan a predicate pushdown, e.g. "label IN (3, 7) AND id >= 100" (pcr format only)`)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("inspect: -dataset is required")
	}
	f, err := format()
	if err != nil {
		return err
	}
	ds, err := pcr.Open(*dir, pcr.WithFormat(f))
	if err != nil {
		return err
	}
	defer ds.Close()
	fmt.Printf("dataset: %s (%s format)\n  records: %d\n  images:  %d\n  quality levels: %d\n",
		*dir, ds.Format().Name(), ds.NumRecords(), ds.NumImages(), ds.Qualities())
	fullSize, err := ds.SizeAtQuality(pcr.Full)
	if err != nil {
		return err
	}
	for q := 1; q <= ds.Qualities(); q++ {
		size, err := ds.SizeAtQuality(q)
		if err != nil {
			return err
		}
		fmt.Printf("  quality %2d: %12d bytes (%.1f%% of full)\n", q, size, 100*float64(size)/float64(fullSize))
	}
	if *filter != "" {
		if ds.Format() != pcr.PCR {
			return fmt.Errorf("inspect: -filter requires the pcr format")
		}
		pred, err := pcr.ParseFilter(*filter)
		if err != nil {
			return err
		}
		fmt.Printf("filter: %s\n", pred)
		for q := 1; q <= ds.Qualities(); q++ {
			plan, err := ds.PlanFilter(pred, q)
			if err != nil {
				return err
			}
			fmt.Printf("  quality %2d: %d/%d samples, %d/%d records skipped whole, %d of %d bytes (%.1f%%)\n",
				q, plan.Selected, plan.Total, plan.RecordsSkipped, plan.Records,
				plan.Bytes, plan.FullBytes, 100*float64(plan.Bytes)/float64(plan.FullBytes))
		}
	}
	if ds.Format() != pcr.PCR {
		return nil
	}
	fmt.Printf("%8s %8s %12s  %s\n", "record", "images", "full bytes", "prefix bytes by quality")
	for i := 0; i < ds.NumRecords(); i++ {
		n, err := ds.RecordImages(i)
		if err != nil {
			return err
		}
		full, err := ds.RecordPrefixLen(i, pcr.Full)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %8d %12d  ", i, n, full)
		for q := 1; q <= ds.Qualities(); q++ {
			p, err := ds.RecordPrefixLen(i, q)
			if err != nil {
				return err
			}
			fmt.Printf("%d:%d ", q, p)
		}
		fmt.Println()
	}
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dataset", "", "PCR dataset directory")
	record := fs.Int("record", 0, "record index")
	quality := fs.Int("quality", 1, "quality level (scan group) to read")
	out := fs.String("out", "", "output directory for PNG files")
	fs.Parse(args)
	if *dir == "" || *out == "" {
		return fmt.Errorf("decode: -dataset and -out are required")
	}
	ds, err := pcr.Open(*dir)
	if err != nil {
		return err
	}
	defer ds.Close()
	samples, err := ds.ReadRecord(context.Background(), *record, *quality)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	bytesRead, err := ds.RecordPrefixLen(*record, *quality)
	if err != nil {
		return err
	}
	for _, s := range samples {
		path := filepath.Join(*out, fmt.Sprintf("img-%06d-label%d-q%d.png", s.ID, s.Label, *quality))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := png.Encode(f, s.Image); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("decoded %d images from record %d at quality %d (%d bytes read) into %s\n",
		len(samples), *record, *quality, bytesRead, *out)
	return nil
}
