package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/pcr"
)

// TestJSONReport: -json writes BENCH_<mode>.json with the machine-readable
// columns of the printed table (images/s, bytes/img, p50/p99 stall) for
// both the raw-records and loader modes.
func TestJSONReport(t *testing.T) {
	dataDir := t.TempDir()
	if _, err := pcr.Synthesize(dataDir, "cars", 0.1, 1,
		pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4)); err != nil {
		t.Fatal(err)
	}
	// writeReport writes to the working directory.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := os.Chdir(out); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	for _, tc := range []struct {
		mode string
		cfg  benchConfig
	}{
		{mode: "records", cfg: benchConfig{dir: dataDir, format: "pcr", workers: 2, passes: 1, json: true}},
		{mode: "loader", cfg: benchConfig{dir: dataDir, format: "pcr", workers: 2, passes: 2, batch: 8, loader: true, json: true}},
	} {
		t.Run(tc.mode, func(t *testing.T) {
			if err := run(tc.cfg); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(filepath.Join(out, "BENCH_"+tc.mode+".json"))
			if err != nil {
				t.Fatal(err)
			}
			var rep benchReport
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatalf("BENCH_%s.json is not valid JSON: %v", tc.mode, err)
			}
			if rep.Mode != tc.mode || rep.Dataset != dataDir {
				t.Fatalf("report header %+v", rep)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("report has no rows")
			}
			for _, r := range rep.Rows {
				if r.Images == 0 || r.ImagesPerSec <= 0 {
					t.Fatalf("degenerate row %+v", r)
				}
				if r.StallP99Ms < r.StallP50Ms {
					t.Fatalf("p99 stall below p50: %+v", r)
				}
				if r.ElapsedMs <= 0 {
					t.Fatalf("row without elapsed time: %+v", r)
				}
			}
		})
	}
}
