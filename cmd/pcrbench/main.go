// Command pcrbench is the reader microbenchmark of §A.5 run against a real
// on-disk PCR dataset: N goroutines read record prefixes at a scan group,
// optionally decoding every image, and the tool reports images/second and
// effective bandwidth per scan group (the measured side of Figure 18).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

func main() {
	dir := flag.String("dataset", "", "PCR dataset directory")
	threads := flag.Int("threads", 8, "reader goroutines")
	passes := flag.Int("passes", 3, "passes over the dataset per scan group")
	decode := flag.Bool("decode", false, "also decode every image")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pcrbench: -dataset is required")
		os.Exit(2)
	}
	if err := run(*dir, *threads, *passes, *decode); err != nil {
		fmt.Fprintln(os.Stderr, "pcrbench:", err)
		os.Exit(1)
	}
}

func run(dir string, threads, passes int, decode bool) error {
	ds, err := core.OpenDataset(dir)
	if err != nil {
		return err
	}
	defer ds.Close()
	fmt.Printf("dataset %s: %d records, %d images, %d scan groups; %d threads, decode=%v\n",
		dir, ds.NumRecords(), ds.NumImages(), ds.NumGroups, threads, decode)
	fmt.Printf("%5s %12s %14s %12s\n", "scan", "images/s", "bandwidth", "elapsed")

	for g := 1; g <= ds.NumGroups; g++ {
		var images, bytes int64
		work := make(chan int, ds.NumRecords()*passes)
		for p := 0; p < passes; p++ {
			for r := 0; r < ds.NumRecords(); r++ {
				work <- r
			}
		}
		close(work)

		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, threads)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range work {
					prefix, meta, err := ds.ReadRecordPrefix(r, g)
					if err != nil {
						errCh <- err
						return
					}
					atomic.AddInt64(&bytes, int64(len(prefix)))
					if decode {
						for i := range meta.Samples {
							if _, err := meta.DecodeSample(prefix, i, minInt(g, meta.NumGroups)); err != nil {
								errCh <- err
								return
							}
						}
					}
					atomic.AddInt64(&images, int64(len(meta.Samples)))
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return err
		default:
		}
		elapsed := time.Since(start)
		fmt.Printf("%5d %12.0f %11.1f MB/s %12v\n",
			g,
			float64(images)/elapsed.Seconds(),
			float64(bytes)/elapsed.Seconds()/1e6,
			elapsed.Round(time.Millisecond))
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
