// Command pcrbench is the reader microbenchmark of §A.5 run against a real
// dataset through the public pcr package: N parallel readers fetch record
// prefixes at each quality level — optionally decoding every image — and
// the tool reports images/second, bytes read per sample, and effective
// bandwidth per quality (the measured side of Figure 18). Formats without
// record-level access (tfrecord, fileperimage) are measured through the
// streaming Scan path.
//
// -dataset accepts either a local directory or a pcrserved URL
// (http://host:port), so local-disk and remote-serving runs produce
// directly comparable tables: bytes/image is the same column either way,
// and the bandwidth column becomes wire bandwidth for remote runs.
//
// -loader switches the benchmark from raw record reads to the full batch
// pipeline (pcr.Loader): each pass is one epoch of shuffled, decoded,
// batch-assembled samples, reporting images/s, bytes/img, and the
// consumer's stall time. With -disk-cache-dir the table doubles as a
// cold-vs-warm comparison: epoch 0 fills the persistent cache over the
// (possibly remote) upstream, later epochs read it back locally, and a
// final summary prints both rows side by side.
//
// -filter restricts the benchmark to the samples a predicate expression
// selects (e.g. "label IN (3, 7)"), measuring the queryable-dataset path:
// records with no match are skipped without a read, partial matches are
// fetched as sparse ranges (pushed down to the server on remote runs), and
// the bytes/img column prices the subset. Records mode measures the
// filtered streaming scan; with -loader the filter rides the batch
// pipeline.
//
// -json additionally writes the table as machine-readable
// BENCH_records.json or BENCH_loader.json in the working directory —
// images/s, bytes/img, and p50/p99 stall per row — for dashboards and
// regression tracking.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pcr"
)

func main() {
	dir := flag.String("dataset", "", "dataset directory or pcrserved URL(s) (http://host:port, comma-separated fleet seeds allowed)")
	formatName := flag.String("format", "pcr", "storage format: pcr, tfrecord, fileperimage")
	workers := flag.Int("workers", 8, "parallel readers (decode workers for stream formats)")
	passes := flag.Int("passes", 3, "passes over the dataset per quality level")
	decode := flag.Bool("decode", false, "also decode every image")
	cacheMB := flag.Int64("cache-mb", 0, "LRU prefix cache budget in MiB (0 = no cache)")
	loaderMode := flag.Bool("loader", false, "benchmark the batch pipeline (pcr.Loader) instead of raw record reads")
	batch := flag.Int("batch", 32, "batch size for -loader")
	quality := flag.Int("quality", 0, "read quality for -loader (0 = full)")
	diskDir := flag.String("disk-cache-dir", "", "persistent prefix cache directory (enables the cold-vs-warm comparison)")
	diskMB := flag.Int64("disk-cache-mb", 1024, "persistent prefix cache budget in MiB")
	jsonOut := flag.Bool("json", false, "also write machine-readable results to BENCH_records.json / BENCH_loader.json")
	filter := flag.String("filter", "", `restrict to matching samples, e.g. "label IN (3, 7)" (pcr format only)`)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pcrbench: -dataset is required")
		os.Exit(2)
	}
	cfg := benchConfig{
		dir: *dir, format: *formatName, workers: *workers, passes: *passes,
		decode: *decode, cacheMB: *cacheMB, loader: *loaderMode, batch: *batch,
		quality: *quality, diskDir: *diskDir, diskMB: *diskMB, json: *jsonOut,
		filter: *filter,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pcrbench:", err)
		os.Exit(1)
	}
}

type benchConfig struct {
	dir, format     string
	workers, passes int
	decode          bool
	cacheMB         int64
	loader          bool
	batch, quality  int
	diskDir         string
	diskMB          int64
	json            bool
	filter          string
}

// benchRow is one table row in machine-readable form. Records-mode rows
// are keyed by quality; loader-mode rows by epoch (with the fixed quality
// repeated). Stall quantiles are over per-read blocked time in records
// mode and per-batch consumer wait in loader mode.
type benchRow struct {
	Quality       int     `json:"quality"`
	Epoch         int     `json:"epoch,omitempty"`
	Images        int64   `json:"images"`
	ImagesPerSec  float64 `json:"images_per_sec"`
	BytesPerImage float64 `json:"bytes_per_image"`
	StallP50Ms    float64 `json:"stall_p50_ms"`
	StallP99Ms    float64 `json:"stall_p99_ms"`
	ElapsedMs     float64 `json:"elapsed_ms"`
}

// benchReport is the BENCH_*.json document.
type benchReport struct {
	Dataset string     `json:"dataset"`
	Format  string     `json:"format"`
	Mode    string     `json:"mode"`
	Workers int        `json:"workers"`
	Batch   int        `json:"batch,omitempty"`
	Rows    []benchRow `json:"rows"`
}

// writeReport writes the report to BENCH_<mode>.json in the working
// directory.
func writeReport(rep benchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + rep.Mode + ".json"
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", name)
	return nil
}

// quantileMs returns the q-quantile (0..1) of the samples in milliseconds
// by nearest-rank; 0 when there are no samples.
func quantileMs(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	ix := int(q * float64(len(s)-1))
	return float64(s[ix]) / float64(time.Millisecond)
}

// stallTrack collects blocked-time samples from concurrent readers.
type stallTrack struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (st *stallTrack) add(d time.Duration) {
	st.mu.Lock()
	st.samples = append(st.samples, d)
	st.mu.Unlock()
}

func run(cfg benchConfig) error {
	dir, formatName := cfg.dir, cfg.format
	workers, passes, decode, cacheMB := cfg.workers, cfg.passes, cfg.decode, cfg.cacheMB
	format, err := pcr.FormatByName(formatName)
	if err != nil {
		return err
	}
	opts := []pcr.Option{
		pcr.WithPrefetchWorkers(workers),
		pcr.WithCacheBytes(cacheMB << 20),
	}
	if cfg.diskDir != "" {
		opts = append(opts, pcr.WithDiskCache(cfg.diskDir, cfg.diskMB<<20))
	}
	var ds *pcr.Dataset
	remote := strings.HasPrefix(dir, "http://") || strings.HasPrefix(dir, "https://")
	if remote {
		if format != pcr.PCR {
			return fmt.Errorf("remote serving is pcr-format only; drop -format %s", formatName)
		}
		ds, err = pcr.OpenRemote(dir, opts...)
	} else {
		ds, err = pcr.Open(dir, append(opts, pcr.WithFormat(format))...)
	}
	if err != nil {
		return err
	}
	defer ds.Close()
	var pred pcr.Predicate
	if cfg.filter != "" {
		if format != pcr.PCR {
			return fmt.Errorf("-filter requires the pcr format, not %s", formatName)
		}
		if pred, err = pcr.ParseFilter(cfg.filter); err != nil {
			return err
		}
	}
	if cfg.loader {
		return runLoader(ds, cfg, remote, pred)
	}
	mode := fmt.Sprintf("%d parallel readers", workers)
	if format != pcr.PCR {
		mode = fmt.Sprintf("single reader stream, %d decode workers", workers)
	}
	if pred != nil {
		mode = fmt.Sprintf("filtered stream %q, %d decode workers", pred, workers)
	}
	if remote {
		mode += ", remote"
	}
	fmt.Printf("dataset %s (%s): %d records, %d images, %d quality levels; %s, decode=%v\n",
		dir, ds.Format().Name(), ds.NumRecords(), ds.NumImages(), ds.Qualities(), mode, decode)
	fmt.Printf("%8s %12s %12s %14s %12s\n", "quality", "images/s", "bytes/img", "bandwidth", "elapsed")

	fetchedSoFar := func() (int64, bool) {
		stats, ok := ds.CacheStats()
		return stats.BytesFetched, ok
	}
	rep := benchReport{Dataset: dir, Format: ds.Format().Name(), Mode: "records", Workers: workers}
	for q := 1; q <= ds.Qualities(); q++ {
		size, err := ds.SizeAtQuality(q)
		if err != nil {
			return err
		}
		before, cached := fetchedSoFar()
		var images int64
		var fstats pcr.FilterStats
		stalls := &stallTrack{}
		start := time.Now()
		switch {
		case pred != nil:
			images, fstats, err = benchFiltered(ds, q, passes, decode, pred, stalls)
		case format == pcr.PCR:
			images, err = benchRecords(ds, q, workers, passes, decode, stalls)
		default:
			images, err = benchStream(ds, q, passes, decode, stalls)
		}
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		// Bytes read per sample is the quality level's cost in the paper's
		// currency (§3, Figure 16) — the column that makes a local-disk run
		// and a remote pcrserved run directly comparable. With a prefix
		// cache the counters report what actually moved (later passes and
		// already-cached prefixes cost nothing); without one, every pass
		// reads the full working set.
		moved := int64(size) * int64(passes)
		if cached {
			after, _ := fetchedSoFar()
			moved = after - before
		} else if pred != nil {
			moved = fstats.BytesRead
		}
		if pred != nil {
			fmt.Printf("         filter q%d: %d selected, %d skipped (%d records whole); %d bytes read, %d avoided\n",
				q, fstats.Selected, fstats.Skipped, fstats.RecordsSkipped, fstats.BytesRead, fstats.BytesAvoided)
		}
		// An empty dataset or a sub-resolution elapsed time would print
		// NaN/+Inf; degenerate rows show "-" instead.
		fmt.Printf("%8d %12s %12s %14s %12v\n",
			q,
			ratio(float64(images), elapsed.Seconds(), "%.0f"),
			ratio(float64(moved), float64(images), "%.0f"),
			ratio(float64(moved)/1e6, elapsed.Seconds(), "%.1f MB/s"),
			elapsed.Round(time.Millisecond))
		row := benchRow{
			Quality:    q,
			Images:     images,
			StallP50Ms: quantileMs(stalls.samples, 0.50),
			StallP99Ms: quantileMs(stalls.samples, 0.99),
			ElapsedMs:  float64(elapsed) / float64(time.Millisecond),
		}
		if s := elapsed.Seconds(); s > 0 {
			row.ImagesPerSec = float64(images) / s
		}
		if images > 0 {
			row.BytesPerImage = float64(moved) / float64(images)
		}
		rep.Rows = append(rep.Rows, row)
	}
	if stats, ok := ds.CacheStats(); ok {
		fmt.Printf("cache: %d hits, %d upgrade hits, %d misses, %d evictions, %d bytes fetched\n",
			stats.Hits, stats.UpgradeHits, stats.Misses, stats.Evictions, stats.BytesFetched)
	}
	if cfg.json {
		return writeReport(rep)
	}
	return nil
}

// ratio formats num/den with the given verb, or "-" when the denominator
// is not positive (empty dataset, sub-resolution elapsed time).
func ratio(num, den float64, verb string) string {
	if den <= 0 {
		return "-"
	}
	return fmt.Sprintf(verb, num/den)
}

// runLoader benchmarks the batch pipeline: each pass is one Loader epoch.
// The upstream column is what actually moved past the disk cache (network
// bytes for a remote run) — with -disk-cache-dir, epoch 0 is the cold fill
// and later epochs are warm.
func runLoader(ds *pcr.Dataset, cfg benchConfig, remote bool, pred pcr.Predicate) error {
	lopts := []pcr.LoaderOption{
		pcr.WithBatchSize(cfg.batch),
		pcr.WithQuality(cfg.quality),
	}
	if pred != nil {
		lopts = append(lopts, pcr.WithLoaderFilter(pred))
	}
	l, err := pcr.NewLoader(ds, lopts...)
	if err != nil {
		return err
	}
	where := "local"
	if remote {
		where = "remote"
	}
	fmt.Printf("dataset %s (%s, %s): %d records, %d images, %d quality levels; loader batch=%d decode-workers=%d\n",
		cfg.dir, ds.Format().Name(), where, ds.NumRecords(), ds.NumImages(), ds.Qualities(), cfg.batch, cfg.workers)
	fmt.Printf("%8s %12s %12s %12s %12s %14s\n", "epoch", "images/s", "bytes/img", "stall", "elapsed", "upstream MB")

	upstream := func() (int64, bool) {
		if st, ok := ds.DiskCacheStats(); ok {
			return st.BytesFetched, true
		}
		if st, ok := ds.CacheStats(); ok {
			return st.BytesFetched, true
		}
		return 0, false
	}
	type row struct {
		imgsPerSec float64
		upstream   int64
		tracked    bool
	}
	var rows []row
	rep := benchReport{Dataset: cfg.dir, Format: ds.Format().Name(), Mode: "loader",
		Workers: cfg.workers, Batch: cfg.batch}
	ctx := context.Background()
	for epoch := 0; epoch < cfg.passes; epoch++ {
		before, tracked := upstream()
		// Per-batch consumer wait: the time each range step spends blocked
		// on the pipeline (the consumer itself does no work here, so the
		// whole step is stall).
		var stalls []time.Duration
		prev := time.Now()
		for _, err := range l.Epoch(ctx, epoch) {
			if err != nil {
				return err
			}
			stalls = append(stalls, time.Since(prev))
			prev = time.Now()
		}
		st, ok := l.LastEpochStats()
		if !ok {
			return fmt.Errorf("no stats after epoch %d", epoch)
		}
		moved := st.BytesRead
		if tracked {
			after, _ := upstream()
			moved = after - before
		}
		fmt.Printf("%8d %12s %12s %12v %12v %14s\n",
			epoch,
			ratio(float64(st.Images), st.Wall.Seconds(), "%.0f"),
			ratio(float64(st.BytesRead), float64(st.Images), "%.0f"),
			st.Stall.Round(time.Millisecond),
			st.Wall.Round(time.Millisecond),
			ratio(float64(moved)/1e6, 1, "%.2f"))
		rows = append(rows, row{imgsPerSec: st.ImagesPerSec, upstream: moved, tracked: tracked})
		jr := benchRow{
			Quality:      cfg.quality,
			Epoch:        epoch,
			Images:       int64(st.Images),
			ImagesPerSec: st.ImagesPerSec,
			StallP50Ms:   quantileMs(stalls, 0.50),
			StallP99Ms:   quantileMs(stalls, 0.99),
			ElapsedMs:    float64(st.Wall) / float64(time.Millisecond),
		}
		if st.Images > 0 {
			jr.BytesPerImage = float64(st.BytesRead) / float64(st.Images)
		}
		rep.Rows = append(rep.Rows, jr)
	}
	if pred != nil {
		if st, ok := l.LastEpochStats(); ok {
			fmt.Printf("filter %q: last epoch delivered %d images, skipped %d; %.2f MB read, %.2f MB avoided\n",
				pred, st.Images, st.SkippedImages, float64(st.BytesRead)/1e6, float64(st.BytesAvoided)/1e6)
		}
	}
	if st, ok := ds.DiskCacheStats(); ok && len(rows) >= 2 {
		cold, warm := rows[0], rows[len(rows)-1]
		fmt.Printf("\ndisk cache cold vs warm:\n")
		fmt.Printf("%8s %12s %14s\n", "", "images/s", "upstream MB")
		fmt.Printf("%8s %12.0f %14.2f\n", "cold", cold.imgsPerSec, float64(cold.upstream)/1e6)
		fmt.Printf("%8s %12.0f %14.2f\n", "warm", warm.imgsPerSec, float64(warm.upstream)/1e6)
		fmt.Printf("cache: %d hits, %d delta hits, %d misses, %d evictions; %d entries recovered warm\n",
			st.Hits, st.DeltaHits, st.Misses, st.Evictions, st.Recovered)
	}
	if cfg.json {
		return writeReport(rep)
	}
	return nil
}

// benchRecords drives the §A.5 structure: worker goroutines pull record
// indices from a shared queue and issue independent prefix reads.
func benchRecords(ds *pcr.Dataset, q, workers, passes int, decode bool, stalls *stallTrack) (int64, error) {
	work := make(chan int, ds.NumRecords()*passes)
	for p := 0; p < passes; p++ {
		for r := 0; r < ds.NumRecords(); r++ {
			work <- r
		}
	}
	close(work)

	ctx := context.Background()
	var images int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				var samples []pcr.Sample
				var err error
				start := time.Now()
				if decode {
					samples, err = ds.ReadRecord(ctx, r, q)
				} else {
					samples, err = ds.ReadRecordEncoded(r, q)
				}
				stalls.add(time.Since(start))
				if err != nil {
					errCh <- err
					return
				}
				atomic.AddInt64(&images, int64(len(samples)))
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return images, err
	default:
	}
	return images, nil
}

// benchFiltered measures the queryable-dataset path: one sequential
// filtered scan per pass (predicate pushdown inside the reader — sparse
// range reads locally, bitmap pushdown against a server), with Scan's
// worker pool handling decode when requested. The aggregated FilterStats
// across all passes report what the filter read and what it avoided.
func benchFiltered(ds *pcr.Dataset, q, passes int, decode bool, pred pcr.Predicate, stalls *stallTrack) (int64, pcr.FilterStats, error) {
	ctx := context.Background()
	var images int64
	var agg pcr.FilterStats
	for p := 0; p < passes; p++ {
		var fs pcr.FilterStats
		scan := ds.ScanEncoded
		if decode {
			scan = ds.Scan
		}
		prev := time.Now()
		for _, err := range scan(ctx, q, pcr.WithFilter(pred), pcr.WithFilterStats(&fs)) {
			if err != nil {
				return images, agg, err
			}
			images++
			stalls.add(time.Since(prev))
			prev = time.Now()
		}
		agg.Selected += fs.Selected
		agg.Skipped += fs.Skipped
		agg.RecordsSkipped += fs.RecordsSkipped
		agg.BytesRead += fs.BytesRead
		agg.BytesAvoided += fs.BytesAvoided
	}
	return images, agg, nil
}

// benchStream measures formats that only stream: one sequential reader,
// with Scan's worker pool handling decode when requested.
func benchStream(ds *pcr.Dataset, q, passes int, decode bool, stalls *stallTrack) (int64, error) {
	ctx := context.Background()
	var images int64
	for p := 0; p < passes; p++ {
		scan := ds.ScanEncoded
		if decode {
			scan = ds.Scan
		}
		prev := time.Now()
		for _, err := range scan(ctx, q) {
			if err != nil {
				return images, err
			}
			images++
			stalls.add(time.Since(prev))
			prev = time.Now()
		}
	}
	return images, nil
}
