// Command pcrbench is the reader microbenchmark of §A.5 run against a real
// dataset through the public pcr package: N parallel readers fetch record
// prefixes at each quality level — optionally decoding every image — and
// the tool reports images/second, bytes read per sample, and effective
// bandwidth per quality (the measured side of Figure 18). Formats without
// record-level access (tfrecord, fileperimage) are measured through the
// streaming Scan path.
//
// -dataset accepts either a local directory or a pcrserved URL
// (http://host:port), so local-disk and remote-serving runs produce
// directly comparable tables: bytes/image is the same column either way,
// and the bandwidth column becomes wire bandwidth for remote runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pcr"
)

func main() {
	dir := flag.String("dataset", "", "dataset directory or pcrserved URL (http://host:port)")
	formatName := flag.String("format", "pcr", "storage format: pcr, tfrecord, fileperimage")
	workers := flag.Int("workers", 8, "parallel readers (decode workers for stream formats)")
	passes := flag.Int("passes", 3, "passes over the dataset per quality level")
	decode := flag.Bool("decode", false, "also decode every image")
	cacheMB := flag.Int64("cache-mb", 0, "LRU prefix cache budget in MiB (0 = no cache)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pcrbench: -dataset is required")
		os.Exit(2)
	}
	if err := run(*dir, *formatName, *workers, *passes, *decode, *cacheMB); err != nil {
		fmt.Fprintln(os.Stderr, "pcrbench:", err)
		os.Exit(1)
	}
}

func run(dir, formatName string, workers, passes int, decode bool, cacheMB int64) error {
	format, err := pcr.FormatByName(formatName)
	if err != nil {
		return err
	}
	var ds *pcr.Dataset
	remote := strings.HasPrefix(dir, "http://") || strings.HasPrefix(dir, "https://")
	if remote {
		if format != pcr.PCR {
			return fmt.Errorf("remote serving is pcr-format only; drop -format %s", formatName)
		}
		ds, err = pcr.OpenRemote(dir,
			pcr.WithPrefetchWorkers(workers),
			pcr.WithCacheBytes(cacheMB<<20),
		)
	} else {
		ds, err = pcr.Open(dir,
			pcr.WithFormat(format),
			pcr.WithPrefetchWorkers(workers),
			pcr.WithCacheBytes(cacheMB<<20),
		)
	}
	if err != nil {
		return err
	}
	defer ds.Close()
	mode := fmt.Sprintf("%d parallel readers", workers)
	if format != pcr.PCR {
		mode = fmt.Sprintf("single reader stream, %d decode workers", workers)
	}
	if remote {
		mode += ", remote"
	}
	fmt.Printf("dataset %s (%s): %d records, %d images, %d quality levels; %s, decode=%v\n",
		dir, ds.Format().Name(), ds.NumRecords(), ds.NumImages(), ds.Qualities(), mode, decode)
	fmt.Printf("%8s %12s %12s %14s %12s\n", "quality", "images/s", "bytes/img", "bandwidth", "elapsed")

	fetchedSoFar := func() (int64, bool) {
		stats, ok := ds.CacheStats()
		return stats.BytesFetched, ok
	}
	for q := 1; q <= ds.Qualities(); q++ {
		size, err := ds.SizeAtQuality(q)
		if err != nil {
			return err
		}
		before, cached := fetchedSoFar()
		var images int64
		start := time.Now()
		if format == pcr.PCR {
			images, err = benchRecords(ds, q, workers, passes, decode)
		} else {
			images, err = benchStream(ds, q, passes, decode)
		}
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		// Bytes read per sample is the quality level's cost in the paper's
		// currency (§3, Figure 16) — the column that makes a local-disk run
		// and a remote pcrserved run directly comparable. With a prefix
		// cache the counters report what actually moved (later passes and
		// already-cached prefixes cost nothing); without one, every pass
		// reads the full working set.
		moved := int64(size) * int64(passes)
		if cached {
			after, _ := fetchedSoFar()
			moved = after - before
		}
		// An empty dataset or a sub-resolution elapsed time would print
		// NaN/+Inf; degenerate rows show "-" instead.
		fmt.Printf("%8d %12s %12s %14s %12v\n",
			q,
			ratio(float64(images), elapsed.Seconds(), "%.0f"),
			ratio(float64(moved), float64(images), "%.0f"),
			ratio(float64(moved)/1e6, elapsed.Seconds(), "%.1f MB/s"),
			elapsed.Round(time.Millisecond))
	}
	if stats, ok := ds.CacheStats(); ok {
		fmt.Printf("cache: %d hits, %d upgrade hits, %d misses, %d evictions, %d bytes fetched\n",
			stats.Hits, stats.UpgradeHits, stats.Misses, stats.Evictions, stats.BytesFetched)
	}
	return nil
}

// ratio formats num/den with the given verb, or "-" when the denominator
// is not positive (empty dataset, sub-resolution elapsed time).
func ratio(num, den float64, verb string) string {
	if den <= 0 {
		return "-"
	}
	return fmt.Sprintf(verb, num/den)
}

// benchRecords drives the §A.5 structure: worker goroutines pull record
// indices from a shared queue and issue independent prefix reads.
func benchRecords(ds *pcr.Dataset, q, workers, passes int, decode bool) (int64, error) {
	work := make(chan int, ds.NumRecords()*passes)
	for p := 0; p < passes; p++ {
		for r := 0; r < ds.NumRecords(); r++ {
			work <- r
		}
	}
	close(work)

	ctx := context.Background()
	var images int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				var samples []pcr.Sample
				var err error
				if decode {
					samples, err = ds.ReadRecord(ctx, r, q)
				} else {
					samples, err = ds.ReadRecordEncoded(r, q)
				}
				if err != nil {
					errCh <- err
					return
				}
				atomic.AddInt64(&images, int64(len(samples)))
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return images, err
	default:
	}
	return images, nil
}

// benchStream measures formats that only stream: one sequential reader,
// with Scan's worker pool handling decode when requested.
func benchStream(ds *pcr.Dataset, q, passes int, decode bool) (int64, error) {
	ctx := context.Background()
	var images int64
	for p := 0; p < passes; p++ {
		scan := ds.ScanEncoded
		if decode {
			scan = ds.Scan
		}
		for _, err := range scan(ctx, q) {
			if err != nil {
				return images, err
			}
			images++
		}
	}
	return images, nil
}
