// Pcrlint is the repo's static-analysis gate: a multichecker running the
// four invariant analyzers under internal/lint — sentinelwrap (error
// identity across the pcr facade), ctxloop (cancellation in I/O loops),
// varzpublish (counters must surface on /varz), and bodycloseretry
// (HTTP bodies drained and closed around retry loops) — plus, by
// default, the toolchain's own `go vet` suite over the same patterns.
//
// Usage:
//
//	go run ./cmd/pcrlint ./...
//	go run ./cmd/pcrlint -vet=false ./pcr ./internal/serve
//
// Findings print as file:line:col: [analyzer] message and make the exit
// status non-zero; a finding that is a deliberate exception is
// acknowledged in the source with `//lint:ignore <analyzer> <reason>`.
// CI runs pcrlint as a blocking job (see .github/workflows/ci.yml).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/lint/analysis"
	"repro/internal/lint/bodycloseretry"
	"repro/internal/lint/ctxloop"
	"repro/internal/lint/load"
	"repro/internal/lint/sentinelwrap"
	"repro/internal/lint/varzpublish"
)

// analyzers is the repo's invariant suite, in the order findings print.
var analyzers = []*analysis.Analyzer{
	sentinelwrap.Analyzer,
	ctxloop.Analyzer,
	varzpublish.Analyzer,
	bodycloseretry.Analyzer,
}

func main() {
	vet := flag.Bool("vet", true, "also run the toolchain's `go vet` over the same patterns")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pcrlint [-vet=false] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repo's invariant analyzers (plus go vet) over the packages.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(patterns, *vet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcrlint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pcrlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func run(patterns []string, vet bool) (findings int, err error) {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		return 0, err
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return findings, err
			}
			for _, d := range diags {
				fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				findings++
			}
		}
	}
	if vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			// vet's own findings already printed; fold them into ours.
			findings++
		}
	}
	return findings, nil
}
