package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/pcr"
)

// TestFleetKillOneServerMidScan is the fleet kill-tolerance e2e: three
// pcrserved processes form a replication-2 fleet, a trainer-side client
// scans through it, and one server that owns records is SIGKILLed
// mid-scan. The scan must complete (every sample exactly once), a warm
// re-scan must move zero record bytes, and a quality upgrade must move
// exactly the delta — all asserted against the surviving servers' byte
// counters, so failover cannot hide re-reads or duplicated transfers.
func TestFleetKillOneServerMidScan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e (builds binaries, spawns processes)")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()

	build := exec.Command("go", "build", "-o", filepath.Join(tmp, "pcrserved"), "./cmd/pcrserved")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pcrserved: %v\n%s", err, out)
	}

	dataDir := filepath.Join(tmp, "dataset")
	n, err := pcr.Synthesize(dataDir, "cars", 0.15, 1,
		pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	if err != nil {
		t.Fatal(err)
	}

	// Fleet members must know every member's URL before any of them
	// starts, so ports are reserved up front (listen, record, release).
	const fleet = 3
	urls := make([]string, fleet)
	addrs := make([]string, fleet)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}

	procs := make([]*exec.Cmd, fleet)
	for i := range procs {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		p := exec.Command(filepath.Join(tmp, "pcrserved"),
			"-dataset", dataDir,
			"-addr", addrs[i],
			"-self", urls[i],
			"-peers", strings.Join(peers, ","),
			"-replication", "2",
			"-cache-mb", "64")
		stderr, err := p.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		// Drain the pipe so a chatty server never blocks on it.
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
			}
		}()
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		i := i
		t.Cleanup(func() {
			procs[i].Process.Signal(syscall.SIGTERM)
			procs[i].Wait()
		})
	}
	for _, u := range urls {
		waitHealthy(t, u, 20*time.Second)
	}

	varzServed := func(url string) int64 {
		t.Helper()
		resp, err := http.Get(url + "/varz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v struct {
			BytesServed int64 `json:"bytes_served"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v.BytesServed
	}

	// Pick a victim that owns at least one record, so the kill provably
	// forces failover (a tiny dataset can leave a member ownerless).
	sc, err := serve.NewClient(urls[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sc.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.New(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i, u := range urls {
		for _, re := range ix.Records {
			if ring.Owner(re.Name) == u {
				victim = i
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no member owns any record")
	}
	var survivors []string
	for i, u := range urls {
		if i != victim {
			survivors = append(survivors, u)
		}
	}
	sumSurvivors := func() int64 {
		t.Helper()
		var sum int64
		for _, u := range survivors {
			sum += varzServed(u)
		}
		return sum
	}

	// Hedging off: a hedge that loses the race still moves bytes, and this
	// test's whole point is byte-exact server counters.
	ds, err := pcr.OpenRemote(strings.Join(urls, ","),
		pcr.WithCacheBytes(256<<20),
		pcr.WithHedgeDelay(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	scan := func(q int) {
		t.Helper()
		seen := make(map[int64]int, n)
		killAt := n / 3
		for s, err := range ds.ScanEncoded(context.Background(), q) {
			if err != nil {
				t.Fatalf("scan at quality %d: %v", q, err)
			}
			seen[s.ID]++
			if victim >= 0 && len(seen) == killAt {
				procs[victim].Process.Kill()
				procs[victim].Wait()
				victim = -1 // kill only once, on the first (cold) scan
			}
		}
		if len(seen) != n {
			t.Fatalf("scan at quality %d delivered %d distinct samples, want %d", q, len(seen), n)
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("sample %d delivered %d times", id, c)
			}
		}
	}

	// Cold scan at quality 1, one server SIGKILLed a third of the way in.
	scan(1)
	if st, ok := ds.ClusterStats(); !ok || st.Failovers == 0 {
		t.Fatalf("scan survived the kill without failing over: %+v", st)
	}
	served := sumSurvivors()
	if served == 0 {
		t.Fatal("survivors served no record bytes")
	}

	// Warm re-scan: everything is cached at quality 1 — zero record bytes
	// may move.
	scan(1)
	if moved := sumSurvivors() - served; moved != 0 {
		t.Fatalf("warm re-scan moved %d record bytes, want 0", moved)
	}

	// Quality upgrade: exactly the delta between the quality-2 and
	// quality-1 prefixes crosses the wire — byte-exact delta upgrades,
	// asserted against the surviving servers' counters.
	s1, err := ds.SizeAtQuality(1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ds.SizeAtQuality(2)
	if err != nil {
		t.Fatal(err)
	}
	scan(2)
	if moved, want := sumSurvivors()-served, int64(s2-s1); moved != want {
		t.Fatalf("quality upgrade moved %d bytes, want exactly the delta %d", moved, want)
	}
}

// waitHealthy polls url/healthz until it answers 200 or the deadline
// passes.
func waitHealthy(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s did not become healthy within %v", url, timeout)
}
