// Command pcrserved serves a PCR dataset directory over HTTP: the record
// index at /index and byte-range prefix reads at /records/{name} (with
// optional ?group=g truncation), so remote readers — pcr.OpenRemote, or any
// HTTP client that speaks Range — can run the paper's progressive read path
// against disaggregated storage. Counters are exposed at /varz and
// /debug/vars; /healthz answers liveness probes.
//
// Usage:
//
//	pcrserved -dataset DIR [-addr :8100] [-cache-mb 256] \
//	          [-disk-cache-dir DIR [-disk-cache-mb 1024]]
//
// The -cache-mb budget feeds a shared LRU of hot record prefixes: repeat
// reads of a popular record are served from memory, and a request for a
// higher quality than was cached reads only the delta bytes from disk.
// -disk-cache-dir mounts a second, persistent tier under the memory LRU
// (internal/diskcache): prefixes evicted from memory are still a local
// read away, and the tier survives restarts. The directory must belong to
// this server process alone.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	dir := flag.String("dataset", "", "PCR dataset directory to serve")
	addr := flag.String("addr", ":8100", "listen address")
	cacheMB := flag.Int64("cache-mb", 256, "hot-prefix LRU budget in MiB (0 = no cache)")
	diskDir := flag.String("disk-cache-dir", "", "persistent prefix cache directory (empty = no disk tier)")
	diskMB := flag.Int64("disk-cache-mb", 1024, "persistent prefix cache budget in MiB")
	diskLazy := flag.Bool("disk-cache-lazy", false, "defer disk cache CRC verification to first touch (fast start over a huge warm cache)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pcrserved: -dataset is required")
		os.Exit(2)
	}
	if err := run(*dir, *addr, *cacheMB, *diskDir, *diskMB, *diskLazy); err != nil {
		fmt.Fprintln(os.Stderr, "pcrserved:", err)
		os.Exit(1)
	}
}

func run(dir, addr string, cacheMB int64, diskDir string, diskMB int64, diskLazy bool) error {
	if diskLazy && diskDir == "" {
		return fmt.Errorf("-disk-cache-lazy requires -disk-cache-dir")
	}
	s, err := serve.New(dir, &serve.Options{
		CacheBytes:          cacheMB << 20,
		DiskCacheDir:        diskDir,
		DiskCacheBytes:      diskMB << 20,
		DiskCacheLazyVerify: diskLazy,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	// Publish the server's counters into the process-wide expvar registry
	// (alongside memstats and cmdline) and mount the standard handler.
	expvar.Publish("pcrserved", expvar.Func(func() any { return s.Stats() }))
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.Handle("/debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:    addr,
		Handler: mux,
		// Bound slow clients: a connection that dribbles its headers or
		// idles between requests must not pin a goroutine and fd forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before serving so the bound address is known: with -addr :0
	// (tests, colocated workers) the log line is the only way to learn the
	// chosen port.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("pcrserved: serving %s on %s", dir, ln.Addr())
		errc <- srv.Serve(ln)
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("pcrserved: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
