// Command pcrserved serves a PCR dataset directory over HTTP: the record
// index at /index and byte-range prefix reads at /records/{name} (with
// optional ?group=g truncation), so remote readers — pcr.OpenRemote, or any
// HTTP client that speaks Range — can run the paper's progressive read path
// against disaggregated storage. Counters are exposed at /varz and
// /debug/vars; /healthz answers liveness probes; /cluster reports fleet
// membership.
//
// Usage:
//
//	pcrserved -dataset DIR [-addr :8100] [-cache-mb 256] \
//	          [-disk-cache-dir DIR [-disk-cache-mb 1024]] \
//	          [-self URL -peers URL1,URL2 [-replication 2] [-sync]]
//
// The -cache-mb budget feeds a shared LRU of hot record prefixes: repeat
// reads of a popular record are served from memory, and a request for a
// higher quality than was cached reads only the delta bytes from disk.
// -disk-cache-dir mounts a second, persistent tier under the memory LRU
// (internal/diskcache): prefixes evicted from memory are still a local
// read away, and the tier survives restarts. The directory must belong to
// this server process alone.
//
// Fleet mode: -peers lists the other members of a sharded serving fleet
// and -self is this member's own URL as clients reach it. Every member is
// started with the same member set and -replication, and the shared
// consistent-hash ring (internal/cluster) assigns each record an owner and
// replicas; this server admits requests only for records placed on it and
// answers the rest with 421 plus the owner's URL. -sync warms this
// member's hot cache at startup by pulling its replicated records from
// their owners. Cluster-aware clients (pcr.OpenRemote with one or more
// seed URLs) discover the membership from /cluster, route reads to owners,
// hedge slow reads against replicas, and fail over when a member dies.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	dir := flag.String("dataset", "", "PCR dataset directory to serve")
	addr := flag.String("addr", ":8100", "listen address")
	cacheMB := flag.Int64("cache-mb", 256, "hot-prefix LRU budget in MiB (0 = no cache)")
	diskDir := flag.String("disk-cache-dir", "", "persistent prefix cache directory (empty = no disk tier)")
	diskMB := flag.Int64("disk-cache-mb", 1024, "persistent prefix cache budget in MiB")
	diskLazy := flag.Bool("disk-cache-lazy", false, "defer disk cache CRC verification to first touch (fast start over a huge warm cache)")
	self := flag.String("self", "", "fleet mode: this member's URL as clients reach it (e.g. http://10.0.0.7:8100)")
	peers := flag.String("peers", "", "fleet mode: comma-separated URLs of the other fleet members")
	replication := flag.Int("replication", 1, "fleet mode: replicas per record, owner included")
	sync := flag.Bool("sync", false, "fleet mode: warm this member's cache by pulling replicated records from their owners at startup")
	logReqs := flag.Bool("log-requests", false, "log one line per request")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pcrserved: -dataset is required")
		os.Exit(2)
	}
	opts := serve.Options{
		CacheBytes:          *cacheMB << 20,
		DiskCacheDir:        *diskDir,
		DiskCacheBytes:      *diskMB << 20,
		DiskCacheLazyVerify: *diskLazy,
		LogRequests:         *logReqs,
	}
	if *peers != "" || *self != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "pcrserved: fleet mode (-peers) requires -self")
			os.Exit(2)
		}
		cc := &serve.ClusterConfig{Self: *self, Replication: *replication}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cc.Peers = append(cc.Peers, p)
			}
		}
		opts.Cluster = cc
	}
	if err := run(*dir, *addr, &opts, *sync); err != nil {
		fmt.Fprintln(os.Stderr, "pcrserved:", err)
		os.Exit(1)
	}
}

func run(dir, addr string, opts *serve.Options, sync bool) error {
	if opts.DiskCacheLazyVerify && opts.DiskCacheDir == "" {
		return fmt.Errorf("-disk-cache-lazy requires -disk-cache-dir")
	}
	if sync && opts.Cluster == nil {
		return fmt.Errorf("-sync requires fleet mode (-self/-peers)")
	}
	s, err := serve.New(dir, opts)
	if err != nil {
		return err
	}
	defer s.Close()

	// Publish the server's counters into the process-wide expvar registry
	// (alongside memstats and cmdline) and mount the standard handler.
	expvar.Publish("pcrserved", expvar.Func(func() any { return s.Stats() }))
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.Handle("/debug/vars", expvar.Handler())

	srv := &http.Server{
		Addr:    addr,
		Handler: mux,
		// Bound slow clients: a connection that dribbles its headers or
		// idles between requests must not pin a goroutine and fd forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before serving so the bound address is known: with -addr :0
	// (tests, colocated workers) the log line is the only way to learn the
	// chosen port.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		if opts.Cluster != nil {
			log.Printf("pcrserved: fleet member %s (replication %d, %d peers)",
				opts.Cluster.Self, opts.Cluster.Replication, len(opts.Cluster.Peers))
		}
		log.Printf("pcrserved: serving %s on %s", dir, ln.Addr())
		errc <- srv.Serve(ln)
	}()
	if sync {
		// Replica warm-up runs beside serving, not before it: owners may
		// still be starting during a rolling fleet bring-up, and a replica
		// that cannot reach an owner just reads through to the backing
		// store.
		go func() {
			warmed, err := s.SyncReplicas(ctx)
			if err != nil {
				log.Printf("pcrserved: replica sync warmed %d records with errors: %v", warmed, err)
				return
			}
			log.Printf("pcrserved: replica sync warmed %d records", warmed)
		}()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("pcrserved: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
