package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/pcr"
)

// TestMultiProcessTrainingAgainstOneServer is the distributed-training e2e:
// one pcrserved process serves a dataset; N pcrtrain worker processes train
// against it with -shards N -shard i, each mounting its own persistent disk
// cache directory. It asserts the server handled concurrent training load,
// that the workers' disk caches filled, and — the warm-restart property —
// that re-running both workers over the same cache directories moves zero
// record bytes across the wire.
func TestMultiProcessTrainingAgainstOneServer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e (builds binaries, spawns processes)")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()

	// Build the two binaries from the module under test.
	for _, cmd := range []string{"pcrserved", "pcrtrain"} {
		build := exec.Command("go", "build", "-o", filepath.Join(tmp, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}

	dataDir := filepath.Join(tmp, "dataset")
	if _, err := pcr.Synthesize(dataDir, "cars", 0.15, 1,
		pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4)); err != nil {
		t.Fatal(err)
	}

	// Start the server on an ephemeral port and learn the bound address
	// from its log line.
	srv := exec.Command(filepath.Join(tmp, "pcrserved"),
		"-dataset", dataDir, "-addr", "127.0.0.1:0", "-cache-mb", "8")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		srv.Wait()
	}()

	addrRe := regexp.MustCompile(`serving .* on (127\.0\.0\.1:\d+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
				break
			}
		}
		// Keep draining so the server never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	var baseURL string
	select {
	case addr := <-addrc:
		baseURL = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("pcrserved did not report its address")
	}

	varz := func() map[string]any {
		t.Helper()
		resp, err := http.Get(baseURL + "/varz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	bytesServed := func() int64 {
		t.Helper()
		return int64(varz()["bytes_served"].(float64))
	}

	const shards = 2
	runWorkers := func() []string {
		t.Helper()
		outs := make([]string, shards)
		var wg sync.WaitGroup
		errs := make(chan error, shards)
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				w := exec.Command(filepath.Join(tmp, "pcrtrain"),
					"-data", baseURL,
					"-shards", fmt.Sprint(shards), "-shard", fmt.Sprint(shard),
					"-epochs", "2", "-batch", "16",
					"-disk-cache-dir", filepath.Join(tmp, fmt.Sprintf("cache-%d", shard)),
					"-disk-cache-mb", "64")
				out, err := w.CombinedOutput()
				outs[shard] = string(out)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v\n%s", shard, err, out)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return outs
	}

	// Cold run: both workers train concurrently, filling their caches.
	outs := runWorkers()
	for i, out := range outs {
		if !strings.Contains(out, "final loss") {
			t.Fatalf("worker %d did not finish training:\n%s", i, out)
		}
		if !strings.Contains(out, "disk cache:") {
			t.Fatalf("worker %d reported no disk cache stats:\n%s", i, out)
		}
		// Each worker's cache directory is its own and non-empty.
		des, err := os.ReadDir(filepath.Join(tmp, fmt.Sprintf("cache-%d", i)))
		if err != nil || len(des) < 2 {
			t.Fatalf("worker %d cache dir: %v entries, err %v", i, len(des), err)
		}
	}
	v := varz()
	if v["requests"].(float64) == 0 || v["range_requests"].(float64) == 0 {
		t.Fatalf("server saw no training load: %v", v)
	}
	served := bytesServed()
	if served == 0 {
		t.Fatal("server served no record bytes during the cold run")
	}

	// Warm restart: the same workers over the same cache directories must
	// train to completion moving zero record bytes over the wire.
	recoveredRe := regexp.MustCompile(`(\d+) entries recovered warm`)
	outs = runWorkers()
	for i, out := range outs {
		m := recoveredRe.FindStringSubmatch(out)
		if m == nil || m[1] == "0" {
			t.Fatalf("worker %d recovered no cache entries on restart:\n%s", i, out)
		}
	}
	if moved := bytesServed() - served; moved != 0 {
		t.Fatalf("warm restart moved %d record bytes over the wire, want 0", moved)
	}

	// Graceful shutdown.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcrserved exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		srv.Process.Kill()
		t.Fatal("pcrserved did not shut down on SIGTERM")
	}
}
