// Command pcrtrain runs one training configuration of the reproduction
// harness: a synthetic dataset (built through the public pcr package), a
// model profile, a task granularity, and a scan group (or dynamic tuning),
// printing the per-epoch curve.
//
//	pcrtrain -dataset cars -model shufflenetlike -task multiclass -group 2
//	pcrtrain -dataset ham10000 -model resnetlike -dynamic cosine
//	pcrtrain -dataset cars -task binary -group 1 -epochs 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autotune"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

func main() {
	dataset := flag.String("dataset", "cars", "imagenet, celebahq, ham10000, cars")
	model := flag.String("model", "shufflenetlike", "resnetlike or shufflenetlike")
	taskName := flag.String("task", "multiclass", "multiclass, make-only, binary")
	group := flag.Int("group", 0, "scan group (0 = baseline/full quality)")
	dynamic := flag.String("dynamic", "", "dynamic tuning: cosine or plateau (overrides -group)")
	mix := flag.Float64("mix", 0, "mixture weight for dynamic tuning (0 = hard selection)")
	epochs := flag.Int("epochs", 24, "epoch budget")
	scale := flag.Float64("scale", 0.5, "dataset size multiplier")
	seed := flag.Int64("seed", 42, "seed")
	flag.Parse()
	if err := run(*dataset, *model, *taskName, *group, *dynamic, *mix, *epochs, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pcrtrain:", err)
		os.Exit(1)
	}
}

func run(dataset, model, taskName string, group int, dynamic string, mix float64, epochs int, scale float64, seed int64) error {
	mp, err := nn.ProfileByName(model)
	if err != nil {
		return err
	}
	set, err := pcr.BuildTrainSet(dataset, scale, seed, pcr.WithImagesPerRecord(16))
	if err != nil {
		return err
	}
	profile := set.Profile

	var task synth.Task
	switch taskName {
	case "multiclass":
		task = synth.Multiclass(profile)
	case "make-only":
		task = synth.CoarseOnly(profile)
	case "binary":
		task, err = synth.Binary(profile, 0)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown task %q", taskName)
	}

	fmt.Printf("dataset=%s (%d train / %d test, %d records, %d scan groups)\n",
		profile.Name, set.NumTrain(), set.NumTest(), set.NumRecords(), set.NumGroups)
	fmt.Printf("model=%s task=%s (%d classes) epochs=%d\n\n", mp.Name, task.Name, task.NumClasses, epochs)

	if dynamic != "" {
		var ctrl autotune.Controller
		switch dynamic {
		case "cosine":
			ctrl = &autotune.CosineController{Threshold: 0.9, TuneEvery: epochs / 4, WarmupEpochs: 3}
		case "plateau":
			ctrl = &autotune.PlateauController{Window: 3, MinImprove: 0.08, ProbeSteps: 6}
		default:
			return fmt.Errorf("unknown controller %q", dynamic)
		}
		res, err := autotune.Run(set, autotune.Config{
			Model: mp, Task: task, Controller: ctrl,
			Epochs: epochs, Seed: seed, MixWeight: mix,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%6s %10s %10s %8s %10s %6s\n", "epoch", "time", "loss", "acc", "img/s", "group")
		for _, p := range res.Points {
			acc := "-"
			if p.Sampled {
				acc = fmt.Sprintf("%.1f%%", p.TestAcc*100)
			}
			fmt.Printf("%6d %9.2fs %10.4f %8s %10.0f %6d\n",
				p.Epoch, p.TimeSec, p.TrainLoss, acc, p.ImagesPerSec, p.Group)
		}
		fmt.Printf("\nfinal accuracy %.1f%% in %.2fs (%d group switches)\n",
			res.FinalAcc*100, res.TotalTimeSec, res.GroupSwitches)
		return nil
	}

	g := group
	if g <= 0 || g > set.NumGroups {
		g = set.NumGroups
	}
	res, err := train.Run(set, train.RunConfig{
		Model: mp, Task: task, ScanGroup: g, Epochs: epochs, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%6s %10s %10s %8s %10s %10s\n", "epoch", "time", "loss", "acc", "img/s", "stall")
	for _, p := range res.Points {
		acc := "-"
		if p.Sampled {
			acc = fmt.Sprintf("%.1f%%", p.TestAcc*100)
		}
		fmt.Printf("%6d %9.2fs %10.4f %8s %10.0f %9.3fs\n",
			p.Epoch, p.TimeSec, p.TrainLoss, acc, p.ImagesPerSec, p.StallSec)
	}
	fmt.Printf("\nscan group %d: final accuracy %.1f%% in %.2fs (%d bytes/epoch)\n",
		g, res.FinalAcc*100, res.TotalTimeSec, res.BytesPerEpoch)
	return nil
}
