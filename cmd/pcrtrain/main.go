// Command pcrtrain runs one training configuration of the reproduction
// harness. By default it trains over REAL I/O: the dataset is written to (or
// opened from) disk — or served by a pcrserved URL — and every epoch streams
// through pcr.Loader (sharded, shuffled, batch-assembled, quality-adaptive),
// reporting measured bytes moved, images/s, and stall time per epoch.
//
//	pcrtrain -dataset cars -model shufflenetlike -task multiclass -group 2
//	pcrtrain -dataset cars -dynamic plateau -epochs 12
//	pcrtrain -dataset cars -data /tmp/cars-pcr            # reuse a dataset dir
//	pcrtrain -dataset cars -data http://localhost:8100    # train over the wire
//
// The -sim flag selects the virtual-clock harness instead (internal/train +
// internal/iosim), which reproduces the paper's figures under the paper's
// hardware balance and supports -dynamic cosine:
//
//	pcrtrain -sim -dataset ham10000 -model resnetlike -dynamic cosine
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/nn"
	"repro/internal/realtrain"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.dataset, "dataset", "cars", "synthetic profile: imagenet, celebahq, ham10000, cars")
	flag.StringVar(&cfg.data, "data", "", "dataset directory or pcrserved URL(s), comma-separated fleet seeds allowed (empty: synthesize into a temp dir)")
	flag.StringVar(&cfg.model, "model", "shufflenetlike", "resnetlike or shufflenetlike")
	flag.StringVar(&cfg.task, "task", "multiclass", "multiclass, make-only, binary")
	flag.IntVar(&cfg.group, "group", 0, "scan group / quality (0 = full quality)")
	flag.StringVar(&cfg.dynamic, "dynamic", "", "dynamic tuning: plateau or probe (real I/O), or cosine/plateau with -sim")
	flag.IntVar(&cfg.probeSteps, "probe-steps", 4, "minibatches trained per candidate quality during an upward probe (-dynamic probe)")
	flag.Float64Var(&cfg.probeTol, "probe-tolerance", 0.05, "upward probe accepts the cheapest quality within (1+tol)x of the best probe loss")
	flag.Float64Var(&cfg.mix, "mix", 0, "mixture weight for -sim dynamic tuning (0 = hard selection)")
	flag.IntVar(&cfg.epochs, "epochs", 8, "epoch budget")
	flag.IntVar(&cfg.batch, "batch", 32, "SGD minibatch size")
	flag.Float64Var(&cfg.scale, "scale", 0.5, "dataset size multiplier (when synthesizing)")
	flag.Int64Var(&cfg.seed, "seed", 42, "seed")
	flag.IntVar(&cfg.imagesPerRecord, "images-per-record", 16, "record batching factor (when synthesizing)")
	flag.IntVar(&cfg.scanGroups, "scan-groups", 5, "scan-group coalescing (when synthesizing; 0 = one group per scan)")
	flag.IntVar(&cfg.shards, "shards", 1, "total distributed shards")
	flag.IntVar(&cfg.shard, "shard", 0, "this worker's shard index")
	flag.Int64Var(&cfg.cacheMB, "cache-mb", 0, "LRU prefix cache budget in MiB (0 = no cache)")
	flag.StringVar(&cfg.diskCacheDir, "disk-cache-dir", "", "persistent prefix cache directory, one per worker (empty = no disk tier)")
	flag.Int64Var(&cfg.diskCacheMB, "disk-cache-mb", 512, "persistent prefix cache budget in MiB")
	flag.BoolVar(&cfg.diskCacheLazy, "disk-cache-lazy", false, "defer disk cache CRC verification to first touch (fast warm open of huge caches)")
	flag.BoolVar(&cfg.sim, "sim", false, "use the virtual-clock harness (paper-figure mode) instead of real I/O")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pcrtrain:", err)
		os.Exit(1)
	}
}

type cliConfig struct {
	dataset, data, model, task, dynamic string
	group, epochs, batch                int
	imagesPerRecord, scanGroups         int
	shards, shard                       int
	mix, scale                          float64
	seed, cacheMB                       int64
	diskCacheDir                        string
	diskCacheMB                         int64
	diskCacheLazy                       bool
	probeSteps                          int
	probeTol                            float64
	sim                                 bool
}

func run(w io.Writer, cfg cliConfig) error {
	if cfg.sim {
		return runSim(w, cfg)
	}
	_, err := runReal(w, cfg)
	return err
}

// runReal is the default mode: train through pcr.Loader over a real local
// or remote dataset. It returns the measured result so tests can assert on
// bytes moved and losses.
func runReal(w io.Writer, cfg cliConfig) (*realtrain.Result, error) {
	mp, err := nn.ProfileByName(cfg.model)
	if err != nil {
		return nil, err
	}
	profile, err := synth.ProfileByName(cfg.dataset)
	if err != nil {
		return nil, err
	}
	task, err := taskByName(cfg.task, profile)
	if err != nil {
		return nil, err
	}

	// Resolve the dataset: a served URL, an existing directory, or a fresh
	// synthesis into a temp dir.
	data := cfg.data
	remote := strings.HasPrefix(data, "http://") || strings.HasPrefix(data, "https://")
	if data == "" {
		dir, err := os.MkdirTemp("", "pcrtrain-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		n, err := pcr.Synthesize(dir, cfg.dataset, cfg.scale, cfg.seed,
			pcr.WithImagesPerRecord(cfg.imagesPerRecord),
			pcr.WithScanGroups(cfg.scanGroups))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "synthesized %s ×%g: %d images → %s\n", cfg.dataset, cfg.scale, n, dir)
		data = dir
	}
	if cfg.diskCacheLazy && cfg.diskCacheDir == "" {
		return nil, fmt.Errorf("-disk-cache-lazy requires -disk-cache-dir")
	}
	openOpts := []pcr.Option{pcr.WithCacheBytes(cfg.cacheMB << 20)}
	if cfg.diskCacheDir != "" {
		openOpts = append(openOpts, pcr.WithDiskCache(cfg.diskCacheDir, cfg.diskCacheMB<<20))
		if cfg.diskCacheLazy {
			openOpts = append(openOpts, pcr.WithDiskCacheLazyVerify())
		}
	}
	// A remote sharded worker downloads only its stride partition of the
	// index (GET /index?shard=i&nshards=n); the dataset it sees IS its
	// shard, so the loader below runs unsharded. Local workers shard at
	// the loader instead.
	loaderShards, loaderShard := cfg.shards, cfg.shard
	if remote && cfg.shards > 1 {
		openOpts = append(openOpts, pcr.WithIndexShard(cfg.shard, cfg.shards))
		loaderShards, loaderShard = 1, 0
	}
	var ds *pcr.Dataset
	if remote {
		ds, err = pcr.OpenRemote(data, openOpts...)
	} else {
		ds, err = pcr.Open(data, openOpts...)
	}
	if err != nil {
		return nil, err
	}
	defer ds.Close()

	var policy pcr.QualityPolicy
	switch cfg.dynamic {
	case "":
		policy = pcr.FixedQuality(cfg.group) // group 0 == pcr.Full
	case "plateau":
		policy = &pcr.PlateauPolicy{
			Detector: autotune.PlateauDetector{Window: 3, MinImprove: 0.05},
		}
	case "probe":
		policy = &pcr.ProbePolicy{
			Detector:   autotune.PlateauDetector{Window: 3, MinImprove: 0.05},
			ProbeSteps: cfg.probeSteps,
			Tolerance:  cfg.probeTol,
		}
	case "cosine":
		return nil, fmt.Errorf("cosine tuning needs full-quality gradient probes; use -sim -dynamic cosine")
	default:
		return nil, fmt.Errorf("unknown controller %q", cfg.dynamic)
	}

	where := "local"
	if remote {
		where = "remote"
	}
	fmt.Fprintf(w, "dataset %s (%s): %d records, %d images, %d quality levels\n",
		data, where, ds.NumRecords(), ds.NumImages(), ds.Qualities())
	fmt.Fprintf(w, "model=%s task=%s (%d classes) epochs=%d batch=%d shard %d/%d\n\n",
		mp.Name, task.Name, task.NumClasses, cfg.epochs, cfg.batch, cfg.shard, cfg.shards)

	res, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model:      mp,
		Task:       task,
		Epochs:     cfg.epochs,
		BatchSize:  cfg.batch,
		Seed:       cfg.seed,
		Policy:     policy,
		Shards:     loaderShards,
		ShardIndex: loaderShard,
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "%6s %10s %10s %10s %10s %8s\n", "epoch", "loss", "img/s", "MB moved", "stall", "quality")
	for _, p := range res.Epochs {
		st := p.Stats
		q := fmt.Sprintf("%d", st.MaxQuality)
		if st.MinQuality != st.MaxQuality {
			q = fmt.Sprintf("%d–%d", st.MinQuality, st.MaxQuality)
		}
		fmt.Fprintf(w, "%6d %10.4f %10.0f %10.2f %9.3fs %8s\n",
			p.Epoch, p.TrainLoss, st.ImagesPerSec,
			float64(st.BytesRead)/1e6, st.Stall.Seconds(), q)
	}
	fmt.Fprintf(w, "\nfinal loss %.4f; %.2f MB moved in %v\n",
		res.FinalLoss, float64(res.TotalBytes)/1e6, res.TotalWall.Round(time.Millisecond))
	if res.Probes > 0 {
		fmt.Fprintf(w, "probes: %d upward, %d re-ascended quality; %.2f MB probe reads, model updates rolled back\n",
			res.Probes, res.ProbeWins, float64(res.ProbeBytes)/1e6)
	}
	if st, ok := ds.DiskCacheStats(); ok {
		fmt.Fprintf(w, "disk cache: %d hits, %d delta hits, %d misses; %.2f MB fetched upstream (%.2f MB delta); %d entries recovered warm\n",
			st.Hits, st.DeltaHits, st.Misses, float64(st.BytesFetched)/1e6, float64(st.DeltaBytes)/1e6, st.Recovered)
	}
	return res, nil
}

func taskByName(name string, profile synth.Profile) (synth.Task, error) {
	switch name {
	case "multiclass":
		return synth.Multiclass(profile), nil
	case "make-only":
		return synth.CoarseOnly(profile), nil
	case "binary":
		return synth.Binary(profile, 0)
	default:
		return synth.Task{}, fmt.Errorf("unknown task %q", name)
	}
}

// runSim is the pre-Loader virtual-clock harness, kept for regenerating the
// paper's figures under the paper's hardware balance.
func runSim(w io.Writer, cfg cliConfig) error {
	mp, err := nn.ProfileByName(cfg.model)
	if err != nil {
		return err
	}
	set, err := pcr.BuildTrainSet(cfg.dataset, cfg.scale, cfg.seed, pcr.WithImagesPerRecord(cfg.imagesPerRecord))
	if err != nil {
		return err
	}
	profile := set.Profile
	task, err := taskByName(cfg.task, profile)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "dataset=%s (%d train / %d test, %d records, %d scan groups)\n",
		profile.Name, set.NumTrain(), set.NumTest(), set.NumRecords(), set.NumGroups)
	fmt.Fprintf(w, "model=%s task=%s (%d classes) epochs=%d\n\n", mp.Name, task.Name, task.NumClasses, cfg.epochs)

	if cfg.dynamic != "" {
		var ctrl autotune.Controller
		switch cfg.dynamic {
		case "cosine":
			ctrl = &autotune.CosineController{Threshold: 0.9, TuneEvery: cfg.epochs / 4, WarmupEpochs: 3}
		case "plateau":
			ctrl = &autotune.PlateauController{Window: 3, MinImprove: 0.08, ProbeSteps: 6}
		default:
			return fmt.Errorf("unknown controller %q", cfg.dynamic)
		}
		res, err := autotune.Run(set, autotune.Config{
			Model: mp, Task: task, Controller: ctrl,
			Epochs: cfg.epochs, Seed: cfg.seed, MixWeight: cfg.mix,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6s %10s %10s %8s %10s %6s\n", "epoch", "time", "loss", "acc", "img/s", "group")
		for _, p := range res.Points {
			acc := "-"
			if p.Sampled {
				acc = fmt.Sprintf("%.1f%%", p.TestAcc*100)
			}
			fmt.Fprintf(w, "%6d %9.2fs %10.4f %8s %10.0f %6d\n",
				p.Epoch, p.TimeSec, p.TrainLoss, acc, p.ImagesPerSec, p.Group)
		}
		fmt.Fprintf(w, "\nfinal accuracy %.1f%% in %.2fs (%d group switches)\n",
			res.FinalAcc*100, res.TotalTimeSec, res.GroupSwitches)
		return nil
	}

	g := cfg.group
	if g <= 0 || g > set.NumGroups {
		g = set.NumGroups
	}
	res, err := train.Run(set, train.RunConfig{
		Model: mp, Task: task, ScanGroup: g, Epochs: cfg.epochs, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %10s %10s %8s %10s %10s\n", "epoch", "time", "loss", "acc", "img/s", "stall")
	for _, p := range res.Points {
		acc := "-"
		if p.Sampled {
			acc = fmt.Sprintf("%.1f%%", p.TestAcc*100)
		}
		fmt.Fprintf(w, "%6d %9.2fs %10.4f %8s %10.0f %9.3fs\n",
			p.Epoch, p.TimeSec, p.TrainLoss, acc, p.ImagesPerSec, p.StallSec)
	}
	fmt.Fprintf(w, "\nscan group %d: final accuracy %.1f%% in %.2fs (%d bytes/epoch)\n",
		g, res.FinalAcc*100, res.TotalTimeSec, res.BytesPerEpoch)
	return nil
}
