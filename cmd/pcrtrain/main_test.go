package main

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/pcr"
)

// testConfig is a small, fast real-I/O run.
func testConfig(data string) cliConfig {
	return cliConfig{
		dataset:         "cars",
		data:            data,
		model:           "shufflenetlike",
		task:            "multiclass",
		epochs:          2,
		batch:           16,
		scale:           0.1,
		seed:            3,
		imagesPerRecord: 4,
		scanGroups:      4,
		shards:          1,
	}
}

// synthDataset writes a small dataset dir matching testConfig's knobs.
func synthDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := pcr.Synthesize(dir, "cars", 0.1, 3,
		pcr.WithImagesPerRecord(4), pcr.WithScanGroups(4)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestTrainThroughLoaderLocalAndRemote: pcrtrain's default mode trains
// through pcr.Loader over a local directory and over the same dataset
// served by the prefix server, with identical logical bytes moved.
func TestTrainThroughLoaderLocalAndRemote(t *testing.T) {
	dir := synthDataset(t)

	var localOut bytes.Buffer
	local, err := runReal(&localOut, testConfig(dir))
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if len(local.Epochs) != 2 {
		t.Fatalf("local run produced %d epochs, want 2", len(local.Epochs))
	}
	for _, p := range local.Epochs {
		if math.IsNaN(p.TrainLoss) || math.IsInf(p.TrainLoss, 0) {
			t.Fatalf("epoch %d loss is %v", p.Epoch, p.TrainLoss)
		}
		if p.Stats.Images == 0 || p.Stats.BytesRead == 0 {
			t.Fatalf("epoch %d moved no data: %+v", p.Epoch, p.Stats)
		}
	}
	if !strings.Contains(localOut.String(), "MB moved") {
		t.Fatalf("output missing per-epoch I/O report:\n%s", localOut.String())
	}

	srv, err := serve.New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	var remoteOut bytes.Buffer
	remote, err := runReal(&remoteOut, testConfig(ts.URL))
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if remote.TotalBytes != local.TotalBytes {
		t.Fatalf("remote run moved %d bytes, local %d", remote.TotalBytes, local.TotalBytes)
	}
	if remote.Epochs[0].TrainLoss != local.Epochs[0].TrainLoss {
		t.Fatalf("remote epoch-0 loss %v differs from local %v (same seed, same data)",
			remote.Epochs[0].TrainLoss, local.Epochs[0].TrainLoss)
	}
}

// TestAdaptiveEpochMovesFewerBytes: with -dynamic plateau and an
// aggressive detector, a later (adaptive) epoch moves fewer bytes than the
// full-quality epochs of the same data.
func TestAdaptiveEpochMovesFewerBytes(t *testing.T) {
	dir := synthDataset(t)

	fixed := testConfig(dir)
	fixed.epochs = 1
	fullRes, err := runReal(new(bytes.Buffer), fixed)
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := fullRes.Epochs[0].Stats.BytesRead

	adaptive := testConfig(dir)
	adaptive.epochs = 8
	adaptive.dynamic = "plateau"
	adRes, err := runReal(new(bytes.Buffer), adaptive)
	if err != nil {
		t.Fatal(err)
	}
	last := adRes.Epochs[len(adRes.Epochs)-1].Stats
	if last.BytesRead >= fullBytes {
		t.Fatalf("adaptive final epoch moved %d bytes, want < full-quality epoch's %d", last.BytesRead, fullBytes)
	}
	if last.MaxQuality >= fullRes.Epochs[0].Stats.MaxQuality {
		t.Fatalf("adaptive run never cheapened: final epoch qualities [%d,%d]", last.MinQuality, last.MaxQuality)
	}
	// The plateau fires mid-epoch: some epoch shows mixed qualities.
	mixed := false
	for _, p := range adRes.Epochs {
		if p.Stats.MinQuality != p.Stats.MaxQuality {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("no epoch cheapened in flight (all epochs single-quality)")
	}
}

// TestProbeModeEndToEnd: pcrtrain's -dynamic probe against a pcrserved
// engine with a persistent disk cache — the full §4.5 bidirectional loop.
// Training descends on plateaus; the LR drops trigger upward probes whose
// reads ride the warm disk cache (epoch 0 ran at full quality, so the
// probes' record prefixes are already local and re-probing is delta-priced
// at zero extra network bytes); the summary line reports the probes. A
// second run over the same cache directory — with lazy first-touch
// verification — recovers warm and trains to completion.
func TestProbeModeEndToEnd(t *testing.T) {
	dir := synthDataset(t)
	srv, err := serve.New(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	cfg := testConfig(ts.URL)
	cfg.epochs = 15 // LR drops at epochs 5 and 10
	cfg.dynamic = "probe"
	cfg.probeSteps = 2
	cfg.probeTol = 0.05
	cfg.diskCacheDir = t.TempDir()
	cfg.diskCacheMB = 512

	var out bytes.Buffer
	res, err := runReal(&out, cfg)
	if err != nil {
		t.Fatalf("probe mode: %v", err)
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("final loss is %v", res.FinalLoss)
	}
	if res.Probes == 0 {
		t.Fatalf("no upward probe ran across two LR drops:\n%s", out.String())
	}
	if res.ProbeBytes == 0 {
		t.Fatal("probes read no bytes")
	}
	if !strings.Contains(out.String(), "probes:") {
		t.Fatalf("summary missing the probe line:\n%s", out.String())
	}
	// The policy descended at some point: some epoch read below full.
	descended := false
	for _, p := range res.Epochs {
		if p.Stats.MinQuality < cfg.scanGroups {
			descended = true
		}
	}
	if !descended {
		t.Fatalf("policy never descended; probes had nothing to re-ascend:\n%s", out.String())
	}

	// Warm restart over the same cache, now with lazy verification (the
	// -disk-cache-lazy path): entries recover without a CRC scan and the
	// run completes.
	cfg.diskCacheLazy = true
	var out2 bytes.Buffer
	if _, err := runReal(&out2, cfg); err != nil {
		t.Fatalf("warm lazy probe run: %v", err)
	}
	if !strings.Contains(out2.String(), "entries recovered warm") ||
		strings.Contains(out2.String(), " 0 entries recovered warm") {
		t.Fatalf("warm restart recovered no cache entries:\n%s", out2.String())
	}
}

// TestSimModeStillRuns keeps the virtual-clock harness alive behind -sim.
func TestSimModeStillRuns(t *testing.T) {
	cfg := testConfig("")
	cfg.sim = true
	cfg.epochs = 2
	var out bytes.Buffer
	if err := run(&out, cfg); err != nil {
		t.Fatalf("sim mode: %v", err)
	}
	if !strings.Contains(out.String(), "final accuracy") {
		t.Fatalf("sim output missing accuracy report:\n%s", out.String())
	}
}
