// Package repro is a from-scratch Go reproduction of "Progressive
// Compressed Records: Taking a Byte out of Deep Learning Data" (Kuchnik,
// Amvrosiadis, Smith — VLDB 2021), grown into a small serving system. See
// README.md for the architecture and DESIGN.md for the system inventory,
// the serving-layer wire protocol, and the per-experiment index.
//
// Package repro/pcr is the public entry point: it exposes the paper's three
// storage layouts (PCR, TFRecord, file-per-image) behind one Format
// interface, with Create/Open constructors, functional options, and a
// streaming, cache-aware, concurrently-decoding Scan iterator. Every format
// reads through a pluggable storage Backend, and pcr.OpenRemote opens a
// dataset served by cmd/pcrserved — an HTTP prefix server under
// internal/serve that turns the paper's sequential prefix reads into byte
// Range requests and its §5 delta cache upgrades into requests for only
// the missing bytes. pcr.Loader is the training input pipeline over either
// kind of dataset: sharded across workers, deterministically shuffled,
// batch-assembled, and quality-adaptive at record granularity (the §4.5
// knob driven by real observed losses; cmd/pcrtrain trains through it).
//
// The implementation lives under internal/ and the executables under cmd/;
// the root package holds only the benchmark harness (bench_test.go): one
// benchmark per paper table/figure plus ablation benchmarks for the design
// choices called out in DESIGN.md.
package repro
