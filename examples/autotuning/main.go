// Autotuning: dynamic scan-group selection during training (§4.5, §A.6).
//
// Part 1 (virtual clock): training starts at full quality; a
// gradient-cosine controller measures how well each scan group's gradient
// agrees with the full-quality gradient and drops to the cheapest group
// above the agreement threshold.
//
// Part 2 (real I/O): the bidirectional §4.5 controller over a real
// dataset — pcr.ProbePolicy descends one quality level on each loss
// plateau and, after every learning-rate drop, probes the higher qualities
// with a few checkpointed-and-rolled-back minibatches, re-ascending when
// the extra scans demonstrably help.
//
//	go run ./examples/autotuning
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/autotune"
	"repro/internal/nn"
	"repro/internal/realtrain"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if err := runProbe(); err != nil {
		log.Fatal(err)
	}
}

// runProbe trains over real I/O with the bidirectional probe controller.
func runProbe() error {
	fmt.Println("\n-- real I/O: bidirectional §4.5 controller (descend + upward probes) --")
	dir, err := os.MkdirTemp("", "autotune-probe-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, err := pcr.Synthesize(dir, "cars", 0.2, 11,
		pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4)); err != nil {
		return err
	}
	ds, err := pcr.Open(dir)
	if err != nil {
		return err
	}
	defer ds.Close()

	profile, err := synth.ProfileByName("cars")
	if err != nil {
		return err
	}
	policy := &pcr.ProbePolicy{
		Detector:   autotune.PlateauDetector{Window: 3, MinImprove: 0.05},
		ProbeSteps: 4,
		Tolerance:  0.05,
	}
	res, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model:     nn.ShuffleNetLike,
		Task:      synth.Multiclass(profile),
		Epochs:    15,
		BatchSize: 16,
		Seed:      11,
		Policy:    policy,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%6s %10s %10s %10s\n", "epoch", "loss", "MB moved", "quality")
	for _, p := range res.Epochs {
		q := fmt.Sprintf("%d", p.Stats.MaxQuality)
		if p.Stats.MinQuality != p.Stats.MaxQuality {
			q = fmt.Sprintf("%d-%d", p.Stats.MinQuality, p.Stats.MaxQuality)
		}
		fmt.Printf("%6d %10.4f %10.2f %10s\n",
			p.Epoch, p.TrainLoss, float64(p.Stats.BytesRead)/1e6, q)
	}
	run, wins := policy.Probes()
	fmt.Printf("\n%d upward probes (%d won), %.2f MB probe reads, final quality %d\n",
		run, wins, float64(res.ProbeBytes)/1e6, policy.Quality())
	return nil
}

func run() error {
	set, err := pcr.BuildTrainSet("ham10000", 0.6, 11, pcr.WithImagesPerRecord(16))
	if err != nil {
		return err
	}

	task := synth.Multiclass(set.Profile)
	const epochs = 24

	// Static baseline: always read every scan group.
	base, err := train.Run(set, train.RunConfig{
		Model: nn.ShuffleNetLike, Task: task,
		ScanGroup: set.NumGroups, Epochs: epochs, Seed: 2, EvalEvery: 4,
	})
	if err != nil {
		return err
	}

	// Dynamic: cosine-similarity controller with threshold 0.9.
	dyn, err := autotune.Run(set, autotune.Config{
		Model: nn.ShuffleNetLike, Task: task,
		Controller: &autotune.CosineController{Threshold: 0.9, TuneEvery: 8, WarmupEpochs: 3},
		Epochs:     epochs, Seed: 2, EvalEvery: 4,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %10s %10s %8s\n", "epoch", "static t", "dynamic t", "group")
	for i := range dyn.Points {
		fmt.Printf("%-8d %9.2fs %9.2fs %8d\n",
			i, base.Points[i].TimeSec, dyn.Points[i].TimeSec, dyn.Points[i].Group)
	}
	fmt.Printf("\nstatic baseline: final %.1f%% in %.2fs\n", base.FinalAcc*100, base.TotalTimeSec)
	fmt.Printf("dynamic tuning:  final %.1f%% in %.2fs (%d group switches)\n",
		dyn.FinalAcc*100, dyn.TotalTimeSec, dyn.GroupSwitches)
	if dyn.TotalTimeSec < base.TotalTimeSec {
		fmt.Printf("speedup: %.2fx with no accuracy target given up\n", base.TotalTimeSec/dyn.TotalTimeSec)
	}
	return nil
}
