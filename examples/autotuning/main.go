// Autotuning: dynamic scan-group selection during training (§4.5, §A.6).
// Training starts at full quality; a gradient-cosine controller measures
// how well each scan group's gradient agrees with the full-quality gradient
// and drops to the cheapest group above the agreement threshold.
//
//	go run ./examples/autotuning
package main

import (
	"fmt"
	"log"

	"repro/internal/autotune"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	set, err := pcr.BuildTrainSet("ham10000", 0.6, 11, pcr.WithImagesPerRecord(16))
	if err != nil {
		return err
	}

	task := synth.Multiclass(set.Profile)
	const epochs = 24

	// Static baseline: always read every scan group.
	base, err := train.Run(set, train.RunConfig{
		Model: nn.ShuffleNetLike, Task: task,
		ScanGroup: set.NumGroups, Epochs: epochs, Seed: 2, EvalEvery: 4,
	})
	if err != nil {
		return err
	}

	// Dynamic: cosine-similarity controller with threshold 0.9.
	dyn, err := autotune.Run(set, autotune.Config{
		Model: nn.ShuffleNetLike, Task: task,
		Controller: &autotune.CosineController{Threshold: 0.9, TuneEvery: 8, WarmupEpochs: 3},
		Epochs:     epochs, Seed: 2, EvalEvery: 4,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %10s %10s %8s\n", "epoch", "static t", "dynamic t", "group")
	for i := range dyn.Points {
		fmt.Printf("%-8d %9.2fs %9.2fs %8d\n",
			i, base.Points[i].TimeSec, dyn.Points[i].TimeSec, dyn.Points[i].Group)
	}
	fmt.Printf("\nstatic baseline: final %.1f%% in %.2fs\n", base.FinalAcc*100, base.TotalTimeSec)
	fmt.Printf("dynamic tuning:  final %.1f%% in %.2fs (%d group switches)\n",
		dyn.FinalAcc*100, dyn.TotalTimeSec, dyn.GroupSwitches)
	if dyn.TotalTimeSec < base.TotalTimeSec {
		fmt.Printf("speedup: %.2fx with no accuracy target given up\n", base.TotalTimeSec/dyn.TotalTimeSec)
	}
	return nil
}
