// Formats: one program, three storage layouts. The write loop and the scan
// loop below never change — only the pcr.WithFormat option does — yet the
// same data lands as PCR records, a TFRecord file, or a file-per-image tree
// (the three layouts the paper compares in §4.4 and Figure 1).
//
//	go run ./examples/formats
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root, err := os.MkdirTemp("", "pcr-formats-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	ctx := context.Background()
	fmt.Printf("%-14s %8s %10s %12s %14s\n", "format", "images", "qualities", "total bytes", "bytes@lowest")
	for _, format := range pcr.Formats() {
		dir := filepath.Join(root, format.Name())

		// Identical synthesis call for every backend.
		if _, err := pcr.Synthesize(dir, "cars", 0.25, 1,
			pcr.WithFormat(format), pcr.WithImagesPerRecord(16)); err != nil {
			return err
		}

		// Identical open + scan for every backend.
		ds, err := pcr.Open(dir, pcr.WithFormat(format), pcr.WithPrefetchWorkers(4))
		if err != nil {
			return err
		}
		images := 0
		for s, err := range ds.Scan(ctx, pcr.Full) {
			if err != nil {
				return err
			}
			if s.Image == nil {
				return fmt.Errorf("%s: sample %d not decoded", format.Name(), s.ID)
			}
			images++
		}
		full, err := ds.SizeAtQuality(pcr.Full)
		if err != nil {
			return err
		}
		lowest, err := ds.SizeAtQuality(1)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %8d %10d %12d %14d\n", ds.Format().Name(), images, ds.Qualities(), full, lowest)
		if err := ds.Close(); err != nil {
			return err
		}
	}
	fmt.Println("\nonly the PCR layout offers multiple quality levels per stored byte stream;")
	fmt.Println("the baselines read everything to yield anything.")
	return nil
}
