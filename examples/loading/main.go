// Example loading: the real-I/O training input pipeline.
//
// The program synthesizes a dataset on disk, then drives pcr.Loader the way
// a training job would: two distributed shard workers each stream their
// disjoint half of the records in a seeded windowed-shuffle order, batches
// come out decoded and fixed-size, and a PlateauPolicy cheapens the read
// quality mid-training when the (simulated-by-hand here) loss plateaus —
// the paper's §4.5 dynamic fidelity knob running over real files. Each
// epoch reports the measured bytes moved, images/s, and stall time
// (Appendix A.1's queueing quantities, measured instead of simulated).
//
// The final section is the warm restart: a worker with a persistent disk
// cache (WithDiskCache) and a loader checkpoint "crashes" mid-epoch; its
// replacement resumes at the same shuffled position (WithResume) and reads
// everything from the recovered cache — zero bytes from the dataset.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/autotune"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "pcr-loading")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	n, err := pcr.Synthesize(dir, "cars", 0.25, 1,
		pcr.WithImagesPerRecord(8), pcr.WithScanGroups(5))
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d images on disk at %s\n\n", n, dir)

	// Two shard workers partition the records: disjoint, covering, and
	// balanced — each worker opens the dataset independently, exactly as
	// separate processes (or machines, via OpenRemote) would.
	fmt.Println("-- sharded epoch: two workers, disjoint record sets --")
	for shard := 0; shard < 2; shard++ {
		ds, err := pcr.Open(dir)
		if err != nil {
			return err
		}
		l, err := pcr.NewLoader(ds,
			pcr.WithShard(shard, 2),
			pcr.WithBatchSize(32),
			pcr.WithLoaderSeed(42),
			pcr.WithQuality(pcr.Full))
		if err != nil {
			ds.Close()
			return err
		}
		for _, err := range l.Epoch(context.Background(), 0) {
			if err != nil {
				ds.Close()
				return err
			}
		}
		st, _ := l.LastEpochStats()
		fmt.Printf("worker %d: %d records, %d images, %d batches, %.2f MB, %.0f img/s\n",
			shard, st.Records, st.Images, st.Batches, float64(st.BytesRead)/1e6, st.ImagesPerSec)
		ds.Close()
	}

	// Adaptive quality: a PlateauPolicy starts at full fidelity; when the
	// training loop reports plateauing losses, it steps the quality down —
	// and because the Loader re-resolves quality at record boundaries, the
	// epoch cheapens in flight.
	fmt.Println("\n-- adaptive epochs: plateau policy cheapens reads --")
	ds, err := pcr.Open(dir, pcr.WithPrefetchWorkers(8))
	if err != nil {
		return err
	}
	defer ds.Close()
	policy := &pcr.PlateauPolicy{
		Detector: autotune.PlateauDetector{Window: 2, MinImprove: 0.05},
	}
	l, err := pcr.NewLoader(ds,
		pcr.WithBatchSize(32),
		pcr.WithQualityPolicy(policy))
	if err != nil {
		return err
	}
	fmt.Printf("%6s %10s %10s %10s %8s\n", "epoch", "MB moved", "img/s", "stall", "quality")
	loss := 1.0
	for epoch := 0; epoch < 4; epoch++ {
		for b, err := range l.Epoch(context.Background(), epoch) {
			if err != nil {
				return err
			}
			// A real job computes gradients here; we stand in a loss curve
			// that improves briefly and then flattens.
			if epoch == 0 {
				loss *= 0.9
			}
			policy.Report(loss)
			_ = b
		}
		st, _ := l.LastEpochStats()
		q := fmt.Sprint(st.MaxQuality)
		if st.MinQuality != st.MaxQuality {
			q = fmt.Sprintf("%d–%d", st.MinQuality, st.MaxQuality)
		}
		fmt.Printf("%6d %10.2f %10.0f %9.3fs %8s\n",
			epoch, float64(st.BytesRead)/1e6, st.ImagesPerSec, st.Stall.Seconds(), q)
	}
	fmt.Println("\nsame records, same labels — later epochs moved fewer bytes because")
	fmt.Println("quality is an I/O knob, re-resolved at every record boundary.")

	// Queryable dataset: a predicate over the sample metadata restricts
	// training to a subset without re-encoding anything. The selection is
	// planned from the index — records with no matching sample are never
	// read, partial matches become sparse range reads covering only the
	// selected samples — so the bytes moved track the subset, not the
	// dataset (and against OpenRemote the same plan is pushed down to the
	// server as a bitmap, moving only the selected bytes over the wire).
	fmt.Println("\n-- filtered epoch: label predicate pushed into the reads --")
	pred, err := pcr.ParseFilter("label IN (0, 1, 2)")
	if err != nil {
		return err
	}
	plan, err := ds.PlanFilter(pred, pcr.Full)
	if err != nil {
		return err
	}
	fmt.Printf("plan %q: %d of %d samples, %d of %d records skipped whole, %.1f%% of full bytes\n",
		pred, plan.Selected, plan.Total, plan.RecordsSkipped, plan.Records,
		100*float64(plan.Bytes)/float64(plan.FullBytes))
	lf, err := pcr.NewLoader(ds,
		pcr.WithBatchSize(32),
		pcr.WithLoaderFilter(pred))
	if err != nil {
		return err
	}
	for _, err := range lf.Epoch(context.Background(), 0) {
		if err != nil {
			return err
		}
	}
	if st, ok := lf.LastEpochStats(); ok {
		fmt.Printf("epoch: %d images delivered, %d filtered out; %.2f MB read, %.2f MB avoided\n",
			st.Images, st.SkippedImages, float64(st.BytesRead)/1e6, float64(st.BytesAvoided)/1e6)
	}

	// Warm restart: the first life trains with a persistent disk cache and
	// checkpoints after every batch; we stop it mid-epoch, as a crash
	// would. The second life mounts the same cache directory, resumes from
	// the checkpoint, and finishes the epoch — the position comes from the
	// checkpoint, the bytes come from the recovered cache.
	fmt.Println("\n-- warm restart: disk cache + checkpoint resume --")
	cacheDir, err := os.MkdirTemp("", "pcr-loading-cache")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)

	ds1, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 256<<20))
	if err != nil {
		return err
	}
	l1, err := pcr.NewLoader(ds1, pcr.WithBatchSize(16), pcr.WithLoaderSeed(7))
	if err != nil {
		ds1.Close()
		return err
	}
	// Epoch 0 runs to completion, filling the cache with every record.
	for _, err := range l1.Epoch(context.Background(), 0) {
		if err != nil {
			ds1.Close()
			return err
		}
	}
	// Epoch 1 "crashes" two batches in.
	var cp pcr.Checkpoint
	batches := 0
	for _, err := range l1.Epoch(context.Background(), 1) {
		if err != nil {
			ds1.Close()
			return err
		}
		cp, _ = l1.Checkpoint() // a real job persists this with its weights
		if batches++; batches == 2 {
			break
		}
	}
	st1, _ := ds1.DiskCacheStats()
	ds1.Close() // the cache directory survives the "crash"
	fmt.Printf("first life:  epoch 0 done, crash %d batches into epoch 1; cache holds %.2f MB, checkpoint (epoch %d, batch %d)\n",
		batches, float64(st1.BytesFetched)/1e6, cp.Epoch, cp.Batch)

	ds2, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 256<<20))
	if err != nil {
		return err
	}
	defer ds2.Close()
	l2, err := pcr.NewLoader(ds2, pcr.WithResume(cp))
	if err != nil {
		return err
	}
	rest := 0
	for _, err := range l2.Epoch(context.Background(), cp.Epoch) {
		if err != nil {
			return err
		}
		rest++
	}
	st2, _ := ds2.DiskCacheStats()
	fmt.Printf("second life: resumed at batch %d, finished %d more batches;\n", cp.Batch, rest)
	fmt.Printf("             %d cache entries recovered, %.2f MB refetched from the dataset\n",
		st2.Recovered, float64(st2.BytesFetched)/1e6)
	fmt.Println("\nthe restarted worker re-entered mid-epoch at the same shuffled position")
	fmt.Println("and its reads were served from the persistent cache — with OpenRemote,")
	fmt.Println("that is a second epoch of training at near-zero network cost.")
	return nil
}
