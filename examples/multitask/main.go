// Multitask: one PCR dataset serving three tasks of different difficulty
// (the paper's Cars experiment, §4.3). The same stored bytes are read at
// different scan groups per task: the fine-grained task needs late scans,
// the binary task trains fine from scan group 1.
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"

	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	set, err := pcr.BuildTrainSet("cars", 0.5, 7, pcr.WithImagesPerRecord(16))
	if err != nil {
		return err
	}
	profile := set.Profile
	fmt.Printf("one PCR dataset: %d train images, %d records, %d scan groups\n\n",
		set.NumTrain(), set.NumRecords(), set.NumGroups)

	binary, err := synth.Binary(profile, 0)
	if err != nil {
		return err
	}
	tasks := []synth.Task{synth.Multiclass(profile), synth.CoarseOnly(profile), binary}

	fmt.Printf("%-12s %8s | final top-1 accuracy by scan group\n", "task", "classes")
	fmt.Printf("%-12s %8s | %9s %9s %9s %9s\n", "", "", "scan 1", "scan 2", "scan 5", "baseline")
	for _, task := range tasks {
		fmt.Printf("%-12s %8d |", task.Name, task.NumClasses)
		for _, g := range []int{1, 2, 5, set.NumGroups} {
			res, err := train.Run(set, train.RunConfig{
				Model:     nn.ResNetLike,
				Task:      task,
				ScanGroup: g,
				Epochs:    20,
				Seed:      1,
				EvalEvery: 4,
			})
			if err != nil {
				return err
			}
			fmt.Printf(" %8.1f%%", res.FinalAcc*100)
		}
		fmt.Println()
	}
	fmt.Println("\nthe accuracy gap between scan 1 and baseline closes as the task coarsens —")
	fmt.Println("one PCR encoding serves all three tasks at their optimal quality.")
	return nil
}
