// Quickstart: create a PCR dataset on disk, read it back at several scan
// groups, and show the byte-vs-quality trade-off.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/jpegc"
	"repro/internal/mssim"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "pcr-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dataset := filepath.Join(dir, "cars-pcr")

	// 1. Generate a small synthetic Stanford-Cars-like dataset and encode
	//    it into PCR records: baseline JPEG in, scan-grouped records out.
	profile := synth.Cars.Scaled(0.25)
	ds, err := synth.Generate(profile, 1)
	if err != nil {
		return err
	}
	w, err := core.CreateDataset(dataset, &core.DatasetOptions{ImagesPerRecord: 16})
	if err != nil {
		return err
	}
	for _, s := range ds.Train {
		jpg, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: profile.JPEGQuality, Subsample420: true})
		if err != nil {
			return err
		}
		if err := w.Append(core.Sample{ID: int64(s.ID), Label: int64(s.Label), JPEG: jpg}); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("encoded %d images into %s\n\n", len(ds.Train), dataset)

	// 2. Open it and read record 0 at increasing scan groups. Each read is
	//    one sequential prefix; more scan groups = more bytes = higher
	//    quality.
	pcr, err := core.OpenDataset(dataset)
	if err != nil {
		return err
	}
	defer pcr.Close()
	fmt.Printf("dataset: %d records, %d images, %d scan groups\n\n",
		pcr.NumRecords(), pcr.NumImages(), pcr.NumGroups)

	full, err := pcr.ReadRecordAt(0, pcr.NumGroups)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %14s %14s %10s\n", "scan", "bytes read", "of full", "MSSIM")
	for _, g := range []int{1, 2, 5, pcr.NumGroups} {
		n, err := pcr.RecordPrefixLen(0, g)
		if err != nil {
			return err
		}
		fullLen, err := pcr.RecordPrefixLen(0, pcr.NumGroups)
		if err != nil {
			return err
		}
		samples, err := pcr.ReadRecordAt(0, g)
		if err != nil {
			return err
		}
		// Quality of the first image vs its full-quality self.
		sim, err := mssim.MSSIM(samples[0].Img, full[0].Img)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %14d %13.1f%% %10.4f\n", g, n, 100*float64(n)/float64(fullLen), sim)
	}
	fmt.Println("\nreading a prefix of each record file yields every image at that quality —")
	fmt.Println("no duplication, no random I/O, same total bytes as plain JPEG records.")
	return nil
}
