// Quickstart: create a PCR dataset on disk through the public pcr package,
// stream it back at several quality levels, and show the byte-vs-quality
// trade-off.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"image"
	"log"
	"os"
	"path/filepath"

	"repro/internal/mssim"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "pcr-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	dataset := filepath.Join(dir, "cars-pcr")

	// 1. Generate a small synthetic Stanford-Cars-like dataset and encode
	//    it into PCR records: baseline JPEG in, scan-grouped records out.
	n, err := pcr.Synthesize(dataset, "cars", 0.25, 1, pcr.WithImagesPerRecord(16))
	if err != nil {
		return err
	}
	fmt.Printf("encoded %d images into %s\n\n", n, dataset)

	// 2. Open it and stream it at increasing quality levels. Each level is
	//    one sequential prefix read per record; more quality = more bytes.
	ds, err := pcr.Open(dataset, pcr.WithPrefetchWorkers(4))
	if err != nil {
		return err
	}
	defer ds.Close()
	fmt.Printf("dataset: %d records, %d images, %d quality levels\n\n",
		ds.NumRecords(), ds.NumImages(), ds.Qualities())

	ctx := context.Background()
	firstAt := func(q int) (image.Image, error) {
		for s, err := range ds.Scan(ctx, q) {
			return s.Image, err
		}
		return nil, fmt.Errorf("empty dataset")
	}
	full, err := firstAt(pcr.Full)
	if err != nil {
		return err
	}
	fullLen, err := ds.SizeAtQuality(pcr.Full)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %14s %14s %10s\n", "quality", "bytes read", "of full", "MSSIM")
	for _, q := range []int{1, 2, 5, ds.Qualities()} {
		size, err := ds.SizeAtQuality(q)
		if err != nil {
			return err
		}
		img, err := firstAt(q)
		if err != nil {
			return err
		}
		// Quality of the first image vs its full-quality self.
		sim, err := mssim.MSSIM(img, full)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %14d %13.1f%% %10.4f\n", q, size, 100*float64(size)/float64(fullLen), sim)
	}
	fmt.Println("\nreading a prefix of each record file yields every image at that quality —")
	fmt.Println("no duplication, no random I/O, same total bytes as plain JPEG records.")
	return nil
}
