// Example remote: serve a dataset with the pcrserved serving layer and
// stream it over HTTP at two quality levels.
//
// The program synthesizes a small dataset, serves it in-process with
// internal/serve (the engine behind cmd/pcrserved), and opens it with
// pcr.OpenRemote. It scans once at the coarsest quality, then re-scans at
// full quality: because the client's prefix cache holds every record's
// scan-group-1 prefix, the second scan issues HTTP Range requests for only
// the missing delta bytes — the paper's §5 cache-pressure property running
// across the network. The server's counters show exactly how many bytes
// crossed the wire in each phase.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/serve"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "pcr-remote")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	n, err := pcr.Synthesize(dir, "cars", 0.25, 1,
		pcr.WithImagesPerRecord(16), pcr.WithScanGroups(5))
	if err != nil {
		return err
	}

	// The serving side: what `pcrserved -dataset dir` runs, here on a
	// loopback listener so the example is self-contained.
	srv, err := serve.New(dir, &serve.Options{CacheBytes: 32 << 20})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, srv)
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving %d images from %s\n\n", n, url)

	// The reading side: a remote dataset behaves exactly like a local one.
	ds, err := pcr.OpenRemote(url, pcr.WithCacheBytes(64<<20), pcr.WithPrefetchWorkers(4))
	if err != nil {
		return err
	}
	defer ds.Close()
	fmt.Printf("remote dataset: %d records, %d images, %d quality levels\n\n",
		ds.NumRecords(), ds.NumImages(), ds.Qualities())

	fmt.Printf("%8s %8s %14s %12s\n", "quality", "images", "wire bytes", "bytes/image")
	ctx := context.Background()
	for _, q := range []int{1, pcr.Full} {
		before := srv.Stats().BytesServed
		images := 0
		for _, err := range ds.Scan(ctx, q) {
			if err != nil {
				return err
			}
			images++
		}
		wire := srv.Stats().BytesServed - before
		label := fmt.Sprint(q)
		if q == pcr.Full {
			label = "full"
		}
		fmt.Printf("%8s %8d %14d %12.0f\n", label, images, wire, float64(wire)/float64(images))
	}

	full, err := ds.SizeAtQuality(pcr.Full)
	if err != nil {
		return err
	}
	coarse, err := ds.SizeAtQuality(1)
	if err != nil {
		return err
	}
	stats, _ := ds.CacheStats()
	fmt.Printf("\nfull-quality scan is %d bytes cold, but the cached re-scan moved only\n"+
		"the %d delta bytes (%d upgrade hits) — quality became an I/O knob over HTTP.\n",
		full, full-coarse, stats.UpgradeHits)
	return nil
}
