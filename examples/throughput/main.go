// Throughput: loading rates vs scan group on simulated storage (the
// Figure 9 / Figure 18 mechanism). Shows the paper's Observation 6 — image
// rates scale with the compression ratio until the compute roofline — and
// the Little's-law prediction of Appendix A.2.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"

	"repro/internal/loader"
	"repro/internal/nn"
	"repro/internal/queueing"
	"repro/internal/train"
	"repro/pcr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	set, err := pcr.BuildTrainSet("ham10000", 0.5, 3, pcr.WithImagesPerRecord(16))
	if err != nil {
		return err
	}
	mean, err := set.MeanImageBytesAtGroup(set.NumGroups)
	if err != nil {
		return err
	}

	for _, model := range nn.Profiles() {
		cluster, err := train.ScaledStorage(mean, set.ImagesPerRecord)
		if err != nil {
			return err
		}
		analytic := queueing.Pipeline{
			BandwidthBps:        cluster.AggregateBandwidth(),
			ComputeImagesPerSec: model.ClusterImagesPerSec,
		}
		fmt.Printf("%s (compute roof %.0f img/s, storage %.1f MB/s):\n",
			model.Name, model.ClusterImagesPerSec, cluster.AggregateBandwidth()/1e6)
		fmt.Printf("  %5s %12s %12s %12s %10s\n", "scan", "bytes/img", "simulated/s", "predicted/s", "stall")
		for _, g := range []int{1, 2, 5, set.NumGroups} {
			rb, err := set.RecordBytesAtGroup(g)
			if err != nil {
				return err
			}
			mb, err := set.MeanImageBytesAtGroup(g)
			if err != nil {
				return err
			}
			cluster.Reset()
			res, err := loader.Run(loader.Config{
				Cluster:            cluster,
				Threads:            6,
				QueueCap:           12,
				RecordBytes:        rb,
				ImagesPerRecord:    set.ImagesPerRecordList(),
				ComputeSecPerImage: 1 / model.ClusterImagesPerSec,
				Passes:             10,
			})
			if err != nil {
				return err
			}
			pred, err := analytic.SystemThroughput(mb)
			if err != nil {
				return err
			}
			fmt.Printf("  %5d %12.0f %12.0f %12.0f %9.2fs\n",
				g, mb, res.ImagesPerSec, pred, res.TotalStallSec)
		}
	}
	fmt.Println("\nsimulated rates track the min(compute, bandwidth/bytes) model of Appendix A.2;")
	fmt.Println("the faster model (shufflenet) gains more from lower scan groups.")
	return nil
}
