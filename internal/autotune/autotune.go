// Package autotune implements the paper's dynamic scan-group selection
// (§4.5, §A.6): training starts at full quality, and a controller
// periodically decides which scan group to read next.
//
// Two controllers are provided. CosineController measures the cosine
// similarity between each candidate group's full-batch gradient and the
// full-quality gradient and picks the smallest group above a threshold
// (§A.6.2). PlateauController implements the simpler §4.5 heuristic: when
// training loss plateaus, checkpoint the model, probe each candidate group
// for a few iterations, keep the cheapest group whose loss matches the
// best, and roll back the probe updates.
//
// Mixture training (§A.6.3) is supported in both: instead of a hard scan
// choice, each record read draws its group from a distribution that places
// `weight` mass on the selected group and spreads the rest uniformly.
package autotune

import (
	"fmt"
	"math/rand"

	"repro/internal/iosim"
	"repro/internal/loader"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
)

// Controller decides the scan group for the next stretch of training.
type Controller interface {
	// Name labels the controller in reports.
	Name() string
	// Tune inspects the current training state and returns the scan group
	// to use next. It may train probe steps on the model (the harness
	// passes a checkpoint copy) and must report the virtual seconds its
	// probing consumed.
	Tune(st *State) (group int, probeSec float64, err error)
	// ShouldTune reports whether this epoch is a tuning point.
	ShouldTune(epoch int, lossHistory []float64) bool
}

// State is what a controller may inspect and use during tuning.
type State struct {
	Set   *train.PCRSet
	Model *nn.MLP
	Task  synth.Task
	// Groups are the candidate scan groups in increasing order; the last
	// one is the reference (full quality).
	Groups []int
	// LR is the current learning rate (probes use it).
	LR, Momentum float64
	// Bandwidth is the cluster's aggregate delivery rate, used to charge
	// probe reads.
	Bandwidth float64
	// ComputeImagesPerSec charges probe compute.
	ComputeImagesPerSec float64
	// Rng drives any stochastic probing.
	Rng *rand.Rand
}

// probeReadSec charges the time to read the train set's records at group g.
func (st *State) probeReadSec(g int) (float64, error) {
	rb, err := st.Set.RecordBytesAtGroup(g)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, b := range rb {
		total += b
	}
	return float64(total) / st.Bandwidth, nil
}

// CosineController selects the smallest scan group whose full-batch
// gradient has cosine similarity ≥ Threshold with the full-quality gradient.
type CosineController struct {
	// Threshold is the minimum gradient agreement (paper uses 0.9).
	Threshold float64
	// TuneEvery triggers tuning every k epochs (paper: 15–30).
	TuneEvery int
	// WarmupEpochs delays the first tuning (paper: initial tuning at
	// epoch 5 after starting at full quality).
	WarmupEpochs int
}

// Name implements Controller.
func (c *CosineController) Name() string { return "cosine" }

// ShouldTune implements Controller.
func (c *CosineController) ShouldTune(epoch int, _ []float64) bool {
	every := c.TuneEvery
	if every <= 0 {
		every = 15
	}
	warm := c.WarmupEpochs
	if warm <= 0 {
		warm = 5
	}
	if epoch < warm {
		return false
	}
	return epoch == warm || (epoch-warm)%every == 0
}

// Tune implements Controller.
func (c *CosineController) Tune(st *State) (int, float64, error) {
	thr := c.Threshold
	if thr <= 0 {
		thr = 0.9
	}
	ref := st.Groups[len(st.Groups)-1]
	gRef, err := train.FullGradient(st.Set, st.Model, st.Task, ref)
	if err != nil {
		return 0, 0, err
	}
	refFlat := gRef.Flatten()
	probeSec, err := st.probeReadSec(ref)
	if err != nil {
		return 0, 0, err
	}
	// Compute cost: one full-batch pass per candidate.
	perPass := float64(st.Set.NumTrain()) / st.ComputeImagesPerSec
	probeSec += perPass

	chosen := ref
	for _, g := range st.Groups[:len(st.Groups)-1] {
		gg, err := train.FullGradient(st.Set, st.Model, st.Task, g)
		if err != nil {
			return 0, 0, err
		}
		read, err := st.probeReadSec(g)
		if err != nil {
			return 0, 0, err
		}
		probeSec += read + perPass
		sim, err := nn.CosineSimilarity(gg.Flatten(), refFlat)
		if err != nil {
			return 0, 0, err
		}
		if sim >= thr {
			chosen = g
			break
		}
	}
	return chosen, probeSec, nil
}

// PlateauDetector is the pure plateau test at the heart of the §4.5
// heuristic: the run plateaued when the best loss of the last Window
// observations improved less than MinImprove (relative) over the Window
// before it. It is a value type holding configuration only — no mutable
// state — so callers that need cooldown tracking (how long since the last
// tune) keep that state themselves and pass it in as sinceTune. Copies and
// concurrent use are therefore safe by construction.
type PlateauDetector struct {
	// Window is the comparison window length in observations (default 5).
	Window int
	// MinImprove is the relative improvement below which the run counts as
	// plateaued (default 0.02).
	MinImprove float64
}

// EffectiveWindow returns Window with the default applied.
func (d PlateauDetector) EffectiveWindow() int {
	if d.Window <= 0 {
		return 5
	}
	return d.Window
}

// Plateaued reports whether losses ends in a plateau: the trailing window
// improved less than MinImprove relative to the window before it. sinceTune
// is the number of observations since the caller last acted on a plateau;
// detection is suppressed until a full window of fresh observations has
// accumulated, so one plateau is not reported twice.
func (d PlateauDetector) Plateaued(sinceTune int, losses []float64) bool {
	w := d.EffectiveWindow()
	if len(losses) < 2*w || sinceTune < w {
		return false
	}
	minImprove := d.MinImprove
	if minImprove <= 0 {
		minImprove = 0.02
	}
	recent := minOf(losses[len(losses)-w:])
	before := minOf(losses[len(losses)-2*w : len(losses)-w])
	if before <= 0 {
		return false
	}
	return (before-recent)/before < minImprove
}

// PlateauController implements the §4.5 heuristic: on a loss plateau,
// checkpoint, probe each candidate for ProbeSteps minibatches, compare the
// resulting training losses, pick the cheapest group within Tolerance of
// the best, and roll back.
type PlateauController struct {
	// Window and MinImprove define plateau detection: tuning triggers when
	// the best loss of the last Window epochs improved less than
	// MinImprove (relative) over the Window before it.
	Window     int
	MinImprove float64
	// ProbeSteps is the number of probe minibatches per candidate.
	ProbeSteps int
	// BatchSize for probe minibatches.
	BatchSize int
	// Tolerance accepts a group whose probe loss is within (1+Tolerance)×
	// of the best candidate's.
	Tolerance float64

	lastTune int
}

// Name implements Controller.
func (p *PlateauController) Name() string { return "plateau" }

// ShouldTune implements Controller.
func (p *PlateauController) ShouldTune(epoch int, lossHistory []float64) bool {
	det := PlateauDetector{Window: p.Window, MinImprove: p.MinImprove}
	if det.Plateaued(epoch-p.lastTune, lossHistory) {
		p.lastTune = epoch
		return true
	}
	return false
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Tune implements Controller.
func (p *PlateauController) Tune(st *State) (int, float64, error) {
	steps := p.ProbeSteps
	if steps <= 0 {
		steps = 8
	}
	batch := p.BatchSize
	if batch <= 0 {
		batch = 32
	}
	tol := p.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	labels := st.Set.TrainLabels(st.Task)
	n := st.Set.NumTrain()

	ckpt := st.Model.Clone()
	losses := make([]float64, len(st.Groups))
	var probeSec float64
	for gi, g := range st.Groups {
		feats, err := st.Set.TrainFeatures(g)
		if err != nil {
			return 0, 0, err
		}
		read, err := st.probeReadSec(g)
		if err != nil {
			return 0, 0, err
		}
		probeSec += read
		if err := st.Model.Restore(ckpt); err != nil {
			return 0, 0, err
		}
		var last float64
		for s := 0; s < steps; s++ {
			b := nn.Batch{}
			for k := 0; k < batch; k++ {
				idx := st.Rng.Intn(n)
				b.X = append(b.X, feats[idx])
				b.Y = append(b.Y, labels[idx])
			}
			grads, loss, _, err := st.Model.Gradient(b)
			if err != nil {
				return 0, 0, err
			}
			st.Model.Step(grads, st.LR, st.Momentum)
			last = loss
		}
		losses[gi] = last
		probeSec += float64(steps*batch) / st.ComputeImagesPerSec
	}
	// Roll back the probe updates.
	if err := st.Model.Restore(ckpt); err != nil {
		return 0, 0, err
	}
	best := minOf(losses)
	for gi, g := range st.Groups {
		if losses[gi] <= best*(1+tol) {
			return g, probeSec, nil
		}
	}
	return st.Groups[len(st.Groups)-1], probeSec, nil
}

// Config configures a dynamic-tuning training run.
type Config struct {
	Model      nn.ModelProfile
	Task       synth.Task
	Controller Controller
	// Groups are the candidate scan groups (increasing; last = reference).
	// Default {1, 2, 5, NumGroups}.
	Groups []int
	Epochs int
	// BatchSize for SGD.
	BatchSize int
	Seed      int64
	// MixWeight enables mixture training: the selected group is drawn with
	// probability weight/(weight+K−1) per record, the others uniformly.
	// 0 disables mixing (hard selection). Paper uses weights 10 (~50%) and
	// 100 (~85%) over K=10 groups.
	MixWeight float64
	// Cluster overrides the simulated storage.
	Cluster *iosim.Cluster
	// EvalEvery samples test accuracy every k epochs (default 1).
	EvalEvery int
}

// EpochPoint extends the static trainer's per-epoch sample with the scan
// group in effect.
type EpochPoint struct {
	Epoch        int
	TimeSec      float64
	TrainLoss    float64
	TestAcc      float64
	Sampled      bool
	Group        int
	ImagesPerSec float64
	TuneSec      float64
}

// Result is a dynamic run's trace.
type Result struct {
	Points   []EpochPoint
	FinalAcc float64
	// TotalTimeSec includes probe/tuning overhead.
	TotalTimeSec float64
	// GroupSwitches counts controller decisions that changed the group.
	GroupSwitches int
}

// Run trains with dynamic scan-group control.
func Run(set *train.PCRSet, cfg Config) (*Result, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("autotune: nil controller")
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("autotune: non-positive epochs")
	}
	groups := cfg.Groups
	if groups == nil {
		groups = []int{1, 2, 5, set.NumGroups}
	}
	for i := 1; i < len(groups); i++ {
		if groups[i] <= groups[i-1] {
			return nil, fmt.Errorf("autotune: groups must be increasing")
		}
	}
	if groups[len(groups)-1] > set.NumGroups {
		return nil, fmt.Errorf("autotune: group %d exceeds dataset's %d", groups[len(groups)-1], set.NumGroups)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}

	model, err := cfg.Model.Build(train.FeatureLen, cfg.Task.NumClasses, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cluster := cfg.Cluster
	if cluster == nil {
		mean, err := set.MeanImageBytesAtGroup(set.NumGroups)
		if err != nil {
			return nil, err
		}
		cluster, err = train.ScaledStorage(mean, set.ImagesPerRecord)
		if err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &State{
		Set:                 set,
		Model:               model,
		Task:                cfg.Task,
		Groups:              groups,
		LR:                  cfg.Model.LR,
		Momentum:            cfg.Model.Momentum,
		Bandwidth:           cluster.AggregateBandwidth(),
		ComputeImagesPerSec: cfg.Model.ClusterImagesPerSec,
		Rng:                 rng,
	}

	labels := set.TrainLabels(cfg.Task)
	testLabels := set.TestLabels(cfg.Task)
	ranges := set.RecordRanges()
	imagesPerRecord := set.ImagesPerRecordList()

	res := &Result{}
	clock := 0.0
	cur := groups[len(groups)-1] // start at full quality (§4.5)
	var lossHistory []float64

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Same LR schedule as static training (drops at 1/3 and 2/3): the
		// resulting loss plateaus are what the §4.5 heuristic detects.
		for _, frac := range []float64{1.0 / 3, 2.0 / 3} {
			if epoch == int(frac*float64(cfg.Epochs)) && epoch > 0 {
				st.LR /= 10
			}
		}
		var tuneSec float64
		if cfg.Controller.ShouldTune(epoch, lossHistory) {
			next, probeSec, err := cfg.Controller.Tune(st)
			if err != nil {
				return nil, err
			}
			tuneSec = probeSec
			clock += probeSec
			if next != cur {
				res.GroupSwitches++
				cur = next
			}
		}

		// Draw each record's group for this epoch (mixture or hard).
		recGroups := make([]int, set.NumRecords())
		for r := range recGroups {
			recGroups[r] = drawGroup(cur, groups, cfg.MixWeight, rng)
		}
		recordBytes := make([]int64, set.NumRecords())
		for r := range recordBytes {
			rb, err := set.RecordBytesAtGroup(recGroups[r])
			if err != nil {
				return nil, err
			}
			recordBytes[r] = rb[r]
		}
		sim, err := loader.Run(loader.Config{
			Cluster:            cluster,
			Threads:            6,
			QueueCap:           12,
			RecordBytes:        recordBytes,
			ImagesPerRecord:    imagesPerRecord,
			DecodeSecPerImage:  (1.0 / 150) / 10,
			ComputeSecPerImage: 1 / cfg.Model.ClusterImagesPerSec,
			Shuffle:            rng,
			StartAt:            clock,
		})
		if err != nil {
			return nil, err
		}
		clock = sim.EndAt

		// SGD epoch: each sample uses its record's drawn group.
		featsByGroup := map[int][][]float64{}
		for _, g := range groups {
			f, err := set.TrainFeatures(g)
			if err != nil {
				return nil, err
			}
			featsByGroup[g] = f
		}
		sampleGroup := make([]int, set.NumTrain())
		for r, rg := range recGroups {
			for i := ranges[r][0]; i < ranges[r][1]; i++ {
				sampleGroup[i] = rg
			}
		}
		order := rng.Perm(set.NumTrain())
		var epochLoss float64
		var steps int
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			b := nn.Batch{}
			for _, idx := range order[start:end] {
				b.X = append(b.X, featsByGroup[sampleGroup[idx]][idx])
				b.Y = append(b.Y, labels[idx])
			}
			g, loss, _, err := model.Gradient(b)
			if err != nil {
				return nil, err
			}
			model.Step(g, st.LR, st.Momentum)
			epochLoss += loss
			steps++
		}
		meanLoss := epochLoss / float64(steps)
		lossHistory = append(lossHistory, meanLoss)

		pt := EpochPoint{
			Epoch: epoch, TimeSec: clock, TrainLoss: meanLoss,
			Group: cur, ImagesPerSec: sim.ImagesPerSec, TuneSec: tuneSec,
		}
		if epoch%evalEvery == 0 || epoch == cfg.Epochs-1 {
			testFeats, err := set.TestFeatures(cur)
			if err != nil {
				return nil, err
			}
			_, acc, err := model.Evaluate(nn.Batch{X: testFeats, Y: testLabels})
			if err != nil {
				return nil, err
			}
			pt.TestAcc = acc
			pt.Sampled = true
			res.FinalAcc = acc
		}
		res.Points = append(res.Points, pt)
	}
	res.TotalTimeSec = clock
	return res, nil
}

// drawGroup samples a record's scan group: the selected group with weight w
// against 1 for every other candidate (w=0 → always the selected group).
func drawGroup(selected int, groups []int, w float64, rng *rand.Rand) int {
	if w <= 0 || len(groups) == 1 {
		return selected
	}
	total := w + float64(len(groups)-1)
	x := rng.Float64() * total
	if x < w {
		return selected
	}
	x -= w
	for _, g := range groups {
		if g == selected {
			continue
		}
		if x < 1 {
			return g
		}
		x -= 1
	}
	return selected
}
