package autotune

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
)

func carsSet(t testing.TB, n int) *train.PCRSet {
	t.Helper()
	p := synth.Cars
	p.NumImages = n
	p.ImageSize = 48
	ds, err := synth.Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	set, err := train.BuildPCRSet(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestCosineControllerSchedule(t *testing.T) {
	c := &CosineController{TuneEvery: 10, WarmupEpochs: 5}
	var tunes []int
	for e := 0; e < 40; e++ {
		if c.ShouldTune(e, nil) {
			tunes = append(tunes, e)
		}
	}
	want := []int{5, 15, 25, 35}
	if len(tunes) != len(want) {
		t.Fatalf("tunes at %v, want %v", tunes, want)
	}
	for i := range want {
		if tunes[i] != want[i] {
			t.Fatalf("tunes at %v, want %v", tunes, want)
		}
	}
}

func TestPlateauDetectorPure(t *testing.T) {
	det := PlateauDetector{Window: 3, MinImprove: 0.05}
	improving := []float64{3, 2.5, 2.0, 1.6, 1.3, 1.0}
	flat := []float64{3, 2.5, 1.0, 1.0, 1.0, 1.0}
	if det.Plateaued(6, improving) {
		t.Error("detected a plateau during improvement")
	}
	if !det.Plateaued(6, flat) {
		t.Error("missed a plateau on flat loss")
	}
	// The detector is pure: the same inputs give the same answer again —
	// no hidden lastTune state advanced inside it.
	if !det.Plateaued(6, flat) {
		t.Error("second identical call changed its answer (hidden state)")
	}
	// Cooldown is the caller's sinceTune argument, not detector state.
	if det.Plateaued(2, flat) {
		t.Error("detected within the cooldown window")
	}
	// Too little history.
	if det.Plateaued(6, flat[:5]) {
		t.Error("detected with fewer than 2×Window observations")
	}
	// Zero value applies defaults (Window 5) rather than panicking.
	var zero PlateauDetector
	if zero.EffectiveWindow() != 5 {
		t.Errorf("zero-value window = %d, want 5", zero.EffectiveWindow())
	}
	tenFlat := []float64{5, 4, 3, 2, 1, 1, 1, 1, 1, 1}
	if !zero.Plateaued(10, tenFlat) {
		t.Error("zero-value detector missed an obvious plateau")
	}
}

func TestPlateauDetection(t *testing.T) {
	p := &PlateauController{Window: 3, MinImprove: 0.05}
	// Strictly improving loss: no tuning.
	improving := []float64{3, 2.5, 2.0, 1.6, 1.3, 1.0}
	if p.ShouldTune(6, improving) {
		t.Error("tuned during improvement")
	}
	// Flat loss: tuning triggers.
	flat := []float64{3, 2.5, 1.0, 1.0, 1.0, 1.0}
	p2 := &PlateauController{Window: 3, MinImprove: 0.05}
	if !p2.ShouldTune(6, flat) {
		t.Error("did not tune on plateau")
	}
	// And not again immediately after.
	if p2.ShouldTune(7, append(flat, 1.0)) {
		t.Error("re-tuned within the cooldown window")
	}
}

func TestCosineTuneChoosesCheaperGroupForCoarseTask(t *testing.T) {
	// On the coarse task, early scans carry nearly the whole gradient, so
	// the controller should move off full quality.
	set := carsSet(t, 64)
	task := synth.CoarseOnly(set.Profile)
	model, err := nn.ShuffleNetLike.Build(train.FeatureLen, task.NumClasses, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := &State{
		Set: set, Model: model, Task: task,
		Groups: []int{1, 2, 5, set.NumGroups},
		LR:     0.05, Momentum: 0.9,
		Bandwidth:           10e6,
		ComputeImagesPerSec: 7000,
		Rng:                 rand.New(rand.NewSource(1)),
	}
	c := &CosineController{Threshold: 0.9}
	g, probeSec, err := c.Tune(st)
	if err != nil {
		t.Fatal(err)
	}
	if g >= set.NumGroups {
		t.Errorf("controller stayed at full quality (group %d)", g)
	}
	if probeSec <= 0 {
		t.Error("no probe cost charged")
	}
}

func TestPlateauTuneRollsBack(t *testing.T) {
	set := carsSet(t, 48)
	task := synth.CoarseOnly(set.Profile)
	model, err := nn.ShuffleNetLike.Build(train.FeatureLen, task.NumClasses, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := model.Clone()
	st := &State{
		Set: set, Model: model, Task: task,
		Groups: []int{1, 5, set.NumGroups},
		LR:     0.05, Momentum: 0.9,
		Bandwidth:           10e6,
		ComputeImagesPerSec: 7000,
		Rng:                 rand.New(rand.NewSource(2)),
	}
	p := &PlateauController{ProbeSteps: 4, BatchSize: 16}
	g, probeSec, err := p.Tune(st)
	if err != nil {
		t.Fatal(err)
	}
	if g < 1 || g > set.NumGroups {
		t.Errorf("chose group %d", g)
	}
	if probeSec <= 0 {
		t.Error("no probe cost charged")
	}
	// The model must be rolled back exactly.
	for i := range before.W1 {
		if model.W1[i] != before.W1[i] {
			t.Fatal("probe updates were not rolled back")
		}
	}
}

func TestRunDynamicConvergesAndSwitches(t *testing.T) {
	set := carsSet(t, 96)
	task := synth.CoarseOnly(set.Profile)
	res, err := Run(set, Config{
		Model: nn.ShuffleNetLike, Task: task,
		Controller: &CosineController{Threshold: 0.9, TuneEvery: 6, WarmupEpochs: 2},
		Epochs:     16,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Must start at full quality.
	if res.Points[0].Group != set.NumGroups {
		t.Errorf("first epoch at group %d, want %d", res.Points[0].Group, set.NumGroups)
	}
	// On the coarse task the controller should eventually drop the group
	// and the rate should rise.
	last := res.Points[len(res.Points)-1]
	if last.Group >= set.NumGroups {
		t.Errorf("never switched off full quality")
	}
	if res.GroupSwitches == 0 {
		t.Error("no switches recorded")
	}
	var rateFull, rateLow float64
	for _, pt := range res.Points {
		if pt.Group == set.NumGroups && rateFull == 0 {
			rateFull = pt.ImagesPerSec
		}
		if pt.Group < set.NumGroups {
			rateLow = pt.ImagesPerSec
		}
	}
	if rateLow <= rateFull {
		t.Errorf("low-group rate %.0f not above full-quality rate %.0f", rateLow, rateFull)
	}
	if res.FinalAcc < 0.5 {
		t.Errorf("final accuracy %.2f", res.FinalAcc)
	}
}

func TestRunMixture(t *testing.T) {
	set := carsSet(t, 64)
	task := synth.CoarseOnly(set.Profile)
	res, err := Run(set, Config{
		Model: nn.ShuffleNetLike, Task: task,
		Controller: &CosineController{TuneEvery: 100, WarmupEpochs: 100}, // never tunes
		Epochs:     6,
		Seed:       5,
		MixWeight:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.FinalAcc <= 1.0/float64(task.NumClasses) {
		t.Errorf("mixture run at chance accuracy %.2f", res.FinalAcc)
	}
}

func TestDrawGroupDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	groups := []int{1, 2, 5, 10}
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[drawGroup(5, groups, 10, rng)]++
	}
	// Weight 10 vs 3 others → selected probability 10/13 ≈ 0.77.
	sel := float64(counts[5]) / n
	if sel < 0.73 || sel > 0.81 {
		t.Errorf("selected fraction %.3f, want ~0.77", sel)
	}
	for _, g := range []int{1, 2, 10} {
		frac := float64(counts[g]) / n
		if frac < 0.04 || frac > 0.12 {
			t.Errorf("group %d fraction %.3f, want ~0.077", g, frac)
		}
	}
	// Hard selection.
	if g := drawGroup(5, groups, 0, rng); g != 5 {
		t.Errorf("hard selection returned %d", g)
	}
}

func TestRunValidation(t *testing.T) {
	set := carsSet(t, 24)
	task := synth.Multiclass(set.Profile)
	if _, err := Run(set, Config{Model: nn.ResNetLike, Task: task, Epochs: 1}); err == nil {
		t.Error("nil controller accepted")
	}
	c := &CosineController{}
	if _, err := Run(set, Config{Model: nn.ResNetLike, Task: task, Controller: c, Epochs: 0}); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := Run(set, Config{Model: nn.ResNetLike, Task: task, Controller: c, Epochs: 1, Groups: []int{5, 2}}); err == nil {
		t.Error("non-increasing groups accepted")
	}
	if _, err := Run(set, Config{Model: nn.ResNetLike, Task: task, Controller: c, Epochs: 1, Groups: []int{1, 99}}); err == nil {
		t.Error("out-of-range group accepted")
	}
}
