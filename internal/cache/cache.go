// Package cache implements a PCR-aware record cache. The paper observes
// that PCRs "can reduce cache pressure since a subset of the data is used
// for training" (§5): a record cached at scan group g occupies only the
// prefix bytes of group g, and — because every quality level is a prefix of
// the same byte stream — a later request for a higher group can be served
// by fetching only the missing delta bytes and appending them to the cached
// prefix. Conventional record formats can do neither: their cache entries
// are all-or-nothing.
//
// The cache is an LRU over record prefixes with byte-budget eviction.
package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Fetcher reads a byte range of a record from backing storage. It is the
// integration point for both real files (os.File.ReadAt) and the iosim
// virtual-clock devices.
type Fetcher func(record int, offset, length int64) ([]byte, error)

// Stats counts cache activity.
type Stats struct {
	// Hits are requests fully served from cache.
	Hits int64
	// UpgradeHits are requests served by a delta read: the cached prefix
	// plus only the missing bytes.
	UpgradeHits int64
	// Misses are requests with no usable cached prefix.
	Misses int64
	// BytesFetched counts bytes read from backing storage.
	BytesFetched int64
	// BytesServed counts bytes returned to callers.
	BytesServed int64
	// Evictions counts evicted entries.
	Evictions int64
}

type entry struct {
	record int
	prefix []byte
	elem   *list.Element
}

// Cache is a byte-budgeted LRU of PCR record prefixes. The global mutex
// guards only in-memory state; backing-store fetches run outside it under a
// per-record lock, so concurrent Gets for different records overlap their
// I/O while duplicate Gets for the same record coalesce into one fetch.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[int]*entry
	lru      *list.List // front = most recent; values are record ids
	fetch    Fetcher
	stats    Stats
	// fetching serializes backing fetches per record. Entries are never
	// removed; the map is bounded by the record count of the dataset.
	fetching map[int]*sync.Mutex
}

// New builds a cache with the given byte capacity over the fetcher.
func New(capacity int64, fetch Fetcher) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive capacity %d", capacity)
	}
	if fetch == nil {
		return nil, fmt.Errorf("cache: nil fetcher")
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[int]*entry),
		lru:      list.New(),
		fetch:    fetch,
		fetching: make(map[int]*sync.Mutex),
	}, nil
}

// recordLock returns the per-record fetch mutex, creating it on first use.
func (c *Cache) recordLock(record int) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.fetching[record]
	if !ok {
		m = &sync.Mutex{}
		c.fetching[record] = m
	}
	return m
}

// serveLocked accounts a request served from the entry's prefix. Caller
// holds c.mu.
func (c *Cache) serveLocked(e *entry, prefixLen int64) []byte {
	c.lru.MoveToFront(e.elem)
	c.stats.BytesServed += prefixLen
	return e.prefix[:prefixLen:prefixLen]
}

// Get returns the first prefixLen bytes of the record, reading from the
// backing store only the bytes the cache does not already hold. The
// returned slice must not be modified.
func (c *Cache) Get(record int, prefixLen int64) ([]byte, error) {
	if prefixLen < 0 {
		return nil, fmt.Errorf("cache: negative prefix length")
	}

	// Fast path: a full hit costs only the global lock.
	c.mu.Lock()
	if e, ok := c.entries[record]; ok && int64(len(e.prefix)) >= prefixLen {
		c.stats.Hits++
		p := c.serveLocked(e, prefixLen)
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	// Slow path: a backing fetch is needed. Take the record's fetch lock so
	// concurrent requests for the same record don't fetch twice, then
	// re-check — a waiter may find the prefix already filled.
	rl := c.recordLock(record)
	rl.Lock()
	defer rl.Unlock()

	c.mu.Lock()
	var have int64
	if e, ok := c.entries[record]; ok {
		if int64(len(e.prefix)) >= prefixLen {
			c.stats.Hits++
			p := c.serveLocked(e, prefixLen)
			c.mu.Unlock()
			return p, nil
		}
		have = int64(len(e.prefix))
	}
	wasUpgrade := have > 0
	c.mu.Unlock()

	// Fetch the missing suffix without the global lock: only requests for
	// this record wait, others proceed.
	delta, err := c.fetch(record, have, prefixLen-have)
	if err != nil {
		return nil, err
	}
	if int64(len(delta)) != prefixLen-have {
		return nil, fmt.Errorf("cache: fetcher returned %d bytes, want %d", len(delta), prefixLen-have)
	}
	fetched := int64(len(delta))

	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[record]
	if !ok && have > 0 {
		// The base prefix was evicted (or invalidated) while we fetched the
		// delta. Growth is serialized by the record lock we hold, so the
		// entry cannot have changed any other way; re-fetch the base and
		// assemble the full prefix.
		c.mu.Unlock()
		base, err := c.fetch(record, 0, have)
		c.mu.Lock()
		if err != nil {
			return nil, err
		}
		if int64(len(base)) != have {
			return nil, fmt.Errorf("cache: fetcher returned %d bytes, want %d", len(base), have)
		}
		fetched += have
		delta = append(base, delta...)
		have = 0
		// The whole prefix came from backing store after all — count a
		// miss, not a delta-only upgrade.
		wasUpgrade = false
	}
	if wasUpgrade {
		c.stats.UpgradeHits++
	} else {
		c.stats.Misses++
	}
	c.stats.BytesFetched += fetched
	if e == nil {
		e = &entry{record: record, prefix: delta}
		e.elem = c.lru.PushFront(record)
		c.entries[record] = e
		c.used += int64(len(delta))
	} else {
		e.prefix = append(e.prefix, delta...)
		c.used += int64(len(delta))
	}
	// Serve (which moves the entry to the LRU front) before evicting:
	// eviction stops at the protected record, so the just-grown entry must
	// not be sitting at the back or nothing else gets evicted and the
	// byte budget is never enforced.
	p := c.serveLocked(e, prefixLen)
	c.evictLocked(record)
	return p, nil
}

// evictLocked drops least-recently-used entries until the budget holds,
// never evicting the protected record (the one just served).
func (c *Cache) evictLocked(protect int) {
	for c.used > c.capacity && c.lru.Len() > 1 {
		back := c.lru.Back()
		rec := back.Value.(int)
		if rec == protect {
			// The protected entry is LRU-last only when it is the sole
			// entry bigger than the budget; stop rather than evict it.
			return
		}
		e := c.entries[rec]
		c.used -= int64(len(e.prefix))
		delete(c.entries, rec)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
}

// Contains reports whether the cache holds at least prefixLen bytes of the
// record (without touching recency).
func (c *Cache) Contains(record int, prefixLen int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[record]
	return ok && int64(len(e.prefix)) >= prefixLen
}

// UsedBytes returns the bytes currently cached.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached records.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Invalidate drops one record's entry.
func (c *Cache) Invalidate(record int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[record]; ok {
		c.used -= int64(len(e.prefix))
		delete(c.entries, record)
		c.lru.Remove(e.elem)
	}
}
