package cache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// backing simulates record files of a fixed size with byte values derived
// from (record, offset) so slices are verifiable.
type backing struct {
	mu      sync.Mutex
	fetches int64
	bytes   int64
	fail    bool
}

func (bk *backing) fetch(record int, offset, length int64) ([]byte, error) {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if bk.fail {
		return nil, fmt.Errorf("backing: injected failure")
	}
	bk.fetches++
	bk.bytes += length
	out := make([]byte, length)
	for i := range out {
		out[i] = byte(record*31 + int(offset) + i)
	}
	return out, nil
}

func wantBytes(record int, n int64) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(record*31 + i)
	}
	return out
}

func TestMissThenHit(t *testing.T) {
	bk := &backing{}
	c, err := New(1<<20, bk.fetch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes(3, 100)) {
		t.Fatal("wrong bytes on miss")
	}
	got, err = c.Get(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes(3, 100)) {
		t.Fatal("wrong bytes on hit")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.UpgradeHits != 0 {
		t.Errorf("stats = %+v", s)
	}
	if bk.bytes != 100 {
		t.Errorf("backing read %d bytes, want 100", bk.bytes)
	}
}

func TestUpgradeReadsOnlyDelta(t *testing.T) {
	bk := &backing{}
	c, _ := New(1<<20, bk.fetch)
	// Read at scan group ~2 (say 100 bytes), then upgrade to ~5 (300).
	if _, err := c.Get(7, 100); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(7, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes(7, 300)) {
		t.Fatal("upgrade returned wrong bytes")
	}
	if bk.bytes != 300 {
		t.Errorf("backing read %d bytes total, want 300 (100 + 200 delta)", bk.bytes)
	}
	s := c.Stats()
	if s.UpgradeHits != 1 {
		t.Errorf("stats = %+v", s)
	}
	// Downgrade request after upgrade is a pure hit.
	if _, err := c.Get(7, 50); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != 1 {
		t.Errorf("downgrade not a hit: %+v", c.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	bk := &backing{}
	c, _ := New(250, bk.fetch)
	for r := 0; r < 3; r++ {
		if _, err := c.Get(r, 100); err != nil {
			t.Fatal(err)
		}
	}
	// Budget 250 holds two 100-byte entries; record 0 must be evicted.
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Contains(0, 1) {
		t.Error("record 0 not evicted")
	}
	if !c.Contains(2, 100) || !c.Contains(1, 100) {
		t.Error("recent records evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
	// Touch record 1, add record 3: record 2 is now LRU and evicted.
	if _, err := c.Get(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(3, 100); err != nil {
		t.Fatal(err)
	}
	if c.Contains(2, 1) {
		t.Error("LRU order not respected")
	}
	if !c.Contains(1, 100) {
		t.Error("recently touched record evicted")
	}
}

func TestOversizedEntryKept(t *testing.T) {
	bk := &backing{}
	c, _ := New(100, bk.fetch)
	got, err := c.Get(1, 500) // bigger than the whole budget
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatal("oversized read truncated")
	}
	// The just-served entry must survive (callers hold the slice anyway).
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	bk := &backing{}
	c, _ := New(1<<20, bk.fetch)
	c.Get(1, 100)
	c.Invalidate(1)
	if c.Contains(1, 1) || c.UsedBytes() != 0 {
		t.Error("invalidate did not drop entry")
	}
	c.Invalidate(99) // no-op
}

func TestFetchErrorPropagates(t *testing.T) {
	bk := &backing{fail: true}
	c, _ := New(1<<20, bk.fetch)
	if _, err := c.Get(1, 10); err == nil {
		t.Error("fetch error swallowed")
	}
	if c.Len() != 0 {
		t.Error("failed fetch left an entry")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, func(int, int64, int64) ([]byte, error) { return nil, nil }); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(10, nil); err == nil {
		t.Error("nil fetcher accepted")
	}
	bk := &backing{}
	c, _ := New(10, bk.fetch)
	if _, err := c.Get(1, -1); err == nil {
		t.Error("negative length accepted")
	}
}

// TestCachePressureScenario reproduces the paper's claim: training at scan
// group 2 lets ~5x more records fit in cache than full-quality training,
// and an occasional full-quality consumer pays only delta reads.
func TestCachePressureScenario(t *testing.T) {
	bk := &backing{}
	const records = 100
	const fullLen, scan2Len = 10000, 2000
	// A budget of 50 full records: a full-quality epoch could cache only
	// half the dataset, but the scan-2 working set (100 × 2000 bytes)
	// fits entirely with room for upgrades.
	c, _ := New(50*fullLen, bk.fetch)

	// Scan-2 epoch: every record fits.
	for r := 0; r < records; r++ {
		if _, err := c.Get(r, scan2Len); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != records {
		t.Fatalf("scan-2 epoch: only %d records cached", c.Len())
	}
	// Second scan-2 epoch: all hits, zero backing traffic.
	before := bk.bytes
	for r := 0; r < records; r++ {
		if _, err := c.Get(r, scan2Len); err != nil {
			t.Fatal(err)
		}
	}
	if bk.bytes != before {
		t.Errorf("second epoch fetched %d bytes, want 0", bk.bytes-before)
	}
	// Upgrading 10 records to full quality reads only the deltas.
	before = bk.bytes
	for r := 0; r < 10; r++ {
		if _, err := c.Get(r, fullLen); err != nil {
			t.Fatal(err)
		}
	}
	wantDelta := int64(10 * (fullLen - scan2Len))
	if bk.bytes-before != wantDelta {
		t.Errorf("upgrades fetched %d bytes, want %d", bk.bytes-before, wantDelta)
	}
}

func TestConcurrentGets(t *testing.T) {
	bk := &backing{}
	c, _ := New(1<<20, bk.fetch)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				rec := rng.Intn(10)
				n := int64(rng.Intn(400) + 1)
				got, err := c.Get(rec, n)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, wantBytes(rec, n)) {
					errs <- fmt.Errorf("bad bytes for rec %d len %d", rec, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFetchesOverlapAcrossRecords: a slow fetch of one record must not
// block a Get for a different record — the global lock is not held across
// backing I/O.
func TestFetchesOverlapAcrossRecords(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	fetch := func(record int, offset, length int64) ([]byte, error) {
		if record == 1 {
			close(entered)
			<-release // block record 1's fetch until told otherwise
		}
		out := make([]byte, length)
		for i := range out {
			out[i] = byte(record*31 + int(offset) + i)
		}
		return out, nil
	}
	c, err := New(1<<20, fetch)
	if err != nil {
		t.Fatal(err)
	}

	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		if _, err := c.Get(1, 64); err != nil {
			t.Error(err)
		}
	}()
	<-entered // record 1 is mid-fetch

	// A Get for another record must complete while record 1 is stuck.
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		got, err := c.Get(2, 32)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, wantBytes(2, 32)) {
			t.Error("record 2 bytes wrong")
		}
	}()
	select {
	case <-done2:
	case <-done1:
		t.Fatal("record 1 finished while its fetch should be blocked")
	}
	close(release)
	<-done1
	if !c.Contains(1, 64) {
		t.Fatal("record 1 not cached after its fetch completed")
	}
}

// TestDuplicateGetsCoalesce: concurrent Gets for the same cold record
// perform one backing fetch, not N.
func TestDuplicateGetsCoalesce(t *testing.T) {
	bk := &backing{}
	c, err := New(1<<20, bk.fetch)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.Get(7, 128)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, wantBytes(7, 128)) {
				t.Error("wrong bytes")
			}
		}()
	}
	wg.Wait()
	bk.mu.Lock()
	fetches := bk.fetches
	bk.mu.Unlock()
	if fetches != 1 {
		t.Fatalf("%d backing fetches for 8 identical Gets, want 1", fetches)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 7 {
		t.Fatalf("stats = %+v, want 1 miss and 7 hits", st)
	}
}

// TestEvictionDuringUpgradeReassembles: if a record's base prefix is
// evicted while its delta is being fetched, Get must still return the full
// correct prefix.
func TestEvictionDuringUpgradeReassembles(t *testing.T) {
	var c *Cache
	evictOnce := sync.Once{}
	fetch := func(record int, offset, length int64) ([]byte, error) {
		if record == 1 && offset > 0 {
			// Mid-upgrade: drop the base from the cache, as a concurrent
			// eviction would.
			evictOnce.Do(func() { c.Invalidate(1) })
		}
		out := make([]byte, length)
		for i := range out {
			out[i] = byte(record*31 + int(offset) + i)
		}
		return out, nil
	}
	c2, err := New(1<<20, fetch)
	if err != nil {
		t.Fatal(err)
	}
	c = c2
	if _, err := c.Get(1, 64); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(1, 256) // upgrade; base invalidated mid-fetch
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes(1, 256)) {
		t.Fatal("reassembled prefix is wrong")
	}
	if !c.Contains(1, 256) {
		t.Fatal("record not cached after reassembly")
	}
	// The whole prefix was re-fetched, so this counts as a miss — not as a
	// delta-only upgrade.
	if st := c.Stats(); st.UpgradeHits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 misses and 0 upgrade hits", st)
	}
}

// TestUpgradeOfLRUBackEnforcesBudget: upgrading the record at the LRU back
// must still evict other entries to hold the byte budget — the grown entry
// moves to the front before eviction runs.
func TestUpgradeOfLRUBackEnforcesBudget(t *testing.T) {
	bk := &backing{}
	c, err := New(100, bk.fetch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(1, 60); err != nil { // record 1 cached, 60 bytes
		t.Fatal(err)
	}
	if _, err := c.Get(2, 30); err != nil { // record 2 cached; record 1 is LRU-back
		t.Fatal(err)
	}
	if _, err := c.Get(1, 80); err != nil { // upgrade the back record: 110 > 100
		t.Fatal(err)
	}
	if used := c.UsedBytes(); used > 100 {
		t.Fatalf("cache over budget after upgrading the LRU-back record: used=%d > capacity=100", used)
	}
	if c.Contains(2, 1) {
		t.Fatal("record 2 should have been evicted to fit record 1's upgrade")
	}
	if !c.Contains(1, 80) {
		t.Fatal("upgraded record 1 missing")
	}
}
