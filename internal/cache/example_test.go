package cache_test

import (
	"fmt"
	"log"

	"repro/internal/cache"
)

// Example shows the delta-upgrade property: after caching a record's scan-2
// prefix, a scan-5 request fetches only the missing bytes.
func Example() {
	var fetched int64
	backing := make([]byte, 10000) // one record's full bytes
	fetch := func(record int, offset, length int64) ([]byte, error) {
		fetched += length
		return backing[offset : offset+length], nil
	}
	c, err := cache.New(1<<20, fetch)
	if err != nil {
		log.Fatal(err)
	}

	const scan2Len, scan5Len = 2000, 6000
	if _, err := c.Get(0, scan2Len); err != nil { // cold read
		log.Fatal(err)
	}
	fmt.Printf("after scan-2 read: fetched %d bytes\n", fetched)

	if _, err := c.Get(0, scan5Len); err != nil { // upgrade: delta only
		log.Fatal(err)
	}
	fmt.Printf("after scan-5 upgrade: fetched %d bytes (delta was %d)\n", fetched, scan5Len-scan2Len)

	if _, err := c.Get(0, scan2Len); err != nil { // downgrade: pure hit
		log.Fatal(err)
	}
	s := c.Stats()
	fmt.Printf("hits=%d upgrades=%d misses=%d\n", s.Hits, s.UpgradeHits, s.Misses)

	// Output:
	// after scan-2 read: fetched 2000 bytes
	// after scan-5 upgrade: fetched 6000 bytes (delta was 4000)
	// hits=1 upgrades=1 misses=1
}
