// Package cluster is the placement layer of the serving fleet: a
// consistent-hash ring that maps every record name to an owner and an
// ordered set of replicas among the fleet's members, plus the membership
// document (Info) the /cluster endpoint serves and clients route by.
//
// The ring is shared verbatim by servers and clients — both sides build it
// from the same member list, and placement is a pure function of that list,
// so a server deciding "is this record mine to serve?" and a client
// deciding "who do I ask for this record?" always agree without any
// coordination traffic. Determinism is load-bearing: the member list may
// arrive in any order (flag order on one server, JSON order on a client)
// and the ring must come out identical, which New guarantees by sorting
// members before placing virtual nodes.
//
// Consistent hashing (vs. mod-N placement) keeps the fleet kill-tolerant
// and growable: removing or adding one member moves only ~1/N of the
// records, so a replica set computed before a membership change still
// mostly holds after it, and a client with a slightly stale ring finds the
// right member on all but a sliver of records (and is redirected by the
// server's 421 on the rest).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count used when a Ring
// is built with vnodes <= 0. 128 points per member keeps the expected
// per-member load within a few percent of uniform for small fleets while
// the ring stays tiny (a few KB).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a member set. Build one
// with New; all methods are safe for concurrent use.
type Ring struct {
	members []string // sorted, deduplicated
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the hash circle owned by a
// member (indexed into members to keep the ring compact).
type point struct {
	hash   uint64
	member int
}

// New builds a ring over the given members with the given number of
// virtual nodes per member (DefaultVirtualNodes when vnodes <= 0). The
// member list is sorted and deduplicated, so any permutation of the same
// set yields an identical ring. An empty member set is an error.
func New(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	sorted = dedup(sorted)
	if len(sorted) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	for _, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
	}
	r := &Ring{
		members: sorted,
		points:  make([]point, 0, len(sorted)*vnodes),
	}
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(m + "#" + strconv.Itoa(v)), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between two members' virtual nodes is broken by
		// member order, keeping the sort — and therefore placement — total
		// and deterministic.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// hash64 is the ring's point and key hash: FNV-1a 64 passed through a
// splitmix64 finalizer. FNV alone avalanches poorly on short, similar
// strings (member URLs differing in one port digit cluster badly); the
// finalizer fixes the spread. Both stages are stable across processes,
// architectures, and Go releases — unlike maphash — and cross-process
// placement agreement is the whole point.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Members returns the ring's member set in sorted order. The returned
// slice is shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member that owns the given key: the member of the
// first virtual node at or clockwise from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.search(key)].member]
}

// Replicas returns the n distinct members responsible for the key, owner
// first, walking clockwise from the key's position. n is clamped to the
// member count. The owner is always element 0, so Replicas(key, 1)[0] ==
// Owner(key).
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 {
		n = 1
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// search returns the index of the first point at or clockwise from the
// key's hash (wrapping past the top of the circle).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Info is the membership document a fleet server publishes at /cluster and
// a cluster-aware client routes by. It is deliberately tiny: the ring
// itself is never shipped — both sides rebuild it from Members, which
// Ring's determinism makes safe.
type Info struct {
	// Members are the base URLs of every fleet member (including the
	// publishing server), in sorted order.
	Members []string `json:"members"`
	// Replication is the fleet's replica count per record (owner
	// included); 1 means no replication.
	Replication int `json:"replication"`
	// Self is the publishing server's own member URL — which entry of
	// Members answered this request.
	Self string `json:"self"`
	// Epoch fingerprints (Members, Replication): two Infos with equal
	// Epochs describe the same placement, so a client can poll /cluster
	// with If-None-Match and rebuild its ring only when the epoch moves.
	Epoch string `json:"epoch"`
}

// Epoch fingerprints a membership: a stable hash of the sorted member list
// and the replication factor. Any permutation of the same member set
// yields the same epoch.
func Epoch(members []string, replication int) string {
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(replication))
	h.Write(buf[:])
	for _, m := range sorted {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(m)))
		h.Write(buf[:])
		h.Write([]byte(m))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
