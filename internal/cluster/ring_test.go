package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func memberURLs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 8100+i)
	}
	return out
}

// TestPlacementDeterministic is the acceptance property: the same member
// set — in any order, built by a client or any server — yields the same
// ring, and therefore the same owner and replica set for every record.
// It hashes a full synthetic record set through rings built from shuffled
// member lists and requires identical placement.
func TestPlacementDeterministic(t *testing.T) {
	members := memberURLs(5)
	ref, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := make([]string, 500)
	for i := range records {
		records[i] = fmt.Sprintf("records/%06d.pcr", i)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Members(), ref.Members()) {
			t.Fatalf("trial %d: member order leaked into the ring: %v vs %v", trial, r.Members(), ref.Members())
		}
		for _, rec := range records {
			if got, want := r.Owner(rec), ref.Owner(rec); got != want {
				t.Fatalf("trial %d: owner of %s differs: %s vs %s", trial, rec, got, want)
			}
			if got, want := r.Replicas(rec, 3), ref.Replicas(rec, 3); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: replicas of %s differ: %v vs %v", trial, rec, got, want)
			}
		}
	}
}

func TestReplicasDistinctOwnerFirst(t *testing.T) {
	r, err := New(memberURLs(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("rec-%d", i)
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %v", reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("replica 0 %s is not the owner %s", reps[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("duplicate member in replica set %v", reps)
			}
			seen[m] = true
		}
	}
	// n past the member count clamps; n <= 0 means owner only.
	if reps := r.Replicas("x", 99); len(reps) != 4 {
		t.Fatalf("clamped replicas: want 4, got %v", reps)
	}
	if reps := r.Replicas("x", 0); len(reps) != 1 || reps[0] != r.Owner("x") {
		t.Fatalf("n=0 should yield the owner, got %v", reps)
	}
}

// TestBalance checks virtual nodes do their job: across many keys, no
// member's share strays wildly from uniform.
func TestBalance(t *testing.T) {
	members := memberURLs(4)
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("records/%06d.pcr", i))]++
	}
	want := keys / len(members)
	for m, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("member %s owns %d of %d keys (uniform would be %d): bad spread %v", m, n, keys, want, counts)
		}
	}
}

// TestSingleMember: the degenerate one-server "fleet" owns everything —
// the shape a cluster client synthesizes for a non-fleet server.
func TestSingleMember(t *testing.T) {
	r, err := New([]string{"http://a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != "http://a" {
		t.Fatalf("owner = %s", got)
	}
	if reps := r.Replicas("anything", 2); len(reps) != 1 {
		t.Fatalf("replicas = %v", reps)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty member set should fail")
	}
	if _, err := New([]string{""}, 0); err == nil {
		t.Fatal("empty member name should fail")
	}
}

func TestEpoch(t *testing.T) {
	a := Epoch([]string{"http://a", "http://b"}, 2)
	b := Epoch([]string{"http://b", "http://a"}, 2)
	if a != b {
		t.Fatalf("epoch depends on member order: %s vs %s", a, b)
	}
	if Epoch([]string{"http://a", "http://b"}, 3) == a {
		t.Fatal("epoch ignores replication")
	}
	if Epoch([]string{"http://a"}, 2) == a {
		t.Fatal("epoch ignores membership")
	}
	// The length framing keeps ["ab","c"] and ["a","bc"] distinct.
	if Epoch([]string{"ab", "c"}, 1) == Epoch([]string{"a", "bc"}, 1) {
		t.Fatal("epoch concatenation ambiguity")
	}
}

// TestMinimalMovement: removing one member from the ring must reassign
// only the keys that member owned — the consistent-hashing property that
// makes membership changes cheap.
func TestMinimalMovement(t *testing.T) {
	members := memberURLs(5)
	full, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New(members[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[4]
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("records/%06d.pcr", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != removed && before != after {
			t.Fatalf("key %s moved from surviving member %s to %s", key, before, after)
		}
	}
}
