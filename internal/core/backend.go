package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Backend abstracts byte-level access to the objects of a dataset — record
// files for the PCR layout, the framed data file for TFRecord, individual
// JPEGs for file-per-image. Every format read path goes through a Backend,
// so the same Dataset code serves local directories and remote prefix
// servers (internal/serve). The paper's central operation — a sequential
// prefix read of a record — maps onto ReadRange with offset zero; delta
// cache upgrades (§5) map onto ReadRange at the cached length.
//
// Object names are slash-separated relative paths as produced by List.
type Backend interface {
	// Open returns a reader over the whole named object.
	Open(name string) (io.ReadCloser, error)
	// ReadRange reads exactly length bytes at offset from the named
	// object. A range extending past the end of the object is structural
	// damage from the caller's perspective (the record index promised
	// those bytes) and is reported as ErrCorrupt.
	ReadRange(name string, offset, length int64) ([]byte, error)
	// List enumerates the backend's object names in lexical order.
	List() ([]string, error)
	// Close releases the backend.
	Close() error
}

// DirBackend serves a local dataset directory — the Backend every format
// uses by default. It is stateless per call (files are opened and closed
// per read), matching the paper's loader which issues independent
// positioned reads from worker threads.
type DirBackend struct {
	dir string
}

// NewDirBackend returns a Backend rooted at dir.
func NewDirBackend(dir string) *DirBackend { return &DirBackend{dir: dir} }

// Dir returns the backing directory.
func (b *DirBackend) Dir() string { return b.dir }

func (b *DirBackend) path(name string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
		return "", fmt.Errorf("core: object name %q escapes the dataset directory", name)
	}
	return filepath.Join(b.dir, clean), nil
}

// Open opens the named object for sequential reading.
func (b *DirBackend) Open(name string) (io.ReadCloser, error) {
	p, err := b.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return f, nil
}

// ReadRange reads [offset, offset+length) of the named object. Short reads
// are reported as ErrCorrupt: the caller asked for bytes the index said
// exist.
func (b *DirBackend) ReadRange(name string, offset, length int64) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("core: negative range length %d for %s", length, name)
	}
	p, err := b.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	buf := make([]byte, length)
	if n, err := f.ReadAt(buf, offset); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("core: reading %s: %w: truncated object (got %d of %d bytes at offset %d)",
				name, ErrCorrupt, n, length, offset)
		}
		return nil, fmt.Errorf("core: reading %s: %w", name, err)
	}
	return buf, nil
}

// List walks the directory and returns all regular-file names (relative,
// slash-separated) in lexical order.
func (b *DirBackend) List() ([]string, error) {
	var names []string
	err := filepath.WalkDir(b.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(b.dir, p)
		if err != nil {
			return err
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Close is a no-op: DirBackend holds no descriptors between calls.
func (b *DirBackend) Close() error { return nil }
