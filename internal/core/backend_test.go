package core

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestDirBackendReadRange(t *testing.T) {
	dir := t.TempDir()
	content := []byte("0123456789abcdef")
	if err := os.WriteFile(filepath.Join(dir, "obj"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	b := NewDirBackend(dir)

	got, err := b.ReadRange("obj", 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "456789" {
		t.Fatalf("ReadRange = %q", got)
	}
	// A range past EOF is structural damage: the index promised bytes the
	// object does not have.
	if _, err := b.ReadRange("obj", 10, 100); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("past-EOF ReadRange error = %v, want ErrCorrupt", err)
	}
	if _, err := b.ReadRange("missing", 0, 1); err == nil {
		t.Fatal("ReadRange of missing object succeeded")
	}
	// Names must not escape the dataset directory.
	for _, name := range []string{"../obj", "/etc/hosts", "a/../../obj"} {
		if _, err := b.ReadRange(name, 0, 1); err == nil {
			t.Fatalf("ReadRange(%q) escaped the backend root", name)
		}
	}

	rc, err := b.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(all) != string(content) {
		t.Fatalf("Open/ReadAll = %q, %v", all, err)
	}

	names, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "obj" {
		t.Fatalf("List = %v", names)
	}
}

func TestIndexRoundTripAndValidation(t *testing.T) {
	ix := &Index{
		NumGroups: 3,
		NumImages: 12,
		Records: []RecordInfo{
			{Name: "record-00000.pcr", Samples: 8, Prefixes: []int64{100, 200, 350, 500}},
			{Name: "record-00001.pcr", Samples: 4, Prefixes: []int64{90, 180, 330, 470}},
		},
	}
	data, err := EncodeIndex(ix)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGroups != ix.NumGroups || back.NumImages != ix.NumImages || len(back.Records) != 2 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Records[1].Name != "record-00001.pcr" || back.Records[1].Prefixes[3] != 470 {
		t.Fatalf("round trip damaged records: %+v", back.Records)
	}

	for _, bad := range []string{
		`{"records":[{"name":"","samples":1,"prefixes":[1]}]}`,
		`{"records":[{"name":"r","samples":1,"prefixes":[]}]}`,
		`{"records":[{"name":"r","samples":1,"prefixes":[10,5]}]}`,
		`{"records":[{"name":"r","samples":1,"prefixes":[-10,-5]}]}`,
		`not json`,
	} {
		if _, err := ParseIndex([]byte(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ParseIndex(%q) error = %v, want ErrCorrupt", bad, err)
		}
	}
}

// TestOpenDatasetIndexMatchesLocal: a dataset opened from its own exported
// index over a DirBackend reads identically to the kvstore-backed open.
func TestOpenDatasetIndexMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	samples := buildSamples(t, 10)
	w, err := CreateDataset(dir, &DatasetOptions{ImagesPerRecord: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	local, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	data, err := EncodeIndex(local.Index())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ParseIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	viaIndex, err := OpenDatasetIndex(ix, NewDirBackend(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer viaIndex.Close()

	if viaIndex.NumRecords() != local.NumRecords() || viaIndex.NumImages() != local.NumImages() {
		t.Fatalf("index-opened dataset disagrees: %d/%d records, %d/%d images",
			viaIndex.NumRecords(), local.NumRecords(), viaIndex.NumImages(), local.NumImages())
	}
	for i := 0; i < local.NumRecords(); i++ {
		for g := 0; g <= local.NumGroups; g++ {
			a, err := local.RecordPrefixLen(i, g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := viaIndex.RecordPrefixLen(i, g)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("record %d group %d: prefix len %d vs %d", i, g, a, b)
			}
		}
		pa, ma, err := local.ReadRecordPrefix(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		pb, mb, err := viaIndex.ReadRecordPrefix(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(pa) != string(pb) || len(ma.Samples) != len(mb.Samples) {
			t.Fatalf("record %d: prefix reads differ between kvstore open and index open", i)
		}
	}
}
