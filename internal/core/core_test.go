package core

import (
	"bytes"
	"image"
	"testing"

	"repro/internal/jpegc"
	"repro/internal/mssim"
	"repro/internal/synth"
)

// buildSamples encodes n synthetic images as baseline JPEG.
func buildSamples(t testing.TB, n int) []Sample {
	t.Helper()
	p := synth.Cars
	p.NumImages = n
	p.ImageSize = 48
	ds, err := synth.Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]synth.Sample(nil), ds.Train...), ds.Test...)
	var out []Sample
	for _, s := range all[:n] {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: p.JPEGQuality})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Sample{ID: int64(s.ID), Label: int64(s.Label), JPEG: data})
	}
	return out
}

func writeTestRecord(t testing.TB, samples []Sample) ([]byte, *RecordMeta) {
	t.Helper()
	var buf bytes.Buffer
	meta, err := WriteRecord(&buf, samples)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), meta
}

func TestWriteRecordAndParse(t *testing.T) {
	samples := buildSamples(t, 6)
	data, meta := writeTestRecord(t, samples)

	if meta.NumGroups != 10 {
		t.Fatalf("NumGroups = %d, want 10", meta.NumGroups)
	}
	if len(meta.Samples) != 6 {
		t.Fatalf("samples = %d", len(meta.Samples))
	}
	if meta.TotalLen() != int64(len(data)) {
		t.Errorf("TotalLen = %d, file is %d bytes", meta.TotalLen(), len(data))
	}
	// Reparse from the file bytes.
	meta2, err := ParseRecordMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range meta.Samples {
		if meta.Samples[i].ID != meta2.Samples[i].ID || meta.Samples[i].Label != meta2.Samples[i].Label {
			t.Errorf("sample %d identity mismatch", i)
		}
	}
	// Metadata-only prefix must be parseable.
	p0, err := meta.PrefixLen(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRecordMeta(data[:p0]); err != nil {
		t.Errorf("metadata-only prefix: %v", err)
	}
}

func TestEveryPrefixDecodesEveryImage(t *testing.T) {
	samples := buildSamples(t, 4)
	data, meta := writeTestRecord(t, samples)
	for g := 1; g <= meta.NumGroups; g++ {
		need, err := meta.PrefixLen(g)
		if err != nil {
			t.Fatal(err)
		}
		prefix := data[:need]
		for i := range meta.Samples {
			img, err := meta.DecodeSample(prefix, i, g)
			if err != nil {
				t.Fatalf("group %d sample %d: %v", g, i, err)
			}
			if img.Bounds().Dx() != 48 {
				t.Fatalf("group %d sample %d: bad size %v", g, i, img.Bounds())
			}
		}
	}
}

func TestQualityMonotoneInScanGroup(t *testing.T) {
	samples := buildSamples(t, 3)
	data, meta := writeTestRecord(t, samples)
	full := data[:meta.TotalLen()]
	for i := range meta.Samples {
		ref, err := meta.DecodeSample(full, i, meta.NumGroups)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for _, g := range []int{1, 2, 5, 10} {
			need, _ := meta.PrefixLen(g)
			img, err := meta.DecodeSample(data[:need], i, g)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := mssim.MSSIM(img, ref)
			if err != nil {
				t.Fatal(err)
			}
			if sim < prev-0.02 {
				t.Errorf("sample %d: MSSIM dropped at group %d: %.4f < %.4f", i, g, sim, prev)
			}
			if sim > prev {
				prev = sim
			}
		}
		if prev < 0.999 {
			t.Errorf("sample %d: full-quality MSSIM %.4f, want ~1", i, prev)
		}
	}
}

func TestFullQualityMatchesOriginal(t *testing.T) {
	// Reading all scan groups must reproduce exactly the original
	// coefficients (lossless rearrangement).
	samples := buildSamples(t, 2)
	data, meta := writeTestRecord(t, samples)
	for i, s := range samples {
		orig, err := jpegc.DecodeCoeffs(s.JPEG)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := meta.SampleJPEG(data, i, meta.NumGroups)
		if err != nil {
			t.Fatal(err)
		}
		got, err := jpegc.DecodeCoeffs(stream)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(orig) {
			t.Errorf("sample %d: coefficients differ from original", i)
		}
	}
}

func TestNoSpaceOverhead(t *testing.T) {
	// The PCR record must be within 10% of the sum of progressive images
	// (metadata is small) and within ~15% of the baseline dataset.
	samples := buildSamples(t, 16)
	data, _ := writeTestRecord(t, samples)
	var progTotal, baseTotal int
	for _, s := range samples {
		prog, err := jpegc.Transcode(s.JPEG, &jpegc.Options{Progressive: true})
		if err != nil {
			t.Fatal(err)
		}
		progTotal += len(prog)
		baseTotal += len(s.JPEG)
	}
	if r := float64(len(data)) / float64(progTotal); r > 1.10 {
		t.Errorf("PCR/progressive size ratio = %.3f", r)
	}
	if r := float64(len(data)) / float64(baseTotal); r > 1.15 {
		t.Errorf("PCR/baseline size ratio = %.3f (pcr %d, base %d)", r, len(data), baseTotal)
	}
}

func TestShortPrefixRejected(t *testing.T) {
	samples := buildSamples(t, 2)
	data, meta := writeTestRecord(t, samples)
	need, _ := meta.PrefixLen(3)
	if _, err := meta.SampleJPEG(data[:need-1], 0, 3); err == nil {
		t.Error("short prefix accepted")
	}
	if _, err := meta.SampleJPEG(data, 0, 0); err == nil {
		t.Error("scan group 0 image read accepted")
	}
	if _, err := meta.SampleJPEG(data, 99, 1); err == nil {
		t.Error("bad sample index accepted")
	}
}

func TestParseRejectsDamage(t *testing.T) {
	samples := buildSamples(t, 2)
	data, _ := writeTestRecord(t, samples)
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ParseRecordMeta(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ParseRecordMeta(data[:6]); err == nil {
		t.Error("short header accepted")
	}
	if _, err := ParseRecordMeta(data[:20]); err == nil {
		t.Error("truncated metadata accepted")
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRecord(&buf, nil); err == nil {
		t.Error("empty record accepted")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	samples := buildSamples(t, 10)
	w, err := CreateDataset(dir, &DatasetOptions{ImagesPerRecord: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.NumRecords() != 3 { // 4+4+2
		t.Fatalf("records = %d, want 3", ds.NumRecords())
	}
	if ds.NumImages() != 10 {
		t.Fatalf("images = %d", ds.NumImages())
	}
	if ds.NumGroups != 10 {
		t.Fatalf("groups = %d", ds.NumGroups)
	}

	// Check RecordPrefixLen agrees with on-disk metadata and scan-group
	// reads decode labeled images.
	seen := map[int64]bool{}
	for r := 0; r < ds.NumRecords(); r++ {
		for _, g := range []int{1, 5, 10} {
			decoded, err := ds.ReadRecordAt(r, g)
			if err != nil {
				t.Fatalf("record %d group %d: %v", r, g, err)
			}
			n, _ := ds.RecordSamples(r)
			if len(decoded) != n {
				t.Fatalf("record %d: %d decoded, want %d", r, len(decoded), n)
			}
			for _, d := range decoded {
				if g == 10 {
					seen[d.ID] = true
				}
				if d.Img == nil {
					t.Fatal("nil image")
				}
			}
		}
		// Prefix lengths must be strictly increasing in g.
		prev := int64(-1)
		for g := 0; g <= ds.NumGroups; g++ {
			n, err := ds.RecordPrefixLen(r, g)
			if err != nil {
				t.Fatal(err)
			}
			if n <= prev {
				t.Fatalf("record %d: prefix(%d)=%d not increasing", r, g, n)
			}
			prev = n
		}
	}
	if len(seen) != 10 {
		t.Errorf("saw %d unique ids, want 10", len(seen))
	}
	// Labels must match the originals.
	decoded, err := ds.ReadRecordAt(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decoded {
		if d.Label != samples[i].Label {
			t.Errorf("sample %d label %d, want %d", i, d.Label, samples[i].Label)
		}
	}
}

func TestOpenDatasetMissing(t *testing.T) {
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Error("empty dir accepted as dataset")
	}
}

func TestGrayscaleRecord(t *testing.T) {
	// Grayscale images have 6 scans; the record must still work with later
	// groups empty.
	img := image.NewGray(image.Rect(0, 0, 32, 32))
	for i := range img.Pix {
		img.Pix[i] = uint8(i * 7 % 256)
	}
	data, err := jpegc.Encode(img, &jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	meta, err := WriteRecord(&buf, []Sample{{ID: 1, Label: 2, JPEG: data}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumGroups != 6 {
		t.Fatalf("gray NumGroups = %d, want 6", meta.NumGroups)
	}
	for g := 1; g <= 6; g++ {
		need, _ := meta.PrefixLen(g)
		if _, err := meta.DecodeSample(buf.Bytes()[:need], 0, g); err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
	}
}
