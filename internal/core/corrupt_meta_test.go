package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kvstore"
)

// A corrupt metadata database is structural damage to the dataset:
// OpenDataset must report it as core.ErrCorrupt (the facade contract),
// not leak kvstore's private sentinel unwrapped.
func TestOpenDatasetCorruptMetadata(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateDataset(dir, &DatasetOptions{ImagesPerRecord: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range buildSamples(t, 8) {
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Seal the writer's segment by opening and closing the store once:
	// that creates a successor segment, so the damage below lands in a
	// non-final segment, where replay must fail rather than apply the
	// final-segment torn-tail (crash recovery) truncation.
	db, err := kvstore.Open(filepath.Join(dir, "meta"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the first record of the first metadata segment.
	segs, err := filepath.Glob(filepath.Join(dir, "meta", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no metadata segments found: %v", err)
	}
	seg := segs[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 32 {
		t.Fatalf("segment unexpectedly small: %d bytes", len(data))
	}
	data[20] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenDataset(dir)
	if err == nil {
		t.Fatal("OpenDataset succeeded on a corrupt metadata database")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenDataset error %v is not core.ErrCorrupt", err)
	}
	// The kvstore detail stays reachable for diagnostics.
	if !errors.Is(err, kvstore.ErrCorrupt) {
		t.Fatalf("OpenDataset error %v lost the kvstore cause", err)
	}
}
