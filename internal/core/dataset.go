package core

import (
	"errors"
	"fmt"
	"image"
	"os"
	"path/filepath"

	"repro/internal/kvstore"
	"repro/internal/wire"
)

// mapKVErr lifts kvstore's private error namespace onto the facade's:
// a corrupt metadata database is structural damage to the dataset, so
// callers' errors.Is(err, ErrCorrupt) dispatch must see it as such.
// kvstore itself keeps its own sentinel (it predates — and must not
// import — this package); this boundary is where the two meet.
func mapKVErr(err error) error {
	if errors.Is(err, kvstore.ErrCorrupt) {
		return fmt.Errorf("core: %w: metadata database: %w", ErrCorrupt, err)
	}
	return err
}

// DatasetOptions configure dataset creation.
type DatasetOptions struct {
	// ImagesPerRecord is the record batching factor (the paper uses ~1024
	// images per record at ImageNet scale; pick smaller for small datasets).
	ImagesPerRecord int
	// ScanGroups, when positive, coalesces progressive scans into that many
	// scan groups per record (see RecordOptions.ScanGroups).
	ScanGroups int
	// OmitSampleIndex skips writing the sample-offset side index, producing
	// a dataset laid out exactly as before the side index existed. Readers
	// of such datasets fall back to whole-prefix reads plus client-side
	// filtering; this exists to exercise that compatibility path.
	OmitSampleIndex bool
}

func (o *DatasetOptions) imagesPerRecord() int {
	if o == nil || o.ImagesPerRecord <= 0 {
		return 64
	}
	return o.ImagesPerRecord
}

// DatasetWriter encodes a stream of samples into a PCR dataset directory:
// numbered .pcr record files plus a kvstore metadata database holding the
// record index (the paper's SQLite/RocksDB role).
type DatasetWriter struct {
	dir     string
	opts    DatasetOptions
	db      *kvstore.Store
	pending []Sample
	nrec    int
	ngroups int
	nimg    int
	closed  bool
}

// CreateDataset initializes a new PCR dataset at dir.
func CreateDataset(dir string, opts *DatasetOptions) (*DatasetWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	db, err := kvstore.Open(filepath.Join(dir, "meta"), nil)
	if err != nil {
		return nil, mapKVErr(err)
	}
	var o DatasetOptions
	if opts != nil {
		o = *opts
	}
	return &DatasetWriter{dir: dir, opts: o, db: db}, nil
}

// Append adds one sample, flushing a record when the batch fills.
func (w *DatasetWriter) Append(s Sample) error {
	if w.closed {
		return fmt.Errorf("core: writer closed")
	}
	w.pending = append(w.pending, s)
	if len(w.pending) >= w.opts.imagesPerRecord() {
		return w.flush()
	}
	return nil
}

func recordName(i int) string { return fmt.Sprintf("record-%05d.pcr", i) }

func (w *DatasetWriter) flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	name := recordName(w.nrec)
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	meta, err := WriteRecordOpts(f, w.pending, &RecordOptions{ScanGroups: w.opts.ScanGroups})
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: %w", err)
	}

	// Record index entry: file name, sample count, prefix length per group,
	// and (unless suppressed) the sample-offset side index — per-sample IDs,
	// labels, and sample-major flattened scan-group lengths. Old readers
	// skip the unknown fields; old datasets simply lack them.
	enc := wire.NewEncoder(nil)
	enc.String(1, name)
	enc.Uint64(2, uint64(len(w.pending)))
	prefixes := make([]uint64, meta.NumGroups+1)
	for g := 0; g <= meta.NumGroups; g++ {
		n, err := meta.PrefixLen(g)
		if err != nil {
			return err
		}
		prefixes[g] = uint64(n)
	}
	enc.PackedUint64(3, prefixes)
	if !w.opts.OmitSampleIndex {
		ids := make([]uint64, len(meta.Samples))
		labels := make([]uint64, len(meta.Samples))
		lens := make([]uint64, 0, len(meta.Samples)*meta.NumGroups)
		for i := range meta.Samples {
			s := &meta.Samples[i]
			ids[i] = uint64(s.ID)
			labels[i] = uint64(s.Label)
			for g := 0; g < meta.NumGroups; g++ {
				lens = append(lens, uint64(s.GroupLens[g]))
			}
		}
		enc.PackedUint64(4, ids)
		enc.PackedUint64(5, labels)
		enc.PackedUint64(6, lens)
	}
	if err := w.db.Put([]byte(fmt.Sprintf("record/%05d", w.nrec)), enc.Encode()); err != nil {
		return err
	}

	if meta.NumGroups > w.ngroups {
		w.ngroups = meta.NumGroups
	}
	w.nimg += len(w.pending)
	w.nrec++
	w.pending = w.pending[:0]
	return nil
}

// Close flushes the final partial record and the dataset-level metadata.
func (w *DatasetWriter) Close() error {
	if w.closed {
		return nil
	}
	if err := w.flush(); err != nil {
		return err
	}
	enc := wire.NewEncoder(nil)
	enc.Uint64(1, uint64(w.nrec))
	enc.Uint64(2, uint64(w.ngroups))
	enc.Uint64(3, uint64(w.nimg))
	if err := w.db.Put([]byte("dataset"), enc.Encode()); err != nil {
		return err
	}
	w.closed = true
	return w.db.Close()
}

// Dataset is an opened PCR dataset: a record index plus a Backend the
// record bytes are read through. OpenDataset serves a local directory
// (index from the kvstore metadata database, bytes from DirBackend);
// OpenDatasetIndex serves any Backend — notably the HTTP client of the
// serving layer — from an explicit index.
type Dataset struct {
	backend   Backend
	db        *kvstore.Store // nil when opened via OpenDatasetIndex
	NumGroups int
	numRec    int
	numImg    int
	records   []recordEntry
}

type recordEntry struct {
	name     string
	samples  int
	prefixes []int64 // indexed by scan group, 0..NumGroups

	// Sample-offset side index (optional; nil on datasets written before it
	// existed). sampleLens is sample-major flattened:
	// sampleLens[i*numGroups+(g-1)] is sample i's slice length in group g.
	sampleIDs    []int64
	sampleLabels []int64
	sampleLens   []int64
}

// OpenDataset opens a PCR dataset directory created by DatasetWriter.
func OpenDataset(dir string) (*Dataset, error) {
	db, err := kvstore.Open(filepath.Join(dir, "meta"), nil)
	if err != nil {
		return nil, mapKVErr(err)
	}
	ds := &Dataset{backend: NewDirBackend(dir), db: db}
	raw, err := db.Get([]byte("dataset"))
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("core: dataset metadata missing: %w", mapKVErr(err))
	}
	d := wire.NewDecoder(raw)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			db.Close()
			return nil, err
		}
		var v uint64
		switch field {
		case 1, 2, 3:
			if v, err = d.Uint64(); err != nil {
				db.Close()
				return nil, err
			}
		default:
			if err := d.Skip(wtype); err != nil {
				db.Close()
				return nil, err
			}
			continue
		}
		switch field {
		case 1:
			ds.numRec = int(v)
		case 2:
			ds.NumGroups = int(v)
		case 3:
			ds.numImg = int(v)
		}
	}
	for i := 0; i < ds.numRec; i++ {
		raw, err := db.Get([]byte(fmt.Sprintf("record/%05d", i)))
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("core: record %d metadata: %w", i, mapKVErr(err))
		}
		re, err := parseRecordEntry(raw)
		if err != nil {
			db.Close()
			return nil, err
		}
		ds.records = append(ds.records, re)
	}
	return ds, nil
}

func parseRecordEntry(raw []byte) (recordEntry, error) {
	var re recordEntry
	d := wire.NewDecoder(raw)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			return re, err
		}
		switch field {
		case 1:
			if re.name, err = d.String(); err != nil {
				return re, err
			}
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return re, err
			}
			re.samples = int(v)
		case 3, 4, 5, 6:
			vs, err := d.PackedUint64()
			if err != nil {
				return re, err
			}
			dst := map[int]*[]int64{3: &re.prefixes, 4: &re.sampleIDs, 5: &re.sampleLabels, 6: &re.sampleLens}[field]
			for _, v := range vs {
				*dst = append(*dst, int64(v))
			}
		default:
			if err := d.Skip(wtype); err != nil {
				return re, err
			}
		}
	}
	if re.name == "" || len(re.prefixes) == 0 {
		return re, fmt.Errorf("core: malformed record entry")
	}
	if err := validateSampleIndex(re.samples, re.prefixes, re.sampleIDs, re.sampleLabels, re.sampleLens); err != nil {
		return re, fmt.Errorf("core: record entry %s: %w", re.name, err)
	}
	return re, nil
}

// Close releases the metadata database (if any) and the storage backend.
func (ds *Dataset) Close() error {
	var err error
	if ds.db != nil {
		err = ds.db.Close()
	}
	if berr := ds.backend.Close(); err == nil {
		err = berr
	}
	return err
}

// Backend returns the storage backend record bytes are read through.
func (ds *Dataset) Backend() Backend { return ds.backend }

// SetBackend replaces the dataset's storage backend — the decoration point
// for layered backends like the persistent prefix cache
// (internal/diskcache), which wrap the original backend and must be
// installed before reads begin. The dataset owns the new backend and closes
// it with Close; the previous backend is the caller's to close (a decorator
// that wraps it typically adopts that responsibility).
func (ds *Dataset) SetBackend(b Backend) { ds.backend = b }

// NumRecords returns the record count.
func (ds *Dataset) NumRecords() int { return ds.numRec }

// NumImages returns the total image count.
func (ds *Dataset) NumImages() int { return ds.numImg }

// RecordName returns the Backend object name of record i.
func (ds *Dataset) RecordName(i int) (string, error) {
	if i < 0 || i >= ds.numRec {
		return "", fmt.Errorf("core: record %d out of range", i)
	}
	return ds.records[i].name, nil
}

// ReadRecordRange reads [offset, offset+length) of record i through the
// dataset's Backend — the primitive under both the prefix read path and the
// cache's delta upgrades (§5): a miss is ReadRecordRange(i, 0, prefixLen)
// and an upgrade is ReadRecordRange(i, cachedLen, delta).
func (ds *Dataset) ReadRecordRange(i int, offset, length int64) ([]byte, error) {
	name, err := ds.RecordName(i)
	if err != nil {
		return nil, err
	}
	return ds.backend.ReadRange(name, offset, length)
}

// RecordPrefixLen returns the bytes needed to read record i at scan group g
// — the quantity the paper's bandwidth model is built on — without touching
// the record file (it comes from the metadata DB).
func (ds *Dataset) RecordPrefixLen(i, g int) (int64, error) {
	if i < 0 || i >= ds.numRec {
		return 0, fmt.Errorf("core: record %d out of range", i)
	}
	re := &ds.records[i]
	if g < 0 || g >= len(re.prefixes) {
		return 0, fmt.Errorf("core: scan group %d out of range [0,%d]", g, len(re.prefixes)-1)
	}
	return re.prefixes[g], nil
}

// RecordGroups returns the number of scan groups stored in record i (its
// highest readable quality level).
func (ds *Dataset) RecordGroups(i int) (int, error) {
	if i < 0 || i >= ds.numRec {
		return 0, fmt.Errorf("core: record %d out of range", i)
	}
	return len(ds.records[i].prefixes) - 1, nil
}

// RecordSamples returns the number of images in record i.
func (ds *Dataset) RecordSamples(i int) (int, error) {
	if i < 0 || i >= ds.numRec {
		return 0, fmt.Errorf("core: record %d out of range", i)
	}
	return ds.records[i].samples, nil
}

// DecodedSample is one image materialized from a record prefix.
type DecodedSample struct {
	ID    int64
	Label int64
	Img   image.Image
}

// ReadRecordPrefix reads exactly the prefix of record i needed for scan
// group g. This is the dataset's only read path — by construction it is a
// single sequential read from offset zero, issued through the Backend.
func (ds *Dataset) ReadRecordPrefix(i, g int) ([]byte, *RecordMeta, error) {
	need, err := ds.RecordPrefixLen(i, g)
	if err != nil {
		return nil, nil, err
	}
	buf, err := ds.ReadRecordRange(i, 0, need)
	if err != nil {
		return nil, nil, err
	}
	meta, err := ParseRecordMeta(buf)
	if err != nil {
		return nil, nil, err
	}
	return buf, meta, nil
}

// ReadRecordAt materializes every image of record i at scan group g.
func (ds *Dataset) ReadRecordAt(i, g int) ([]DecodedSample, error) {
	prefix, meta, err := ds.ReadRecordPrefix(i, g)
	if err != nil {
		return nil, err
	}
	out := make([]DecodedSample, 0, len(meta.Samples))
	for si := range meta.Samples {
		img, err := meta.DecodeSample(prefix, si, g)
		if err != nil {
			return nil, err
		}
		out = append(out, DecodedSample{
			ID:    meta.Samples[si].ID,
			Label: meta.Samples[si].Label,
			Img:   img,
		})
	}
	return out, nil
}
