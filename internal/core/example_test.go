package core_test

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"log"

	"repro/internal/core"
	"repro/internal/jpegc"
)

// Example builds a PCR record from two baseline JPEGs and reads it back at
// increasing scan groups, demonstrating the prefix property: every quality
// level is a prefix of the same byte stream.
func Example() {
	// Two small synthetic images, baseline-encoded.
	var samples []core.Sample
	for id := 0; id < 2; id++ {
		img := image.NewRGBA(image.Rect(0, 0, 32, 32))
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				img.SetRGBA(x, y, color.RGBA{
					R: uint8(x*8 + id*40), G: uint8(y * 8), B: 128, A: 255,
				})
			}
		}
		jpg, err := jpegc.Encode(img, &jpegc.Options{Quality: 80, Subsample420: true})
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, core.Sample{ID: int64(id), Label: int64(id % 2), JPEG: jpg})
	}

	// Write the record: scans are rearranged into scan groups.
	var buf bytes.Buffer
	meta, err := core.WriteRecord(&buf, samples)
	if err != nil {
		log.Fatal(err)
	}
	record := buf.Bytes()
	fmt.Printf("scan groups: %d\n", meta.NumGroups)

	// A prefix read materializes every image at that quality.
	increasing := true
	prev := int64(0)
	for g := 1; g <= meta.NumGroups; g++ {
		n, err := meta.PrefixLen(g)
		if err != nil {
			log.Fatal(err)
		}
		if n <= prev {
			increasing = false
		}
		prev = n
		for i := range meta.Samples {
			if _, err := meta.DecodeSample(record[:n], i, g); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("prefix lengths strictly increasing: %v\n", increasing)
	fmt.Printf("full prefix equals record size: %v\n", prev == int64(len(record)))

	// Output:
	// scan groups: 10
	// prefix lengths strictly increasing: true
	// full prefix equals record size: true
}
