package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/jpegc"
	"repro/internal/synth"
)

// TestRecord420 exercises the PCR path with 4:2:0-subsampled inputs — the
// sampling real photographic datasets use.
func TestRecord420(t *testing.T) {
	p := synth.Cars
	p.NumImages = 8
	p.ImageSize = 52 // odd block geometry + MCU padding
	ds, err := synth.Generate(p, 19)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	for _, s := range ds.Train[:6] {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: 84, Subsample420: true})
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{ID: int64(s.ID), Label: int64(s.Label), JPEG: data})
	}
	var buf bytes.Buffer
	meta, err := WriteRecord(&buf, samples)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumGroups != 10 {
		t.Fatalf("NumGroups = %d", meta.NumGroups)
	}
	data := buf.Bytes()
	for g := 1; g <= meta.NumGroups; g++ {
		need, err := meta.PrefixLen(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range meta.Samples {
			img, err := meta.DecodeSample(data[:need], i, g)
			if err != nil {
				t.Fatalf("group %d sample %d: %v", g, i, err)
			}
			if img.Bounds().Dx() != 52 || img.Bounds().Dy() != 52 {
				t.Fatalf("bad bounds %v", img.Bounds())
			}
		}
	}
	// Full read must reproduce the original coefficients.
	for i, s := range samples {
		stream, err := meta.SampleJPEG(data, i, meta.NumGroups)
		if err != nil {
			t.Fatal(err)
		}
		got, err := jpegc.DecodeCoeffs(stream)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := jpegc.DecodeCoeffs(s.JPEG)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(orig) {
			t.Fatalf("sample %d: 4:2:0 PCR round trip not lossless", i)
		}
	}
}

// TestRecordFuzzNoPanic mutates valid record bytes: parsing and sample
// extraction must fail cleanly, never panic.
func TestRecordFuzzNoPanic(t *testing.T) {
	samples := buildSamples(t, 3)
	var buf bytes.Buffer
	meta, err := WriteRecord(&buf, samples)
	if err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 400; trial++ {
		data := append([]byte(nil), valid...)
		for m := 0; m < rng.Intn(6)+1; m++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(3) == 0 {
			data = data[:rng.Intn(len(data))+1]
		}
		m, err := ParseRecordMeta(data)
		if err != nil {
			continue
		}
		// Parsed despite mutation (damage landed in the body): sample
		// extraction and decode must still not panic.
		for i := range m.Samples {
			g := rng.Intn(m.NumGroups) + 1
			need, err := m.PrefixLen(g)
			if err != nil || need > int64(len(data)) {
				continue
			}
			m.DecodeSample(data[:need], i, g) // errors fine, panics not
		}
		_ = meta
	}
}
