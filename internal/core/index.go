package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Index is the serializable record index of a PCR dataset: everything a
// reader needs to plan prefix reads without touching a record file. Locally
// it lives in the kvstore metadata database (the paper's SQLite/RocksDB
// role, §3.2); the serving layer ships it to remote readers as JSON over
// GET /index, which is what lets a network client compute prefix lengths,
// quality budgets (SizeAtQuality), and delta upgrades entirely client-side.
type Index struct {
	// NumGroups is the dataset-wide maximum scan-group count (the number
	// of quality levels).
	NumGroups int `json:"num_groups"`
	// NumImages is the total stored image count.
	NumImages int `json:"num_images"`
	// Records lists every record in storage order.
	Records []RecordInfo `json:"records"`
}

// RecordInfo is one record's index entry.
type RecordInfo struct {
	// Name is the record's object name within its Backend.
	Name string `json:"name"`
	// Samples is the record's image count.
	Samples int `json:"samples"`
	// Prefixes[g] is the byte length of the record prefix through scan
	// group g; Prefixes[0] covers metadata only and the last element is
	// the whole record file.
	Prefixes []int64 `json:"prefixes"`

	// Sample-offset side index (optional — absent on datasets written
	// before it existed, so old indexes parse unchanged). SampleIDs and
	// SampleLabels list the per-sample identity in storage order;
	// SampleGroupLens is sample-major flattened,
	// SampleGroupLens[i*numGroups+(g-1)] being sample i's byte length
	// within scan group g. Together with Prefixes these let any reader
	// compute the exact byte ranges of a sample subset at any quality
	// (SampleRanges) without touching the record file.
	SampleIDs       []int64 `json:"sample_ids,omitempty"`
	SampleLabels    []int64 `json:"sample_labels,omitempty"`
	SampleGroupLens []int64 `json:"sample_group_lens,omitempty"`
}

// EncodeIndex serializes the index as JSON (the serving layer's wire form).
func EncodeIndex(ix *Index) ([]byte, error) {
	data, err := json.Marshal(ix)
	if err != nil {
		return nil, fmt.Errorf("core: encoding index: %w", err)
	}
	return data, nil
}

// ParseIndex deserializes an index and validates its shape; malformed input
// is reported as ErrCorrupt.
func ParseIndex(data []byte) (*Index, error) {
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, fmt.Errorf("core: %w: parsing index: %w", ErrCorrupt, err)
	}
	for i, re := range ix.Records {
		if re.Name == "" || len(re.Prefixes) == 0 {
			return nil, fmt.Errorf("core: %w: index record %d malformed", ErrCorrupt, i)
		}
		if re.Prefixes[0] < 0 {
			return nil, fmt.Errorf("core: %w: index record %d has negative prefix length", ErrCorrupt, i)
		}
		for g := 1; g < len(re.Prefixes); g++ {
			if re.Prefixes[g] < re.Prefixes[g-1] {
				return nil, fmt.Errorf("core: %w: index record %d prefix lengths not monotone", ErrCorrupt, i)
			}
		}
		if err := validateSampleIndex(re.Samples, re.Prefixes, re.SampleIDs, re.SampleLabels, re.SampleGroupLens); err != nil {
			return nil, fmt.Errorf("core: index record %d: %w", i, err)
		}
	}
	return &ix, nil
}

// IndexFingerprint returns a stable content fingerprint of the index — the
// dataset's generation for cache-coherence purposes (its ETag role).
// Datasets are immutable once written, so two readers that fingerprint the
// same index are reading the same bytes, and a persistent cache keyed by
// the fingerprint can never serve bytes from a different dataset build.
func IndexFingerprint(ix *Index) (string, error) {
	data, err := EncodeIndex(ix)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16]), nil
}

// Index returns the dataset's record index. The Index and its Records
// slice are freshly built on each call; only the per-record Prefixes
// slices alias the dataset's internal state and must not be mutated.
func (ds *Dataset) Index() *Index {
	ix := &Index{NumGroups: ds.NumGroups, NumImages: ds.numImg}
	for i := range ds.records {
		re := &ds.records[i]
		ix.Records = append(ix.Records, RecordInfo{
			Name:            re.name,
			Samples:         re.samples,
			Prefixes:        re.prefixes,
			SampleIDs:       re.sampleIDs,
			SampleLabels:    re.sampleLabels,
			SampleGroupLens: re.sampleLens,
		})
	}
	return ix
}

// OpenDatasetIndex constructs a Dataset over an explicit index and Backend —
// the entry point for remote readers, which fetch the index from a prefix
// server and read record ranges through the network Backend. The returned
// Dataset owns the Backend and closes it with Close.
func OpenDatasetIndex(ix *Index, b Backend) (*Dataset, error) {
	if ix == nil {
		return nil, fmt.Errorf("core: nil index")
	}
	if b == nil {
		return nil, fmt.Errorf("core: nil backend")
	}
	ds := &Dataset{
		backend:   b,
		NumGroups: ix.NumGroups,
		numRec:    len(ix.Records),
		numImg:    ix.NumImages,
	}
	for _, re := range ix.Records {
		if re.Name == "" || len(re.Prefixes) == 0 {
			return nil, fmt.Errorf("core: malformed record entry")
		}
		if err := validateSampleIndex(re.Samples, re.Prefixes, re.SampleIDs, re.SampleLabels, re.SampleGroupLens); err != nil {
			return nil, fmt.Errorf("core: record %s: %w", re.Name, err)
		}
		ds.records = append(ds.records, recordEntry{
			name:         re.Name,
			samples:      re.Samples,
			prefixes:     re.Prefixes,
			sampleIDs:    re.SampleIDs,
			sampleLabels: re.SampleLabels,
			sampleLens:   re.SampleGroupLens,
		})
	}
	return ds, nil
}
