// Package core implements Progressive Compressed Records (PCRs), the
// paper's storage format. A PCR file stores a batch of progressively
// compressed images rearranged by scan group: first a metadata section
// (labels, per-image JPEG headers, and the offset table), then scan group 1
// of every image, then scan group 2 of every image, and so on.
//
// Reading the file prefix up to scan group k therefore yields every image in
// the record at quality level k with one sequential read. Reading all groups
// costs the same bytes as the conventional JPEG dataset (±5%), so the layout
// adds no space overhead — the paper's key property.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"image"
	"io"

	"repro/internal/jpegc"
	"repro/internal/wire"
)

// Magic identifies a PCR record file.
var Magic = [4]byte{'P', 'C', 'R', '1'}

// ErrCorrupt reports a structurally damaged record: a truncated prefix read,
// a bad magic number, or a metadata section that does not parse. It is
// distinguishable with errors.Is from transient I/O errors, which are
// returned unwrapped. The public pcr package re-exports it as pcr.ErrCorrupt.
var ErrCorrupt = errors.New("corrupt record")

// Sample is one labeled encoded image handed to the record writer. JPEG may
// be baseline or progressive; baseline inputs are losslessly transcoded.
type Sample struct {
	ID    int64
	Label int64
	JPEG  []byte
}

// SampleMeta describes one image inside a record: its identity, its JPEG
// header bytes (SOI through SOF — everything before the first scan), and
// the byte length of each of its scan groups.
type SampleMeta struct {
	ID        int64
	Label     int64
	Header    []byte
	GroupLens []int64
}

// RecordMeta is the parsed metadata section of a PCR file plus derived
// offset tables.
type RecordMeta struct {
	NumGroups int
	Samples   []SampleMeta

	// BodyStart is the file offset where scan group 1 begins.
	BodyStart int64
	// groupSize[g-1] is the total byte length of scan group g.
	groupSize []int64
	// sampleOffset[g-1][i] is the offset of sample i's slice within group g.
	sampleOffset [][]int64
}

// GroupSize returns the total bytes of scan group g (1-based).
func (m *RecordMeta) GroupSize(g int) (int64, error) {
	if g < 1 || g > m.NumGroups {
		return 0, fmt.Errorf("core: scan group %d out of range [1,%d]", g, m.NumGroups)
	}
	return m.groupSize[g-1], nil
}

// PrefixLen returns the number of bytes that must be read from the start of
// the record file to materialize every image at scan group g. Group 0 means
// metadata only.
func (m *RecordMeta) PrefixLen(g int) (int64, error) {
	if g < 0 || g > m.NumGroups {
		return 0, fmt.Errorf("core: scan group %d out of range [0,%d]", g, m.NumGroups)
	}
	n := m.BodyStart
	for k := 1; k <= g; k++ {
		n += m.groupSize[k-1]
	}
	return n, nil
}

// TotalLen returns the full record file size.
func (m *RecordMeta) TotalLen() int64 {
	n, _ := m.PrefixLen(m.NumGroups)
	return n
}

// Field numbers for the record metadata wire message.
const (
	fieldNumGroups = 1
	fieldSample    = 2

	sfID        = 1
	sfLabel     = 2
	sfHeader    = 3
	sfGroupLens = 4
)

// RecordOptions tune record layout.
type RecordOptions struct {
	// ScanGroups, when positive, coalesces the progressive scans into that
	// many scan groups (the paper's "scan group" knob, §3.1): adjacent scans
	// are bucketed so the record exposes exactly ScanGroups quality levels.
	// Zero keeps one group per scan.
	ScanGroups int
}

// WriteRecord transcodes the samples to progressive form, rearranges their
// scans into scan groups, and writes the complete PCR record to w. It
// returns the parsed metadata of the record it wrote.
//
// Every color image contributes 10 scans (the libjpeg default script);
// grayscale images contribute 6 and simply have empty slices in the
// remaining groups.
func WriteRecord(w io.Writer, samples []Sample) (*RecordMeta, error) {
	return WriteRecordOpts(w, samples, nil)
}

// WriteRecordOpts is WriteRecord with layout options.
func WriteRecordOpts(w io.Writer, samples []Sample, opts *RecordOptions) (*RecordMeta, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: empty record")
	}
	type prepared struct {
		meta   SampleMeta
		scans  [][]byte // scan k bytes, k = 0-based group index
		header []byte
	}
	var preps []prepared
	numGroups := 0
	for _, s := range samples {
		data := s.JPEG
		idx, err := jpegc.IndexScans(data)
		if err != nil {
			return nil, fmt.Errorf("core: sample %d: %w", s.ID, err)
		}
		if !idx.Progressive {
			data, err = jpegc.Transcode(data, &jpegc.Options{Progressive: true})
			if err != nil {
				return nil, fmt.Errorf("core: sample %d: transcode: %w", s.ID, err)
			}
			idx, err = jpegc.IndexScans(data)
			if err != nil {
				return nil, fmt.Errorf("core: sample %d: %w", s.ID, err)
			}
		}
		p := prepared{
			meta:   SampleMeta{ID: s.ID, Label: s.Label},
			header: append([]byte(nil), data[:idx.HeaderLen]...),
		}
		for _, sc := range idx.Scans {
			p.scans = append(p.scans, data[sc.Offset:sc.Offset+sc.Length])
		}
		if len(p.scans) > numGroups {
			numGroups = len(p.scans)
		}
		preps = append(preps, p)
	}

	// Coalesce scans into the requested number of scan groups. Scan s
	// (0-based, of numGroups total) lands in bucket s*k/numGroups, so the
	// buckets are contiguous scan ranges and grayscale images (fewer scans)
	// stay aligned with color ones.
	if k := optScanGroups(opts); k > 0 && k < numGroups {
		for i := range preps {
			grouped := make([][]byte, k)
			for s, scan := range preps[i].scans {
				g := s * k / numGroups
				grouped[g] = append(grouped[g], scan...)
			}
			preps[i].scans = grouped
		}
		numGroups = k
	}

	// Metadata section.
	enc := wire.NewEncoder(nil)
	enc.Uint64(fieldNumGroups, uint64(numGroups))
	for i := range preps {
		p := &preps[i]
		sub := wire.NewEncoder(nil)
		sub.Uint64(sfID, uint64(p.meta.ID))
		sub.Int64(sfLabel, p.meta.Label)
		sub.Bytes(sfHeader, p.header)
		lens := make([]uint64, numGroups)
		for g := 0; g < numGroups; g++ {
			if g < len(p.scans) {
				lens[g] = uint64(len(p.scans[g]))
			}
		}
		sub.PackedUint64(sfGroupLens, lens)
		enc.Bytes(fieldSample, sub.Encode())
	}
	meta := enc.Encode()

	var hdr [8]byte
	copy(hdr[0:4], Magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(meta)))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := w.Write(meta); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Body: scan groups in order; within a group, samples in order.
	for g := 0; g < numGroups; g++ {
		for i := range preps {
			if g < len(preps[i].scans) {
				if _, err := w.Write(preps[i].scans[g]); err != nil {
					return nil, fmt.Errorf("core: %w", err)
				}
			}
		}
	}

	full := make([]byte, 0, len(hdr)+len(meta))
	full = append(full, hdr[:]...)
	full = append(full, meta...)
	return ParseRecordMeta(full)
}

func optScanGroups(opts *RecordOptions) int {
	if opts == nil {
		return 0
	}
	return opts.ScanGroups
}

// ParseRecordMeta parses a record's metadata section. data must contain at
// least the magic, the length word, and the metadata bytes (a PrefixLen(0)
// read suffices; longer prefixes and whole files also work).
func ParseRecordMeta(data []byte) (*RecordMeta, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("core: %w: short record header", ErrCorrupt)
	}
	if [4]byte(data[0:4]) != Magic {
		return nil, fmt.Errorf("core: %w: bad magic %q", ErrCorrupt, data[0:4])
	}
	metaLen := int(binary.LittleEndian.Uint32(data[4:8]))
	if len(data) < 8+metaLen {
		return nil, fmt.Errorf("core: %w: short metadata section (%d < %d)", ErrCorrupt, len(data)-8, metaLen)
	}
	m := &RecordMeta{BodyStart: int64(8 + metaLen)}
	// Any wire-level decode failure inside the metadata section is
	// structural damage, so the whole parse reports as ErrCorrupt.
	if err := parseRecordFields(data[8:8+metaLen], m); err != nil {
		return nil, fmt.Errorf("core: %w: metadata: %w", ErrCorrupt, err)
	}
	if m.NumGroups <= 0 {
		return nil, fmt.Errorf("core: %w: record has no scan groups", ErrCorrupt)
	}
	for i, s := range m.Samples {
		if len(s.GroupLens) != m.NumGroups {
			return nil, fmt.Errorf("core: %w: sample %d has %d group lengths, want %d", ErrCorrupt, i, len(s.GroupLens), m.NumGroups)
		}
	}
	m.buildOffsets()
	return m, nil
}

func parseRecordFields(section []byte, m *RecordMeta) error {
	d := wire.NewDecoder(section)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case fieldNumGroups:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			m.NumGroups = int(v)
		case fieldSample:
			raw, err := d.Bytes()
			if err != nil {
				return err
			}
			sm, err := parseSampleMeta(raw)
			if err != nil {
				return err
			}
			m.Samples = append(m.Samples, sm)
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseSampleMeta(raw []byte) (SampleMeta, error) {
	var sm SampleMeta
	d := wire.NewDecoder(raw)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			return sm, err
		}
		switch field {
		case sfID:
			v, err := d.Uint64()
			if err != nil {
				return sm, err
			}
			sm.ID = int64(v)
		case sfLabel:
			v, err := d.Int64()
			if err != nil {
				return sm, err
			}
			sm.Label = v
		case sfHeader:
			v, err := d.Bytes()
			if err != nil {
				return sm, err
			}
			sm.Header = append([]byte(nil), v...)
		case sfGroupLens:
			vs, err := d.PackedUint64()
			if err != nil {
				return sm, err
			}
			for _, v := range vs {
				sm.GroupLens = append(sm.GroupLens, int64(v))
			}
		default:
			if err := d.Skip(wtype); err != nil {
				return sm, err
			}
		}
	}
	return sm, nil
}

func (m *RecordMeta) buildOffsets() {
	m.groupSize = make([]int64, m.NumGroups)
	m.sampleOffset = make([][]int64, m.NumGroups)
	for g := 0; g < m.NumGroups; g++ {
		m.sampleOffset[g] = make([]int64, len(m.Samples))
		var off int64
		for i, s := range m.Samples {
			m.sampleOffset[g][i] = off
			off += s.GroupLens[g]
		}
		m.groupSize[g] = off
	}
}

// SampleJPEG reassembles sample i as a decodable JPEG stream at scan group
// g: its header, its slices of groups 1..g, and a terminating EOI. prefix
// must hold at least PrefixLen(g) bytes of the record file.
func (m *RecordMeta) SampleJPEG(prefix []byte, i, g int) ([]byte, error) {
	if i < 0 || i >= len(m.Samples) {
		return nil, fmt.Errorf("core: sample %d out of range", i)
	}
	if g < 1 || g > m.NumGroups {
		return nil, fmt.Errorf("core: scan group %d out of range [1,%d]", g, m.NumGroups)
	}
	need, err := m.PrefixLen(g)
	if err != nil {
		return nil, err
	}
	if int64(len(prefix)) < need {
		return nil, fmt.Errorf("core: prefix has %d bytes, scan group %d needs %d", len(prefix), g, need)
	}
	s := &m.Samples[i]
	out := make([]byte, 0, len(s.Header)+64)
	out = append(out, s.Header...)
	groupStart := m.BodyStart
	for k := 0; k < g; k++ {
		off := groupStart + m.sampleOffset[k][i]
		out = append(out, prefix[off:off+s.GroupLens[k]]...)
		groupStart += m.groupSize[k]
	}
	out = append(out, 0xFF, 0xD9) // EOI
	return out, nil
}

// DecodeSample reassembles and decodes sample i at scan group g.
func (m *RecordMeta) DecodeSample(prefix []byte, i, g int) (image.Image, error) {
	stream, err := m.SampleJPEG(prefix, i, g)
	if err != nil {
		return nil, err
	}
	img, err := jpegc.Decode(stream)
	if err != nil {
		return nil, fmt.Errorf("core: sample %d at group %d: %w", i, g, err)
	}
	return img, nil
}
