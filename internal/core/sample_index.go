package core

import (
	"errors"
	"fmt"
)

// This file implements the sample-offset side index: per-record, per-sample
// IDs, labels, and scan-group byte lengths lifted out of the record files
// and into the dataset index. With it, a reader can plan *sample-selective*
// reads — the byte ranges of exactly the samples a predicate selects, at
// exactly the quality it wants — without touching a record file, the same
// way the prefix table already lets it plan whole-record quality reads.
//
// The side index is optional and version-gated: datasets written before it
// existed (or with DatasetOptions.OmitSampleIndex) parse fine and simply
// report ErrNoSampleIndex from the sample-level accessors, in which case
// readers fall back to whole-prefix reads plus client-side filtering.

// ErrNoSampleIndex reports that a record predates the sample-offset side
// index (or was written with OmitSampleIndex), so sample-selective reads
// cannot be planned from the index alone.
var ErrNoSampleIndex = errors.New("no sample index")

// ByteRange is one contiguous byte range within a record file.
type ByteRange struct {
	Offset int64
	Length int64
}

// HasSampleIndex reports whether the record carries the sample-offset side
// index.
func (r *RecordInfo) HasSampleIndex() bool {
	return len(r.SampleGroupLens) > 0
}

// SampleRanges returns the sorted, coalesced byte ranges of the record file
// that must be read to materialize the selected samples at scan group g:
// the metadata section plus, for each group k ≤ g, the selected samples'
// slices within group k. sel must have exactly Samples elements. Selecting
// every sample coalesces to the single range [0, Prefixes[g]); selecting
// none yields just the metadata section.
//
// Both the server and the client compute ranges with this function from the
// same immutable index, which is what makes the pushdown wire format a
// bitmap rather than an offset list: the byte layout is already shared
// knowledge.
func (r *RecordInfo) SampleRanges(g int, sel []bool) ([]ByteRange, error) {
	if !r.HasSampleIndex() {
		return nil, fmt.Errorf("core: record %s: %w", r.Name, ErrNoSampleIndex)
	}
	return sampleByteRanges(r.Prefixes, r.SampleGroupLens, r.Samples, g, sel)
}

// sampleByteRanges computes the coalesced ranges for one record. prefixes
// has numGroups+1 entries; lens is sample-major flattened:
// lens[i*numGroups+(k-1)] is sample i's slice length within group k.
func sampleByteRanges(prefixes []int64, lens []int64, samples, g int, sel []bool) ([]ByteRange, error) {
	ng := len(prefixes) - 1
	if g < 0 || g > ng {
		return nil, fmt.Errorf("core: scan group %d out of range [0,%d]", g, ng)
	}
	if len(sel) != samples {
		return nil, fmt.Errorf("core: selection has %d entries, record has %d samples", len(sel), samples)
	}
	if len(lens) != samples*ng {
		return nil, fmt.Errorf("core: %w: sample index has %d lengths, want %d", ErrCorrupt, len(lens), samples*ng)
	}
	out := make([]ByteRange, 0, 8)
	add := func(off, length int64) {
		if length <= 0 {
			return
		}
		if n := len(out); n > 0 && out[n-1].Offset+out[n-1].Length == off {
			out[n-1].Length += length
			return
		}
		out = append(out, ByteRange{Offset: off, Length: length})
	}
	add(0, prefixes[0]) // metadata section
	for k := 1; k <= g; k++ {
		off := prefixes[k-1]
		for i := 0; i < samples; i++ {
			l := lens[i*ng+(k-1)]
			if sel[i] {
				add(off, l)
			}
			off += l
		}
	}
	return out, nil
}

// RangesTotal returns the summed length of the ranges.
func RangesTotal(ranges []ByteRange) int64 {
	var n int64
	for _, r := range ranges {
		n += r.Length
	}
	return n
}

// GatherRanges extracts the given ranges from a buffer holding the record
// prefix from offset zero and returns their concatenation in order — the
// server-side (and fallback client-side) half of a pushdown read.
func GatherRanges(buf []byte, ranges []ByteRange) ([]byte, error) {
	out := make([]byte, 0, RangesTotal(ranges))
	for _, r := range ranges {
		end := r.Offset + r.Length
		if r.Offset < 0 || end > int64(len(buf)) {
			return nil, fmt.Errorf("core: %w: range [%d,%d) outside %d-byte buffer", ErrCorrupt, r.Offset, end, len(buf))
		}
		out = append(out, buf[r.Offset:end]...)
	}
	return out, nil
}

// ScatterRanges is the inverse of GatherRanges: it copies the concatenated
// range bytes back to their record-file offsets within a sparse prefix
// buffer of the given size. Unfilled bytes are zero; RecordMeta.SampleJPEG
// only touches the selected samples' slices, so the sparse buffer decodes
// those samples identically to a full prefix read.
func ScatterRanges(concat []byte, ranges []ByteRange, size int64) ([]byte, error) {
	if want := RangesTotal(ranges); int64(len(concat)) != want {
		return nil, fmt.Errorf("core: %w: pushdown body has %d bytes, ranges total %d", ErrCorrupt, len(concat), want)
	}
	buf := make([]byte, size)
	var off int64
	for _, r := range ranges {
		if r.Offset < 0 || r.Offset+r.Length > size {
			return nil, fmt.Errorf("core: %w: range [%d,%d) outside %d-byte prefix", ErrCorrupt, r.Offset, r.Offset+r.Length, size)
		}
		copy(buf[r.Offset:], concat[off:off+r.Length])
		off += r.Length
	}
	return buf, nil
}

// SampleReader is an optional Backend capability: fetch, in one operation,
// exactly the byte ranges needed to materialize a subset of a record's
// samples at one scan group. Implementations return the concatenation, in
// ascending offset order, of the ranges RecordInfo.SampleRanges computes
// for (group, sel); the caller scatters them back with the same
// computation. The serving layer's network clients implement this by
// shipping the selection as a compact bitmap (?samples=) so only the
// selected bytes cross the wire.
type SampleReader interface {
	ReadSamples(name string, group int, sel []bool) ([]byte, error)
}

// HasSampleIndex reports whether record i carries the sample-offset side
// index.
func (ds *Dataset) HasSampleIndex(i int) bool {
	if i < 0 || i >= ds.numRec {
		return false
	}
	return len(ds.records[i].sampleLens) > 0
}

// SampleIndex returns record i's per-sample IDs and labels from the side
// index, in storage order, without touching the record file. The slices
// alias dataset state and must not be mutated. Records without a side index
// report ErrNoSampleIndex.
func (ds *Dataset) SampleIndex(i int) (ids, labels []int64, err error) {
	if i < 0 || i >= ds.numRec {
		return nil, nil, fmt.Errorf("core: record %d out of range", i)
	}
	re := &ds.records[i]
	if len(re.sampleLens) == 0 {
		return nil, nil, fmt.Errorf("core: record %d: %w", i, ErrNoSampleIndex)
	}
	return re.sampleIDs, re.sampleLabels, nil
}

// SampleRanges returns the coalesced byte ranges of record i covering the
// selected samples at scan group g (see RecordInfo.SampleRanges).
func (ds *Dataset) SampleRanges(i, g int, sel []bool) ([]ByteRange, error) {
	if i < 0 || i >= ds.numRec {
		return nil, fmt.Errorf("core: record %d out of range", i)
	}
	re := &ds.records[i]
	if len(re.sampleLens) == 0 {
		return nil, fmt.Errorf("core: record %d: %w", i, ErrNoSampleIndex)
	}
	return sampleByteRanges(re.prefixes, re.sampleLens, re.samples, g, sel)
}

// validateSampleIndex checks the side-index arrays of one record entry for
// internal consistency: matching lengths, non-negative slice lengths, and
// per-group sums that equal the prefix deltas. Entries without a side index
// pass trivially.
func validateSampleIndex(samples int, prefixes, ids, labels, lens []int64) error {
	if len(ids) == 0 && len(labels) == 0 && len(lens) == 0 {
		return nil
	}
	ng := len(prefixes) - 1
	if len(ids) != samples || len(labels) != samples || len(lens) != samples*ng {
		return fmt.Errorf("%w: sample index arrays have %d ids, %d labels, %d lengths for %d samples × %d groups",
			ErrCorrupt, len(ids), len(labels), len(lens), samples, ng)
	}
	for k := 1; k <= ng; k++ {
		var sum int64
		for i := 0; i < samples; i++ {
			l := lens[i*ng+(k-1)]
			if l < 0 {
				return fmt.Errorf("%w: sample %d has negative group length", ErrCorrupt, i)
			}
			sum += l
		}
		if sum != prefixes[k]-prefixes[k-1] {
			return fmt.Errorf("%w: group %d sample lengths sum to %d, prefix delta is %d",
				ErrCorrupt, k, sum, prefixes[k]-prefixes[k-1])
		}
	}
	return nil
}
