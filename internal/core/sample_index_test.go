package core

import (
	"bytes"
	"errors"
	"testing"
)

// buildIndexedDataset writes a small dataset (with the sample side index
// unless omit) and returns the open dataset plus the original samples.
func buildIndexedDataset(t *testing.T, omit bool) (*Dataset, []Sample) {
	t.Helper()
	dir := t.TempDir()
	samples := buildSamples(t, 10)
	w, err := CreateDataset(dir, &DatasetOptions{ImagesPerRecord: 4, OmitSampleIndex: omit})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds, samples
}

func TestSampleIndexRoundTrip(t *testing.T) {
	ds, samples := buildIndexedDataset(t, false)
	si := 0
	for r := 0; r < ds.NumRecords(); r++ {
		if !ds.HasSampleIndex(r) {
			t.Fatalf("record %d: no sample index", r)
		}
		ids, labels, err := ds.SampleIndex(r)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := ds.RecordSamples(r)
		if len(ids) != n || len(labels) != n {
			t.Fatalf("record %d: %d ids, %d labels, want %d", r, len(ids), len(labels), n)
		}
		for i := 0; i < n; i++ {
			if ids[i] != samples[si].ID || labels[i] != samples[si].Label {
				t.Errorf("record %d sample %d: (%d,%d), want (%d,%d)",
					r, i, ids[i], labels[i], samples[si].ID, samples[si].Label)
			}
			si++
		}
	}
}

// An all-selected range plan must coalesce to exactly the prefix read the
// unfiltered path would issue, at every quality level.
func TestSampleRangesAllSelectedIsThePrefix(t *testing.T) {
	ds, _ := buildIndexedDataset(t, false)
	for r := 0; r < ds.NumRecords(); r++ {
		n, _ := ds.RecordSamples(r)
		sel := make([]bool, n)
		for i := range sel {
			sel[i] = true
		}
		for g := 1; g <= ds.NumGroups; g++ {
			ranges, err := ds.SampleRanges(r, g, sel)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ds.RecordPrefixLen(r, g)
			if err != nil {
				t.Fatal(err)
			}
			if len(ranges) != 1 || ranges[0].Offset != 0 || ranges[0].Length != want {
				t.Fatalf("record %d group %d: ranges %v, want one [0,%d)", r, g, ranges, want)
			}
		}
	}
}

// A subset plan gathered from the record bytes and scattered back into a
// sparse prefix must decode every selected sample identically to the full
// prefix — the byte-level property the filtered read path stands on.
func TestSampleRangesSparseDecode(t *testing.T) {
	ds, _ := buildIndexedDataset(t, false)
	r := 0
	n, _ := ds.RecordSamples(r)
	sel := make([]bool, n)
	sel[0], sel[n-1] = true, true
	for _, g := range []int{1, 5, ds.NumGroups} {
		full, fullMeta, err := ds.ReadRecordPrefix(r, g)
		if err != nil {
			t.Fatal(err)
		}
		ranges, err := ds.SampleRanges(r, g, sel)
		if err != nil {
			t.Fatal(err)
		}
		total := RangesTotal(ranges)
		if total >= int64(len(full)) {
			t.Fatalf("group %d: subset plan %d bytes, full prefix %d", g, total, len(full))
		}
		concat, err := GatherRanges(full, ranges)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(concat)) != total {
			t.Fatalf("group %d: gathered %d bytes, want %d", g, len(concat), total)
		}
		sparse, err := ScatterRanges(concat, ranges, int64(len(full)))
		if err != nil {
			t.Fatal(err)
		}
		meta, err := ParseRecordMeta(sparse)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sel {
			if !sel[i] {
				continue
			}
			got, err := meta.SampleJPEG(sparse, i, g)
			if err != nil {
				t.Fatalf("group %d sample %d: %v", g, i, err)
			}
			want, err := fullMeta.SampleJPEG(full, i, g)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("group %d sample %d: sparse stream differs from full", g, i)
			}
		}
	}
}

// OmitSampleIndex is the version gate stand-in: a dataset written without
// the side index must open and read normally while reporting
// ErrNoSampleIndex for sample-level queries.
func TestSampleIndexVersionGate(t *testing.T) {
	ds, _ := buildIndexedDataset(t, true)
	for r := 0; r < ds.NumRecords(); r++ {
		if ds.HasSampleIndex(r) {
			t.Fatalf("record %d: unexpected sample index", r)
		}
		if _, _, err := ds.SampleIndex(r); !errors.Is(err, ErrNoSampleIndex) {
			t.Fatalf("record %d: SampleIndex err = %v, want ErrNoSampleIndex", r, err)
		}
		if _, err := ds.SampleRanges(r, 1, make([]bool, 1)); !errors.Is(err, ErrNoSampleIndex) {
			t.Fatalf("record %d: SampleRanges err = %v, want ErrNoSampleIndex", r, err)
		}
		// The ordinary read path is unaffected.
		if _, err := ds.ReadRecordAt(r, 1); err != nil {
			t.Fatal(err)
		}
	}
	// The exported index carries no side-index fields (old-reader JSON
	// compatibility: omitempty keeps the wire form identical).
	data, err := EncodeIndex(ds.Index())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("sample_ids")) {
		t.Error("omitted side index leaked into the encoded index")
	}
}

// The side index survives the JSON wire form: an index exported, encoded,
// parsed, and mounted over a DirBackend plans the same ranges as the local
// dataset.
func TestSampleIndexSurvivesIndexWire(t *testing.T) {
	dir := t.TempDir()
	samples := buildSamples(t, 10)
	w, err := CreateDataset(dir, &DatasetOptions{ImagesPerRecord: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	local, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	data, err := EncodeIndex(local.Index())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ParseIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := OpenDatasetIndex(ix, NewDirBackend(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	sel := []bool{true, false, true, false}
	for r := 0; r < local.NumRecords(); r++ {
		n, _ := local.RecordSamples(r)
		want, err := local.SampleRanges(r, 2, sel[:n])
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.SampleRanges(r, 2, sel[:n])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("record %d: %v != %v", r, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("record %d: %v != %v", r, got, want)
			}
		}
	}
}

// Corrupt side indexes must be rejected at parse time, not discovered as
// bogus reads later.
func TestParseIndexRejectsCorruptSampleIndex(t *testing.T) {
	ds, _ := buildIndexedDataset(t, false)
	base := ds.Index()
	cases := []struct {
		name string
		mut  func(re *RecordInfo)
	}{
		{"ids length", func(re *RecordInfo) { re.SampleIDs = re.SampleIDs[:len(re.SampleIDs)-1] }},
		{"labels length", func(re *RecordInfo) { re.SampleLabels = append(re.SampleLabels, 9) }},
		{"lens length", func(re *RecordInfo) { re.SampleGroupLens = re.SampleGroupLens[:len(re.SampleGroupLens)-1] }},
		{"negative len", func(re *RecordInfo) { re.SampleGroupLens[0] = -1 }},
		{"sum mismatch", func(re *RecordInfo) { re.SampleGroupLens[0]++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := &Index{NumGroups: base.NumGroups, NumImages: base.NumImages}
			for _, re := range base.Records {
				cp := re
				cp.SampleIDs = append([]int64(nil), re.SampleIDs...)
				cp.SampleLabels = append([]int64(nil), re.SampleLabels...)
				cp.SampleGroupLens = append([]int64(nil), re.SampleGroupLens...)
				ix.Records = append(ix.Records, cp)
			}
			tc.mut(&ix.Records[0])
			data, err := EncodeIndex(ix)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ParseIndex(data); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("ParseIndex err = %v, want ErrCorrupt", err)
			}
			if _, err := OpenDatasetIndex(ix, NewDirBackend(t.TempDir())); err == nil {
				t.Fatal("OpenDatasetIndex accepted a corrupt side index")
			}
		})
	}
}
