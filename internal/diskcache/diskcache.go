// Package diskcache is the persistent tier of the paper's §5 cache
// hierarchy: a crash-safe, delta-aware prefix cache on local disk, layered
// as a core.Backend decorator so it composes under every format and over
// both local directories and the remote prefix server.
//
// The paper's economy is that a record read at quality q is a strict byte
// prefix of the same record at quality q+1, so a fidelity upgrade is priced
// at the delta bytes only. The in-memory LRU (internal/cache) realizes that
// economy inside one process; this package extends it across process
// restarts, epochs, and co-located workers on disaggregated storage: a
// restarted training worker's second epoch reads from warm local files
// instead of the network.
//
// # Layout
//
// A cache directory holds one append-only prefix file per cached object
// (obj-<sha256(name)>.p — always bytes [0,extent) of the upstream object)
// plus a manifest journal (manifest.log) of newline-delimited JSON entries:
//
//	{"gen":"<generation>","v":1}        header: dataset generation
//	{"put":"<name>","len":N,"crc":C}    extent N is valid, crc32(IEEE) C
//	{"del":"<name>"}                    entry evicted
//
// Growing a cached prefix appends only the new bytes to the data file
// (never rewriting the cached prefix), syncs it, then journals the new
// extent. The CRC is maintained incrementally, so journaling an upgrade
// does not re-read the prefix.
//
// # Crash safety
//
// Writes are ordered data-file-first: on reopen, a journal line whose bytes
// all made it to disk describes data that also made it to disk. Recovery
// reads the journal up to the first torn or unparsable line (truncating the
// tail), then verifies every surviving entry against its data file — size
// and CRC over the journaled extent — discarding any entry whose file is
// torn. Data beyond the journaled extent (a crash after a data append but
// before its journal line) is truncated away to restore the append
// invariant. The manifest is then compacted by atomic rename, so every open
// starts from a clean, verified state and no corrupt bytes are ever served.
//
// Recovery's CRC pass reads every cached byte, which is the right trade at
// gigabytes and the wrong one at terabytes; WithLazyVerify keeps Open to
// metadata-only work and moves each entry's CRC check to its first read,
// with the same no-corrupt-bytes guarantee.
//
// # Coherence
//
// The cache is keyed by a caller-supplied generation string — in the pcr
// facade, a fingerprint of the dataset's record index (its ETag role). A
// generation mismatch on open purges the directory: entries never outlive
// the dataset build they were fetched from.
//
// A cache directory belongs to exactly one process at a time (each training
// worker mounts its own directory); Open takes an advisory lock and fails
// fast on a second opener where the platform supports it.
package diskcache

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
)

// Stats counts cache activity. Recovery counters describe the most recent
// Open; the rest accumulate over the Backend's lifetime.
type Stats struct {
	// Hits are ReadRange calls served entirely from the cached prefix.
	Hits int64 `json:"hits"`
	// DeltaHits are calls served by extending a cached prefix: only the
	// missing suffix moved from upstream (the §5 delta-pricing property).
	DeltaHits int64 `json:"delta_hits"`
	// Misses are calls with no cached prefix to build on.
	Misses int64 `json:"misses"`
	// BytesServed counts bytes returned to callers.
	BytesServed int64 `json:"bytes_served"`
	// BytesFetched counts bytes read from the upstream Backend.
	BytesFetched int64 `json:"bytes_fetched"`
	// DeltaBytes is the subset of BytesFetched that extended an existing
	// prefix (upgrade traffic, as opposed to cold misses).
	DeltaBytes int64 `json:"delta_bytes"`
	// Evictions counts entries evicted to hold the byte budget.
	Evictions int64 `json:"evictions"`
	// Recovered and Discarded count manifest entries accepted / rejected by
	// the verification scan of the most recent Open. Under WithLazyVerify,
	// Recovered counts entries accepted provisionally (CRC deferred) and
	// Discarded keeps growing past Open: a lazily recovered entry whose
	// first touch fails its CRC is quarantined and counted here.
	Recovered int64 `json:"recovered"`
	// Discarded counts entries dropped for torn data files, CRC
	// mismatches, or a truncated journal tail.
	Discarded int64 `json:"discarded"`
}

type entry struct {
	name   string
	length int64  // validated prefix extent on disk
	crc    uint32 // crc32(IEEE) of the first length bytes
	elem   *list.Element
	// verified is false for entries recovered in lazy mode whose CRC has
	// not been checked yet; the first ReadRange touching such an entry
	// verifies it (and quarantines it on mismatch) before serving.
	verified bool
}

// Backend is a persistent prefix cache over an inner core.Backend. ReadRange
// serves byte windows out of append-only local prefix files, fetching only
// missing suffix bytes from the inner backend; Open and List delegate.
// All methods are safe for concurrent use.
type Backend struct {
	inner core.Backend
	dir   string
	cap   int64
	gen   string

	lazy bool

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recent; values are object names
	used     int64
	manifest *os.File
	lines    int // journal lines since last compaction
	stats    Stats
	closed   bool
	lock     *dirLock
	// fetching serializes upstream fetches per object so N concurrent
	// readers of the same prefix cost one upstream fetch (singleflight).
	// Entries are never removed; the map is bounded by the object count.
	fetching map[string]*sync.Mutex
}

const manifestName = "manifest.log"

type journalLine struct {
	Gen *string `json:"gen,omitempty"`
	V   int     `json:"v,omitempty"`
	Put string  `json:"put,omitempty"`
	Len int64   `json:"len,omitempty"`
	CRC uint32  `json:"crc,omitempty"`
	Del string  `json:"del,omitempty"`
}

// Option configures Wrap.
type Option func(*Backend)

// WithLazyVerify defers recovery's CRC verification from Open to each
// entry's first ReadRange. Open still replays the journal, stats every
// surviving entry's data file (discarding missing or short files), and
// trims un-journaled tails — all cheap metadata operations — but does not
// read cached bytes, so a warm restart over a terabyte-scale cache opens in
// milliseconds instead of stalling the first epoch. The integrity guarantee
// is unchanged: an entry's journaled CRC is checked before its first byte
// is served, and a torn or corrupt entry is quarantined (dropped and
// refetched from upstream) at that first touch, counted in
// Stats.Discarded.
func WithLazyVerify() Option {
	return func(b *Backend) { b.lazy = true }
}

// Wrap opens (or creates) the persistent cache at dir over the inner
// backend, with the given byte capacity and dataset generation. Entries
// journaled by a previous process are verified and reused when the
// generation matches (at Open, or at first touch under WithLazyVerify); a
// mismatch purges the directory. The returned Backend owns inner and
// closes it with Close.
func Wrap(inner core.Backend, dir string, capacity int64, generation string, opts ...Option) (*Backend, error) {
	if inner == nil {
		return nil, fmt.Errorf("diskcache: nil inner backend")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("diskcache: non-positive capacity %d", capacity)
	}
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		inner:    inner,
		dir:      dir,
		cap:      capacity,
		gen:      generation,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		lock:     lock,
		fetching: make(map[string]*sync.Mutex),
	}
	for _, opt := range opts {
		opt(b)
	}
	if err := b.recover(); err != nil {
		lock.unlock()
		return nil, err
	}
	return b, nil
}

// objectFile maps an object name to its prefix file path. Names are hashed:
// they may contain separators, and the manifest is the authoritative
// name→extent map anyway.
func (b *Backend) objectFile(name string) string {
	sum := sha256.Sum256([]byte(name))
	return filepath.Join(b.dir, "obj-"+hex.EncodeToString(sum[:16])+".p")
}

// recover replays the manifest journal, verifies surviving entries against
// their data files, purges on generation mismatch, and compacts the journal
// so the directory starts clean.
func (b *Backend) recover() error {
	raw, err := os.ReadFile(filepath.Join(b.dir, manifestName))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("diskcache: reading manifest: %w", err)
	}

	// Replay: stop at the first torn line (a crash mid-append); later lines
	// cannot be trusted to describe synced data.
	type state struct {
		length int64
		crc    uint32
	}
	journaled := make(map[string]state)
	order := []string{} // first-journaled order, for LRU seeding
	genOK := len(raw) == 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		var l journalLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			b.stats.Discarded++ // torn or corrupt tail
			break
		}
		if first {
			first = false
			if l.Gen == nil || *l.Gen != b.gen {
				genOK = false
				break
			}
			genOK = true
			continue
		}
		switch {
		case l.Put != "":
			if l.Len < 0 {
				continue
			}
			if _, seen := journaled[l.Put]; !seen {
				order = append(order, l.Put)
			}
			journaled[l.Put] = state{length: l.Len, crc: l.CRC}
		case l.Del != "":
			delete(journaled, l.Del)
		}
	}
	// A trailing partial line has no newline; Scanner still yields it and the
	// json.Unmarshal above rejects it. A final line that parses but whose
	// newline is missing is complete enough to trust (its bytes are on disk).

	if !genOK {
		// Different dataset build (or pre-generation directory): purge.
		if err := b.purgeDir(); err != nil {
			return err
		}
		journaled, order = nil, nil
	}

	// Verify each journaled entry against its data file. Eager mode reads
	// and CRCs every cached byte here; lazy mode only stats the file (and
	// trims un-journaled tails), deferring the CRC to first touch.
	for _, name := range order {
		st, ok := journaled[name]
		if !ok {
			continue // deleted later in the journal
		}
		path := b.objectFile(name)
		if b.lazy {
			if !statTrim(path, st.length) {
				os.Remove(path)
				b.stats.Discarded++
				continue
			}
			e := &entry{name: name, length: st.length, crc: st.crc}
			e.elem = b.lru.PushFront(name)
			b.entries[name] = e
			b.used += st.length
			b.stats.Recovered++
			continue
		}
		length, crc, err := verifyPrefix(path, st.length, st.crc)
		if err != nil || length != st.length || crc != st.crc {
			// Torn or corrupt: discard the whole entry. Serving a shorter
			// prefix than journaled would be safe, but the journal is the
			// only statement of what bytes are valid — without a matching
			// CRC nothing on disk is trustworthy.
			os.Remove(path)
			b.stats.Discarded++
			continue
		}
		e := &entry{name: name, length: st.length, crc: st.crc, verified: true}
		e.elem = b.lru.PushFront(name)
		b.entries[name] = e
		b.used += st.length
		b.stats.Recovered++
	}

	// Drop data files the (possibly truncated) journal no longer accounts
	// for, and trim any trailing bytes past each entry's journaled extent so
	// O_APPEND writes land at the right offset.
	if err := b.sweepDir(); err != nil {
		return err
	}

	// Compact: rewrite the manifest to exactly the live entries, atomically.
	if err := b.compactLocked(); err != nil {
		return err
	}
	// Enforce the budget against whatever survived (capacity may have
	// shrunk since the last run).
	b.evictLocked("")
	return nil
}

// statTrim is lazy recovery's metadata-only check: path must hold at least
// length bytes (trailing un-journaled bytes are trimmed so later O_APPEND
// writes land at the journaled extent). No data bytes are read.
func statTrim(path string, length int64) bool {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() < length {
		return false
	}
	if fi.Size() > length {
		if err := f.Truncate(length); err != nil {
			return false
		}
	}
	return true
}

// verifyPrefix checks that path holds at least length bytes whose CRC over
// [0,length) matches, truncating trailing bytes beyond length.
func verifyPrefix(path string, length int64, want uint32) (int64, uint32, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	if fi.Size() < length {
		return fi.Size(), 0, nil // torn: file shorter than journaled extent
	}
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, f, length); err != nil {
		return 0, 0, err
	}
	if h.Sum32() != want {
		return length, h.Sum32(), nil
	}
	if fi.Size() > length {
		// A data append that crashed before its journal line: trim it so
		// future appends extend the verified prefix.
		if err := f.Truncate(length); err != nil {
			return 0, 0, err
		}
	}
	return length, want, nil
}

// purgeDir removes every cache artifact in the directory (generation
// mismatch). The lock file survives.
func (b *Backend) purgeDir() error {
	des, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	for _, de := range des {
		n := de.Name()
		if n == manifestName || (strings.HasPrefix(n, "obj-") && strings.HasSuffix(n, ".p")) {
			if err := os.Remove(filepath.Join(b.dir, n)); err != nil {
				return fmt.Errorf("diskcache: %w", err)
			}
		}
	}
	return nil
}

// sweepDir removes object files no live entry accounts for.
func (b *Backend) sweepDir() error {
	live := make(map[string]bool, len(b.entries))
	for name := range b.entries {
		live[filepath.Base(b.objectFile(name))] = true
	}
	des, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	for _, de := range des {
		n := de.Name()
		if strings.HasPrefix(n, "obj-") && strings.HasSuffix(n, ".p") && !live[n] {
			if err := os.Remove(filepath.Join(b.dir, n)); err != nil {
				return fmt.Errorf("diskcache: %w", err)
			}
		}
	}
	return nil
}

// compactLocked atomically rewrites the manifest to the live entries and
// (re)opens the append handle. Caller holds b.mu or is in single-threaded
// setup.
func (b *Backend) compactLocked() error {
	if b.manifest != nil {
		b.manifest.Close()
		b.manifest = nil
	}
	tmp := filepath.Join(b.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	w := bufio.NewWriter(f)
	gen := b.gen
	lines := 1
	writeLine := func(l journalLine) {
		data, _ := json.Marshal(l)
		w.Write(data)
		w.WriteByte('\n')
	}
	writeLine(journalLine{Gen: &gen, V: 1})
	// Journal back-to-front so recovery's first-journaled order matches LRU
	// order, oldest first.
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		e := b.entries[el.Value.(string)]
		writeLine(journalLine{Put: e.name, Len: e.length, CRC: e.crc})
		lines++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, manifestName)); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	m, err := os.OpenFile(filepath.Join(b.dir, manifestName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	b.manifest = m
	b.lines = lines
	return nil
}

// journalLocked appends one line to the manifest. Caller holds b.mu.
// The append is deliberately not fsynced: the data file is synced BEFORE
// its journal line is written, so a journal line on disk always describes
// durable data regardless of when the line itself reaches the platter — a
// crash can only lose recent lines, costing cache warmth (recovery trims
// the un-journaled data tails), never correctness. Compaction (which does
// sync) triggers when the journal has grown well past the live entry
// count.
func (b *Backend) journalLocked(l journalLine) error {
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	data = append(data, '\n')
	if _, err := b.manifest.Write(data); err != nil {
		return fmt.Errorf("diskcache: journaling: %w", err)
	}
	b.lines++
	if b.lines > 64 && b.lines > 4*(len(b.entries)+1) {
		return b.compactLocked()
	}
	return nil
}

// objectLock returns the per-object fetch mutex, creating it on first use.
func (b *Backend) objectLock(name string) *sync.Mutex {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.fetching[name]
	if !ok {
		m = &sync.Mutex{}
		b.fetching[name] = m
	}
	return m
}

// readWindow reads [offset, offset+length) from the object's prefix file.
func (b *Backend) readWindow(name string, offset, length int64) ([]byte, error) {
	f, err := os.Open(b.objectFile(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadRange reads [offset, offset+length) of the named object, fetching
// from the inner backend only the bytes past the cached prefix extent —
// offset zero on a cold miss, the cached length on an upgrade, nothing at
// all on a warm restart. The returned slice is freshly allocated.
func (b *Backend) ReadRange(name string, offset, length int64) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("diskcache: negative range length %d for %s", length, name)
	}
	if offset < 0 {
		return nil, fmt.Errorf("diskcache: negative range offset %d for %s", offset, name)
	}
	if length == 0 {
		return nil, nil
	}
	need := offset + length

	// Fast path: the window is inside the cached prefix. Stats are counted
	// only after the file read succeeds, so a fallback to the miss path
	// below is not double-counted.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("diskcache: closed")
	}
	if e, ok := b.entries[name]; ok && e.verified && e.length >= need {
		b.lru.MoveToFront(e.elem)
		b.mu.Unlock()
		buf, err := b.readWindow(name, offset, length)
		b.mu.Lock()
		if err == nil {
			b.stats.Hits++
			b.stats.BytesServed += length
			b.mu.Unlock()
			return buf, nil
		}
		// The prefix file vanished or shrank underfoot (external damage).
		// Drop the entry and take the miss path rather than failing the read.
		b.invalidateLocked(name)
	}
	b.mu.Unlock()

	// Slow path: an upstream fetch may be needed. The per-object lock
	// coalesces concurrent misses for the same object into one fetch.
	ol := b.objectLock(name)
	ol.Lock()
	defer ol.Unlock()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("diskcache: closed")
	}
	// First touch of a lazily recovered entry: settle its CRC now, before
	// any byte of it is served or extended. A mismatch quarantines the
	// entry — the read below restarts cold from upstream, exactly as if
	// eager recovery had discarded it at Open.
	if e, ok := b.entries[name]; ok && !e.verified {
		want, wantCRC := e.length, e.crc
		b.mu.Unlock()
		length, crc, verr := verifyPrefix(b.objectFile(name), want, wantCRC)
		b.mu.Lock()
		if e2, still := b.entries[name]; still && e2 == e {
			if verr == nil && length == want && crc == wantCRC {
				e.verified = true
			} else {
				b.invalidateLocked(name)
				b.stats.Discarded++
			}
		}
	}
	var have int64
	var haveCRC uint32
	if e, ok := b.entries[name]; ok {
		if e.length >= need {
			// A waiter: the fetch we queued behind already covered us.
			b.lru.MoveToFront(e.elem)
			b.mu.Unlock()
			buf, err := b.readWindow(name, offset, length)
			b.mu.Lock()
			if err == nil {
				b.stats.Hits++
				b.stats.BytesServed += length
				b.mu.Unlock()
				return buf, nil
			}
			// Evicted (or damaged) between the queue and the read: fall
			// through to a cold fetch rather than failing the request.
			b.invalidateLocked(name)
		} else {
			have, haveCRC = e.length, e.crc
		}
	}
	b.mu.Unlock()

	// Fetch the missing suffix without any lock but the object's own, so
	// fetches for different objects overlap.
	delta, err := b.inner.ReadRange(name, have, need-have)
	if err != nil {
		return nil, err
	}
	if int64(len(delta)) != need-have {
		return nil, fmt.Errorf("diskcache: upstream returned %d bytes of %s, want %d", len(delta), name, need-have)
	}

	// Persist: append data, sync, then journal the new extent. Growth of
	// this object is serialized by the object lock we hold.
	path := b.objectFile(name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if _, err := f.Write(delta); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	newCRC := crc32.Update(haveCRC, crc32.IEEETable, delta)

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		// The append above was never journaled; trim it so the file again
		// matches its last journaled extent.
		os.Truncate(path, have)
		return nil, fmt.Errorf("diskcache: closed")
	}
	e, ok := b.entries[name]
	if !ok {
		// Either a cold miss, or the base prefix was evicted while we
		// fetched. The object lock serialized growth, so if have > 0 the
		// data file was deleted by eviction and our append recreated it
		// holding only the delta — unusable as a prefix; restart cold.
		if have > 0 {
			os.Remove(path)
			b.mu.Unlock()
			data, err := b.refetchCold(name, need)
			b.mu.Lock()
			// The discarded delta moved from upstream too; count all of it.
			b.stats.BytesFetched += need - have
			if err != nil {
				return nil, err
			}
			b.stats.Misses++
			b.stats.BytesFetched += need
			b.installLocked(name, need, crc32.ChecksumIEEE(data))
			b.stats.BytesServed += length
			out := make([]byte, length)
			copy(out, data[offset:need])
			b.evictLocked(name)
			return out, nil
		}
		if err := b.journalLocked(journalLine{Put: name, Len: need, CRC: newCRC}); err != nil {
			// Un-journaled data must not linger: a later append would land
			// past it and corrupt the prefix.
			os.Remove(path)
			return nil, err
		}
		b.stats.Misses++
		b.stats.BytesFetched += int64(len(delta))
		b.installLocked(name, need, newCRC)
	} else {
		if err := b.journalLocked(journalLine{Put: name, Len: need, CRC: newCRC}); err != nil {
			os.Truncate(path, have)
			return nil, err
		}
		b.stats.DeltaHits++
		b.stats.BytesFetched += int64(len(delta))
		b.stats.DeltaBytes += int64(len(delta))
		e.length, e.crc = need, newCRC
		b.used += int64(len(delta))
		b.lru.MoveToFront(e.elem)
	}
	b.stats.BytesServed += length

	// Serve from the delta when it covers the window; otherwise read the
	// file (the window begins inside the previously cached prefix).
	var out []byte
	if offset >= have {
		out = make([]byte, length)
		copy(out, delta[offset-have:])
	} else {
		b.mu.Unlock()
		buf, rerr := b.readWindow(name, offset, length)
		if rerr != nil {
			// The just-grown file was evicted underfoot by a concurrent
			// request's eviction pass. Serve this request straight from
			// upstream; the entry state fixes itself on the next miss.
			buf, rerr = b.inner.ReadRange(name, offset, length)
		}
		b.mu.Lock()
		if rerr != nil {
			return nil, fmt.Errorf("diskcache: reading back %s: %w", name, rerr)
		}
		out = buf
	}
	b.evictLocked(name)
	return out, nil
}

// refetchCold re-fetches an object's whole prefix [0, need) from upstream
// and writes a fresh data file. Caller holds the object lock but NOT b.mu.
func (b *Backend) refetchCold(name string, need int64) ([]byte, error) {
	data, err := b.inner.ReadRange(name, 0, need)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != need {
		return nil, fmt.Errorf("diskcache: upstream returned %d bytes of %s, want %d", len(data), name, need)
	}
	path := b.objectFile(name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	b.mu.Lock()
	err = b.journalLocked(journalLine{Put: name, Len: need, CRC: crc32.ChecksumIEEE(data)})
	b.mu.Unlock()
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return data, nil
}

// installLocked records a fresh entry. Caller holds b.mu.
func (b *Backend) installLocked(name string, length int64, crc uint32) {
	e := &entry{name: name, length: length, crc: crc, verified: true}
	e.elem = b.lru.PushFront(name)
	b.entries[name] = e
	b.used += length
}

// invalidateLocked drops one entry without journaling (used when the data
// file is found damaged underfoot; the next compaction forgets it).
func (b *Backend) invalidateLocked(name string) {
	if e, ok := b.entries[name]; ok {
		b.used -= e.length
		delete(b.entries, name)
		b.lru.Remove(e.elem)
		os.Remove(b.objectFile(name))
	}
}

// evictLocked drops least-recently-used entries (whole objects: partial
// prefixes are never trimmed) until the budget holds, never evicting the
// protected object. Caller holds b.mu.
func (b *Backend) evictLocked(protect string) {
	for b.used > b.cap && b.lru.Len() > 1 {
		back := b.lru.Back()
		name := back.Value.(string)
		if name == protect {
			return // sole entry over budget: keep it
		}
		e := b.entries[name]
		b.used -= e.length
		delete(b.entries, name)
		b.lru.Remove(back)
		os.Remove(b.objectFile(name))
		b.stats.Evictions++
		// Journal the eviction; a failure here only costs journal accuracy
		// for an entry whose file is already gone — recovery's verification
		// scan discards it.
		b.journalLocked(journalLine{Del: name})
	}
}

// Open streams the whole named object from the inner backend. Whole-object
// streams bypass the cache (the prefix economy lives on ReadRange, which is
// the only path PCR record reads use).
func (b *Backend) Open(name string) (io.ReadCloser, error) { return b.inner.Open(name) }

// List delegates to the inner backend.
func (b *Backend) List() ([]string, error) { return b.inner.List() }

// Contains reports whether the cache holds at least prefixLen bytes of the
// named object (without touching recency).
func (b *Backend) Contains(name string, prefixLen int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[name]
	return ok && e.length >= prefixLen
}

// UsedBytes returns the bytes currently cached on disk.
func (b *Backend) UsedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Len returns the number of cached objects.
func (b *Backend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Stats returns a snapshot of the counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close flushes and closes the manifest, releases the directory lock, and
// closes the inner backend. The cached files remain for the next process.
func (b *Backend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	var err error
	if b.manifest != nil {
		err = b.manifest.Close()
		b.manifest = nil
	}
	b.mu.Unlock()
	if b.lock != nil {
		b.lock.unlock()
	}
	if cerr := b.inner.Close(); err == nil {
		err = cerr
	}
	return err
}
