package diskcache

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeBackend is an in-memory core.Backend that counts upstream traffic.
type fakeBackend struct {
	mu      sync.Mutex
	objects map[string][]byte
	reads   int
	bytes   int64
	ranges  []string // "name:offset+length" per ReadRange, in call order
	delay   time.Duration
	closed  bool
}

func newFake() *fakeBackend {
	return &fakeBackend{objects: map[string][]byte{
		"records/a.pcr": seq(0, 1000),
		"records/b.pcr": seq(7, 800),
		"records/c.pcr": seq(13, 600),
	}}
}

// seq builds deterministic distinguishable bytes.
func seq(salt byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + salt
	}
	return b
}

func (f *fakeBackend) Open(name string) (io.ReadCloser, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.objects[name]
	if !ok {
		return nil, fmt.Errorf("fake: no object %q", name)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (f *fakeBackend) ReadRange(name string, offset, length int64) ([]byte, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.objects[name]
	if !ok {
		return nil, fmt.Errorf("fake: no object %q", name)
	}
	if offset+length > int64(len(data)) {
		return nil, fmt.Errorf("fake: range [%d,%d) past end of %q (%d bytes)", offset, offset+length, name, len(data))
	}
	f.reads++
	f.bytes += length
	f.ranges = append(f.ranges, fmt.Sprintf("%s:%d+%d", name, offset, length))
	out := make([]byte, length)
	copy(out, data[offset:offset+length])
	return out, nil
}

func (f *fakeBackend) List() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for n := range f.objects {
		names = append(names, n)
	}
	return names, nil
}

func (f *fakeBackend) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeBackend) counters() (int, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.bytes
}

func mustRead(t *testing.T, b *Backend, name string, offset, length int64, want []byte) {
	t.Helper()
	got, err := b.ReadRange(name, offset, length)
	if err != nil {
		t.Fatalf("ReadRange(%s, %d, %d): %v", name, offset, length, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadRange(%s, %d, %d): wrong bytes", name, offset, length)
	}
}

func TestMissHitAndDeltaUpgrade(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a := inner.objects["records/a.pcr"]

	// Cold miss: fetches [0,100).
	mustRead(t, b, "records/a.pcr", 0, 100, a[:100])
	// Warm hit: no upstream traffic.
	r0, _ := inner.counters()
	mustRead(t, b, "records/a.pcr", 0, 100, a[:100])
	mustRead(t, b, "records/a.pcr", 20, 50, a[20:70])
	if r, _ := inner.counters(); r != r0 {
		t.Fatalf("warm hits hit upstream: %d reads, want %d", r, r0)
	}
	// Upgrade: only the delta [100,300) moves.
	mustRead(t, b, "records/a.pcr", 0, 300, a[:300])
	if got := inner.ranges[len(inner.ranges)-1]; got != "records/a.pcr:100+200" {
		t.Fatalf("upgrade fetched %s, want records/a.pcr:100+200", got)
	}

	st := b.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.DeltaHits != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 delta hit", st)
	}
	if st.DeltaBytes != 200 || st.BytesFetched != 300 {
		t.Fatalf("stats = %+v, want 200 delta of 300 fetched", st)
	}
}

func TestWarmRestartServesWithoutUpstream(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	a := inner.objects["records/a.pcr"]
	bb := inner.objects["records/b.pcr"]
	mustRead(t, b, "records/a.pcr", 0, 400, a[:400])
	mustRead(t, b, "records/b.pcr", 0, 200, bb[:200])
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// "Second process": same directory, same generation.
	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st := b2.Stats(); st.Recovered != 2 || st.Discarded != 0 {
		t.Fatalf("recovery stats = %+v, want 2 recovered, 0 discarded", st)
	}
	mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
	mustRead(t, b2, "records/b.pcr", 0, 200, bb[:200])
	if r, _ := inner2.counters(); r != 0 {
		t.Fatalf("warm restart hit upstream %d times, want 0", r)
	}
	// A quality upgrade after restart still moves only the delta.
	mustRead(t, b2, "records/a.pcr", 0, 500, a[:500])
	if r, n := inner2.counters(); r != 1 || n != 100 {
		t.Fatalf("post-restart upgrade moved %d reads / %d bytes, want 1 / 100", r, n)
	}
}

func TestGenerationMismatchPurges(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, b, "records/a.pcr", 0, 100, inner.objects["records/a.pcr"][:100])
	b.Close()

	b2, err := Wrap(inner, dir, 1<<20, "gen2")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st := b2.Stats(); st.Recovered != 0 {
		t.Fatalf("recovered %d entries across generations, want 0", st.Recovered)
	}
	if b2.Len() != 0 || b2.UsedBytes() != 0 {
		t.Fatalf("cache not purged: %d entries, %d bytes", b2.Len(), b2.UsedBytes())
	}
	// The purged entry re-fetches cleanly.
	r0, _ := inner.counters()
	mustRead(t, b2, "records/a.pcr", 0, 100, inner.objects["records/a.pcr"][:100])
	if r, _ := inner.counters(); r != r0+1 {
		t.Fatalf("purged entry did not refetch")
	}
}

// TestTruncatedManifestRecovery simulates a kill -9 mid-journal-append: the
// manifest's final line is torn. Reopening must keep every entry journaled
// before the tear and serve it without upstream traffic.
func TestTruncatedManifestRecovery(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	a := inner.objects["records/a.pcr"]
	bb := inner.objects["records/b.pcr"]
	mustRead(t, b, "records/a.pcr", 0, 400, a[:400])
	mustRead(t, b, "records/b.pcr", 0, 200, bb[:200])
	b.Close()

	// Tear the final journal line mid-bytes.
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	st := b2.Stats()
	if st.Recovered != 1 || st.Discarded == 0 {
		t.Fatalf("recovery stats = %+v, want 1 recovered and a discarded tear", st)
	}
	// The surviving entry serves warm; the torn one refetches correctly.
	mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
	if r, _ := inner2.counters(); r != 0 {
		t.Fatalf("surviving entry hit upstream")
	}
	mustRead(t, b2, "records/b.pcr", 0, 200, bb[:200])
	if r, _ := inner2.counters(); r != 1 {
		t.Fatalf("torn entry served stale bytes without refetch")
	}
}

// TestTornPrefixFileRecovery simulates a crash mid-data-append (journal
// promises more bytes than the file holds) and silent corruption (CRC
// mismatch). Both must discard the entry; the rest survive.
func TestTornPrefixFileRecovery(t *testing.T) {
	for _, damage := range []string{"truncate", "corrupt"} {
		t.Run(damage, func(t *testing.T) {
			inner := newFake()
			dir := t.TempDir()
			b, err := Wrap(inner, dir, 1<<20, "gen1")
			if err != nil {
				t.Fatal(err)
			}
			a := inner.objects["records/a.pcr"]
			bb := inner.objects["records/b.pcr"]
			mustRead(t, b, "records/a.pcr", 0, 400, a[:400])
			mustRead(t, b, "records/b.pcr", 0, 200, bb[:200])
			victim := b.objectFile("records/a.pcr")
			b.Close()

			switch damage {
			case "truncate":
				if err := os.Truncate(victim, 123); err != nil {
					t.Fatal(err)
				}
			case "corrupt":
				raw, err := os.ReadFile(victim)
				if err != nil {
					t.Fatal(err)
				}
				raw[57] ^= 0xFF
				if err := os.WriteFile(victim, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			inner2 := newFake()
			b2, err := Wrap(inner2, dir, 1<<20, "gen1")
			if err != nil {
				t.Fatal(err)
			}
			defer b2.Close()
			if st := b2.Stats(); st.Recovered != 1 || st.Discarded != 1 {
				t.Fatalf("recovery stats = %+v, want 1 recovered / 1 discarded", st)
			}
			// The damaged entry is gone: a read refetches and returns clean
			// bytes — corrupt data never reaches the caller.
			mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
			if r, _ := inner2.counters(); r != 1 {
				t.Fatalf("damaged entry did not refetch (reads=%d)", r)
			}
			// The healthy entry still serves warm.
			mustRead(t, b2, "records/b.pcr", 0, 200, bb[:200])
			if r, _ := inner2.counters(); r != 1 {
				t.Fatalf("healthy entry hit upstream after recovery")
			}
		})
	}
}

// TestDataPastJournaledExtentIsTrimmed simulates a crash after a data
// append but before its journal line: the file holds more bytes than the
// journal promises. The journaled prefix must survive and the tail must be
// trimmed so later appends extend the verified prefix correctly.
func TestDataPastJournaledExtentIsTrimmed(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	a := inner.objects["records/a.pcr"]
	mustRead(t, b, "records/a.pcr", 0, 300, a[:300])
	path := b.objectFile("records/a.pcr")
	b.Close()

	// Un-journaled garbage lands at the end of the file.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("garbage-from-a-torn-append"))
	f.Close()

	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st := b2.Stats(); st.Recovered != 1 || st.Discarded != 0 {
		t.Fatalf("recovery stats = %+v, want the journaled prefix recovered", st)
	}
	// A quality upgrade must append at exactly the journaled extent.
	mustRead(t, b2, "records/a.pcr", 0, 500, a[:500])
	if got := inner2.ranges[len(inner2.ranges)-1]; got != "records/a.pcr:300+200" {
		t.Fatalf("post-trim upgrade fetched %s, want records/a.pcr:300+200", got)
	}
	mustRead(t, b2, "records/a.pcr", 250, 150, a[250:400])
}

// TestSingleflightCoalescesConcurrentMisses: N workers asking for the same
// cold prefix must cost exactly one upstream fetch. Run under -race.
func TestSingleflightCoalescesConcurrentMisses(t *testing.T) {
	inner := newFake()
	inner.delay = 20 * time.Millisecond
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a := inner.objects["records/a.pcr"]

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := b.ReadRange("records/a.pcr", 0, 600)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, a[:600]) {
				errs <- fmt.Errorf("wrong bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r, _ := inner.counters(); r != 1 {
		t.Fatalf("%d concurrent misses cost %d upstream fetches, want 1", workers, r)
	}
	st := b.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced hits", st, workers-1)
	}
}

func TestEvictionHoldsBudgetAndSurvivesRestart(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1000, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, b, "records/a.pcr", 0, 600, inner.objects["records/a.pcr"][:600])
	mustRead(t, b, "records/b.pcr", 0, 600, inner.objects["records/b.pcr"][:600])
	if used := b.UsedBytes(); used > 1000 {
		t.Fatalf("budget not enforced: %d bytes used", used)
	}
	if st := b.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions under a 1000-byte budget")
	}
	if b.Contains("records/a.pcr", 1) {
		t.Fatal("LRU entry a not evicted")
	}
	if !b.Contains("records/b.pcr", 600) {
		t.Fatal("most recent entry b evicted")
	}
	b.Close()

	// The survivor — and only it — persists across restart.
	b2, err := Wrap(inner, dir, 1000, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st := b2.Stats(); st.Recovered != 1 {
		t.Fatalf("recovered %d entries, want 1", st.Recovered)
	}
	if !b2.Contains("records/b.pcr", 600) {
		t.Fatal("survivor not recovered")
	}
}

func TestShrunkCapacityEvictsOnOpen(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	mustRead(t, b, "records/a.pcr", 0, 600, inner.objects["records/a.pcr"][:600])
	mustRead(t, b, "records/b.pcr", 0, 600, inner.objects["records/b.pcr"][:600])
	b.Close()

	b2, err := Wrap(inner, dir, 700, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if used := b2.UsedBytes(); used > 700 {
		t.Fatalf("shrunk budget not enforced on open: %d bytes", used)
	}
}

func TestJournalCompaction(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a := inner.objects["records/a.pcr"]
	// Grow one entry a byte at a time: hundreds of journal lines for one
	// live entry must trigger compaction.
	for n := int64(1); n <= 300; n++ {
		mustRead(t, b, "records/a.pcr", 0, n, a[:n])
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte("\n")); lines > 100 {
		t.Fatalf("journal not compacted: %d lines for 1 live entry", lines)
	}
}

func TestSecondOpenerFailsFast(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := Wrap(newFake(), dir, 1<<20, "gen1"); err == nil {
		t.Fatal("second opener of a locked cache directory should fail")
	}
	// After Close the directory is reusable.
	b.Close()
	b2, err := Wrap(newFake(), dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	b2.Close()
}

func TestOpenAndListDelegate(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rc, err := b.Open("records/a.pcr")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(data, inner.objects["records/a.pcr"]) {
		t.Fatal("Open did not delegate")
	}
	names, err := b.List()
	if err != nil || len(names) != 3 {
		t.Fatalf("List = %v, %v", names, err)
	}
}

// warmTwoEntries fills a cache with two prefixes and closes it, returning
// the victim object's data file path for damage injection.
func warmTwoEntries(t *testing.T, inner *fakeBackend, dir string) (victim string) {
	t.Helper()
	b, err := Wrap(inner, dir, 1<<20, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	a := inner.objects["records/a.pcr"]
	bb := inner.objects["records/b.pcr"]
	mustRead(t, b, "records/a.pcr", 0, 400, a[:400])
	mustRead(t, b, "records/b.pcr", 0, 200, bb[:200])
	victim = b.objectFile("records/a.pcr")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestLazyVerifyWarmRestart: a lazy reopen accepts journaled entries
// without reading their bytes, serves them warm (zero upstream traffic),
// and delta upgrades still move only the missing suffix after the
// first-touch verification.
func TestLazyVerifyWarmRestart(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	warmTwoEntries(t, inner, dir)

	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1", WithLazyVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st := b2.Stats(); st.Recovered != 2 || st.Discarded != 0 {
		t.Fatalf("lazy recovery stats = %+v, want 2 recovered / 0 discarded", st)
	}
	a := inner2.objects["records/a.pcr"]
	mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
	if r, _ := inner2.counters(); r != 0 {
		t.Fatalf("warm lazy read hit upstream %d times", r)
	}
	// Repeat read takes the verified fast path.
	mustRead(t, b2, "records/a.pcr", 100, 200, a[100:300])
	if st := b2.Stats(); st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
	// Delta upgrade after lazy recovery appends only the suffix.
	mustRead(t, b2, "records/a.pcr", 0, 600, a[:600])
	if r, bts := inner2.counters(); r != 1 || bts != 200 {
		t.Fatalf("upgrade fetched %d ranges / %d bytes, want 1 / 200 (the delta)", r, bts)
	}
}

// TestLazyVerifyQuarantinesTornEntry is the required torn-file test: a
// corrupted cached prefix sails through the lazy open (its bytes are not
// read) but is quarantined at first touch — the read returns clean
// refetched bytes, never the corrupt ones, and the entry is counted
// discarded.
func TestLazyVerifyQuarantinesTornEntry(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	victim := warmTwoEntries(t, inner, dir)

	// Flip one byte inside the journaled extent.
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[57] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1", WithLazyVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// The damage is invisible at open: that is what makes the open cheap.
	if st := b2.Stats(); st.Recovered != 2 || st.Discarded != 0 {
		t.Fatalf("lazy open stats = %+v, want 2 recovered / 0 discarded", st)
	}
	if !b2.Contains("records/a.pcr", 400) {
		t.Fatal("provisionally recovered entry not listed")
	}

	// First touch: CRC mismatch quarantines the entry and the read is
	// served with clean bytes refetched from upstream.
	a := inner2.objects["records/a.pcr"]
	mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
	if st := b2.Stats(); st.Discarded != 1 || st.Misses != 1 {
		t.Fatalf("first touch stats = %+v, want 1 discarded / 1 miss", st)
	}
	if r, _ := inner2.counters(); r != 1 {
		t.Fatalf("quarantined entry refetched %d times, want 1", r)
	}

	// The healthy entry still serves warm.
	bb := inner2.objects["records/b.pcr"]
	mustRead(t, b2, "records/b.pcr", 0, 200, bb[:200])
	if r, _ := inner2.counters(); r != 1 {
		t.Fatalf("healthy entry hit upstream after lazy recovery")
	}

	// The refetched entry is fully trusted again: repeat reads are hits.
	mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
	if st := b2.Stats(); st.Hits < 1 {
		t.Fatalf("refetched entry not served as a hit: %+v", st)
	}
}

// TestLazyVerifyStillCatchesShortFilesAtOpen: lazy mode stats every file,
// so a prefix file shorter than its journaled extent — the cheapest form
// of tear to detect — is still discarded at open, not first touch.
func TestLazyVerifyStillCatchesShortFilesAtOpen(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	victim := warmTwoEntries(t, inner, dir)
	if err := os.Truncate(victim, 123); err != nil {
		t.Fatal(err)
	}

	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1", WithLazyVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st := b2.Stats(); st.Recovered != 1 || st.Discarded != 1 {
		t.Fatalf("lazy open stats = %+v, want 1 recovered / 1 discarded", st)
	}
	a := inner2.objects["records/a.pcr"]
	mustRead(t, b2, "records/a.pcr", 0, 400, a[:400])
	if r, _ := inner2.counters(); r != 1 {
		t.Fatalf("short file refetched %d times, want 1", r)
	}
}

// TestLazyVerifyTrimsUnjournaledTail: a crash between a data append and
// its journal line leaves trailing bytes past the journaled extent. Lazy
// open trims them (a metadata-only truncate), so a later upgrade appends
// the delta at the right offset.
func TestLazyVerifyTrimsUnjournaledTail(t *testing.T) {
	inner := newFake()
	dir := t.TempDir()
	victim := warmTwoEntries(t, inner, dir)
	f, err := os.OpenFile(victim, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("junk past the journaled extent")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	inner2 := newFake()
	b2, err := Wrap(inner2, dir, 1<<20, "gen1", WithLazyVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	a := inner2.objects["records/a.pcr"]
	// Upgrade across the old extent: the tail was trimmed, so the delta
	// lands at offset 400 and the whole window reads back correctly.
	mustRead(t, b2, "records/a.pcr", 0, 600, a[:600])
	if r, bts := inner2.counters(); r != 1 || bts != 200 {
		t.Fatalf("upgrade fetched %d ranges / %d bytes, want 1 / 200", r, bts)
	}
	mustRead(t, b2, "records/a.pcr", 350, 150, a[350:500])
}
