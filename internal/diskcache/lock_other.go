//go:build !unix

package diskcache

// Non-unix platforms get no advisory lock: single-process-per-directory is
// a documented requirement rather than an enforced one.
type dirLock struct{}

func lockDir(dir string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) unlock() {}
