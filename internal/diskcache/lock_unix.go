//go:build unix

package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock is an advisory flock on a sentinel file in the cache directory:
// two processes mounting the same directory would interleave journal and
// data appends, so the second opener fails fast with a configuration error
// (each training worker mounts its own directory).
type dirLock struct{ f *os.File }

func lockDir(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: cache directory %s is in use by another process (each worker needs its own -disk-cache-dir): %w", dir, err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) unlock() {
	if l.f != nil {
		syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
		l.f.Close()
		l.f = nil
	}
}
