package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID: "cachepressure", Paper: "§5 cache pressure",
		Desc: "PCR prefix cache: low scan groups multiply the cacheable working set; upgrades read only deltas",
		Run:  runCachePressure,
	})
}

// runCachePressure quantifies the paper's §5 claim ("PCRs can reduce cache
// pressure since a subset of the data is used for training"): with a fixed
// cache budget, training at scan group g caches prefixLen(g) bytes per
// record, so the fraction of the dataset that fits grows as the group
// shrinks; and a later quality upgrade fetches only the missing delta bytes
// because every quality level is a prefix of the same stream.
func runCachePressure(cfg *Config) error {
	header(cfg.Out, "§5 cache pressure",
		"Records cacheable under a fixed budget per scan group; delta-upgrade traffic")
	set, err := cfg.pcrSet(synth.HAM10000)
	if err != nil {
		return err
	}
	records := make(map[int][]byte, set.NumRecords())
	fullBytes, err := set.RecordBytesAtGroup(set.NumGroups)
	if err != nil {
		return err
	}
	var datasetBytes int64
	for r, n := range fullBytes {
		records[r] = make([]byte, n)
		datasetBytes += n
	}
	// Budget: one third of the full dataset (a cache-constrained node).
	budget := datasetBytes / 3
	fetch := func(record int, offset, length int64) ([]byte, error) {
		return records[record][offset : offset+length], nil
	}

	fmt.Fprintf(cfg.Out, "dataset: %d records, %d bytes total; cache budget %d bytes\n\n",
		set.NumRecords(), datasetBytes, budget)
	fmt.Fprintf(cfg.Out, "%6s %14s %16s %18s\n", "scan", "bytes/record", "records cached", "epoch-2 hit rate")
	for _, g := range scanGroups {
		gg := g
		if gg > set.NumGroups {
			gg = set.NumGroups
		}
		rb, err := set.RecordBytesAtGroup(gg)
		if err != nil {
			return err
		}
		c, err := cache.New(budget, fetch)
		if err != nil {
			return err
		}
		// Epoch 1 populates; epoch 2 measures hits.
		for r := 0; r < set.NumRecords(); r++ {
			if _, err := c.Get(r, rb[r]); err != nil {
				return err
			}
		}
		cachedAfterEpoch1 := c.Len()
		before := c.Stats()
		for r := 0; r < set.NumRecords(); r++ {
			if _, err := c.Get(r, rb[r]); err != nil {
				return err
			}
		}
		after := c.Stats()
		hits := after.Hits - before.Hits
		var mean int64
		for _, b := range rb {
			mean += b
		}
		mean /= int64(len(rb))
		fmt.Fprintf(cfg.Out, "%6d %14d %9d/%-6d %17.0f%%\n",
			g, mean, cachedAfterEpoch1, set.NumRecords(),
			100*float64(hits)/float64(set.NumRecords()))
	}

	// Delta upgrades: train at scan 2 (everything cached), then a second
	// job wants scan 5 — only the deltas travel.
	rb2, err := set.RecordBytesAtGroup(2)
	if err != nil {
		return err
	}
	rb5, err := set.RecordBytesAtGroup(5)
	if err != nil {
		return err
	}
	c, err := cache.New(budget, fetch)
	if err != nil {
		return err
	}
	for r := 0; r < set.NumRecords(); r++ {
		if _, err := c.Get(r, rb2[r]); err != nil {
			return err
		}
	}
	base := c.Stats().BytesFetched
	for r := 0; r < set.NumRecords(); r++ {
		if _, err := c.Get(r, rb5[r]); err != nil {
			return err
		}
	}
	upgrade := c.Stats().BytesFetched - base
	var full5 int64
	for _, b := range rb5 {
		full5 += b
	}
	fmt.Fprintf(cfg.Out, "\nupgrade scan 2 -> 5: fetched %d bytes vs %d for cold reads (%.0f%% saved; %d upgrade hits)\n",
		upgrade, full5, 100*(1-float64(upgrade)/float64(full5)), c.Stats().UpgradeHits)
	return nil
}
