// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, §5, Appendix A) on the reproduction stack: synthetic
// datasets → PCR encoding → simulated storage/pipeline → real SGD
// training. Each experiment prints the rows or series the paper reports;
// DESIGN.md's per-experiment index maps experiment IDs to paper artifacts.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/iosim"
	"repro/internal/synth"
	"repro/internal/train"
)

// Config carries shared experiment parameters.
type Config struct {
	// Out receives the experiment's report.
	Out io.Writer
	// Scale multiplies dataset sizes (1.0 = the profiles' defaults).
	Scale float64
	// Seed drives all generation and training.
	Seed int64
	// Epochs overrides the per-dataset epoch budgets when > 0.
	Epochs int

	mu   sync.Mutex
	sets map[string]*train.PCRSet
	data map[string]*synth.Dataset
}

// NewConfig returns a Config with defaults.
func NewConfig(out io.Writer) *Config {
	return &Config{Out: out, Scale: 1.0, Seed: 42}
}

func (c *Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// epochsFor returns the scaled epoch budget for a dataset (the paper runs
// 90–250 epochs; the reproduction compresses the schedule).
func (c *Config) epochsFor(name string) int {
	if c.Epochs > 0 {
		return c.Epochs
	}
	switch name {
	case "imagenet":
		return 24
	case "ham10000":
		return 30
	case "cars":
		return 30
	default: // celebahq
		return 18
	}
}

// dataset returns (building and caching) the synthetic dataset for a
// profile.
func (c *Config) dataset(p synth.Profile) (*synth.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.data == nil {
		c.data = make(map[string]*synth.Dataset)
	}
	if ds, ok := c.data[p.Name]; ok {
		return ds, nil
	}
	ds, err := synth.Generate(p.Scaled(c.scale()), c.Seed)
	if err != nil {
		return nil, err
	}
	c.data[p.Name] = ds
	return ds, nil
}

// pcrSet returns (building and caching) the PCR-encoded dataset.
func (c *Config) pcrSet(p synth.Profile) (*train.PCRSet, error) {
	ds, err := c.dataset(p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sets == nil {
		c.sets = make(map[string]*train.PCRSet)
	}
	if s, ok := c.sets[p.Name]; ok {
		return s, nil
	}
	set, err := train.BuildPCRSet(ds, 16)
	if err != nil {
		return nil, err
	}
	c.sets[p.Name] = set
	return set, nil
}

// sharedCluster builds one storage cluster calibrated against the
// ImageNet-profile mean image size — the same storage serves every dataset,
// as in the paper's testbed (bigger-image datasets are therefore more I/O
// bound, reproducing Figure 9's dataset ordering).
func (c *Config) sharedCluster() (*iosim.Cluster, error) {
	set, err := c.pcrSet(synth.ImageNet)
	if err != nil {
		return nil, err
	}
	mean, err := set.MeanImageBytesAtGroup(set.NumGroups)
	if err != nil {
		return nil, err
	}
	return train.ScaledStorage(mean, set.ImagesPerRecord)
}

// referenceMeanBytes returns the calibration mean image size.
func (c *Config) referenceMeanBytes() (float64, error) {
	set, err := c.pcrSet(synth.ImageNet)
	if err != nil {
		return 0, err
	}
	return set.MeanImageBytesAtGroup(set.NumGroups)
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the short name used by `cmd/experiments -run <id>`.
	ID string
	// Paper names the table/figure reproduced.
	Paper string
	// Desc summarizes the workload.
	Desc string
	// Run executes the experiment, printing to cfg.Out.
	Run func(cfg *Config) error
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// All lists the registered experiments sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// header prints a section banner.
func header(w io.Writer, paper, desc string) {
	fmt.Fprintf(w, "\n== %s ==\n%s\n\n", paper, desc)
}

// scanGroups are the quality levels every sweep uses, as in the paper.
var scanGroups = []int{1, 2, 5, 10}

// groupLabel names a scan group the way the figures do.
func groupLabel(g, max int) string {
	if g >= max {
		return "Baseline"
	}
	return fmt.Sprintf("Group_%d", g)
}
