package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func tinyConfig(buf *bytes.Buffer) *Config {
	cfg := NewConfig(buf)
	cfg.Scale = 0.12
	cfg.Seed = 7
	cfg.Epochs = 4
	return cfg
}

func TestRegistryComplete(t *testing.T) {
	// Every artifact in the paper's evaluation must have a registered
	// experiment.
	want := []string{
		"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig12", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig31",
		"grids", "epochs", "cars", "spaceamp", "decodecost", "cachepressure",
	}
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
		if e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %s has missing fields", e.ID)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := ByID("table1"); err != nil {
		t.Error(err)
	}
}

// TestCheapExperimentsRun executes the non-training experiments end to end
// at tiny scale, checking they print plausible content.
func TestCheapExperimentsRun(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	checks := map[string][]string{
		"table1": {"imagenet", "cars", "Classes"},
		"fig12":  {"Probability", "["},
		"fig14":  {"crossover", "io-bound", "compute-bound"},
		"fig16":  {"scan  1", "scan 10", "byte ratio"},
		"fig31":  {"KiB", "imagenet"},
		"fig11":  {"stalls", "Baseline"},
		"fig9":   {"resnetlike", "shufflenetlike", "ham10000"},
		"fig18":  {"measured/s", "predicted/s"},
	}
	for id, wants := range checks {
		buf.Reset()
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", id, w, out)
			}
		}
	}
}

// TestTrainingExperimentRuns exercises one full training experiment (the
// Cars task sweep) at tiny scale.
func TestTrainingExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment in -short mode")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	e, err := ByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"multiclass", "make-only", "binary", "Baseline", "accuracy gap"} {
		if !strings.Contains(out, w) {
			t.Errorf("fig6 output missing %q", w)
		}
	}
}

// TestAllExperimentsTinyScale executes EVERY registered experiment end to
// end at a very small scale — the regression net for the whole harness.
func TestAllExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	var buf bytes.Buffer
	cfg := NewConfig(&buf)
	cfg.Scale = 0.08
	cfg.Seed = 3
	cfg.Epochs = 3
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			buf.Reset()
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestFig17MSSIMMonotoneReport(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	e, err := ByID("fig17")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MSSIM 1.0000") {
		t.Error("scan 10 should report MSSIM 1.0")
	}
}

func TestLinreg(t *testing.T) {
	// Perfect line: y = 2x + 1.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, intercept, r2 := linreg(xs, ys)
	if slope != 2 || intercept != 1 || r2 < 0.999 {
		t.Errorf("fit = %v, %v, %v", slope, intercept, r2)
	}
}

func TestGroupLabel(t *testing.T) {
	if groupLabel(10, 10) != "Baseline" {
		t.Error("full group should be Baseline")
	}
	if groupLabel(2, 10) != "Group_2" {
		t.Error("partial group mislabeled")
	}
}
