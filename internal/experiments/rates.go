package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/iosim"
	"repro/internal/loader"
	"repro/internal/nn"
	"repro/internal/queueing"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID: "fig9", Paper: "Figure 9",
		Desc: "training image rates per dataset and scan group, both models",
		Run:  runFig9,
	})
	register(Experiment{
		ID: "fig11", Paper: "Figure 11",
		Desc: "per-iteration data-load times: stalls shrink with lower scan groups",
		Run:  runFig11,
	})
	register(Experiment{
		ID: "fig14", Paper: "Figure 14",
		Desc: "throughput vs byte intensity: the data-roofline model",
		Run:  runFig14,
	})
	register(Experiment{
		ID: "fig18", Paper: "Figure 18",
		Desc: "reader microbenchmark on SSD: measured vs size-ratio-predicted throughput, batch times",
		Run:  runFig18,
	})
}

func runFig9(cfg *Config) error {
	header(cfg.Out, "Figure 9",
		"Training rates (images/s): more scans reduce the rate; fast models gain more")
	cluster, err := cfg.sharedCluster()
	if err != nil {
		return err
	}
	for _, m := range nn.Profiles() {
		fmt.Fprintf(cfg.Out, "%s (RAM ceiling %.0f img/s):\n", m.Name, m.ClusterImagesPerSec)
		fmt.Fprintf(cfg.Out, "  %-10s", "dataset")
		for _, g := range scanGroups {
			fmt.Fprintf(cfg.Out, " %10s", fmt.Sprintf("scan %d", g))
		}
		fmt.Fprintln(cfg.Out)
		for _, p := range synth.Profiles() {
			set, err := cfg.pcrSet(p)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "  %-10s", p.Name)
			for _, g := range scanGroups {
				gg := g
				if gg > set.NumGroups {
					gg = set.NumGroups
				}
				rb, err := set.RecordBytesAtGroup(gg)
				if err != nil {
					return err
				}
				cluster.Reset()
				res, err := loader.Run(loader.Config{
					Cluster:            cluster,
					Threads:            6,
					QueueCap:           12,
					RecordBytes:        rb,
					ImagesPerRecord:    set.ImagesPerRecordList(),
					DecodeSecPerImage:  (1.0 / 150) / 10,
					ComputeSecPerImage: 1 / m.ClusterImagesPerSec,
					Passes:             10,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(cfg.Out, " %10.0f", res.ImagesPerSec)
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}

func runFig11(cfg *Config) error {
	header(cfg.Out, "Figure 11",
		"Per-iteration data load time (s), HAM10000/ShuffleNet (most I/O-bound): lower scans shrink stalls")
	set, err := cfg.pcrSet(synth.HAM10000)
	if err != nil {
		return err
	}
	for _, g := range scanGroups {
		gg := g
		if gg > set.NumGroups {
			gg = set.NumGroups
		}
		rb, err := set.RecordBytesAtGroup(gg)
		if err != nil {
			return err
		}
		cluster, err := cfg.sharedCluster()
		if err != nil {
			return err
		}
		cluster.Reset()
		res, err := loader.Run(loader.Config{
			Cluster:            cluster,
			Threads:            6,
			QueueCap:           12,
			RecordBytes:        rb,
			ImagesPerRecord:    set.ImagesPerRecordList(),
			DecodeSecPerImage:  (1.0 / 150) / 10,
			ComputeSecPerImage: 1 / nn.ShuffleNetLike.ClusterImagesPerSec,
			Shuffle:            rand.New(rand.NewSource(cfg.Seed)),
		})
		if err != nil {
			return err
		}
		n := 24
		if n > len(res.StallSec) {
			n = len(res.StallSec)
		}
		fmt.Fprintf(cfg.Out, "%-9s stalls:", groupLabel(g, set.NumGroups))
		for _, s := range res.StallSec[:n] {
			fmt.Fprintf(cfg.Out, " %.3f", s)
		}
		fmt.Fprintf(cfg.Out, "  (total %.2fs)\n", res.TotalStallSec)
	}
	return nil
}

func runFig14(cfg *Config) error {
	header(cfg.Out, "Figure 14",
		"System throughput vs byte intensity: compute roof then bandwidth slope; scan groups marked")
	mean, err := cfg.referenceMeanBytes()
	if err != nil {
		return err
	}
	set, err := cfg.pcrSet(synth.ImageNet)
	if err != nil {
		return err
	}
	cluster, err := cfg.sharedCluster()
	if err != nil {
		return err
	}
	for _, m := range nn.Profiles() {
		p := queueing.Pipeline{
			BandwidthBps:        cluster.AggregateBandwidth(),
			ComputeImagesPerSec: m.ClusterImagesPerSec,
		}
		pts, err := p.Roofline(mean/20, mean*2, 12)
		if err != nil {
			return err
		}
		knee, err := p.CrossoverBytes()
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s (crossover at %.0f bytes/image):\n", m.Name, knee)
		for _, pt := range pts {
			regime := "compute-bound"
			if pt.IOBound {
				regime = "io-bound"
			}
			fmt.Fprintf(cfg.Out, "  %8.0f B/img -> %8.0f img/s (%s)\n", pt.BytesPerImage, pt.ImagesPerSec, regime)
		}
		// Mark where each scan group's mean byte intensity lands.
		fmt.Fprintf(cfg.Out, "  scan group byte intensities:")
		for _, g := range scanGroups {
			gg := g
			if gg > set.NumGroups {
				gg = set.NumGroups
			}
			mb, err := set.MeanImageBytesAtGroup(gg)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " scan%d=%.0fB", g, mb)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

func runFig18(cfg *Config) error {
	header(cfg.Out, "Figure 18",
		"PCR reader microbenchmark on one SSD (CelebAHQ): measured vs size-predicted rates, batch latency")
	set, err := cfg.pcrSet(synth.CelebAHQ)
	if err != nil {
		return err
	}
	// Scale the SSD like the training storage so the balance matches the
	// paper's 400 MB/s drive against ~87 kB CelebAHQ images.
	mean, err := set.MeanImageBytesAtGroup(set.NumGroups)
	if err != nil {
		return err
	}
	spec := iosim.DeviceSpec{
		Name:         "scaled-ssd",
		BandwidthBps: iosim.SATASSD.BandwidthBps * mean / 87e3,
		SeekSec:      iosim.SATASSD.SeekSec,
	}
	fullRate := 0.0
	type row struct {
		g                    int
		measured, predicted  float64
		maxBatchSec, meanSec float64
	}
	var rows []row
	var fullMean float64
	for g := set.NumGroups; g >= 1; g-- {
		rb, err := set.RecordBytesAtGroup(g)
		if err != nil {
			return err
		}
		cluster, err := iosim.NewCluster(spec, 1)
		if err != nil {
			return err
		}
		res, err := loader.ReadOnlyRate(loader.Config{
			Cluster:         cluster,
			Threads:         8,
			RecordBytes:     rb,
			ImagesPerRecord: set.ImagesPerRecordList(),
			Passes:          10,
		})
		if err != nil {
			return err
		}
		mb, err := set.MeanImageBytesAtGroup(g)
		if err != nil {
			return err
		}
		if g == set.NumGroups {
			fullRate = res.ImagesPerSec
			fullMean = mb
		}
		var maxLoad, sumLoad float64
		for _, l := range res.LoadSec {
			if l > maxLoad {
				maxLoad = l
			}
			sumLoad += l
		}
		rows = append(rows, row{
			g:           g,
			measured:    res.ImagesPerSec,
			predicted:   fullRate * fullMean / mb,
			maxBatchSec: maxLoad,
			meanSec:     sumLoad / float64(len(res.LoadSec)),
		})
	}
	fmt.Fprintf(cfg.Out, "%5s %12s %12s %12s %12s\n", "scan", "measured/s", "predicted/s", "mean batch", "max batch")
	for i := len(rows) - 1; i >= 0; i-- {
		r := rows[i]
		fmt.Fprintf(cfg.Out, "%5d %12.0f %12.0f %11.4fs %11.4fs\n",
			r.g, r.measured, r.predicted, r.meanSec, r.maxBatchSec)
	}
	fmt.Fprintf(cfg.Out, "\nprediction rule: rate(g) = rate(10) x meanBytes(10)/meanBytes(g) (Theorem A.5)\n")
	return nil
}
