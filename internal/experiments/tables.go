package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/jpegc"
	"repro/internal/mssim"
	"repro/internal/recordio"
	"repro/internal/synth"
)

func init() {
	register(Experiment{
		ID: "table1", Paper: "Table 1",
		Desc: "PCR dataset size and record-count statistics for the four datasets",
		Run:  runTable1,
	})
	register(Experiment{
		ID: "fig12", Paper: "Figure 12",
		Desc: "distribution of encoded ImageNet image sizes (log2 byte buckets)",
		Run:  runFig12,
	})
	register(Experiment{
		ID: "fig15", Paper: "Figure 15",
		Desc: "dataset encoding time: static re-encoding at four qualities vs one PCR conversion",
		Run:  runFig15,
	})
	register(Experiment{
		ID: "fig16", Paper: "Figure 16",
		Desc: "cumulative bytes per scan group (median and IQR across images)",
		Run:  runFig16,
	})
	register(Experiment{
		ID: "fig17", Paper: "Figure 17",
		Desc: "MSSIM of scan-k reconstructions vs full quality (median and IQR)",
		Run:  runFig17,
	})
	register(Experiment{
		ID: "fig31", Paper: "Figure 31",
		Desc: "cumulative size (KiB) of one example image at each scan, per dataset",
		Run:  runFig31,
	})
	register(Experiment{
		ID: "spaceamp", Paper: "§A.4 space amplification",
		Desc: "bytes of multi-quality static copies vs a single PCR dataset",
		Run:  runSpaceAmp,
	})
	register(Experiment{
		ID: "decodecost", Paper: "§A.5 decoding overhead",
		Desc: "wall-clock decode rate: baseline vs progressive JPEG",
		Run:  runDecodeCost,
	})
}

func runTable1(cfg *Config) error {
	header(cfg.Out, "Table 1", "Record count, image count, dataset size, JPEG quality, classes")
	fmt.Fprintf(cfg.Out, "%-10s %8s %8s %12s %12s %8s %8s\n",
		"Dataset", "Records", "Images", "PCR bytes", "Base bytes", "Quality", "Classes")
	for _, p := range synth.Profiles() {
		set, err := cfg.pcrSet(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-10s %8d %8d %12d %12d %7d%% %8d\n",
			p.Name, set.NumRecords(), set.NumTrain(), set.PCRBytes, set.BaselineBytes,
			p.JPEGQuality, p.FineClasses)
	}
	return nil
}

func runFig12(cfg *Config) error {
	header(cfg.Out, "Figure 12", "Probability of encoded image sizes by power-of-two bucket (ImageNet profile)")
	ds, err := cfg.dataset(synth.ImageNet)
	if err != nil {
		return err
	}
	buckets := map[int]int{}
	total := 0
	for _, s := range ds.Train {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: ds.Profile.JPEGQuality, Subsample420: true})
		if err != nil {
			return err
		}
		b := 0
		for (1 << (b + 1)) <= len(data) {
			b++
		}
		buckets[b]++
		total++
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(cfg.Out, "%-12s %12s\n", "Size bucket", "Probability")
	for _, k := range keys {
		fmt.Fprintf(cfg.Out, "[%6d,%6d) %11.3f\n", 1<<k, 1<<(k+1), float64(buckets[k])/float64(total))
	}
	return nil
}

func runFig15(cfg *Config) error {
	header(cfg.Out, "Figure 15",
		"Wall-clock encoding cost: four static quality re-encodings vs one PCR conversion")
	ds, err := cfg.dataset(synth.Cars)
	if err != nil {
		return err
	}
	// Baseline-encode the dataset once (the "original JPEGs").
	var originals [][]byte
	for _, s := range ds.Train {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: ds.Profile.JPEGQuality, Subsample420: true})
		if err != nil {
			return err
		}
		originals = append(originals, data)
	}

	// Static path: re-encode at 50/75/90/95% quality + record creation.
	staticQualities := []int{50, 75, 90, 95}
	var staticConvert, staticRecord time.Duration
	var staticBytes int64
	for _, q := range staticQualities {
		t0 := time.Now()
		var reencoded [][]byte
		for _, data := range originals {
			// Re-encoding requantizes: decode pixels and encode at the new
			// quality (generation loss, like the paper's static baselines).
			img, err := jpegc.Decode(data)
			if err != nil {
				return err
			}
			out, err := jpegc.Encode(img, &jpegc.Options{Quality: q, OptimizeHuffman: true, Subsample420: true})
			if err != nil {
				return err
			}
			reencoded = append(reencoded, out)
		}
		staticConvert += time.Since(t0)
		t0 = time.Now()
		var sink countWriter
		w := recordio.NewWriter(&sink)
		for i, data := range reencoded {
			ex := recordio.Example{ID: int64(i), Label: 0, JPEG: data}
			if err := w.Write(ex.Marshal()); err != nil {
				return err
			}
		}
		staticRecord += time.Since(t0)
		staticBytes += sink.n
	}

	// PCR path: one lossless progressive conversion + record creation.
	t0 := time.Now()
	var progressive [][]byte
	for _, data := range originals {
		out, err := jpegc.Transcode(data, &jpegc.Options{Progressive: true})
		if err != nil {
			return err
		}
		progressive = append(progressive, out)
	}
	pcrConvert := time.Since(t0)
	t0 = time.Now()
	var pcrBytes int64
	for start := 0; start < len(progressive); start += 16 {
		end := start + 16
		if end > len(progressive) {
			end = len(progressive)
		}
		var samples []core.Sample
		for i := start; i < end; i++ {
			samples = append(samples, core.Sample{ID: int64(i), JPEG: progressive[i]})
		}
		var sink countWriter
		if _, err := core.WriteRecord(&sink, samples); err != nil {
			return err
		}
		pcrBytes += sink.n
	}
	pcrRecord := time.Since(t0)

	fmt.Fprintf(cfg.Out, "%-22s %14s %14s %14s %12s\n", "Method", "Convert", "Record", "Total", "Bytes")
	fmt.Fprintf(cfg.Out, "%-22s %14v %14v %14v %12d\n", "Static x4 qualities",
		staticConvert.Round(time.Millisecond), staticRecord.Round(time.Millisecond),
		(staticConvert + staticRecord).Round(time.Millisecond), staticBytes)
	fmt.Fprintf(cfg.Out, "%-22s %14v %14v %14v %12d\n", "PCR (one conversion)",
		pcrConvert.Round(time.Millisecond), pcrRecord.Round(time.Millisecond),
		(pcrConvert + pcrRecord).Round(time.Millisecond), pcrBytes)
	ratio := float64(staticConvert+staticRecord) / float64(pcrConvert+pcrRecord)
	fmt.Fprintf(cfg.Out, "\nstatic/PCR total-time ratio: %.2fx (paper: PCR within 1.13-2.05x of ONE static level,\ni.e. ~4x cheaper than four static levels)\n", ratio)
	return nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// perImageCumulative returns, for every train image of the set's records,
// the cumulative bytes (header + groups 1..g) at each scan group.
func perImageCumulative(cfg *Config, p synth.Profile) ([][]int64, int, error) {
	set, err := cfg.pcrSet(p)
	if err != nil {
		return nil, 0, err
	}
	ng := set.NumGroups
	var rows [][]int64
	for _, stats := range set.SampleGroupLens() {
		row := make([]int64, ng)
		cum := stats.HeaderLen
		for g := 0; g < ng; g++ {
			cum += stats.GroupLens[g]
			row[g] = cum
		}
		rows = append(rows, row)
	}
	return rows, ng, nil
}

func quartiles(xs []int64) (q1, q2, q3 int64) {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	return s[n/4], s[n/2], s[3*n/4]
}

func runFig16(cfg *Config) error {
	header(cfg.Out, "Figure 16", "Cumulative bytes read per image after scans 1..10 (median [IQR])")
	for _, p := range synth.Profiles() {
		rows, ng, err := perImageCumulative(cfg, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s:\n", p.Name)
		for g := 0; g < ng; g++ {
			col := make([]int64, len(rows))
			for i, r := range rows {
				col[i] = r[g]
			}
			q1, q2, q3 := quartiles(col)
			fmt.Fprintf(cfg.Out, "  scan %2d: %7d bytes [%7d, %7d]\n", g+1, q2, q1, q3)
		}
		full := make([]int64, len(rows))
		one := make([]int64, len(rows))
		for i, r := range rows {
			full[i] = r[ng-1]
			one[i] = r[0]
		}
		_, mFull, _ := quartiles(full)
		_, mOne, _ := quartiles(one)
		fmt.Fprintf(cfg.Out, "  full/scan1 byte ratio: %.1fx\n", float64(mFull)/float64(mOne))
	}
	return nil
}

func runFig17(cfg *Config) error {
	header(cfg.Out, "Figure 17", "MSSIM of scan-k reconstruction vs full quality (median [IQR], 16 images/dataset)")
	for _, p := range synth.Profiles() {
		ds, err := cfg.dataset(p)
		if err != nil {
			return err
		}
		n := 16
		if n > len(ds.Train) {
			n = len(ds.Train)
		}
		// Per image: progressive encode, truncate to each scan, MSSIM.
		sims := make([][]float64, 0, n)
		var ng int
		for _, s := range ds.Train[:n] {
			data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: p.JPEGQuality, Progressive: true, Subsample420: true})
			if err != nil {
				return err
			}
			idx, err := jpegc.IndexScans(data)
			if err != nil {
				return err
			}
			ng = len(idx.Scans)
			full, err := jpegc.Decode(data)
			if err != nil {
				return err
			}
			row := make([]float64, ng)
			for g := 1; g <= ng; g++ {
				trunc, err := jpegc.TruncateToScan(data, idx, g)
				if err != nil {
					return err
				}
				img, err := jpegc.Decode(trunc)
				if err != nil {
					return err
				}
				sim, err := mssim.MSSIM(img, full)
				if err != nil {
					return err
				}
				row[g-1] = sim
			}
			sims = append(sims, row)
		}
		fmt.Fprintf(cfg.Out, "%s:\n", p.Name)
		for g := 0; g < ng; g++ {
			col := make([]float64, len(sims))
			for i := range sims {
				col[i] = sims[i][g]
			}
			sort.Float64s(col)
			fmt.Fprintf(cfg.Out, "  scan %2d: MSSIM %.4f [%.4f, %.4f]\n",
				g+1, col[len(col)/2], col[len(col)/4], col[3*len(col)/4])
		}
	}
	return nil
}

func runFig31(cfg *Config) error {
	header(cfg.Out, "Figure 31", "Cumulative KiB of one example image at each scan")
	for _, p := range synth.Profiles() {
		rows, ng, err := perImageCumulative(cfg, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-10s:", p.Name)
		for g := 0; g < ng; g++ {
			fmt.Fprintf(cfg.Out, " (%d) %.1fKiB", g+1, float64(rows[0][g])/1024)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

func runSpaceAmp(cfg *Config) error {
	header(cfg.Out, "§A.4 space amplification",
		"Total bytes: per-quality static copies vs one PCR dataset (CelebAHQ profile)")
	ds, err := cfg.dataset(synth.CelebAHQ)
	if err != nil {
		return err
	}
	set, err := cfg.pcrSet(synth.CelebAHQ)
	if err != nil {
		return err
	}
	qualities := []int{25, 50, 75, 90, 95}
	var staticTotal int64
	fmt.Fprintf(cfg.Out, "%-24s %12s\n", "Copy", "Bytes")
	for _, q := range qualities {
		var total int64
		for _, s := range ds.Train {
			data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: q, OptimizeHuffman: true, Subsample420: true})
			if err != nil {
				return err
			}
			total += int64(len(data))
		}
		staticTotal += total
		fmt.Fprintf(cfg.Out, "static quality %3d%%     %12d\n", q, total)
	}
	fmt.Fprintf(cfg.Out, "%-24s %12d\n", "static total (5 copies)", staticTotal)
	fmt.Fprintf(cfg.Out, "%-24s %12d\n", "PCR (all qualities)", set.PCRBytes)
	fmt.Fprintf(cfg.Out, "\nspace amplification avoided: %.2fx\n", float64(staticTotal)/float64(set.PCRBytes))
	return nil
}

func runDecodeCost(cfg *Config) error {
	header(cfg.Out, "§A.5 decoding overhead", "Wall-clock decode rate, baseline vs progressive")
	ds, err := cfg.dataset(synth.Cars)
	if err != nil {
		return err
	}
	n := 48
	if n > len(ds.Train) {
		n = len(ds.Train)
	}
	var base, prog [][]byte
	for _, s := range ds.Train[:n] {
		b, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: ds.Profile.JPEGQuality, Subsample420: true})
		if err != nil {
			return err
		}
		p, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: ds.Profile.JPEGQuality, Progressive: true, Subsample420: true})
		if err != nil {
			return err
		}
		base = append(base, b)
		prog = append(prog, p)
	}
	rate := func(imgs [][]byte) (float64, error) {
		t0 := time.Now()
		reps := 0
		for time.Since(t0) < 300*time.Millisecond {
			for _, d := range imgs {
				if _, err := jpegc.Decode(d); err != nil {
					return 0, err
				}
			}
			reps++
		}
		return float64(reps*len(imgs)) / time.Since(t0).Seconds(), nil
	}
	rb, err := rate(base)
	if err != nil {
		return err
	}
	rp, err := rate(prog)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "baseline:    %8.0f images/s\n", rb)
	fmt.Fprintf(cfg.Out, "progressive: %8.0f images/s\n", rp)
	fmt.Fprintf(cfg.Out, "overhead:    %8.0f%% (paper reports 40-50%%)\n", (rb/rp-1)*100)
	return nil
}
