package experiments

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
)

func init() {
	register(Experiment{
		ID: "fig4", Paper: "Figure 4",
		Desc: "time-to-accuracy: ImageNet and CelebAHQ with ResNet and ShuffleNet, scan groups {1,2,5,baseline}",
		Run: func(cfg *Config) error {
			return runTimeAcc(cfg, []synth.Profile{synth.ImageNet, synth.CelebAHQ}, nn.Profiles(), nil)
		},
	})
	register(Experiment{
		ID: "fig5", Paper: "Figure 5",
		Desc: "time-to-accuracy: HAM10000 with ResNet and ShuffleNet",
		Run: func(cfg *Config) error {
			return runTimeAcc(cfg, []synth.Profile{synth.HAM10000}, nn.Profiles(), nil)
		},
	})
	register(Experiment{
		ID: "fig6", Paper: "Figure 6 (and 29)",
		Desc: "Cars with ResNet-18: original multiclass vs make-only vs binary Is-Corvette",
		Run: func(cfg *Config) error {
			return runCarsTasks(cfg, nn.ResNetLike)
		},
	})
	register(Experiment{
		ID: "cars", Paper: "Figure 30",
		Desc: "Cars with ShuffleNetv2 across task granularities",
		Run: func(cfg *Config) error {
			return runCarsTasks(cfg, nn.ShuffleNetLike)
		},
	})
	register(Experiment{
		ID: "grids", Paper: "Figures 23-26",
		Desc: "full accuracy+loss grids: all datasets x both models, acc/loss vs time",
		Run: func(cfg *Config) error {
			return runTimeAcc(cfg, synth.Profiles(), nn.Profiles(), nil)
		},
	})
	register(Experiment{
		ID: "epochs", Paper: "Figures 27-28",
		Desc: "accuracy vs epoch: compression does not act as a regularizer",
		Run:  runEpochGrids,
	})
}

// runOne trains one (dataset, model, task, group) cell and returns the curve.
func runOne(cfg *Config, p synth.Profile, model nn.ModelProfile, task synth.Task, group int) (*train.RunResult, error) {
	set, err := cfg.pcrSet(p)
	if err != nil {
		return nil, err
	}
	cluster, err := cfg.sharedCluster()
	if err != nil {
		return nil, err
	}
	return train.Run(set, train.RunConfig{
		Model:     model,
		Task:      task,
		ScanGroup: group,
		Epochs:    cfg.epochsFor(p.Name),
		Seed:      cfg.Seed,
		Cluster:   cluster,
		EvalEvery: 2,
	})
}

func printCurve(cfg *Config, label string, res *train.RunResult) {
	fmt.Fprintf(cfg.Out, "  %-9s:", label)
	for _, pt := range res.Points {
		if pt.Sampled {
			fmt.Fprintf(cfg.Out, " (%.2fs, %.1f%%)", pt.TimeSec, pt.TestAcc*100)
		}
	}
	fmt.Fprintf(cfg.Out, "  [final %.1f%%, total %.2fs, loss %.3f]\n",
		res.FinalAcc*100, res.TotalTimeSec, res.Points[len(res.Points)-1].TrainLoss)
}

func runTimeAcc(cfg *Config, profiles []synth.Profile, models []nn.ModelProfile, taskOf func(synth.Profile) synth.Task) error {
	header(cfg.Out, "Time-to-accuracy curves",
		"Top-1 test accuracy over virtual time per scan group (series of (time, acc) samples)")
	for _, p := range profiles {
		set, err := cfg.pcrSet(p)
		if err != nil {
			return err
		}
		task := synth.Multiclass(p)
		if taskOf != nil {
			task = taskOf(p)
		}
		for _, m := range models {
			fmt.Fprintf(cfg.Out, "%s / %s (%d classes):\n", p.Name, m.Name, task.NumClasses)
			var baseline *train.RunResult
			results := map[int]*train.RunResult{}
			for _, g := range scanGroups {
				gg := g
				if gg > set.NumGroups {
					gg = set.NumGroups
				}
				res, err := runOne(cfg, p, m, task, gg)
				if err != nil {
					return err
				}
				results[g] = res
				printCurve(cfg, groupLabel(g, set.NumGroups), res)
				if g == 10 {
					baseline = res
				}
			}
			// Speedup to the baseline's near-final accuracy, per group.
			target := baseline.FinalAcc * 0.97
			tBase, okB := baseline.TimeToAccuracy(target)
			fmt.Fprintf(cfg.Out, "  time-to-%.1f%% speedups vs baseline:", target*100)
			any := false
			for _, g := range scanGroups[:len(scanGroups)-1] {
				if tg, ok := results[g].TimeToAccuracy(target); ok && okB && tg > 0 {
					fmt.Fprintf(cfg.Out, " scan%d=%.2fx", g, tBase/tg)
					any = true
				} else {
					fmt.Fprintf(cfg.Out, " scan%d=n/a", g)
				}
			}
			if !any {
				fmt.Fprintf(cfg.Out, "  (no lower group reached the target)")
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}

func runCarsTasks(cfg *Config, model nn.ModelProfile) error {
	header(cfg.Out, "Cars task-granularity sweep",
		"The gap between scan groups closes as the task coarsens (Observation 3)")
	p := synth.Cars
	binary, err := synth.Binary(p, 0)
	if err != nil {
		return err
	}
	tasks := []synth.Task{synth.Multiclass(p), synth.CoarseOnly(p), binary}
	set, err := cfg.pcrSet(p)
	if err != nil {
		return err
	}
	for _, task := range tasks {
		fmt.Fprintf(cfg.Out, "%s / %s / task=%s (%d classes):\n", p.Name, model.Name, task.Name, task.NumClasses)
		accs := map[int]float64{}
		for _, g := range scanGroups {
			gg := g
			if gg > set.NumGroups {
				gg = set.NumGroups
			}
			res, err := runOne(cfg, p, model, task, gg)
			if err != nil {
				return err
			}
			accs[g] = res.FinalAcc
			printCurve(cfg, groupLabel(g, set.NumGroups), res)
		}
		gap := accs[10] - accs[1]
		fmt.Fprintf(cfg.Out, "  baseline-minus-scan1 accuracy gap: %+.1f points\n\n", gap*100)
	}
	return nil
}

func runEpochGrids(cfg *Config) error {
	header(cfg.Out, "Accuracy vs epoch",
		"Per-epoch accuracy: lower scan groups do not raise accuracy at equal epochs (no regularizer effect)")
	for _, p := range []synth.Profile{synth.Cars, synth.HAM10000} {
		set, err := cfg.pcrSet(p)
		if err != nil {
			return err
		}
		task := synth.Multiclass(p)
		for _, m := range nn.Profiles() {
			fmt.Fprintf(cfg.Out, "%s / %s:\n", p.Name, m.Name)
			for _, g := range scanGroups {
				gg := g
				if gg > set.NumGroups {
					gg = set.NumGroups
				}
				res, err := runOne(cfg, p, m, task, gg)
				if err != nil {
					return err
				}
				fmt.Fprintf(cfg.Out, "  %-9s:", groupLabel(g, set.NumGroups))
				for _, pt := range res.Points {
					if pt.Sampled {
						fmt.Fprintf(cfg.Out, " (ep%d, %.1f%%)", pt.Epoch, pt.TestAcc*100)
					}
				}
				fmt.Fprintln(cfg.Out)
			}
		}
	}
	return nil
}
