package experiments

import (
	"fmt"
	"math"

	"repro/internal/autotune"
	"repro/internal/jpegc"
	"repro/internal/mssim"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
)

func init() {
	register(Experiment{
		ID: "fig7", Paper: "Figure 7",
		Desc: "MSSIM vs final test accuracy: linear regression across scan groups (Cars/ShuffleNet)",
		Run:  runFig7,
	})
	register(Experiment{
		ID: "fig8", Paper: "Figure 8",
		Desc: "loss-plateau adaptive tuning on HAM10000: dynamic matches baseline accuracy faster",
		Run:  runFig8,
	})
	register(Experiment{
		ID: "fig19", Paper: "Figure 19",
		Desc: "cosine similarity between scan-group gradients and the full-quality gradient, with mixtures",
		Run:  runFig19,
	})
	register(Experiment{
		ID: "fig20", Paper: "Figure 20",
		Desc: "cosine-distance dynamic tuning on HAM10000 with mixture variants",
		Run:  runFig20,
	})
	register(Experiment{
		ID: "fig21", Paper: "Figures 21-22",
		Desc: "cosine-distance dynamic tuning on CelebAHQ plus per-epoch training rates",
		Run:  runFig21,
	})
}

func runFig7(cfg *Config) error {
	header(cfg.Out, "Figure 7",
		"Per-scan MSSIM vs final accuracy with a least-squares fit; groups cluster")
	p := synth.Cars
	set, err := cfg.pcrSet(p)
	if err != nil {
		return err
	}
	ds, err := cfg.dataset(p)
	if err != nil {
		return err
	}

	// Mean MSSIM of each scan group over a sample of images.
	n := 12
	if n > len(ds.Train) {
		n = len(ds.Train)
	}
	meanSim := map[int]float64{}
	for _, s := range ds.Train[:n] {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: p.JPEGQuality, Progressive: true, Subsample420: true})
		if err != nil {
			return err
		}
		idx, err := jpegc.IndexScans(data)
		if err != nil {
			return err
		}
		full, err := jpegc.Decode(data)
		if err != nil {
			return err
		}
		for _, g := range scanGroups {
			gg := g
			if gg > len(idx.Scans) {
				gg = len(idx.Scans)
			}
			trunc, err := jpegc.TruncateToScan(data, idx, gg)
			if err != nil {
				return err
			}
			img, err := jpegc.Decode(trunc)
			if err != nil {
				return err
			}
			sim, err := mssim.MSSIM(img, full)
			if err != nil {
				return err
			}
			meanSim[g] += sim / float64(n)
		}
	}

	// Final accuracy per scan group.
	task := synth.Multiclass(p)
	var xs, ys []float64
	fmt.Fprintf(cfg.Out, "%5s %8s %10s\n", "scan", "MSSIM", "final acc")
	for _, g := range scanGroups {
		gg := g
		if gg > set.NumGroups {
			gg = set.NumGroups
		}
		res, err := runOne(cfg, p, nn.ShuffleNetLike, task, gg)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%5d %8.4f %9.1f%%\n", g, meanSim[g], res.FinalAcc*100)
		xs = append(xs, meanSim[g])
		ys = append(ys, res.FinalAcc*100)
	}
	slope, intercept, r2 := linreg(xs, ys)
	fmt.Fprintf(cfg.Out, "\nlinear fit: acc%% = %.1f x MSSIM %+.1f (R^2 = %.3f)\n", slope, intercept, r2)
	fmt.Fprintf(cfg.Out, "paper reports a strong positive linear relationship (e.g. y = 405.0x - 331.0)\n")
	return nil
}

func linreg(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	// R² via correlation.
	denY := n*syy - sy*sy
	if denY == 0 {
		return slope, intercept, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(den*denY)
	return slope, intercept, r * r
}

func runFig8(cfg *Config) error {
	header(cfg.Out, "Figure 8",
		"Plateau-probe adaptive tuning on HAM10000 vs static baseline (both models)")
	p := synth.HAM10000
	set, err := cfg.pcrSet(p)
	if err != nil {
		return err
	}
	task := synth.Multiclass(p)
	cluster, err := cfg.sharedCluster()
	if err != nil {
		return err
	}
	for _, m := range nn.Profiles() {
		base, err := runOne(cfg, p, m, task, set.NumGroups)
		if err != nil {
			return err
		}
		cluster.Reset()
		dyn, err := autotune.Run(set, autotune.Config{
			Model: m, Task: task,
			Controller: &autotune.PlateauController{Window: 3, MinImprove: 0.08, ProbeSteps: 6, BatchSize: 24},
			Epochs:     cfg.epochsFor(p.Name),
			Seed:       cfg.Seed,
			Cluster:    cluster,
			EvalEvery:  2,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s:\n", m.Name)
		fmt.Fprintf(cfg.Out, "  static baseline: final %.1f%% in %.0fs\n", base.FinalAcc*100, base.TotalTimeSec)
		fmt.Fprintf(cfg.Out, "  dynamic plateau: final %.1f%% in %.0fs (%d switches)\n",
			dyn.FinalAcc*100, dyn.TotalTimeSec, dyn.GroupSwitches)
		fmt.Fprintf(cfg.Out, "  group trace:")
		for _, pt := range dyn.Points {
			fmt.Fprintf(cfg.Out, " %d", pt.Group)
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

func runFig19(cfg *Config) error {
	header(cfg.Out, "Figure 19",
		"Gradient cosine similarity to the full-quality gradient (HAM10000/ShuffleNet), hard and mixed draws")
	p := synth.HAM10000
	set, err := cfg.pcrSet(p)
	if err != nil {
		return err
	}
	task := synth.Multiclass(p)
	model, err := nn.ShuffleNetLike.Build(train.FeatureLen, task.NumClasses, cfg.Seed)
	if err != nil {
		return err
	}
	// Measure at three training stages: init, mid, late.
	stages := []struct {
		name   string
		epochs int
	}{{"init", 0}, {"mid", 6}, {"late", 12}}
	feats, err := set.TrainFeatures(set.NumGroups)
	if err != nil {
		return err
	}
	labels := set.TrainLabels(task)
	trained := 0
	for _, stage := range stages {
		for trained < stage.epochs {
			g, _, _, err := model.Gradient(nn.Batch{X: feats, Y: labels})
			if err != nil {
				return err
			}
			model.Step(g, nn.ShuffleNetLike.LR, nn.ShuffleNetLike.Momentum)
			trained++
		}
		ref, err := train.FullGradient(set, model, task, set.NumGroups)
		if err != nil {
			return err
		}
		refFlat := ref.Flatten()
		fmt.Fprintf(cfg.Out, "%-5s:", stage.name)
		for _, g := range scanGroups {
			gg := g
			if gg > set.NumGroups {
				gg = set.NumGroups
			}
			grad, err := train.FullGradient(set, model, task, gg)
			if err != nil {
				return err
			}
			sim, err := nn.CosineSimilarity(grad.Flatten(), refFlat)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " scan%d=%.4f", g, sim)
		}
		// Mixed-draw gradients: 50% and 85% weight on scan 1.
		for _, mix := range []struct {
			name string
			frac float64
		}{{"mix50", 0.5}, {"mix85", 0.85}} {
			grad, err := mixedGradient(set, model, task, 1, mix.frac)
			if err != nil {
				return err
			}
			sim, err := nn.CosineSimilarity(grad.Flatten(), refFlat)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " %s(scan1)=%.4f", mix.name, sim)
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "\nmixing raises the similarity of low scans (tolerance to biased gradients, §A.6.3)\n")
	return nil
}

// mixedGradient computes the full-batch gradient with each sample drawn from
// the selected group with probability frac, else from the reference group
// set, deterministically interleaved.
func mixedGradient(set *train.PCRSet, model *nn.MLP, task synth.Task, selected int, frac float64) (*nn.Grads, error) {
	selFeats, err := set.TrainFeatures(selected)
	if err != nil {
		return nil, err
	}
	groups := []int{1, 2, 5, set.NumGroups}
	all := make(map[int][][]float64)
	for _, g := range groups {
		f, err := set.TrainFeatures(g)
		if err != nil {
			return nil, err
		}
		all[g] = f
	}
	labels := set.TrainLabels(task)
	b := nn.Batch{}
	period := 1.0
	if frac < 1 {
		period = 1 / (1 - frac)
	}
	for i := range selFeats {
		useOther := frac < 1 && math.Mod(float64(i), period) < 1 && i%len(groups) != 0
		if useOther {
			g := groups[i%len(groups)]
			b.X = append(b.X, all[g][i])
		} else {
			b.X = append(b.X, selFeats[i])
		}
		b.Y = append(b.Y, labels[i])
	}
	grads, _, _, err := model.Gradient(b)
	return grads, err
}

func runFig20(cfg *Config) error {
	header(cfg.Out, "Figures 20",
		"Cosine-distance dynamic tuning on HAM10000: no-mix vs 50% vs 85% mixtures")
	return runCosineTuning(cfg, synth.HAM10000, []float64{0, 10, 100})
}

func runFig21(cfg *Config) error {
	header(cfg.Out, "Figures 21-22",
		"Cosine-distance dynamic tuning on CelebAHQ; per-epoch training rates (Figure 22)")
	if err := runCosineTuning(cfg, synth.CelebAHQ, []float64{0}); err != nil {
		return err
	}
	// Figure 22: rate per epoch of the dynamic run vs the static baseline.
	p := synth.CelebAHQ
	set, err := cfg.pcrSet(p)
	if err != nil {
		return err
	}
	task := synth.Multiclass(p)
	cluster, err := cfg.sharedCluster()
	if err != nil {
		return err
	}
	cluster.Reset()
	dyn, err := autotune.Run(set, autotune.Config{
		Model: nn.ShuffleNetLike, Task: task,
		Controller: &autotune.CosineController{Threshold: 0.9, TuneEvery: 6, WarmupEpochs: 3},
		Epochs:     cfg.epochsFor(p.Name),
		Seed:       cfg.Seed,
		Cluster:    cluster,
	})
	if err != nil {
		return err
	}
	base, err := runOne(cfg, p, nn.ShuffleNetLike, task, set.NumGroups)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nFigure 22 epoch rates (images/s):\n  %-8s %10s %10s %6s\n", "epoch", "dynamic", "static", "group")
	for i, pt := range dyn.Points {
		staticRate := 0.0
		if i < len(base.Points) {
			staticRate = base.Points[i].ImagesPerSec
		}
		fmt.Fprintf(cfg.Out, "  %-8d %10.0f %10.0f %6d\n", pt.Epoch, pt.ImagesPerSec, staticRate, pt.Group)
	}
	return nil
}

func runCosineTuning(cfg *Config, p synth.Profile, mixWeights []float64) error {
	set, err := cfg.pcrSet(p)
	if err != nil {
		return err
	}
	task := synth.Multiclass(p)
	cluster, err := cfg.sharedCluster()
	if err != nil {
		return err
	}
	for _, m := range nn.Profiles() {
		base, err := runOne(cfg, p, m, task, set.NumGroups)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s / %s:\n  baseline: final %.1f%% in %.0fs\n",
			p.Name, m.Name, base.FinalAcc*100, base.TotalTimeSec)
		for _, w := range mixWeights {
			cluster.Reset()
			dyn, err := autotune.Run(set, autotune.Config{
				Model: m, Task: task,
				Controller: &autotune.CosineController{Threshold: 0.9, TuneEvery: 6, WarmupEpochs: 3},
				Epochs:     cfg.epochsFor(p.Name),
				Seed:       cfg.Seed,
				MixWeight:  w,
				Cluster:    cluster,
			})
			if err != nil {
				return err
			}
			name := "no mix"
			switch w {
			case 10:
				name = "mix ~50%"
			case 100:
				name = "mix ~85%"
			}
			fmt.Fprintf(cfg.Out, "  dynamic (%s): final %.1f%% in %.0fs; groups:", name, dyn.FinalAcc*100, dyn.TotalTimeSec)
			for _, pt := range dyn.Points {
				fmt.Fprintf(cfg.Out, " %d", pt.Group)
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}
