// Package iosim simulates storage devices and clusters on a virtual clock.
//
// The paper's speedups are a bandwidth phenomenon: a training cluster whose
// aggregate GPU consumption rate exceeds the storage system's delivery rate
// stalls, and reducing bytes-per-image converts directly into throughput
// (Appendix A.2). This package reproduces that mechanism — devices with a
// positioning cost and a sequential bandwidth, combined into a Ceph-like
// striped cluster — without needing the paper's 16-node testbed. Virtual
// time is float64 seconds.
package iosim

import "fmt"

// DeviceSpec parameterizes one storage device.
type DeviceSpec struct {
	// Name labels the device in reports.
	Name string
	// BandwidthBps is the sequential transfer rate in bytes/second.
	BandwidthBps float64
	// SeekSec is the per-request positioning cost in seconds (seek +
	// rotational latency for HDDs; queue/firmware latency for SSDs).
	SeekSec float64
}

// Reference device profiles. HDD7200 matches the paper's 4TB 7200RPM drives
// (~160 MB/s outer-track sequential, ~8 ms positioning); ClusterSSD matches
// the §A.5 microbenchmark SSD (~400 MB/s).
var (
	HDD7200 = DeviceSpec{Name: "hdd-7200rpm", BandwidthBps: 160e6, SeekSec: 8e-3}
	SATASSD = DeviceSpec{Name: "sata-ssd", BandwidthBps: 400e6, SeekSec: 60e-6}
	// RAMDisk approximates an in-memory dataset: effectively no seek, DRAM
	// bandwidth. Used to model the paper's "from RAM" ceiling rates.
	RAMDisk = DeviceSpec{Name: "ramdisk", BandwidthBps: 10e9, SeekSec: 1e-7}
)

// Device is a single simulated device serving requests FCFS.
type Device struct {
	Spec DeviceSpec

	nextFree  float64
	busySec   float64
	bytesRead int64
	requests  int64
}

// NewDevice returns an idle device.
func NewDevice(spec DeviceSpec) *Device {
	if spec.BandwidthBps <= 0 {
		panic("iosim: non-positive bandwidth")
	}
	return &Device{Spec: spec}
}

// Read services a request of size bytes arriving at time `at`, returning the
// completion time. Requests queue FCFS: service begins at max(at, device
// free time).
func (d *Device) Read(size int64, at float64) float64 {
	if size < 0 {
		size = 0
	}
	start := at
	if d.nextFree > start {
		start = d.nextFree
	}
	service := d.Spec.SeekSec + float64(size)/d.Spec.BandwidthBps
	done := start + service
	d.nextFree = done
	d.busySec += service
	d.bytesRead += size
	d.requests++
	return done
}

// Stats summarizes a device's activity.
type Stats struct {
	BusySec   float64
	BytesRead int64
	Requests  int64
}

// Stats returns the device's accumulated counters.
func (d *Device) Stats() Stats {
	return Stats{BusySec: d.busySec, BytesRead: d.bytesRead, Requests: d.requests}
}

// Reset returns the device to idle and clears counters.
func (d *Device) Reset() { *d = Device{Spec: d.Spec} }

// Cluster models a distributed object store: records are placed across
// devices round-robin (the role of Ceph's OSD placement) and each record
// read is a sequential request to its home device.
type Cluster struct {
	devices []*Device
}

// NewCluster builds a cluster of n identical devices.
func NewCluster(spec DeviceSpec, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("iosim: cluster needs at least one device")
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.devices = append(c.devices, NewDevice(spec))
	}
	return c, nil
}

// NumDevices returns the cluster width.
func (c *Cluster) NumDevices() int { return len(c.devices) }

// AggregateBandwidth returns the cluster's peak sequential bandwidth.
func (c *Cluster) AggregateBandwidth() float64 {
	var sum float64
	for _, d := range c.devices {
		sum += d.Spec.BandwidthBps
	}
	return sum
}

// ReadRecord reads `size` bytes of record `recordIdx` starting at time `at`
// and returns the completion time. Placement is deterministic round-robin.
func (c *Cluster) ReadRecord(recordIdx int, size int64, at float64) float64 {
	if recordIdx < 0 {
		recordIdx = -recordIdx
	}
	return c.devices[recordIdx%len(c.devices)].Read(size, at)
}

// Stats sums the per-device counters.
func (c *Cluster) Stats() Stats {
	var s Stats
	for _, d := range c.devices {
		ds := d.Stats()
		s.BusySec += ds.BusySec
		s.BytesRead += ds.BytesRead
		s.Requests += ds.Requests
	}
	return s
}

// Reset idles every device.
func (c *Cluster) Reset() {
	for _, d := range c.devices {
		d.Reset()
	}
}

// Utilization reports the mean fraction of wall time the devices were busy
// up to time `until`.
func (c *Cluster) Utilization(until float64) float64 {
	if until <= 0 {
		return 0
	}
	return c.Stats().BusySec / (until * float64(len(c.devices)))
}
