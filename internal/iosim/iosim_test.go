package iosim

import (
	"math"
	"testing"
)

func TestDeviceSequentialRead(t *testing.T) {
	d := NewDevice(DeviceSpec{Name: "t", BandwidthBps: 100e6, SeekSec: 10e-3})
	done := d.Read(100e6, 0)
	want := 10e-3 + 1.0
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("done = %v, want %v", done, want)
	}
}

func TestDeviceFCFSQueueing(t *testing.T) {
	d := NewDevice(DeviceSpec{BandwidthBps: 100e6, SeekSec: 0})
	// Two requests arriving at t=0 serialize.
	d1 := d.Read(50e6, 0) // 0.5s
	d2 := d.Read(50e6, 0) // queued behind: completes at 1.0
	if math.Abs(d1-0.5) > 1e-9 || math.Abs(d2-1.0) > 1e-9 {
		t.Errorf("d1=%v d2=%v", d1, d2)
	}
	// A request arriving after the device idles starts immediately.
	d3 := d.Read(10e6, 5)
	if math.Abs(d3-5.1) > 1e-9 {
		t.Errorf("d3 = %v, want 5.1", d3)
	}
}

func TestDeviceStats(t *testing.T) {
	d := NewDevice(SATASSD)
	d.Read(1000, 0)
	d.Read(2000, 0)
	s := d.Stats()
	if s.BytesRead != 3000 || s.Requests != 2 {
		t.Errorf("stats = %+v", s)
	}
	d.Reset()
	if d.Stats().Requests != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestClusterPlacementAndAggregate(t *testing.T) {
	c, err := NewCluster(DeviceSpec{BandwidthBps: 100e6, SeekSec: 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.AggregateBandwidth() != 400e6 {
		t.Errorf("aggregate = %v", c.AggregateBandwidth())
	}
	// Records 0..3 land on distinct devices: all 4 reads overlap fully.
	var last float64
	for i := 0; i < 4; i++ {
		last = c.ReadRecord(i, 100e6, 0)
	}
	if math.Abs(last-1.0) > 1e-9 {
		t.Errorf("parallel reads finished at %v, want 1.0", last)
	}
	// Record 4 shares device 0 with record 0: it queues.
	if got := c.ReadRecord(4, 100e6, 0); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("queued read finished at %v, want 2.0", got)
	}
}

func TestClusterUtilization(t *testing.T) {
	c, _ := NewCluster(DeviceSpec{BandwidthBps: 100e6, SeekSec: 0}, 2)
	c.ReadRecord(0, 100e6, 0) // device 0 busy 1s
	u := c.Utilization(1.0)
	if math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestNewClusterRejectsZeroDevices(t *testing.T) {
	if _, err := NewCluster(SATASSD, 0); err == nil {
		t.Error("zero-device cluster accepted")
	}
}

func TestSeekDominatesSmallReads(t *testing.T) {
	// The File-per-Image pathology: with many tiny reads, an HDD's seek
	// time dominates and effective bandwidth collapses.
	hdd := NewDevice(HDD7200)
	var done float64
	small := int64(100 << 10) // 100 KiB images
	for i := 0; i < 100; i++ {
		done = hdd.Read(small, done)
	}
	effective := float64(100*small) / done
	if effective > 0.5*HDD7200.BandwidthBps {
		t.Errorf("small random reads achieved %.0f B/s; seek cost should halve bandwidth", effective)
	}
	// Large sequential record reads approach full bandwidth.
	hdd.Reset()
	done = 0
	big := int64(100 << 20)
	for i := 0; i < 5; i++ {
		done = hdd.Read(big, done)
	}
	effective = float64(5*big) / done
	if effective < 0.95*HDD7200.BandwidthBps {
		t.Errorf("large reads achieved only %.0f B/s", effective)
	}
}
