package jpegc

import "bytes"

// bitWriter emits an MSB-first bit stream with JPEG byte stuffing: every
// 0xFF data byte is followed by a 0x00 stuff byte so decoders can
// distinguish entropy-coded data from markers.
type bitWriter struct {
	buf  *bytes.Buffer
	acc  uint32 // pending bits, left-aligned within nbits
	nbit uint   // number of pending bits in acc
}

func newBitWriter(buf *bytes.Buffer) *bitWriter {
	return &bitWriter{buf: buf}
}

// writeBits appends the low n bits of v, most significant first. n may be 0.
func (w *bitWriter) writeBits(v uint32, n uint) {
	if n == 0 {
		return
	}
	w.acc = (w.acc << n) | (v & ((1 << n) - 1))
	w.nbit += n
	for w.nbit >= 8 {
		b := byte(w.acc >> (w.nbit - 8))
		w.buf.WriteByte(b)
		if b == 0xFF {
			w.buf.WriteByte(0x00)
		}
		w.nbit -= 8
	}
}

// flush pads the final partial byte with 1 bits (the JPEG convention) and
// emits it.
func (w *bitWriter) flush() {
	if w.nbit > 0 {
		pad := 8 - w.nbit
		w.writeBits((1<<pad)-1, pad)
	}
}

// bitReader consumes an MSB-first bit stream from de-stuffed entropy-coded
// data. It reports exhaustion via ok=false rather than error values so the
// hot decode loop stays branch-light; callers check err() once per scan.
type bitReader struct {
	data []byte
	pos  int
	acc  uint32
	nbit uint
	eof  bool
}

func newBitReader(data []byte) *bitReader {
	return &bitReader{data: data}
}

func (r *bitReader) fill() {
	for r.nbit <= 24 {
		if r.pos >= len(r.data) {
			// Past the end of the scan: feed zero bits. JPEG decoders
			// conventionally tolerate this (libjpeg inserts 1-bits; zeros
			// are equally safe for our own well-formed streams, where the
			// only bits read past the payload are flush padding).
			r.eof = true
			r.acc <<= 8
			r.nbit += 8
			continue
		}
		r.acc = (r.acc << 8) | uint32(r.data[r.pos])
		r.pos++
		r.nbit += 8
	}
}

// readBit returns the next bit.
func (r *bitReader) readBit() uint32 {
	return r.readBits(1)
}

// readBits returns the next n bits MSB-first. n must be ≤ 16.
func (r *bitReader) readBits(n uint) uint32 {
	if n == 0 {
		return 0
	}
	if r.nbit < n {
		r.fill()
	}
	v := (r.acc >> (r.nbit - n)) & ((1 << n) - 1)
	r.nbit -= n
	return v
}

// overrun reports whether the reader was asked for bits beyond the payload.
func (r *bitReader) overrun() bool { return r.eof }

// destuff removes 0x00 stuff bytes that follow 0xFF in entropy-coded data.
// It stops at a marker (0xFF followed by a non-zero byte) and returns the
// de-stuffed payload plus the number of input bytes consumed up to (not
// including) the marker.
func destuff(data []byte) (payload []byte, consumed int) {
	out := make([]byte, 0, len(data))
	i := 0
	for i < len(data) {
		b := data[i]
		if b != 0xFF {
			out = append(out, b)
			i++
			continue
		}
		if i+1 >= len(data) {
			// Trailing 0xFF with nothing after it: treat as data end.
			return out, i
		}
		next := data[i+1]
		switch {
		case next == 0x00:
			out = append(out, 0xFF)
			i += 2
		case next == 0xFF:
			// Fill byte; skip one 0xFF and re-examine.
			i++
		default:
			// A real marker terminates the entropy-coded segment.
			return out, i
		}
	}
	return out, i
}
