package jpegc

import "math"

// cosTable[u][x] = cos((2x+1)uπ/16), precomputed for the 8-point DCT.
var cosTable [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func dctScale(u int) float64 {
	if u == 0 {
		return math.Sqrt2 / 2 // 1/√2
	}
	return 1
}

// fdct computes the forward 8×8 DCT-II in place. Input samples should be
// level-shifted (centered on zero). The output follows the JPEG convention:
// out[v*8+u] = 1/4 C(u) C(v) ΣΣ in[y*8+x] cos((2x+1)uπ/16) cos((2y+1)vπ/16).
func fdct(b *[64]float64) {
	var tmp [64]float64
	// Rows: 1-D DCT along x.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += b[y*8+x] * cosTable[u][x]
			}
			tmp[y*8+u] = s * dctScale(u) / 2
		}
	}
	// Columns: 1-D DCT along y.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTable[v][y]
			}
			b[v*8+u] = s * dctScale(v) / 2
		}
	}
}

// idct computes the inverse 8×8 DCT in place, undoing fdct.
func idct(b *[64]float64) {
	var tmp [64]float64
	// Columns first.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += dctScale(v) * b[v*8+u] * cosTable[v][y]
			}
			tmp[y*8+u] = s / 2
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += dctScale(u) * tmp[y*8+u] * cosTable[u][x]
			}
			b[y*8+x] = s / 2
		}
	}
}
