package jpegc

import (
	"fmt"
	"image"
)

// decoder holds the marker-level and entropy-level state of one decode.
type decoder struct {
	data []byte
	pos  int

	progressive  bool
	width        int
	height       int
	ncomp        int
	subsample420 bool
	compID       [3]byte
	compQuant    [3]byte

	quant [4][64]uint16 // by table id, natural order
	dcTab [4]*huffDecoder
	acTab [4]*huffDecoder

	blocks [3][]Block
	sawSOF bool
	sawEOI bool
}

// geometry is a CoeffImage shell used to reuse the component-grid and MCU
// iteration helpers during decoding.
func (d *decoder) geometry() *CoeffImage {
	return &CoeffImage{
		Width:        d.width,
		Height:       d.height,
		NumComps:     d.ncomp,
		Subsample420: d.subsample420,
	}
}

// DecodeCoeffs parses a JPEG stream (baseline or progressive) down to its
// quantized DCT coefficients. Progressive streams whose later scans are
// absent — e.g. a PCR scan-group prefix terminated with EOI — decode
// successfully; missing refinements simply leave coefficients at their
// coarser values. A stream that ends without EOI returns the partial
// coefficients alongside ErrTruncated.
func DecodeCoeffs(data []byte) (*CoeffImage, error) {
	d := &decoder{data: data}
	if err := d.run(); err != nil {
		return nil, err
	}
	ci := &CoeffImage{
		Width:        d.width,
		Height:       d.height,
		NumComps:     d.ncomp,
		Subsample420: d.subsample420,
	}
	ci.Quant[0] = d.quant[d.compQuant[0]]
	if d.ncomp == 3 {
		ci.Quant[1] = d.quant[d.compQuant[1]]
	}
	for c := 0; c < d.ncomp; c++ {
		ci.Blocks[c] = d.blocks[c]
	}
	if !d.sawEOI {
		return ci, ErrTruncated
	}
	return ci, nil
}

// Decode parses a JPEG stream and reconstructs the image.
func Decode(data []byte) (image.Image, error) {
	ci, err := DecodeCoeffs(data)
	if err != nil {
		return nil, err
	}
	return ToImage(ci), nil
}

func (d *decoder) run() error {
	if len(d.data) < 2 || d.data[0] != 0xFF || d.data[1] != mSOI {
		return fmt.Errorf("jpegc: missing SOI")
	}
	d.pos = 2
	for {
		marker, payload, err := d.nextSegment()
		if err != nil {
			return err
		}
		switch {
		case marker == mEOI:
			d.sawEOI = true
			return nil
		case marker == mSOF0 || marker == mSOF2:
			d.progressive = marker == mSOF2
			if err := d.parseSOF(payload); err != nil {
				return err
			}
		case marker == mDQT:
			if err := d.parseDQT(payload); err != nil {
				return err
			}
		case marker == mDHT:
			if err := d.parseDHT(payload); err != nil {
				return err
			}
		case marker == mSOS:
			if err := d.parseScan(payload); err != nil {
				return err
			}
		case marker == mDRI:
			if len(payload) == 2 && (payload[0] != 0 || payload[1] != 0) {
				return fmt.Errorf("jpegc: restart intervals unsupported")
			}
		case marker >= mAPP0 && marker <= 0xEF, marker == mCOM:
			// Skip application and comment segments.
		case marker >= 0xC1 && marker <= 0xCF && marker != mDHT:
			return fmt.Errorf("jpegc: unsupported SOF marker %#x", marker)
		default:
			return fmt.Errorf("jpegc: unexpected marker %#x", marker)
		}
	}
}

// nextSegment finds the next marker and, for segments with a length field,
// returns its payload. Returns an io-style error at end of input.
func (d *decoder) nextSegment() (marker byte, payload []byte, err error) {
	// Skip to the next 0xFF that starts a marker.
	for {
		if d.pos >= len(d.data) {
			return 0, nil, ErrTruncated
		}
		if d.data[d.pos] != 0xFF {
			d.pos++
			continue
		}
		// Consume fill bytes.
		for d.pos+1 < len(d.data) && d.data[d.pos+1] == 0xFF {
			d.pos++
		}
		if d.pos+1 >= len(d.data) {
			return 0, nil, ErrTruncated
		}
		m := d.data[d.pos+1]
		if m == 0x00 {
			// Stuffed data byte outside a scan: skip.
			d.pos += 2
			continue
		}
		d.pos += 2
		marker = m
		break
	}
	if marker == mEOI || marker == mSOI || (marker >= mRST0 && marker <= mRST0+7) {
		return marker, nil, nil
	}
	if d.pos+2 > len(d.data) {
		return 0, nil, ErrTruncated
	}
	n := int(d.data[d.pos])<<8 | int(d.data[d.pos+1])
	if n < 2 || d.pos+n > len(d.data) {
		return 0, nil, ErrTruncated
	}
	payload = d.data[d.pos+2 : d.pos+n]
	d.pos += n
	return marker, payload, nil
}

func (d *decoder) parseSOF(p []byte) error {
	if d.sawSOF {
		return fmt.Errorf("jpegc: multiple SOF markers")
	}
	if len(p) < 6 {
		return fmt.Errorf("jpegc: short SOF")
	}
	if p[0] != 8 {
		return fmt.Errorf("jpegc: only 8-bit precision supported")
	}
	d.height = int(p[1])<<8 | int(p[2])
	d.width = int(p[3])<<8 | int(p[4])
	d.ncomp = int(p[5])
	if d.ncomp != 1 && d.ncomp != 3 {
		return fmt.Errorf("jpegc: unsupported component count %d", d.ncomp)
	}
	if len(p) < 6+3*d.ncomp {
		return fmt.Errorf("jpegc: short SOF")
	}
	var sampling [3]byte
	for c := 0; c < d.ncomp; c++ {
		d.compID[c] = p[6+3*c]
		sampling[c] = p[7+3*c]
		d.compQuant[c] = p[8+3*c]
		if d.compQuant[c] > 3 {
			return fmt.Errorf("jpegc: bad quant table id")
		}
	}
	switch {
	case d.ncomp == 1 && sampling[0] == 0x11:
		// grayscale
	case d.ncomp == 3 && sampling[0] == 0x11 && sampling[1] == 0x11 && sampling[2] == 0x11:
		// 4:4:4
	case d.ncomp == 3 && sampling[0] == 0x22 && sampling[1] == 0x11 && sampling[2] == 0x11:
		d.subsample420 = true
	default:
		return fmt.Errorf("jpegc: unsupported sampling %v (only 4:4:4 and 4:2:0)", sampling[:d.ncomp])
	}
	d.sawSOF = true
	geo := d.geometry()
	for c := 0; c < d.ncomp; c++ {
		d.blocks[c] = make([]Block, geo.CompBlocksWide(c)*geo.CompBlocksHigh(c))
	}
	return nil
}

func (d *decoder) parseDQT(p []byte) error {
	for len(p) > 0 {
		pq := p[0] >> 4
		tq := p[0] & 0x0F
		if pq != 0 {
			return fmt.Errorf("jpegc: 16-bit quant tables unsupported")
		}
		if tq > 3 {
			return fmt.Errorf("jpegc: bad quant table id %d", tq)
		}
		if len(p) < 65 {
			return fmt.Errorf("jpegc: short DQT")
		}
		for zz := 0; zz < 64; zz++ {
			d.quant[tq][zigzag[zz]] = uint16(p[1+zz])
		}
		p = p[65:]
	}
	return nil
}

func (d *decoder) parseDHT(p []byte) error {
	for len(p) > 0 {
		if len(p) < 17 {
			return fmt.Errorf("jpegc: short DHT")
		}
		class := p[0] >> 4
		id := p[0] & 0x0F
		if class > 1 || id > 3 {
			return fmt.Errorf("jpegc: bad huffman table spec %#x", p[0])
		}
		var spec huffSpec
		total := 0
		for i := 0; i < 16; i++ {
			spec.bits[i] = p[1+i]
			total += int(p[1+i])
		}
		if len(p) < 17+total {
			return fmt.Errorf("jpegc: short DHT values")
		}
		spec.vals = append([]byte(nil), p[17:17+total]...)
		dec, err := buildDecoder(&spec)
		if err != nil {
			return err
		}
		if class == 0 {
			d.dcTab[id] = dec
		} else {
			d.acTab[id] = dec
		}
		p = p[17+total:]
	}
	return nil
}

// scanComp is one component's entry in a scan header.
type scanComp struct {
	comp   int // component index (0-based)
	dc, ac byte
}

func (d *decoder) parseScan(header []byte) error {
	if !d.sawSOF {
		return fmt.Errorf("jpegc: SOS before SOF")
	}
	if len(header) < 4 {
		return fmt.Errorf("jpegc: short SOS")
	}
	ns := int(header[0])
	if ns < 1 || ns > 3 || len(header) != 1+2*ns+3 {
		return fmt.Errorf("jpegc: bad SOS header")
	}
	comps := make([]scanComp, ns)
	for i := 0; i < ns; i++ {
		id := header[1+2*i]
		found := -1
		for c := 0; c < d.ncomp; c++ {
			if d.compID[c] == id {
				found = c
			}
		}
		if found < 0 {
			return fmt.Errorf("jpegc: scan references unknown component %d", id)
		}
		comps[i] = scanComp{comp: found, dc: header[2+2*i] >> 4, ac: header[2+2*i] & 0x0F}
		if comps[i].dc > 3 || comps[i].ac > 3 {
			return fmt.Errorf("jpegc: huffman table id out of range in SOS")
		}
	}
	ss := int(header[1+2*ns])
	se := int(header[2+2*ns])
	ah := int(header[3+2*ns] >> 4)
	al := int(header[3+2*ns] & 0x0F)
	if !d.progressive {
		if ss != 0 || se != 63 || ah != 0 || al != 0 {
			return fmt.Errorf("jpegc: bad baseline scan parameters")
		}
	} else {
		if ss > se || se > 63 || (ss == 0 && se != 0) {
			return fmt.Errorf("jpegc: bad progressive spectral band %d..%d", ss, se)
		}
		if ss != 0 && ns != 1 {
			return fmt.Errorf("jpegc: progressive AC scan must be non-interleaved")
		}
	}

	payload, consumed := destuff(d.data[d.pos:])
	d.pos += consumed
	r := newBitReader(payload)

	var err error
	switch {
	case !d.progressive:
		err = d.decodeBaselineScan(r, comps)
	case ss == 0 && ah == 0:
		err = d.decodeDCFirst(r, comps, al)
	case ss == 0:
		err = d.decodeDCRefine(r, comps, al)
	case ah == 0:
		err = d.decodeACFirst(r, comps[0], ss, se, al)
	default:
		err = d.decodeACRefine(r, comps[0], ss, se, al)
	}
	return err
}

// scanCompIndices extracts the component-index list and a lookup from
// component index to scanComp for an MCU walk.
func scanCompIndices(comps []scanComp) ([]int, map[int]scanComp) {
	idxs := make([]int, len(comps))
	byComp := make(map[int]scanComp, len(comps))
	for i, sc := range comps {
		idxs[i] = sc.comp
		byComp[sc.comp] = sc
	}
	return idxs, byComp
}

func (d *decoder) decodeBaselineScan(r *bitReader, comps []scanComp) error {
	idxs, byComp := scanCompIndices(comps)
	var dcPred [3]int32
	var scratch Block
	var firstErr error
	d.geometry().forEachMCUBlock(idxs, func(c, idx int, pad bool) {
		if firstErr != nil {
			return
		}
		sc := byComp[c]
		blk := &d.blocks[c][idx]
		if pad {
			scratch = Block{}
			blk = &scratch // decode MCU padding, then discard
		}
		dcDec := d.dcTab[sc.dc]
		acDec := d.acTab[sc.ac]
		if dcDec == nil || acDec == nil {
			firstErr = fmt.Errorf("jpegc: scan uses undefined huffman table")
			return
		}
		s, err := dcDec.decode(r)
		if err != nil {
			firstErr = err
			return
		}
		diff := extend(r.readBits(uint(s)), uint(s))
		dcPred[c] += diff
		blk[0] = dcPred[c]
		for k := 1; k < 64; {
			rs, err := acDec.decode(r)
			if err != nil {
				firstErr = err
				return
			}
			run, size := int(rs>>4), uint(rs&0x0F)
			if size == 0 {
				if run == 15 {
					k += 16 // ZRL
					continue
				}
				break // EOB
			}
			k += run
			if k > 63 {
				firstErr = fmt.Errorf("jpegc: AC coefficient index out of range")
				return
			}
			blk[zigzag[k]] = extend(r.readBits(size), size)
			k++
		}
	})
	return firstErr
}

func (d *decoder) decodeDCFirst(r *bitReader, comps []scanComp, al int) error {
	idxs, byComp := scanCompIndices(comps)
	var dcPred [3]int32
	var firstErr error
	d.geometry().forEachMCUBlock(idxs, func(c, idx int, pad bool) {
		if firstErr != nil {
			return
		}
		dec := d.dcTab[byComp[c].dc]
		if dec == nil {
			firstErr = fmt.Errorf("jpegc: scan uses undefined DC table")
			return
		}
		s, err := dec.decode(r)
		if err != nil {
			firstErr = err
			return
		}
		diff := extend(r.readBits(uint(s)), uint(s))
		dcPred[c] += diff
		if !pad {
			d.blocks[c][idx][0] = dcPred[c] << uint(al)
		}
	})
	return firstErr
}

func (d *decoder) decodeDCRefine(r *bitReader, comps []scanComp, al int) error {
	idxs, _ := scanCompIndices(comps)
	bit := int32(1) << uint(al)
	d.geometry().forEachMCUBlock(idxs, func(c, idx int, pad bool) {
		if r.readBit() != 0 && !pad {
			d.blocks[c][idx][0] |= bit
		}
	})
	return nil
}

func (d *decoder) decodeACFirst(r *bitReader, sc scanComp, ss, se, al int) error {
	dec := d.acTab[sc.ac]
	if dec == nil {
		return fmt.Errorf("jpegc: scan uses undefined AC table")
	}
	eobrun := 0
	for i := range d.blocks[sc.comp] {
		blk := &d.blocks[sc.comp][i]
		if eobrun > 0 {
			eobrun--
			continue
		}
		for k := ss; k <= se; {
			rs, err := dec.decode(r)
			if err != nil {
				return err
			}
			run, size := int(rs>>4), uint(rs&0x0F)
			if size == 0 {
				if run != 15 {
					// EOBn: run of end-of-bands.
					eobrun = 1 << uint(run)
					if run > 0 {
						eobrun += int(r.readBits(uint(run)))
					}
					eobrun-- // this block is the first of the run
					break
				}
				k += 16 // ZRL
				continue
			}
			k += run
			if k > se {
				return fmt.Errorf("jpegc: AC coefficient index out of band")
			}
			blk[zigzag[k]] = extend(r.readBits(size), size) << uint(al)
			k++
		}
	}
	return nil
}

func (d *decoder) decodeACRefine(r *bitReader, sc scanComp, ss, se, al int) error {
	dec := d.acTab[sc.ac]
	if dec == nil {
		return fmt.Errorf("jpegc: scan uses undefined AC table")
	}
	p1 := int32(1) << uint(al)
	m1 := int32(-1) << uint(al)
	eobrun := 0

	// refine applies a pending correction bit to an already-nonzero
	// coefficient.
	refine := func(coef *int32) {
		if r.readBit() != 0 && *coef&p1 == 0 {
			if *coef >= 0 {
				*coef += p1
			} else {
				*coef += m1
			}
		}
	}

	for i := range d.blocks[sc.comp] {
		blk := &d.blocks[sc.comp][i]
		k := ss
		if eobrun == 0 {
			for ; k <= se; k++ {
				rs, err := dec.decode(r)
				if err != nil {
					return err
				}
				run, size := int(rs>>4), int(rs&0x0F)
				var newVal int32
				if size != 0 {
					if size != 1 {
						return fmt.Errorf("jpegc: bad refinement size %d", size)
					}
					if r.readBit() != 0 {
						newVal = p1
					} else {
						newVal = m1
					}
				} else if run != 15 {
					eobrun = 1 << uint(run)
					if run > 0 {
						eobrun += int(r.readBits(uint(run)))
					}
					break // remaining coefficients handled by EOB logic below
				}
				// Advance over `run` zero-history coefficients, applying
				// correction bits to nonzero-history ones encountered. The
				// loop stops at the (run+1)-th zero: for a run/size symbol
				// that zero receives the newly significant value; for ZRL
				// (run=15, size=0) it is the 16th skipped zero, and the
				// outer loop's k++ steps past it.
				for k <= se {
					coef := &blk[zigzag[k]]
					if *coef != 0 {
						refine(coef)
					} else {
						run--
						if run < 0 {
							break
						}
					}
					k++
				}
				if size != 0 && k <= se {
					blk[zigzag[k]] = newVal
				}
			}
		}
		if eobrun > 0 {
			// In an EOB run: apply correction bits to every remaining
			// nonzero coefficient of the band.
			for ; k <= se; k++ {
				coef := &blk[zigzag[k]]
				if *coef != 0 {
					refine(coef)
				}
			}
			eobrun--
		}
	}
	return nil
}
