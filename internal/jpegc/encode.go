package jpegc

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
)

// Options control encoding.
type Options struct {
	// Quality is the JPEG quality setting in [1, 100]; 0 means 75.
	Quality int
	// Progressive selects progressive (SOF2) encoding with ScanScript (or
	// the default script when nil). False produces a baseline (SOF0) stream.
	Progressive bool
	// ScanScript overrides the progressive scan script.
	ScanScript []ScanSpec
	// Grayscale forces single-component encoding even for color inputs.
	Grayscale bool
	// Subsample420 encodes color images with 4:2:0 chroma subsampling
	// (the convention of virtually all photographic JPEG). Ignored for
	// grayscale.
	Subsample420 bool
	// OptimizeHuffman computes optimal Huffman tables for baseline scans.
	// Progressive scans always use optimized tables (the Annex K defaults
	// lack the EOBn symbols progressive coding requires).
	OptimizeHuffman bool
}

func (o *Options) quality() int {
	if o == nil || o.Quality == 0 {
		return 75
	}
	return o.Quality
}

// Analyze converts an image into its quantized DCT coefficient
// representation at the requested quality. This is the lossy step; all
// entropy-coding paths (baseline, progressive) below it are lossless.
func Analyze(img image.Image, opts *Options) (*CoeffImage, error) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("jpegc: empty image")
	}
	gray := false
	if opts != nil && opts.Grayscale {
		gray = true
	}
	if _, ok := img.(*image.Gray); ok {
		gray = true
	}

	luma, chroma := QuantTables(opts.quality())
	ci := &CoeffImage{Width: w, Height: h}
	if gray {
		ci.NumComps = 1
	} else {
		ci.NumComps = 3
		ci.Subsample420 = opts != nil && opts.Subsample420
	}
	ci.Quant[0] = luma
	ci.Quant[1] = chroma

	// Extract full-resolution component planes.
	full := make([][]uint8, ci.NumComps)
	for c := range full {
		full[c] = make([]uint8, w*h)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			r8, g8, b8 := uint8(r>>8), uint8(g>>8), uint8(bb>>8)
			if gray {
				yy := color.GrayModel.Convert(color.RGBA{r8, g8, b8, 255}).(color.Gray).Y
				full[0][y*w+x] = yy
			} else {
				yy, cb, cr := color.RGBToYCbCr(r8, g8, b8)
				full[0][y*w+x] = yy
				full[1][y*w+x] = cb
				full[2][y*w+x] = cr
			}
		}
	}

	for c := 0; c < ci.NumComps; c++ {
		quant := &ci.Quant[0]
		if c > 0 {
			quant = &ci.Quant[1]
		}
		// Component plane at its sampled resolution, edge-replicated to
		// block boundaries. Chroma under 4:2:0 is a 2×2 box average.
		cw, ch := ci.compSize(c)
		bw, bh := ci.CompBlocksWide(c), ci.CompBlocksHigh(c)
		pw, ph := bw*8, bh*8
		plane := make([]uint8, pw*ph)
		sub := ci.Subsample420 && c > 0
		for y := 0; y < ph; y++ {
			sy := min(y, ch-1)
			for x := 0; x < pw; x++ {
				sx := min(x, cw-1)
				if !sub {
					plane[y*pw+x] = full[c][sy*w+sx]
					continue
				}
				x0, y0 := 2*sx, 2*sy
				x1, y1 := min(x0+1, w-1), min(y0+1, h-1)
				sum := int(full[c][y0*w+x0]) + int(full[c][y0*w+x1]) +
					int(full[c][y1*w+x0]) + int(full[c][y1*w+x1])
				plane[y*pw+x] = uint8((sum + 2) / 4)
			}
		}

		ci.Blocks[c] = make([]Block, bw*bh)
		var fb [64]float64
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						fb[y*8+x] = float64(plane[(by*8+y)*pw+bx*8+x]) - 128
					}
				}
				fdct(&fb)
				blk := &ci.Blocks[c][by*bw+bx]
				for k := 0; k < 64; k++ {
					q := float64(quant[k])
					v := fb[k] / q
					// Round to nearest, ties away from zero.
					if v >= 0 {
						blk[k] = int32(v + 0.5)
					} else {
						blk[k] = int32(v - 0.5)
					}
				}
			}
		}
	}
	return ci, nil
}

// Encode compresses img with the given options and returns the JPEG stream.
func Encode(img image.Image, opts *Options) ([]byte, error) {
	ci, err := Analyze(img, opts)
	if err != nil {
		return nil, err
	}
	return EncodeCoeffs(ci, opts)
}

// EncodeCoeffs entropy-codes an existing coefficient image. This is the
// lossless half of the codec: EncodeCoeffs followed by DecodeCoeffs returns
// an identical CoeffImage regardless of baseline/progressive mode.
func EncodeCoeffs(ci *CoeffImage, opts *Options) ([]byte, error) {
	if err := ci.validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	writeHeaders(&buf, ci, opts)
	if opts != nil && opts.Progressive {
		script := opts.ScanScript
		if script == nil {
			script = DefaultScanScript(ci.NumComps)
		}
		if err := validateScript(script, ci.NumComps); err != nil {
			return nil, err
		}
		enc := newProgEncoder(ci)
		for _, scan := range script {
			if err := enc.writeScan(&buf, scan); err != nil {
				return nil, err
			}
		}
	} else {
		optimize := opts != nil && opts.OptimizeHuffman
		if err := writeBaselineScan(&buf, ci, optimize); err != nil {
			return nil, err
		}
	}
	buf.Write([]byte{0xFF, mEOI})
	return buf.Bytes(), nil
}

func writeSegment(buf *bytes.Buffer, marker byte, payload []byte) {
	buf.WriteByte(0xFF)
	buf.WriteByte(marker)
	n := len(payload) + 2
	buf.WriteByte(byte(n >> 8))
	buf.WriteByte(byte(n))
	buf.Write(payload)
}

func writeHeaders(buf *bytes.Buffer, ci *CoeffImage, opts *Options) {
	buf.Write([]byte{0xFF, mSOI})

	// JFIF APP0.
	writeSegment(buf, mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 2, 0, 0, 1, 0, 1, 0, 0})

	// DQT: table 0 (luma), and table 1 (chroma) for color.
	nq := 1
	if ci.NumComps == 3 {
		nq = 2
	}
	for t := 0; t < nq; t++ {
		payload := make([]byte, 1+64)
		payload[0] = byte(t) // 8-bit precision, table id t
		for zz := 0; zz < 64; zz++ {
			payload[1+zz] = byte(ci.Quant[t][zigzag[zz]])
		}
		writeSegment(buf, mDQT, payload)
	}

	// SOF0 or SOF2.
	sof := byte(mSOF0)
	if opts != nil && opts.Progressive {
		sof = mSOF2
	}
	payload := make([]byte, 6+3*ci.NumComps)
	payload[0] = 8 // precision
	payload[1] = byte(ci.Height >> 8)
	payload[2] = byte(ci.Height)
	payload[3] = byte(ci.Width >> 8)
	payload[4] = byte(ci.Width)
	payload[5] = byte(ci.NumComps)
	ids := [3]byte{compY, compCb, compCr}
	for c := 0; c < ci.NumComps; c++ {
		payload[6+3*c] = ids[c]
		h, v := ci.sampling(c)
		payload[7+3*c] = byte(h)<<4 | byte(v)
		qt := byte(0)
		if c > 0 {
			qt = 1
		}
		payload[8+3*c] = qt
	}
	writeSegment(buf, sof, payload)
}

// writeDHT emits one or more Huffman tables in a single DHT segment.
// class 0 = DC, 1 = AC; id is the table slot.
type dhtEntry struct {
	class, id byte
	spec      *huffSpec
}

func writeDHT(buf *bytes.Buffer, entries []dhtEntry) {
	var payload []byte
	for _, e := range entries {
		payload = append(payload, e.class<<4|e.id)
		payload = append(payload, e.spec.bits[:]...)
		payload = append(payload, e.spec.vals...)
	}
	writeSegment(buf, mDHT, payload)
}

// writeSOS emits the scan header for the given scan spec.
func writeSOS(buf *bytes.Buffer, ci *CoeffImage, scan ScanSpec, dcTable, acTable func(comp int) byte) {
	ids := [3]byte{compY, compCb, compCr}
	payload := []byte{byte(len(scan.Comps))}
	for _, c := range scan.Comps {
		payload = append(payload, ids[c], dcTable(c)<<4|acTable(c))
	}
	payload = append(payload, byte(scan.Ss), byte(scan.Se), byte(scan.Ah<<4|scan.Al))
	writeSegment(buf, mSOS, payload)
}

// --- Baseline scan ---------------------------------------------------------

// baselineWalk walks the blocks of a full baseline scan in interleaved MCU
// order, invoking emit for every Huffman symbol. Used both for frequency
// counting (optimization) and actual emission. MCU padding blocks (4:2:0
// edges) re-emit the clamped edge block, keeping the DC prediction chain
// consistent with the decoder.
func baselineWalk(ci *CoeffImage, emit func(comp int, dc bool, sym byte, bits uint32, nbits uint)) {
	comps := make([]int, ci.NumComps)
	for c := range comps {
		comps[c] = c
	}
	prevDC := [3]int32{}
	ci.forEachMCUBlock(comps, func(c, idx int, pad bool) {
		blk := &ci.Blocks[c][idx]
		// DC
		diff := blk[0] - prevDC[c]
		prevDC[c] = blk[0]
		size, bits := magnitude(diff)
		emit(c, true, byte(size), bits, size)
		// AC with run-length coding
		run := 0
		for zz := 1; zz < 64; zz++ {
			v := blk[zigzag[zz]]
			if v == 0 {
				run++
				continue
			}
			for run > 15 {
				emit(c, false, 0xF0, 0, 0) // ZRL
				run -= 16
			}
			size, bits := magnitude(v)
			emit(c, false, byte(run<<4)|byte(size), bits, size)
			run = 0
		}
		if run > 0 {
			emit(c, false, 0x00, 0, 0) // EOB
		}
	})
}

func writeBaselineScan(buf *bytes.Buffer, ci *CoeffImage, optimize bool) error {
	var dcSpec, acSpec [2]*huffSpec
	if optimize {
		var dcFreq, acFreq [2]freqCounter
		baselineWalk(ci, func(comp int, dc bool, sym byte, _ uint32, _ uint) {
			t := 0
			if comp > 0 {
				t = 1
			}
			if dc {
				dcFreq[t].count(sym)
			} else {
				acFreq[t].count(sym)
			}
		})
		dcSpec[0] = dcFreq[0].buildOptimal()
		acSpec[0] = acFreq[0].buildOptimal()
		if ci.NumComps == 3 {
			dcSpec[1] = dcFreq[1].buildOptimal()
			acSpec[1] = acFreq[1].buildOptimal()
		}
	} else {
		dcSpec[0], acSpec[0] = &stdDCLuma, &stdACLuma
		dcSpec[1], acSpec[1] = &stdDCChroma, &stdACChroma
	}

	entries := []dhtEntry{{0, 0, dcSpec[0]}, {1, 0, acSpec[0]}}
	if ci.NumComps == 3 {
		entries = append(entries, dhtEntry{0, 1, dcSpec[1]}, dhtEntry{1, 1, acSpec[1]})
	}
	writeDHT(buf, entries)

	var dcEnc, acEnc [2]*huffEncoder
	var err error
	for t := 0; t < 2; t++ {
		if dcSpec[t] == nil {
			continue
		}
		if dcEnc[t], err = buildEncoder(dcSpec[t]); err != nil {
			return err
		}
		if acEnc[t], err = buildEncoder(acSpec[t]); err != nil {
			return err
		}
	}

	comps := make([]int, ci.NumComps)
	for c := range comps {
		comps[c] = c
	}
	tbl := func(c int) byte {
		if c > 0 {
			return 1
		}
		return 0
	}
	writeSOS(buf, ci, ScanSpec{Comps: comps, Ss: 0, Se: 63}, tbl, tbl)

	w := newBitWriter(buf)
	baselineWalk(ci, func(comp int, dc bool, sym byte, bits uint32, nbits uint) {
		t := 0
		if comp > 0 {
			t = 1
		}
		if dc {
			dcEnc[t].emit(w, sym)
		} else {
			acEnc[t].emit(w, sym)
		}
		w.writeBits(bits, nbits)
	})
	w.flush()
	return nil
}
