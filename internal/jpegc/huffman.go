package jpegc

import "fmt"

// huffSpec is a Huffman table in the DHT wire representation: bits[l] is the
// number of codes of length l+1 (l in 0..15) and vals lists the symbols in
// code order.
type huffSpec struct {
	bits [16]byte
	vals []byte
}

// huffEncoder holds per-symbol code words derived from a huffSpec.
type huffEncoder struct {
	code [256]uint32
	size [256]uint8 // 0 means the symbol has no code
}

// buildEncoder assigns canonical codes (T.81 Annex C) to the spec's symbols.
func buildEncoder(spec *huffSpec) (*huffEncoder, error) {
	enc := &huffEncoder{}
	code := uint32(0)
	k := 0
	for l := 1; l <= 16; l++ {
		n := int(spec.bits[l-1])
		for i := 0; i < n; i++ {
			if k >= len(spec.vals) {
				return nil, fmt.Errorf("jpegc: huffman spec has %d codes but %d symbols", k+1, len(spec.vals))
			}
			sym := spec.vals[k]
			if enc.size[sym] != 0 {
				return nil, fmt.Errorf("jpegc: duplicate huffman symbol %#x", sym)
			}
			enc.code[sym] = code
			enc.size[sym] = uint8(l)
			code++
			k++
		}
		code <<= 1
	}
	if k != len(spec.vals) {
		return nil, fmt.Errorf("jpegc: huffman spec has %d codes but %d symbols", k, len(spec.vals))
	}
	return enc, nil
}

// emit writes the code for sym to w. Panics if the symbol has no code — the
// encoder only emits symbols whose frequencies it counted, so a missing code
// is an internal invariant violation, not an input error.
func (e *huffEncoder) emit(w *bitWriter, sym byte) {
	sz := e.size[sym]
	if sz == 0 {
		panic(fmt.Sprintf("jpegc: no huffman code for symbol %#x", sym))
	}
	w.writeBits(e.code[sym], uint(sz))
}

// huffDecoder implements the canonical MINCODE/MAXCODE/VALPTR decoding
// procedure from T.81 Annex F.2.2.3.
type huffDecoder struct {
	mincode [17]int32
	maxcode [17]int32 // -1 where no codes of that length exist
	valptr  [17]int32
	vals    []byte
}

func buildDecoder(spec *huffSpec) (*huffDecoder, error) {
	d := &huffDecoder{vals: spec.vals}
	code := int32(0)
	k := int32(0)
	total := 0
	for l := 1; l <= 16; l++ {
		n := int32(spec.bits[l-1])
		if n == 0 {
			d.maxcode[l] = -1
			code <<= 1
			continue
		}
		d.valptr[l] = k
		d.mincode[l] = code
		code += n
		k += n
		d.maxcode[l] = code - 1
		code <<= 1
		total += int(n)
	}
	if total != len(spec.vals) {
		return nil, fmt.Errorf("jpegc: huffman table: %d codes but %d symbols", total, len(spec.vals))
	}
	return d, nil
}

// decode reads one Huffman-coded symbol from r.
func (d *huffDecoder) decode(r *bitReader) (byte, error) {
	code := int32(r.readBit())
	for l := 1; l <= 16; l++ {
		if d.maxcode[l] >= 0 && code <= d.maxcode[l] {
			idx := d.valptr[l] + code - d.mincode[l]
			if idx < 0 || int(idx) >= len(d.vals) {
				return 0, fmt.Errorf("jpegc: corrupt huffman code")
			}
			return d.vals[idx], nil
		}
		code = code<<1 | int32(r.readBit())
	}
	return 0, fmt.Errorf("jpegc: huffman code longer than 16 bits")
}

// freqCounter accumulates symbol frequencies for optimal table generation.
// Index 256 is a reserved pseudo-symbol that guarantees no real symbol is
// assigned the all-ones code (required by JPEG).
type freqCounter [257]int64

func (f *freqCounter) count(sym byte) { f[sym]++ }

// buildOptimal computes an optimal length-limited Huffman table for the
// counted frequencies, following the algorithm of ISO/libjpeg
// (jpeg_gen_optimal_table): pair-merge to get code sizes, then push sizes
// over 16 back down, then drop the reserved symbol.
func (f *freqCounter) buildOptimal() *huffSpec {
	var freq [257]int64
	copy(freq[:], f[:])
	freq[256] = 1 // reserved: ensures no real all-ones code

	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}

	for {
		// Find the two least-frequent nonzero entries (c1 lowest, c2 next;
		// ties broken toward larger symbol value for c1 per libjpeg).
		c1, c2 := -1, -1
		v := int64(1) << 62
		for i := 0; i <= 256; i++ {
			if freq[i] != 0 && freq[i] <= v {
				v = freq[i]
				c1 = i
			}
		}
		v = int64(1) << 62
		for i := 0; i <= 256; i++ {
			if freq[i] != 0 && freq[i] <= v && i != c1 {
				v = freq[i]
				c2 = i
			}
		}
		if c2 < 0 {
			break // only one entry left: done
		}
		freq[c1] += freq[c2]
		freq[c2] = 0
		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	var bits [33]int
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] > 32 {
				// Cannot occur with ≤257 symbols, but guard anyway.
				codesize[i] = 32
			}
			bits[codesize[i]]++
		}
	}

	// Limit code lengths to 16 bits (T.81 K.3 adjustment).
	for l := 32; l > 16; l-- {
		for bits[l] > 0 {
			j := l - 2
			for bits[j] == 0 {
				j--
			}
			bits[l] -= 2
			bits[l-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the reserved symbol's code from the longest used length.
	l := 16
	for l > 0 && bits[l] == 0 {
		l--
	}
	if l > 0 {
		bits[l]--
	}

	spec := &huffSpec{}
	for i := 1; i <= 16; i++ {
		spec.bits[i-1] = byte(bits[i])
	}
	// List symbols in increasing code-length order, breaking ties by value.
	for size := 1; size <= 32; size++ {
		for sym := 0; sym <= 255; sym++ {
			if codesize[sym] == size {
				spec.vals = append(spec.vals, byte(sym))
			}
		}
	}
	return spec
}

// Standard Huffman tables from T.81 Annex K.3 (used for baseline scans when
// optimization is disabled).
var (
	stdDCLuma = huffSpec{
		bits: [16]byte{0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
		vals: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
	stdDCChroma = huffSpec{
		bits: [16]byte{0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0},
		vals: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	}
	stdACLuma = huffSpec{
		bits: [16]byte{0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d},
		vals: []byte{
			0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
			0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
			0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
			0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
			0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16,
			0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
			0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
			0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
			0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
			0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
			0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
			0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
			0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
			0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
			0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
			0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
			0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4,
			0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
			0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea,
			0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
			0xf9, 0xfa,
		},
	}
	stdACChroma = huffSpec{
		bits: [16]byte{0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77},
		vals: []byte{
			0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
			0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
			0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
			0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0,
			0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34,
			0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
			0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38,
			0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
			0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
			0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
			0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
			0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
			0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96,
			0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
			0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
			0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3,
			0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2,
			0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
			0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9,
			0xea, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
			0xf9, 0xfa,
		},
	}
)

// magnitude returns the JPEG "size" category of v (number of bits needed for
// |v|) and the value bits to emit after the size symbol.
func magnitude(v int32) (size uint, bits uint32) {
	a := v
	if a < 0 {
		a = -a
	}
	for a != 0 {
		size++
		a >>= 1
	}
	if v >= 0 {
		return size, uint32(v)
	}
	// Negative values are emitted as v-1 in size bits (ones' complement of
	// the magnitude).
	return size, uint32(v-1) & ((1 << size) - 1)
}

// extend implements the EXTEND procedure (T.81 F.2.2.1): it converts the raw
// value bits of a size-s coefficient into a signed value.
func extend(bits uint32, size uint) int32 {
	if size == 0 {
		return 0
	}
	if bits < 1<<(size-1) {
		return int32(bits) - (1 << size) + 1
	}
	return int32(bits)
}
