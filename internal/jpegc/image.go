package jpegc

import "image"

// ToImage reconstructs pixels from quantized coefficients: dequantize, IDCT,
// level shift, clamp. Color images are returned as *image.YCbCr at the
// stream's native subsampling (4:4:4 or 4:2:0 — the YCbCr type performs
// chroma upsampling and RGB conversion in At); grayscale as *image.Gray.
func ToImage(ci *CoeffImage) image.Image {
	planes := make([][]uint8, ci.NumComps)
	strides := make([]int, ci.NumComps)
	var fb [64]float64
	for c := 0; c < ci.NumComps; c++ {
		quant := &ci.Quant[0]
		if c > 0 {
			quant = &ci.Quant[1]
		}
		bw, bh := ci.CompBlocksWide(c), ci.CompBlocksHigh(c)
		pw, ph := bw*8, bh*8
		plane := make([]uint8, pw*ph)
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				blk := &ci.Blocks[c][by*bw+bx]
				for k := 0; k < 64; k++ {
					fb[k] = float64(blk[k]) * float64(quant[k])
				}
				idct(&fb)
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						v := fb[y*8+x] + 128
						var p uint8
						switch {
						case v <= 0:
							p = 0
						case v >= 255:
							p = 255
						default:
							p = uint8(v + 0.5)
						}
						plane[(by*8+y)*pw+bx*8+x] = p
					}
				}
			}
		}
		planes[c] = plane
		strides[c] = pw
	}

	rect := image.Rect(0, 0, ci.Width, ci.Height)
	if ci.NumComps == 1 {
		img := image.NewGray(rect)
		for y := 0; y < ci.Height; y++ {
			copy(img.Pix[y*img.Stride:y*img.Stride+ci.Width], planes[0][y*strides[0]:y*strides[0]+ci.Width])
		}
		return img
	}
	ratio := image.YCbCrSubsampleRatio444
	if ci.Subsample420 {
		ratio = image.YCbCrSubsampleRatio420
	}
	img := image.NewYCbCr(rect, ratio)
	for y := 0; y < ci.Height; y++ {
		copy(img.Y[y*img.YStride:y*img.YStride+ci.Width], planes[0][y*strides[0]:y*strides[0]+ci.Width])
	}
	cw, ch := ci.compSize(1)
	for y := 0; y < ch; y++ {
		copy(img.Cb[y*img.CStride:y*img.CStride+cw], planes[1][y*strides[1]:y*strides[1]+cw])
		copy(img.Cr[y*img.CStride:y*img.CStride+cw], planes[2][y*strides[2]:y*strides[2]+cw])
	}
	return img
}
