// Package jpegc implements a JPEG (ITU-T T.81) codec with full support for
// progressive encoding — spectral selection and successive approximation —
// plus coefficient-level (lossless) transcoding between baseline and
// progressive representations and a scan-boundary scanner.
//
// The Go standard library can decode progressive JPEG but cannot encode it,
// and it exposes neither scan boundaries nor DCT coefficients. Progressive
// Compressed Records need all three: the PCR encoder plays the role of
// jpegtran (lossless baseline→progressive transform) followed by a marker
// scan that locates the byte ranges of each scan.
//
// The codec is deliberately restricted to the subset the PCR system needs:
//
//   - 8-bit samples, grayscale (1 component) or YCbCr (3 components)
//   - 4:4:4 and 4:2:0 sampling (the latter is what photographic JPEG uses)
//   - Huffman entropy coding with per-scan optimized tables
//   - no restart markers, no arithmetic coding, no hierarchical mode
//
// Streams produced here are valid interchange-format JPEG: tests verify that
// the standard library's image/jpeg decoder accepts them and produces the
// same pixels.
package jpegc

import (
	"errors"
	"fmt"
)

// Component identifiers used in SOF/SOS headers.
const (
	compY  = 1
	compCb = 2
	compCr = 3
)

// Block holds the 64 quantized DCT coefficients of one 8×8 block in natural
// (row-major) order.
type Block [64]int32

// CoeffImage is the coefficient-domain representation of a JPEG image: the
// quantized DCT coefficients of every block of every component, plus the
// quantization tables needed to reconstruct pixels. Two CoeffImages with
// equal contents decode to identical pixels, which is what makes
// baseline↔progressive transcoding lossless.
type CoeffImage struct {
	Width, Height int
	// NumComps is 1 for grayscale, 3 for YCbCr.
	NumComps int
	// Subsample420 marks 4:2:0 chroma subsampling (luma at 2×2 sampling
	// factors, chroma at half resolution each way). False means 4:4:4.
	Subsample420 bool
	// Blocks[c] holds component c's blocks in row-major order,
	// CompBlocksWide(c)×CompBlocksHigh(c) of them.
	Blocks [3][]Block
	// Quant[0] is the luma table, Quant[1] the chroma table, both in
	// natural order. Grayscale images use only Quant[0].
	Quant [2][64]uint16
}

// BlocksWide reports the luma block-column count.
func (ci *CoeffImage) BlocksWide() int { return (ci.Width + 7) / 8 }

// BlocksHigh reports the luma block-row count.
func (ci *CoeffImage) BlocksHigh() int { return (ci.Height + 7) / 8 }

// sampling returns component c's horizontal and vertical sampling factors.
func (ci *CoeffImage) sampling(c int) (h, v int) {
	if ci.Subsample420 && ci.NumComps == 3 && c == 0 {
		return 2, 2
	}
	return 1, 1
}

// compSize returns component c's sample dimensions.
func (ci *CoeffImage) compSize(c int) (w, h int) {
	if ci.Subsample420 && ci.NumComps == 3 && c > 0 {
		return (ci.Width + 1) / 2, (ci.Height + 1) / 2
	}
	return ci.Width, ci.Height
}

// CompBlocksWide returns component c's block-column count.
func (ci *CoeffImage) CompBlocksWide(c int) int {
	w, _ := ci.compSize(c)
	return (w + 7) / 8
}

// CompBlocksHigh returns component c's block-row count.
func (ci *CoeffImage) CompBlocksHigh(c int) int {
	_, h := ci.compSize(c)
	return (h + 7) / 8
}

// mcuDims returns the MCU grid for interleaved scans: with 4:2:0 an MCU
// covers 16×16 luma samples; with 4:4:4, 8×8.
func (ci *CoeffImage) mcuDims() (mw, mh int) {
	if ci.Subsample420 && ci.NumComps == 3 {
		return (ci.Width + 15) / 16, (ci.Height + 15) / 16
	}
	return ci.BlocksWide(), ci.BlocksHigh()
}

// forEachMCUBlock visits every block of every listed component in
// interleaved MCU order (the T.81 A.2.3 ordering). Components with 2×2
// sampling contribute four blocks per MCU. Blocks beyond a component's real
// grid (MCU padding at the right/bottom edges) are reported with pad=true
// and the clamped index of the nearest real block — encoders emit that
// block's data again, decoders discard the decoded values.
func (ci *CoeffImage) forEachMCUBlock(comps []int, fn func(comp, idx int, pad bool)) {
	if len(comps) == 1 {
		// A single-component scan is non-interleaved by definition
		// (T.81 A.2): it rasters the component's own block grid with no
		// MCU padding.
		c := comps[0]
		n := ci.CompBlocksWide(c) * ci.CompBlocksHigh(c)
		for i := 0; i < n; i++ {
			fn(c, i, false)
		}
		return
	}
	mw, mh := ci.mcuDims()
	for my := 0; my < mh; my++ {
		for mx := 0; mx < mw; mx++ {
			for _, c := range comps {
				hc, vc := ci.sampling(c)
				bw, bh := ci.CompBlocksWide(c), ci.CompBlocksHigh(c)
				for v := 0; v < vc; v++ {
					for u := 0; u < hc; u++ {
						row, col := my*vc+v, mx*hc+u
						pad := row >= bh || col >= bw
						if row >= bh {
							row = bh - 1
						}
						if col >= bw {
							col = bw - 1
						}
						fn(c, row*bw+col, pad)
					}
				}
			}
		}
	}
}

// Equal reports whether two coefficient images are identical: same geometry,
// quantization tables, and every coefficient of every block.
func (ci *CoeffImage) Equal(other *CoeffImage) bool {
	if ci.Width != other.Width || ci.Height != other.Height || ci.NumComps != other.NumComps {
		return false
	}
	if ci.Subsample420 != other.Subsample420 {
		return false
	}
	nq := 1
	if ci.NumComps == 3 {
		nq = 2
	}
	for q := 0; q < nq; q++ {
		if ci.Quant[q] != other.Quant[q] {
			return false
		}
	}
	for c := 0; c < ci.NumComps; c++ {
		if len(ci.Blocks[c]) != len(other.Blocks[c]) {
			return false
		}
		for i := range ci.Blocks[c] {
			if ci.Blocks[c][i] != other.Blocks[c][i] {
				return false
			}
		}
	}
	return true
}

func (ci *CoeffImage) validate() error {
	if ci.Width <= 0 || ci.Height <= 0 {
		return fmt.Errorf("jpegc: invalid dimensions %dx%d", ci.Width, ci.Height)
	}
	if ci.NumComps != 1 && ci.NumComps != 3 {
		return fmt.Errorf("jpegc: unsupported component count %d", ci.NumComps)
	}
	if ci.Subsample420 && ci.NumComps != 3 {
		return fmt.Errorf("jpegc: 4:2:0 subsampling requires 3 components")
	}
	for c := 0; c < ci.NumComps; c++ {
		want := ci.CompBlocksWide(c) * ci.CompBlocksHigh(c)
		if len(ci.Blocks[c]) != want {
			return fmt.Errorf("jpegc: component %d has %d blocks, want %d", c, len(ci.Blocks[c]), want)
		}
		// T.81 limits for 8-bit precision: quantized DC values stay in the
		// pixel-domain range [-1024, 1023] (so DC differences fit category
		// ≤ 11) and AC magnitudes fit category ≤ 10. Values outside these
		// ranges have no Huffman representation in baseline mode.
		for i := range ci.Blocks[c] {
			blk := &ci.Blocks[c][i]
			if blk[0] < -1024 || blk[0] > 1023 {
				return fmt.Errorf("jpegc: component %d block %d: DC %d out of [-1024, 1023]", c, i, blk[0])
			}
			for k := 1; k < 64; k++ {
				if blk[k] < -1023 || blk[k] > 1023 {
					return fmt.Errorf("jpegc: component %d block %d: AC %d out of [-1023, 1023]", c, i, blk[k])
				}
			}
		}
	}
	return nil
}

// ErrTruncated is returned by Decode when the stream ends before an EOI
// marker. Progressive reconstructions from complete scan prefixes are not
// truncated in this sense: the PCR decoder appends EOI to the prefix.
var ErrTruncated = errors.New("jpegc: truncated stream")

// zigzag maps a zigzag-order index to natural (row-major) order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// unzigzag maps a natural-order index to zigzag order.
var unzigzag [64]int

func init() {
	for zz, nat := range zigzag {
		unzigzag[nat] = zz
	}
}
