package jpegc

import (
	"bytes"
	"image"
	"image/color"
	stdjpeg "image/jpeg"
	"math"
	"math/rand"
	"testing"
)

// testImage produces a deterministic color image mixing smooth gradients,
// sinusoidal texture, and noise — enough spectral variety to exercise every
// scan of the progressive script.
func testImage(w, h int, seed int64) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			r := 128 + 100*math.Sin(fx/9)*math.Cos(fy/13)
			g := 128 + 80*math.Sin((fx+fy)/7)
			b := float64(x*255/w+y*255/h) / 2
			n := rng.Float64()*30 - 15
			img.Set(x, y, color.RGBA{clamp8(r + n), clamp8(g + n), clamp8(b + n), 255})
		}
	}
	return img
}

func testGray(w, h int, seed int64) *image.Gray {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 + 90*math.Sin(float64(x)/5)*math.Cos(float64(y)/8) + rng.Float64()*20 - 10
			img.SetGray(x, y, color.Gray{Y: clamp8(v)})
		}
	}
	return img
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var b, orig [64]float64
		for i := range b {
			b[i] = rng.Float64()*255 - 128
			orig[i] = b[i]
		}
		fdct(&b)
		idct(&b)
		for i := range b {
			if math.Abs(b[i]-orig[i]) > 1e-9 {
				t.Fatalf("trial %d: idct(fdct(x))[%d] = %v, want %v", trial, i, b[i], orig[i])
			}
		}
	}
}

func TestDCTDCTerm(t *testing.T) {
	// A constant block must concentrate all energy in the DC term.
	var b [64]float64
	for i := range b {
		b[i] = 100
	}
	fdct(&b)
	if math.Abs(b[0]-800) > 1e-9 { // 8 * 100
		t.Errorf("DC term = %v, want 800", b[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(b[i]) > 1e-9 {
			t.Errorf("AC term %d = %v, want 0", i, b[i])
		}
	}
}

func TestQuantTablesMonotone(t *testing.T) {
	prev, _ := QuantTables(10)
	for q := 20; q <= 100; q += 10 {
		cur, _ := QuantTables(q)
		for i := range cur {
			if cur[i] > prev[i] {
				t.Fatalf("quality %d: quant[%d]=%d exceeds lower-quality value %d", q, i, cur[i], prev[i])
			}
		}
		prev = cur
	}
	q100, _ := QuantTables(100)
	for i, v := range q100 {
		if v != 1 {
			t.Errorf("quality 100: quant[%d]=%d, want 1", i, v)
		}
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w := newBitWriter(&buf)
	type item struct {
		v uint32
		n uint
	}
	var items []item
	for i := 0; i < 2000; i++ {
		n := uint(rng.Intn(16) + 1)
		v := uint32(rng.Intn(1 << n))
		items = append(items, item{v, n})
		w.writeBits(v, n)
	}
	w.flush()
	payload, _ := destuff(buf.Bytes())
	r := newBitReader(payload)
	for i, it := range items {
		if got := r.readBits(it.n); got != it.v {
			t.Fatalf("item %d: read %d, want %d", i, got, it.v)
		}
	}
}

func TestDestuffStopsAtMarker(t *testing.T) {
	data := []byte{0x12, 0xFF, 0x00, 0x34, 0xFF, 0xD9}
	payload, consumed := destuff(data)
	if !bytes.Equal(payload, []byte{0x12, 0xFF, 0x34}) {
		t.Errorf("payload = %x", payload)
	}
	if consumed != 4 {
		t.Errorf("consumed = %d, want 4", consumed)
	}
}

func TestHuffmanEncodeDecodeRoundTrip(t *testing.T) {
	for _, spec := range []*huffSpec{&stdDCLuma, &stdDCChroma, &stdACLuma, &stdACChroma} {
		enc, err := buildEncoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := buildDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := newBitWriter(&buf)
		for _, sym := range spec.vals {
			enc.emit(w, sym)
		}
		w.flush()
		payload, _ := destuff(buf.Bytes())
		r := newBitReader(payload)
		for i, want := range spec.vals {
			got, err := dec.decode(r)
			if err != nil {
				t.Fatalf("symbol %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("symbol %d: got %#x, want %#x", i, got, want)
			}
		}
	}
}

func TestHuffmanOptimizerValidAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var f freqCounter
		nsyms := rng.Intn(200) + 1
		seen := map[byte]bool{}
		for i := 0; i < nsyms; i++ {
			s := byte(rng.Intn(256))
			f[s] += int64(rng.Intn(1000) + 1)
			seen[s] = true
		}
		spec := f.buildOptimal()
		enc, err := buildEncoder(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every counted symbol must receive a code.
		for s := range seen {
			if enc.size[s] == 0 {
				t.Fatalf("trial %d: symbol %#x got no code", trial, s)
			}
		}
		// Kraft inequality must hold strictly (no all-ones code used).
		var kraft float64
		for l := 1; l <= 16; l++ {
			kraft += float64(spec.bits[l-1]) / float64(uint64(1)<<uint(l))
		}
		if kraft > 1 {
			t.Fatalf("trial %d: kraft sum %v > 1", trial, kraft)
		}
		// And a round trip must work.
		dec, err := buildDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := newBitWriter(&buf)
		var emitted []byte
		for s := range seen {
			enc.emit(w, s)
			emitted = append(emitted, s)
		}
		w.flush()
		payload, _ := destuff(buf.Bytes())
		r := newBitReader(payload)
		for i, want := range emitted {
			got, err := dec.decode(r)
			if err != nil || got != want {
				t.Fatalf("trial %d symbol %d: got %#x err %v, want %#x", trial, i, got, err, want)
			}
		}
	}
}

func TestHuffmanOptimizerSingleSymbol(t *testing.T) {
	var f freqCounter
	f.count(0x42)
	spec := f.buildOptimal()
	enc, err := buildEncoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	if enc.size[0x42] == 0 {
		t.Fatal("single symbol got no code")
	}
}

func TestMagnitudeExtendInverse(t *testing.T) {
	for v := int32(-2047); v <= 2047; v++ {
		size, bits := magnitude(v)
		if got := extend(bits, size); got != v {
			t.Fatalf("extend(magnitude(%d)) = %d", v, got)
		}
	}
}

func encodings(t *testing.T) map[string]*Options {
	t.Helper()
	return map[string]*Options{
		"baseline":           {Quality: 80},
		"baseline-optimized": {Quality: 80, OptimizeHuffman: true},
		"progressive":        {Quality: 80, Progressive: true},
	}
}

func TestCoeffRoundTripColor(t *testing.T) {
	img := testImage(67, 45, 11) // non-multiple-of-8 dimensions on purpose
	for name, opts := range encodings(t) {
		t.Run(name, func(t *testing.T) {
			ci, err := Analyze(img, opts)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeCoeffs(ci, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeCoeffs(data)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ci) {
				t.Fatal("coefficients changed across encode/decode")
			}
		})
	}
}

func TestCoeffRoundTripGray(t *testing.T) {
	img := testGray(40, 56, 5)
	for name, opts := range encodings(t) {
		t.Run(name, func(t *testing.T) {
			ci, err := Analyze(img, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ci.NumComps != 1 {
				t.Fatalf("NumComps = %d, want 1", ci.NumComps)
			}
			data, err := EncodeCoeffs(ci, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeCoeffs(data)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ci) {
				t.Fatal("coefficients changed across encode/decode")
			}
		})
	}
}

// TestStdlibInterop verifies that the standard library's decoder accepts our
// streams and reconstructs the same pixels our decoder does.
func TestStdlibInterop(t *testing.T) {
	img := testImage(64, 64, 21)
	for name, opts := range encodings(t) {
		t.Run(name, func(t *testing.T) {
			data, err := Encode(img, opts)
			if err != nil {
				t.Fatal(err)
			}
			stdImg, err := stdjpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stdlib refused our stream: %v", err)
			}
			ourImg, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			// Compare pixel-wise with a tolerance of 1 (stdlib uses scaled
			// integer IDCT; we use float).
			diff := maxPixelDiff(t, stdImg, ourImg)
			if diff > 2 {
				t.Errorf("max pixel difference vs stdlib = %d", diff)
			}
		})
	}
}

func maxPixelDiff(t *testing.T, a, b image.Image) int {
	t.Helper()
	ab, bb := a.Bounds(), b.Bounds()
	if ab.Dx() != bb.Dx() || ab.Dy() != bb.Dy() {
		t.Fatalf("bounds mismatch: %v vs %v", ab, bb)
	}
	max := 0
	for y := 0; y < ab.Dy(); y++ {
		for x := 0; x < ab.Dx(); x++ {
			ar, ag, abl, _ := a.At(ab.Min.X+x, ab.Min.Y+y).RGBA()
			br, bg, bbl, _ := b.At(bb.Min.X+x, bb.Min.Y+y).RGBA()
			for _, d := range []int{int(ar>>8) - int(br>>8), int(ag>>8) - int(bg>>8), int(abl>>8) - int(bbl>>8)} {
				if d < 0 {
					d = -d
				}
				if d > max {
					max = d
				}
			}
		}
	}
	return max
}

func TestTranscodeLossless(t *testing.T) {
	img := testImage(80, 60, 31)
	base, err := Encode(img, &Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Transcode(base, &Options{Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	ciBase, err := DecodeCoeffs(base)
	if err != nil {
		t.Fatal(err)
	}
	ciProg, err := DecodeCoeffs(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ciProg.Equal(ciBase) {
		t.Fatal("transcode is not lossless")
	}
	// And back again.
	back, err := Transcode(prog, &Options{OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	ciBack, err := DecodeCoeffs(back)
	if err != nil {
		t.Fatal(err)
	}
	if !ciBack.Equal(ciBase) {
		t.Fatal("round-trip transcode is not lossless")
	}
}

func TestIndexScansProgressive(t *testing.T) {
	img := testImage(64, 48, 41)
	prog, err := Encode(img, &Options{Quality: 80, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := IndexScans(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Progressive {
		t.Error("stream not flagged progressive")
	}
	if len(idx.Scans) != 10 {
		t.Fatalf("scan count = %d, want 10", len(idx.Scans))
	}
	if idx.Width != 64 || idx.Height != 48 || idx.NumComps != 3 {
		t.Errorf("geometry = %dx%d/%d comps", idx.Width, idx.Height, idx.NumComps)
	}
	// Scan byte ranges must tile the stream exactly: header, scans, EOI.
	pos := idx.HeaderLen
	for i, s := range idx.Scans {
		if s.Offset != pos {
			t.Fatalf("scan %d offset %d, want %d", i, s.Offset, pos)
		}
		pos += s.Length
	}
	if pos+2 != len(prog) {
		t.Errorf("scans end at %d, stream has %d bytes (want EOI only after scans)", pos, len(prog))
	}
	// Spec of the first scan must be the interleaved DC scan.
	first := idx.Scans[0].Spec
	if first.Ss != 0 || first.Se != 0 || first.Ah != 0 || len(first.Comps) != 3 {
		t.Errorf("first scan spec = %+v", first)
	}
}

func TestTruncatedPrefixesDecode(t *testing.T) {
	img := testImage(64, 64, 51)
	prog, err := Encode(img, &Options{Quality: 85, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := IndexScans(prog)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(prog)
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64 = math.Inf(1)
	for n := 1; n <= len(idx.Scans); n++ {
		trunc, err := TruncateToScan(prog, idx, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(trunc)
		if err != nil {
			t.Fatalf("scan prefix %d: decode: %v", n, err)
		}
		// stdlib must also accept the truncated stream.
		if _, err := stdjpeg.Decode(bytes.NewReader(trunc)); err != nil {
			t.Fatalf("scan prefix %d: stdlib decode: %v", n, err)
		}
		e := meanAbsErr(got, full)
		if n == len(idx.Scans) && e != 0 {
			t.Errorf("full prefix differs from full decode (MAE %v)", e)
		}
		// Mean error must broadly shrink as scans accumulate (allow small
		// non-monotonic wiggle from chroma ordering).
		if e > prevErr+3 {
			t.Errorf("scan prefix %d: MAE %v worse than previous %v", n, e, prevErr)
		}
		if e < prevErr {
			prevErr = e
		}
	}
}

func meanAbsErr(a, b image.Image) float64 {
	ab := a.Bounds()
	var sum float64
	var n int
	for y := 0; y < ab.Dy(); y++ {
		for x := 0; x < ab.Dx(); x++ {
			ar, ag, abl, _ := a.At(x, y).RGBA()
			br, bg, bbl, _ := b.At(x, y).RGBA()
			for _, d := range []int{int(ar>>8) - int(br>>8), int(ag>>8) - int(bg>>8), int(abl>>8) - int(bbl>>8)} {
				if d < 0 {
					d = -d
				}
				sum += float64(d)
				n++
			}
		}
	}
	return sum / float64(n)
}

func TestProgressiveSizeNearBaseline(t *testing.T) {
	// The paper observes progressive size within ~5% of baseline (often
	// smaller). Check we are in that ballpark.
	img := testImage(128, 128, 61)
	base, err := Encode(img, &Options{Quality: 80, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Encode(img, &Options{Quality: 80, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(prog)) / float64(len(base))
	if ratio > 1.10 || ratio < 0.5 {
		t.Errorf("progressive/baseline size ratio = %.3f (prog %d, base %d)", ratio, len(prog), len(base))
	}
}

func TestValidateScriptRejectsBadScripts(t *testing.T) {
	bad := [][]ScanSpec{
		{{Comps: []int{0}, Ss: 1, Se: 0}},                                  // inverted band
		{{Comps: []int{0, 1}, Ss: 1, Se: 5}},                               // interleaved AC
		{{Comps: []int{0}, Ss: 0, Se: 0, Ah: 2, Al: 0}},                    // bad refinement step
		{{Comps: []int{5}, Ss: 0, Se: 0}},                                  // bad component
		{{Comps: []int{0}, Ss: 0, Se: 63}},                                 // DC+AC in one progressive scan
		{{Comps: []int{0}, Ss: 1, Se: 5}, {Comps: []int{0}, Ss: 1, Se: 5}}, // double coding
	}
	for i, script := range bad {
		if err := validateScript(script, 3); err == nil {
			t.Errorf("script %d accepted, want error", i)
		}
	}
	if err := validateScript(DefaultScanScript(3), 3); err != nil {
		t.Errorf("default color script rejected: %v", err)
	}
	if err := validateScript(DefaultScanScript(1), 1); err != nil {
		t.Errorf("default gray script rejected: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeCoeffs([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeCoeffs(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDecodeTruncatedStreamReportsError(t *testing.T) {
	img := testImage(32, 32, 71)
	data, err := Encode(img, &Options{Quality: 75})
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeCoeffs(data[:len(data)-2]) // strip EOI
	if err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestQuality100NearLossless(t *testing.T) {
	img := testImage(48, 48, 81)
	data, err := Encode(img, &Options{Quality: 100})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if e := meanAbsErr(got, img); e > 3.5 {
		t.Errorf("quality-100 MAE = %v (color conversion + rounding only)", e)
	}
}
