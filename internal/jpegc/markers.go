package jpegc

import "fmt"

// JPEG marker codes (second byte after 0xFF).
const (
	mSOF0 = 0xC0 // baseline sequential DCT
	mSOF2 = 0xC2 // progressive DCT
	mDHT  = 0xC4 // define Huffman tables
	mRST0 = 0xD0 // restart interval markers D0–D7
	mSOI  = 0xD8 // start of image
	mEOI  = 0xD9 // end of image
	mSOS  = 0xDA // start of scan
	mDQT  = 0xDB // define quantization tables
	mDRI  = 0xDD // define restart interval
	mAPP0 = 0xE0 // JFIF
	mCOM  = 0xFE // comment
)

// ScanSpec describes one scan of a scan script: which components it codes
// and its spectral-selection / successive-approximation parameters.
type ScanSpec struct {
	// Comps lists component indices (0-based) coded by this scan. DC scans
	// may interleave several components; AC scans must name exactly one.
	Comps []int
	// Ss and Se delimit the coefficient band in zigzag order (0..63).
	Ss, Se int
	// Ah and Al are the successive-approximation bit positions: Ah is the
	// previous point-transform (0 on a first pass), Al the current one.
	Ah, Al int
}

// isDC reports whether the scan codes the DC band.
func (s ScanSpec) isDC() bool { return s.Ss == 0 }

// DefaultScanScript returns the progressive scan script used by libjpeg's
// jpeg_simple_progression for the given component count: 10 scans for color
// images, 6 for grayscale. PCRs map these scans 1:1 onto scan groups.
func DefaultScanScript(numComps int) []ScanSpec {
	if numComps == 1 {
		return []ScanSpec{
			{Comps: []int{0}, Ss: 0, Se: 0, Ah: 0, Al: 1},
			{Comps: []int{0}, Ss: 1, Se: 5, Ah: 0, Al: 2},
			{Comps: []int{0}, Ss: 6, Se: 63, Ah: 0, Al: 2},
			{Comps: []int{0}, Ss: 1, Se: 63, Ah: 2, Al: 1},
			{Comps: []int{0}, Ss: 0, Se: 0, Ah: 1, Al: 0},
			{Comps: []int{0}, Ss: 1, Se: 63, Ah: 1, Al: 0},
		}
	}
	return []ScanSpec{
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 0, Al: 1}, // 1: DC, coarse
		{Comps: []int{0}, Ss: 1, Se: 5, Ah: 0, Al: 2},       // 2: Y low AC
		{Comps: []int{2}, Ss: 1, Se: 63, Ah: 0, Al: 1},      // 3: Cr all AC
		{Comps: []int{1}, Ss: 1, Se: 63, Ah: 0, Al: 1},      // 4: Cb all AC
		{Comps: []int{0}, Ss: 6, Se: 63, Ah: 0, Al: 2},      // 5: Y high AC
		{Comps: []int{0}, Ss: 1, Se: 63, Ah: 2, Al: 1},      // 6: Y AC refine
		{Comps: []int{0, 1, 2}, Ss: 0, Se: 0, Ah: 1, Al: 0}, // 7: DC refine
		{Comps: []int{2}, Ss: 1, Se: 63, Ah: 1, Al: 0},      // 8: Cr AC refine
		{Comps: []int{1}, Ss: 1, Se: 63, Ah: 1, Al: 0},      // 9: Cb AC refine
		{Comps: []int{0}, Ss: 1, Se: 63, Ah: 1, Al: 0},      // 10: Y AC refine
	}
}

// validateScript checks that a scan script is legal for the component count
// and covers every coefficient bit exactly once per component.
func validateScript(script []ScanSpec, numComps int) error {
	// state[c][k] holds the precision delivered so far for coefficient k of
	// component c: the lowest Al reached, or -1 if untouched.
	state := make([][64]int, numComps)
	for c := range state {
		for k := range state[c] {
			state[c][k] = -1
		}
	}
	for i, s := range script {
		if s.Ss < 0 || s.Se > 63 || s.Ss > s.Se {
			return errScript(i, "bad spectral band")
		}
		if s.isDC() {
			if s.Se != 0 {
				return errScript(i, "DC scan must have Se=0")
			}
		} else if len(s.Comps) != 1 {
			return errScript(i, "AC scan must code exactly one component")
		}
		if s.Ah != 0 && s.Ah != s.Al+1 {
			return errScript(i, "refinement must lower Al by exactly one bit")
		}
		for _, c := range s.Comps {
			if c < 0 || c >= numComps {
				return errScript(i, "component out of range")
			}
			for k := s.Ss; k <= s.Se; k++ {
				prev := state[c][k]
				if s.Ah == 0 {
					if prev != -1 {
						return errScript(i, "coefficient coded twice in first passes")
					}
				} else if prev != s.Ah {
					return errScript(i, "refinement pass does not follow previous precision")
				}
				state[c][k] = s.Al
			}
		}
	}
	return nil
}

func errScript(i int, msg string) error {
	return fmt.Errorf("jpegc: scan script: scan %d: %s", i+1, msg)
}
