package jpegc

import "bytes"

// maxCorrBits bounds the buffered AC-refinement correction bits attached to
// a pending EOB run (libjpeg's MAX_CORR_BITS safeguard).
const maxCorrBits = 937

// symbolSink receives the entropy-coding events of one scan. The encoder
// walks each scan twice with identical control flow: a stats pass (counting
// symbols to build optimal Huffman tables) and an emit pass.
type symbolSink interface {
	// symbol emits a Huffman-coded symbol through table slot t (0 or 1).
	symbol(t int, sym byte)
	// bits emits n raw bits.
	bits(v uint32, n uint)
}

type statsSink struct {
	dc, ac [2]*freqCounter
	isDC   bool
}

func (s *statsSink) symbol(t int, sym byte) {
	if s.isDC {
		s.dc[t].count(sym)
	} else {
		s.ac[t].count(sym)
	}
}
func (s *statsSink) bits(uint32, uint) {}

type writeSink struct {
	w      *bitWriter
	dc, ac [2]*huffEncoder
	isDC   bool
}

func (s *writeSink) symbol(t int, sym byte) {
	if s.isDC {
		s.dc[t].emit(s.w, sym)
	} else {
		s.ac[t].emit(s.w, sym)
	}
}
func (s *writeSink) bits(v uint32, n uint) { s.w.writeBits(v, n) }

// progEncoder entropy-codes a coefficient image scan by scan.
type progEncoder struct {
	ci *CoeffImage
}

func newProgEncoder(ci *CoeffImage) *progEncoder {
	return &progEncoder{ci: ci}
}

// tableSlot maps a component to its Huffman table slot: luma uses slot 0,
// chroma slot 1.
func tableSlot(comp int) int {
	if comp > 0 {
		return 1
	}
	return 0
}

// writeScan emits the DHT (when Huffman tables are needed), SOS header, and
// entropy-coded data for one scan of the script.
func (e *progEncoder) writeScan(buf *bytes.Buffer, scan ScanSpec) error {
	dcRefine := scan.isDC() && scan.Ah > 0

	var dcSpec, acSpec [2]*huffSpec
	var dcEnc, acEnc [2]*huffEncoder
	if !dcRefine {
		// Stats pass.
		stats := &statsSink{isDC: scan.isDC()}
		for t := 0; t < 2; t++ {
			stats.dc[t] = &freqCounter{}
			stats.ac[t] = &freqCounter{}
		}
		if err := e.walkScan(scan, stats); err != nil {
			return err
		}
		var entries []dhtEntry
		slots := map[int]bool{}
		for _, c := range scan.Comps {
			slots[tableSlot(c)] = true
		}
		var err error
		for t := 0; t < 2; t++ {
			if !slots[t] {
				continue
			}
			if scan.isDC() {
				dcSpec[t] = stats.dc[t].buildOptimal()
				if dcEnc[t], err = buildEncoder(dcSpec[t]); err != nil {
					return err
				}
				entries = append(entries, dhtEntry{0, byte(t), dcSpec[t]})
			} else {
				acSpec[t] = stats.ac[t].buildOptimal()
				if acEnc[t], err = buildEncoder(acSpec[t]); err != nil {
					return err
				}
				entries = append(entries, dhtEntry{1, byte(t), acSpec[t]})
			}
		}
		writeDHT(buf, entries)
	}

	dcTab := func(c int) byte {
		if scan.isDC() && !dcRefine {
			return byte(tableSlot(c))
		}
		return 0
	}
	acTab := func(c int) byte {
		if !scan.isDC() {
			return byte(tableSlot(c))
		}
		return 0
	}
	writeSOS(buf, e.ci, scan, dcTab, acTab)

	w := newBitWriter(buf)
	sink := &writeSink{w: w, dc: dcEnc, ac: acEnc, isDC: scan.isDC()}
	if err := e.walkScan(scan, sink); err != nil {
		return err
	}
	w.flush()
	return nil
}

// walkScan performs the entropy-coding control flow of one scan, feeding
// symbols and raw bits to sink. The walk is deterministic so the stats and
// emit passes produce identical symbol sequences.
func (e *progEncoder) walkScan(scan ScanSpec, sink symbolSink) error {
	switch {
	case scan.isDC() && scan.Ah == 0:
		e.walkDCFirst(scan, sink)
	case scan.isDC():
		e.walkDCRefine(scan, sink)
	case scan.Ah == 0:
		e.walkACFirst(scan, sink)
	default:
		e.walkACRefine(scan, sink)
	}
	return nil
}

// walkDCFirst codes the DC band's first pass: difference coding of
// point-transformed DC values in interleaved MCU order.
func (e *progEncoder) walkDCFirst(scan ScanSpec, sink symbolSink) {
	var prevDC [3]int32
	e.ci.forEachMCUBlock(scan.Comps, func(c, idx int, pad bool) {
		v := e.ci.Blocks[c][idx][0] >> uint(scan.Al)
		diff := v - prevDC[c]
		prevDC[c] = v
		size, bits := magnitude(diff)
		sink.symbol(tableSlot(c), byte(size))
		sink.bits(bits, size)
	})
}

// walkDCRefine codes a DC refinement pass: one raw bit per block.
func (e *progEncoder) walkDCRefine(scan ScanSpec, sink symbolSink) {
	e.ci.forEachMCUBlock(scan.Comps, func(c, idx int, pad bool) {
		v := e.ci.Blocks[c][idx][0] >> uint(scan.Al)
		sink.bits(uint32(v)&1, 1)
	})
}

// walkACFirst codes the first pass of an AC band: run-length coding of
// point-transformed coefficients with EOB-run aggregation across blocks.
func (e *progEncoder) walkACFirst(scan ScanSpec, sink symbolSink) {
	c := scan.Comps[0]
	t := tableSlot(c)
	al := uint(scan.Al)
	eobrun := 0
	flushEOB := func() {
		if eobrun == 0 {
			return
		}
		r := uint(0)
		for (1 << (r + 1)) <= eobrun {
			r++
		}
		sink.symbol(t, byte(r<<4))
		sink.bits(uint32(eobrun)-1<<r, r)
		eobrun = 0
	}
	for _, blk := range e.ci.Blocks[c] {
		r := 0
		for k := scan.Ss; k <= scan.Se; k++ {
			v := blk[zigzag[k]]
			var a int32
			if v < 0 {
				a = -v >> al
			} else {
				a = v >> al
			}
			if a == 0 {
				r++
				continue
			}
			flushEOB()
			for r > 15 {
				sink.symbol(t, 0xF0) // ZRL
				r -= 16
			}
			sv := a
			if v < 0 {
				sv = -a
			}
			size, bits := magnitude(sv)
			sink.symbol(t, byte(r<<4)|byte(size))
			sink.bits(bits, size)
			r = 0
		}
		if r > 0 {
			eobrun++
			if eobrun == 0x7FFF {
				flushEOB()
			}
		}
	}
	flushEOB()
}

// walkACRefine codes an AC refinement pass, following the structure of
// libjpeg's encode_mcu_AC_refine: newly significant coefficients get
// run/size symbols, already-significant ones contribute buffered correction
// bits, and trailing zeros fold into a cross-block EOB run.
func (e *progEncoder) walkACRefine(scan ScanSpec, sink symbolSink) {
	c := scan.Comps[0]
	t := tableSlot(c)
	al := uint(scan.Al)
	eobrun := 0
	var carry []byte // correction bits attached to the pending EOB run
	var cur []byte   // correction bits collected since the last symbol

	emitBuffered := func(bitsBuf []byte) {
		for _, b := range bitsBuf {
			sink.bits(uint32(b), 1)
		}
	}
	flushEOB := func() {
		if eobrun == 0 {
			return
		}
		r := uint(0)
		for (1 << (r + 1)) <= eobrun {
			r++
		}
		sink.symbol(t, byte(r<<4))
		sink.bits(uint32(eobrun)-1<<r, r)
		eobrun = 0
		emitBuffered(carry)
		carry = carry[:0]
	}

	var absv [64]int32
	for _, blk := range e.ci.Blocks[c] {
		// Point-transformed magnitudes and the index of the last newly
		// significant coefficient (EOB position).
		eob := 0
		for k := scan.Ss; k <= scan.Se; k++ {
			v := blk[zigzag[k]]
			if v < 0 {
				v = -v
			}
			absv[k] = v >> al
			if absv[k] == 1 {
				eob = k
			}
		}
		r := 0
		cur = cur[:0]
		for k := scan.Ss; k <= scan.Se; k++ {
			a := absv[k]
			if a == 0 {
				r++
				continue
			}
			for r > 15 && k <= eob {
				flushEOB()
				sink.symbol(t, 0xF0)
				r -= 16
				emitBuffered(cur)
				cur = cur[:0]
			}
			if a > 1 {
				// Already significant: queue its correction bit.
				cur = append(cur, byte(a&1))
				continue
			}
			// Newly significant coefficient.
			flushEOB()
			sink.symbol(t, byte(r<<4)|1)
			sign := uint32(1)
			if blk[zigzag[k]] < 0 {
				sign = 0
			}
			sink.bits(sign, 1)
			emitBuffered(cur)
			cur = cur[:0]
			r = 0
		}
		if r > 0 || len(cur) > 0 {
			eobrun++
			carry = append(carry, cur...)
			if eobrun == 0x7FFF || len(carry) > maxCorrBits {
				flushEOB()
			}
		}
	}
	flushEOB()
}
