package jpegc

// Standard quantization tables from ITU-T T.81 Annex K, in natural order.
var (
	stdLumaQuant = [64]uint16{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}
	stdChromaQuant = [64]uint16{
		17, 18, 24, 47, 99, 99, 99, 99,
		18, 21, 26, 66, 99, 99, 99, 99,
		24, 26, 56, 99, 99, 99, 99, 99,
		47, 66, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
	}
)

// QuantTables returns the luma and chroma quantization tables for a quality
// setting in [1, 100], scaled with the libjpeg convention (quality 50 is the
// Annex K baseline; higher quality shrinks divisors).
func QuantTables(quality int) (luma, chroma [64]uint16) {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - quality*2
	}
	scaleTable := func(base *[64]uint16) (out [64]uint16) {
		for i, v := range base {
			q := (int(v)*scale + 50) / 100
			if q < 1 {
				q = 1
			}
			if q > 255 {
				q = 255
			}
			out[i] = uint16(q)
		}
		return out
	}
	return scaleTable(&stdLumaQuant), scaleTable(&stdChromaQuant)
}
