package jpegc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomCoeffImage builds a structurally valid CoeffImage with arbitrary
// coefficient contents — the adversarial input for entropy-coding
// round-trips (real images never exercise extreme coefficient patterns like
// saturated high-frequency bands or alternating signs).
func randomCoeffImage(rng *rand.Rand) *CoeffImage {
	ci := &CoeffImage{
		Width:  rng.Intn(56) + 8,
		Height: rng.Intn(56) + 8,
	}
	if rng.Intn(2) == 0 {
		ci.NumComps = 1
	} else {
		ci.NumComps = 3
	}
	luma, chroma := QuantTables(rng.Intn(100) + 1)
	ci.Quant[0], ci.Quant[1] = luma, chroma
	n := ci.BlocksWide() * ci.BlocksHigh()
	for c := 0; c < ci.NumComps; c++ {
		ci.Blocks[c] = make([]Block, n)
		for i := range ci.Blocks[c] {
			blk := &ci.Blocks[c][i]
			switch rng.Intn(4) {
			case 0: // sparse, photograph-like
				for k := 0; k < 6; k++ {
					blk[rng.Intn(64)] = int32(rng.Intn(200) - 100)
				}
			case 1: // dense small values
				for k := range blk {
					blk[k] = int32(rng.Intn(7) - 3)
				}
			case 2: // large magnitudes (the extreme legal categories)
				for k := 0; k < 3; k++ {
					blk[rng.Intn(64)] = int32(rng.Intn(2047) - 1023)
				}
			case 3: // all zero
			}
			// Clamp to the T.81 8-bit ranges (validated by the encoder):
			// DC in [-1024, 1023], AC in [-1023, 1023].
			if blk[0] > 1023 {
				blk[0] = 1023
			}
			if blk[0] < -1024 {
				blk[0] = -1024
			}
		}
	}
	return ci
}

// TestQuickEntropyRoundTrip is the codec's core property: for any valid
// coefficient image, every entropy-coding mode is lossless.
func TestQuickEntropyRoundTrip(t *testing.T) {
	modes := []*Options{
		{},
		{OptimizeHuffman: true},
		{Progressive: true},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ci := randomCoeffImage(rng)
		for _, opts := range modes {
			data, err := EncodeCoeffs(ci, opts)
			if err != nil {
				t.Logf("seed %d: encode: %v", seed, err)
				return false
			}
			got, err := DecodeCoeffs(data)
			if err != nil {
				t.Logf("seed %d: decode: %v", seed, err)
				return false
			}
			if !got.Equal(ci) {
				t.Logf("seed %d: coefficients changed (progressive=%v)", seed, opts.Progressive)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTranscodeIdempotent checks baseline→progressive→baseline is the
// identity on coefficients for arbitrary inputs.
func TestQuickTranscodeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ci := randomCoeffImage(rng)
		base, err := EncodeCoeffs(ci, &Options{OptimizeHuffman: true})
		if err != nil {
			return false
		}
		prog, err := Transcode(base, &Options{Progressive: true})
		if err != nil {
			return false
		}
		back, err := Transcode(prog, &Options{OptimizeHuffman: true})
		if err != nil {
			return false
		}
		got, err := DecodeCoeffs(back)
		if err != nil {
			return false
		}
		return got.Equal(ci)
	}
	cfg := &quick.Config{
		MaxCount: 20,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickScanPrefixesAlwaysDecode: every scan prefix of any progressive
// stream must decode without error — the property PCR correctness rests on.
func TestQuickScanPrefixesAlwaysDecode(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ci := randomCoeffImage(rng)
		data, err := EncodeCoeffs(ci, &Options{Progressive: true})
		if err != nil {
			return false
		}
		idx, err := IndexScans(data)
		if err != nil {
			return false
		}
		for n := 1; n <= len(idx.Scans); n++ {
			trunc, err := TruncateToScan(data, idx, n)
			if err != nil {
				return false
			}
			if _, err := DecodeCoeffs(trunc); err != nil {
				t.Logf("seed %d: prefix %d: %v", seed, n, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 20,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics fuzzes the marker parser with mutated valid
// streams: errors are fine, panics are not.
func TestQuickDecodeNeverPanics(t *testing.T) {
	img := testImage(32, 32, 3)
	valid, err := Encode(img, &Options{Quality: 70, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), valid...)
		for m := 0; m < rng.Intn(8)+1; m++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			data = data[:rng.Intn(len(data))+1]
		}
		// Must not panic (errors are expected and ignored).
		DecodeCoeffs(data)
		IndexScans(data)
	}
}
