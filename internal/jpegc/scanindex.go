package jpegc

import "fmt"

// ScanInfo locates one scan inside a JPEG byte stream. A scan's byte range
// covers the DHT segment(s) immediately preceding its SOS (if any), the SOS
// header, and the entropy-coded data — i.e. everything that must be present
// for a decoder to process the scan.
type ScanInfo struct {
	// Offset is the byte offset where the scan's segment group begins.
	Offset int
	// Length is the number of bytes up to (not including) the next marker
	// that is not part of this scan.
	Length int
	// Spec carries the parsed scan parameters (component count resolved to
	// indices, Ss/Se/Ah/Al).
	Spec ScanSpec
}

// StreamIndex is the result of indexing a JPEG stream: the header byte range
// and every scan's byte range. It is the information the PCR encoder needs
// to rearrange a progressive image into scan groups.
type StreamIndex struct {
	// HeaderLen is the length of the prefix before the first scan (SOI,
	// APPn, DQT, SOF, ...).
	HeaderLen int
	// Scans lists the scans in stream order.
	Scans []ScanInfo
	// Progressive reports whether the stream uses SOF2.
	Progressive bool
	// Width, Height and NumComps are parsed from the SOF header.
	Width, Height, NumComps int
}

// IndexScans walks a JPEG stream's marker structure and reports the byte
// ranges of its header and scans. It performs no entropy decoding, so it is
// fast (one pass, no allocation proportional to pixels); this is the
// "scan the binary representation for markers" step of the PCR encoder.
func IndexScans(data []byte) (*StreamIndex, error) {
	if len(data) < 2 || data[0] != 0xFF || data[1] != mSOI {
		return nil, fmt.Errorf("jpegc: missing SOI")
	}
	idx := &StreamIndex{}
	pos := 2
	groupStart := -1 // start of the pending DHT+SOS group
	compIDs := [3]byte{}

	for pos < len(data) {
		if data[pos] != 0xFF {
			return nil, fmt.Errorf("jpegc: expected marker at offset %d", pos)
		}
		markerPos := pos
		for pos+1 < len(data) && data[pos+1] == 0xFF {
			pos++
		}
		if pos+1 >= len(data) {
			return nil, ErrTruncated
		}
		marker := data[pos+1]
		pos += 2

		switch marker {
		case mEOI:
			return idx, nil
		case mDHT:
			if groupStart < 0 {
				groupStart = markerPos
			}
		case mSOS:
			if groupStart < 0 {
				groupStart = markerPos
			}
		}

		if marker == mEOI || (marker >= mRST0 && marker <= mRST0+7) {
			continue
		}
		if pos+2 > len(data) {
			return nil, ErrTruncated
		}
		n := int(data[pos])<<8 | int(data[pos+1])
		if n < 2 || pos+n > len(data) {
			return nil, ErrTruncated
		}
		payload := data[pos+2 : pos+n]
		pos += n

		switch marker {
		case mSOF0, mSOF2:
			idx.Progressive = marker == mSOF2
			if len(payload) < 6 {
				return nil, fmt.Errorf("jpegc: short SOF")
			}
			idx.Height = int(payload[1])<<8 | int(payload[2])
			idx.Width = int(payload[3])<<8 | int(payload[4])
			idx.NumComps = int(payload[5])
			if idx.NumComps < 1 || idx.NumComps > 3 || len(payload) < 6+3*idx.NumComps {
				return nil, fmt.Errorf("jpegc: bad SOF component list")
			}
			for c := 0; c < idx.NumComps; c++ {
				compIDs[c] = payload[6+3*c]
			}
		case mSOS:
			if idx.HeaderLen == 0 {
				idx.HeaderLen = groupStart
			}
			spec, err := parseSOSSpec(payload, compIDs[:idx.NumComps])
			if err != nil {
				return nil, err
			}
			// Entropy-coded data runs until the next marker.
			_, consumed := destuff(data[pos:])
			pos += consumed
			idx.Scans = append(idx.Scans, ScanInfo{
				Offset: groupStart,
				Length: pos - groupStart,
				Spec:   spec,
			})
			groupStart = -1
		}
	}
	return nil, ErrTruncated
}

func parseSOSSpec(p []byte, compIDs []byte) (ScanSpec, error) {
	var spec ScanSpec
	if len(p) < 4 {
		return spec, fmt.Errorf("jpegc: short SOS")
	}
	ns := int(p[0])
	if ns < 1 || ns > 3 || len(p) != 1+2*ns+3 {
		return spec, fmt.Errorf("jpegc: bad SOS header")
	}
	for i := 0; i < ns; i++ {
		id := p[1+2*i]
		found := -1
		for c, cid := range compIDs {
			if cid == id {
				found = c
			}
		}
		if found < 0 {
			return spec, fmt.Errorf("jpegc: scan references unknown component %d", id)
		}
		spec.Comps = append(spec.Comps, found)
	}
	spec.Ss = int(p[1+2*ns])
	spec.Se = int(p[2+2*ns])
	spec.Ah = int(p[3+2*ns] >> 4)
	spec.Al = int(p[3+2*ns] & 0x0F)
	return spec, nil
}

// Transcode losslessly converts a JPEG stream between baseline and
// progressive representations: it entropy-decodes to coefficients and
// re-encodes with the requested options, never touching the DCT domain.
// This is the role jpegtran plays in the paper's PCR encoder.
func Transcode(data []byte, opts *Options) ([]byte, error) {
	ci, err := DecodeCoeffs(data)
	if err != nil {
		return nil, err
	}
	return EncodeCoeffs(ci, opts)
}

// TruncateToScan returns a decodable stream containing the header, scans
// [0, n) of the indexed stream, and a terminating EOI marker. With n equal
// to the total scan count this reproduces the full image; smaller n yields
// a progressively coarser reconstruction. This mirrors how a PCR reader
// materializes an image from a scan-group prefix.
func TruncateToScan(data []byte, idx *StreamIndex, n int) ([]byte, error) {
	if n < 1 || n > len(idx.Scans) {
		return nil, fmt.Errorf("jpegc: scan count %d out of range [1, %d]", n, len(idx.Scans))
	}
	last := idx.Scans[n-1]
	end := last.Offset + last.Length
	out := make([]byte, 0, end+2)
	out = append(out, data[:end]...)
	out = append(out, 0xFF, mEOI)
	return out, nil
}
