package jpegc

import (
	"bytes"
	stdjpeg "image/jpeg"
	"testing"
)

func opts420() map[string]*Options {
	return map[string]*Options{
		"baseline-420":           {Quality: 80, Subsample420: true},
		"baseline-optimized-420": {Quality: 80, Subsample420: true, OptimizeHuffman: true},
		"progressive-420":        {Quality: 80, Subsample420: true, Progressive: true},
	}
}

func TestCoeffRoundTrip420(t *testing.T) {
	// Odd dimensions stress both the chroma half-resolution rounding and
	// the MCU padding path.
	for _, dims := range [][2]int{{64, 64}, {67, 45}, {33, 17}, {16, 48}} {
		img := testImage(dims[0], dims[1], 13)
		for name, o := range opts420() {
			t.Run(name, func(t *testing.T) {
				ci, err := Analyze(img, o)
				if err != nil {
					t.Fatal(err)
				}
				if !ci.Subsample420 {
					t.Fatal("Analyze ignored Subsample420")
				}
				if len(ci.Blocks[1]) >= len(ci.Blocks[0]) {
					t.Fatalf("chroma has %d blocks vs luma %d; expected ~1/4", len(ci.Blocks[1]), len(ci.Blocks[0]))
				}
				data, err := EncodeCoeffs(ci, o)
				if err != nil {
					t.Fatal(err)
				}
				got, err := DecodeCoeffs(data)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(ci) {
					t.Fatalf("%dx%d: coefficients changed across encode/decode", dims[0], dims[1])
				}
			})
		}
	}
}

func TestStdlibInterop420(t *testing.T) {
	img := testImage(66, 50, 23) // force MCU padding on both axes
	for name, o := range opts420() {
		t.Run(name, func(t *testing.T) {
			data, err := Encode(img, o)
			if err != nil {
				t.Fatal(err)
			}
			stdImg, err := stdjpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stdlib refused our 4:2:0 stream: %v", err)
			}
			ourImg, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if diff := maxPixelDiff(t, stdImg, ourImg); diff > 2 {
				t.Errorf("max pixel difference vs stdlib = %d", diff)
			}
		})
	}
}

// TestDecodeStdlibEncoded verifies we can read JPEG produced by the
// standard library, which always writes 4:2:0 for color at default
// quality — i.e. the codec handles real-world input, not just its own.
func TestDecodeStdlibEncoded(t *testing.T) {
	img := testImage(70, 54, 33)
	var buf bytes.Buffer
	if err := stdjpeg.Encode(&buf, img, &stdjpeg.Options{Quality: 85}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding stdlib-encoded JPEG: %v", err)
	}
	ref, err := stdjpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxPixelDiff(t, ref, got); diff > 2 {
		t.Errorf("max pixel difference vs stdlib's own decode = %d", diff)
	}
}

func TestTranscodeStdlibTo420Progressive(t *testing.T) {
	// The full real-world PCR path: a stdlib-encoded (4:2:0 baseline) JPEG
	// losslessly transcoded to progressive, indexed, truncated, decoded.
	img := testImage(64, 64, 43)
	var buf bytes.Buffer
	if err := stdjpeg.Encode(&buf, img, &stdjpeg.Options{Quality: 80}); err != nil {
		t.Fatal(err)
	}
	prog, err := Transcode(buf.Bytes(), &Options{Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	ciBase, err := DecodeCoeffs(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ciProg, err := DecodeCoeffs(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ciProg.Equal(ciBase) {
		t.Fatal("transcode of stdlib 4:2:0 stream is not lossless")
	}
	idx, err := IndexScans(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Scans) != 10 {
		t.Fatalf("scan count = %d", len(idx.Scans))
	}
	for n := 1; n <= 10; n++ {
		trunc, err := TruncateToScan(prog, idx, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(trunc); err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		if _, err := stdjpeg.Decode(bytes.NewReader(trunc)); err != nil {
			t.Fatalf("prefix %d: stdlib: %v", n, err)
		}
	}
}

func TestTruncatedPrefixes420QualityMonotone(t *testing.T) {
	img := testImage(64, 64, 53)
	prog, err := Encode(img, &Options{Quality: 85, Progressive: true, Subsample420: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := IndexScans(prog)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(prog)
	if err != nil {
		t.Fatal(err)
	}
	prevErr := 1e9
	for n := 1; n <= len(idx.Scans); n++ {
		trunc, err := TruncateToScan(prog, idx, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(trunc)
		if err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		e := meanAbsErr(got, full)
		if n == len(idx.Scans) && e != 0 {
			t.Errorf("full prefix differs from full decode (MAE %v)", e)
		}
		if e > prevErr+3 {
			t.Errorf("prefix %d: MAE %v worse than previous %v", n, e, prevErr)
		}
		if e < prevErr {
			prevErr = e
		}
	}
}

func Test420SmallerThan444(t *testing.T) {
	img := testImage(96, 96, 63)
	full, err := Encode(img, &Options{Quality: 80, OptimizeHuffman: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Encode(img, &Options{Quality: 80, OptimizeHuffman: true, Subsample420: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) >= len(full) {
		t.Errorf("4:2:0 (%d bytes) not smaller than 4:4:4 (%d bytes)", len(sub), len(full))
	}
}

func TestGray420Rejected(t *testing.T) {
	ci := &CoeffImage{Width: 8, Height: 8, NumComps: 1, Subsample420: true}
	ci.Blocks[0] = make([]Block, 1)
	if _, err := EncodeCoeffs(ci, nil); err == nil {
		t.Error("grayscale 4:2:0 accepted")
	}
}
