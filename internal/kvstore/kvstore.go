// Package kvstore is an embedded, log-structured key-value store in the
// bitcask style: an append-only segment log on disk plus a complete
// in-memory index. It stands in for the SQLite/RocksDB metadata databases
// the paper's PCR implementation supports (§3.2) — the PCR encoder stores
// per-record scan-group offsets and per-sample labels in it, the loader
// reads them back, and the serving layer exports the same index to remote
// readers.
//
// Durability model: Put/Delete append a CRC32C-framed record to the active
// segment. On reopen the store replays all segments; a torn record at the
// tail of the newest segment (a crash mid-append) is discarded, while
// corruption anywhere else is reported as an error.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrCorrupt is returned when a non-tail record fails its checksum.
//
//lint:ignore sentinelwrap kvstore predates and must not import the core facade; core.mapKVErr wraps this into core.ErrCorrupt at the boundary
var ErrCorrupt = errors.New("kvstore: corrupt segment")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize = 4 + 1 + 4 + 4 // crc, flags, keylen, vallen
	flagDelete = 1

	// DefaultMaxSegmentBytes rotates the active segment once it exceeds
	// this size, bounding compaction unit cost.
	DefaultMaxSegmentBytes = 4 << 20
)

// Options configure a store.
type Options struct {
	// MaxSegmentBytes overrides the segment rotation threshold.
	MaxSegmentBytes int64
	// SyncEvery forces an fsync after every write when true.
	SyncEvery bool
}

func (o *Options) maxSegment() int64 {
	if o == nil || o.MaxSegmentBytes <= 0 {
		return DefaultMaxSegmentBytes
	}
	return o.MaxSegmentBytes
}

type entryLoc struct {
	seg    int
	offset int64
	valLen int
}

// Store is a single-process embedded KV store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	index   map[string]entryLoc
	readers map[int]*os.File
	active  *os.File
	activeN int
	size    int64 // bytes written to the active segment
	closed  bool
	// garbage counts dead bytes across sealed segments, steering Compact.
	garbage int64
}

func segName(n int) string { return fmt.Sprintf("%06d.seg", n) }

// Open opens (or creates) a store in dir.
func Open(dir string, opts *Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	s := &Store{
		dir:     dir,
		opts:    o,
		index:   make(map[string]entryLoc),
		readers: make(map[int]*os.File),
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, n := range segs {
		last := i == len(segs)-1
		if err := s.replaySegment(n, last); err != nil {
			s.Close()
			return nil, err
		}
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	if err := s.openActive(next); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "%06d.seg", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func (s *Store) openActive(n int) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(n)), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	s.active = f
	s.activeN = n
	s.size = 0
	r, err := os.Open(filepath.Join(s.dir, segName(n)))
	if err != nil {
		f.Close()
		return fmt.Errorf("kvstore: %w", err)
	}
	s.readers[n] = r
	return nil
}

// replaySegment rebuilds index entries from segment n. A short or corrupt
// record at the tail of the final segment is tolerated (crash recovery) by
// truncating the file there; elsewhere it is an error.
func (s *Store) replaySegment(n int, last bool) error {
	path := filepath.Join(s.dir, segName(n))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	off := int64(0)
	for int(off) < len(data) {
		rec := data[off:]
		key, val, del, recLen, ok := parseRecord(rec)
		if !ok {
			if last {
				// Torn tail: truncate and continue from here.
				if err := os.Truncate(path, off); err != nil {
					return fmt.Errorf("kvstore: truncating torn tail: %w", err)
				}
				break
			}
			return fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, n, off)
		}
		if del {
			if old, ok := s.index[string(key)]; ok {
				s.garbage += int64(headerSize + len(key) + old.valLen)
			}
			delete(s.index, string(key))
			s.garbage += int64(recLen)
		} else {
			if old, ok := s.index[string(key)]; ok {
				s.garbage += int64(headerSize + len(key) + old.valLen)
			}
			s.index[string(key)] = entryLoc{
				seg:    n,
				offset: off + int64(headerSize+len(key)),
				valLen: len(val),
			}
		}
		off += int64(recLen)
	}
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	s.readers[n] = r
	return nil
}

// parseRecord decodes one record from the front of b.
func parseRecord(b []byte) (key, val []byte, del bool, recLen int, ok bool) {
	if len(b) < headerSize {
		return nil, nil, false, 0, false
	}
	crc := binary.LittleEndian.Uint32(b[0:4])
	flags := b[4]
	kl := int(binary.LittleEndian.Uint32(b[5:9]))
	vl := int(binary.LittleEndian.Uint32(b[9:13]))
	recLen = headerSize + kl + vl
	if kl < 0 || vl < 0 || len(b) < recLen {
		return nil, nil, false, 0, false
	}
	if crc32.Checksum(b[4:recLen], castagnoli) != crc {
		return nil, nil, false, 0, false
	}
	key = b[headerSize : headerSize+kl]
	val = b[headerSize+kl : recLen]
	return key, val, flags&flagDelete != 0, recLen, true
}

func appendRecord(dst []byte, key, val []byte, del bool) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	flags := byte(0)
	if del {
		flags = flagDelete
	}
	dst = append(dst, flags)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint32(lenBuf[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(lenBuf[4:8], uint32(len(val)))
	dst = append(dst, lenBuf[:]...)
	dst = append(dst, key...)
	dst = append(dst, val...)
	crc := crc32.Checksum(dst[start+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start:start+4], crc)
	return dst
}

// Put stores val under key, overwriting any previous value.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store closed")
	}
	rec := appendRecord(nil, key, val, false)
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	if s.opts.SyncEvery {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("kvstore: %w", err)
		}
	}
	if old, ok := s.index[string(key)]; ok {
		s.garbage += int64(headerSize + len(key) + old.valLen)
	}
	s.index[string(key)] = entryLoc{
		seg:    s.activeN,
		offset: s.size + int64(headerSize+len(key)),
		valLen: len(val),
	}
	s.size += int64(len(rec))
	if s.size >= s.opts.maxSegment() {
		return s.rotateLocked()
	}
	return nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store closed")
	}
	if _, ok := s.index[string(key)]; !ok {
		return nil
	}
	rec := appendRecord(nil, key, nil, true)
	if _, err := s.active.Write(rec); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	old := s.index[string(key)]
	s.garbage += int64(headerSize+len(key)+old.valLen) + int64(len(rec))
	delete(s.index, string(key))
	s.size += int64(len(rec))
	return nil
}

func (s *Store) rotateLocked() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	return s.openActive(s.activeN + 1)
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errors.New("kvstore: store closed")
	}
	loc, ok := s.index[string(key)]
	if !ok {
		return nil, ErrNotFound
	}
	r := s.readers[loc.seg]
	if r == nil {
		return nil, fmt.Errorf("kvstore: missing reader for segment %d", loc.seg)
	}
	val := make([]byte, loc.valLen)
	if _, err := r.ReadAt(val, loc.offset); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	return val, nil
}

// Has reports whether key exists.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[string(key)]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns all live keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ForEach calls fn for every live key/value pair in sorted key order,
// stopping at the first error.
func (s *Store) ForEach(fn func(key string, val []byte) error) error {
	for _, k := range s.Keys() {
		v, err := s.Get([]byte(k))
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // deleted concurrently
			}
			return err
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// GarbageBytes estimates the dead bytes reclaimable by Compact.
func (s *Store) GarbageBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.garbage
}

// Compact rewrites all live entries into fresh segments and removes the old
// ones, reclaiming space from overwrites and deletes.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store closed")
	}
	// Snapshot the live set.
	type kv struct {
		k string
		v []byte
	}
	live := make([]kv, 0, len(s.index))
	for k, loc := range s.index {
		r := s.readers[loc.seg]
		val := make([]byte, loc.valLen)
		if _, err := r.ReadAt(val, loc.offset); err != nil {
			return fmt.Errorf("kvstore: compact read: %w", err)
		}
		live = append(live, kv{k, val})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].k < live[j].k })

	// Write into new segments numbered after the current active one.
	oldSegs := make([]int, 0, len(s.readers))
	for n := range s.readers {
		oldSegs = append(oldSegs, n)
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	next := s.activeN + 1
	if err := s.openActive(next); err != nil {
		return err
	}
	newIndex := make(map[string]entryLoc, len(live))
	for _, e := range live {
		rec := appendRecord(nil, []byte(e.k), e.v, false)
		if _, err := s.active.Write(rec); err != nil {
			return fmt.Errorf("kvstore: compact write: %w", err)
		}
		newIndex[e.k] = entryLoc{
			seg:    s.activeN,
			offset: s.size + int64(headerSize+len(e.k)),
			valLen: len(e.v),
		}
		s.size += int64(len(rec))
		if s.size >= s.opts.maxSegment() {
			if err := s.rotateLocked(); err != nil {
				return err
			}
			// rotateLocked reset s.size; subsequent entries land in the new
			// segment.
		}
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	s.index = newIndex
	s.garbage = 0
	// Drop the old segments.
	for _, n := range oldSegs {
		if n == s.activeN {
			continue
		}
		if r := s.readers[n]; r != nil && !isLive(newIndex, n) {
			r.Close()
			delete(s.readers, n)
			if err := os.Remove(filepath.Join(s.dir, segName(n))); err != nil {
				return fmt.Errorf("kvstore: removing segment %d: %w", n, err)
			}
		}
	}
	return nil
}

func isLive(index map[string]entryLoc, seg int) bool {
	for _, loc := range index {
		if loc.seg == seg {
			return true
		}
	}
	return false
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store closed")
	}
	return s.active.Sync()
}

// Close releases all file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.active.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, r := range s.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.readers = nil
	return first
}
