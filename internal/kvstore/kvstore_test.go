package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTemp(t *testing.T, opts *Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t, nil)
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Errorf("overwrite lost: %q", v)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key returned err %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	// Deleting a missing key is a no-op.
	if err := s.Delete([]byte("nope")); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyValuesAndKeys(t *testing.T) {
	s, _ := openTemp(t, nil)
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("empty"))
	if err != nil || len(v) != 0 {
		t.Errorf("empty value: %q, %v", v, err)
	}
	if err := s.Put([]byte{}, []byte("keyless")); err != nil {
		t.Fatal(err)
	}
	v, err = s.Get([]byte{})
	if err != nil || string(v) != "keyless" {
		t.Errorf("empty key: %q, %v", v, err)
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%03d", i%100)
		v := fmt.Sprintf("val-%d", i)
		want[k] = v
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i += 3 {
		k := fmt.Sprintf("key-%03d", i)
		delete(want, k)
		if err := s.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("key %s: got %q, %v; want %q", k, got, err, v)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	s, dir := openTemp(t, &Options{MaxSegmentBytes: 256})
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("expected multiple segments, got %d", len(segs))
	}
	// Old-segment reads must still work.
	if _, err := s.Get([]byte("k00")); err != nil {
		t.Errorf("read from sealed segment: %v", err)
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Close()

	// Simulate a crash mid-append: append half a record to the active
	// segment.
	segs, _ := listSegments(dir)
	last := filepath.Join(dir, segName(segs[len(segs)-1]))
	// Find the segment that actually holds data (the first); corrupt its
	// tail by appending garbage shorter than a header.
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD})
	f.Close()

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if v, err := s2.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Errorf("a = %q, %v", v, err)
	}
	if v, err := s2.Get([]byte("b")); err != nil || string(v) != "2" {
		t.Errorf("b = %q, %v", v, err)
	}
}

func TestCorruptionInSealedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, &Options{MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), make([]byte, 32))
	}
	s.Close()
	// Flip a byte in the middle of the first (sealed) segment.
	segs, _ := listSegments(dir)
	first := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(first)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(first, data, 0o644)

	if _, err := Open(dir, nil); err == nil {
		t.Error("corrupt sealed segment accepted")
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	s, dir := openTemp(t, &Options{MaxSegmentBytes: 1024})
	// Heavy overwrite workload.
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i%10)
		if err := s.Put([]byte(k), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := dirSize(t, dir)
	if s.GarbageBytes() == 0 {
		t.Error("no garbage tracked despite overwrites")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := dirSize(t, dir)
	if after >= before/10 {
		t.Errorf("compaction reclaimed too little: %d -> %d bytes", before, after)
	}
	// All live keys must survive.
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Errorf("k%d lost after compact: %v", i, err)
		}
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, &Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i%20)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Errorf("Len after reopen = %d, want 20", s2.Len())
	}
	v, err := s2.Get([]byte("k19"))
	if err != nil || string(v) != "v199" {
		t.Errorf("k19 = %q, %v", v, err)
	}
}

func TestForEachSortedOrder(t *testing.T) {
	s, _ := openTemp(t, nil)
	for _, k := range []string{"zebra", "apple", "mango"} {
		s.Put([]byte(k), []byte(k))
	}
	var got []string
	err := s.ForEach(func(k string, v []byte) error {
		got = append(got, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"apple", "mango", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t, &Options{MaxSegmentBytes: 4096})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, rng.Intn(50)))
				switch rng.Intn(3) {
				case 0:
					if err := s.Put(k, []byte(fmt.Sprintf("%d", i))); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := s.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				case 2:
					if err := s.Delete(k); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if _, err := s.Get([]byte("k")); err == nil {
		t.Error("Get on closed store succeeded")
	}
	// Double close is fine.
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestCompactUnderConcurrentReads runs repeated compactions while reader
// goroutines hammer Get and ForEach. Values are keyed so a read that
// observes a torn or foreign value fails, readers must never see
// ErrNotFound for keys that are never deleted, and after the dust settles
// every key must hold its final version.
func TestCompactUnderConcurrentReads(t *testing.T) {
	s, _ := openTemp(t, &Options{MaxSegmentBytes: 2048})
	const keys = 32
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }
	val := func(i, version int) []byte { return []byte(fmt.Sprintf("key-%03d-v%06d", i, version)) }
	for i := 0; i < keys; i++ {
		if err := s.Put(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(4) == 0 {
					// Full iteration concurrent with compaction.
					err := s.ForEach(func(k string, v []byte) error {
						if !strings.HasPrefix(string(v), k+"-v") {
							return fmt.Errorf("ForEach: key %q has foreign value %q", k, v)
						}
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
					continue
				}
				i := rng.Intn(keys)
				v, err := s.Get(key(i))
				if err != nil {
					errs <- fmt.Errorf("Get(%s): %w", key(i), err)
					return
				}
				if !strings.HasPrefix(string(v), string(key(i))+"-v") {
					errs <- fmt.Errorf("Get(%s) = %q: torn or foreign value", key(i), v)
					return
				}
			}
		}(g)
	}

	// Writer + compactor: overwrite every key, then compact, repeatedly.
	for round := 1; round <= 5; round++ {
		for i := 0; i < keys; i++ {
			if err := s.Put(key(i), val(i, round)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles every key holds the final version.
	for i := 0; i < keys; i++ {
		v, err := s.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != string(val(i, 5)) {
			t.Fatalf("key %d = %q after compactions, want %q", i, v, val(i, 5))
		}
	}
}
