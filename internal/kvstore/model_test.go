package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestModelBasedRandomOps drives the store with random operation sequences
// and checks it against a plain map model, including across compactions and
// reopens — the classic linearizable-single-client property test.
func TestModelBasedRandomOps(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 977))
			dir := t.TempDir()
			s, err := Open(dir, &Options{MaxSegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()

			model := map[string][]byte{}
			key := func() []byte {
				return []byte(fmt.Sprintf("key-%02d", rng.Intn(30)))
			}

			for op := 0; op < 600; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // put
					k := key()
					v := make([]byte, rng.Intn(100))
					rng.Read(v)
					if err := s.Put(k, v); err != nil {
						t.Fatalf("op %d: put: %v", op, err)
					}
					model[string(k)] = append([]byte(nil), v...)
				case 4, 5: // delete
					k := key()
					if err := s.Delete(k); err != nil {
						t.Fatalf("op %d: delete: %v", op, err)
					}
					delete(model, string(k))
				case 6, 7: // get
					k := key()
					got, err := s.Get(k)
					want, ok := model[string(k)]
					switch {
					case !ok && !errors.Is(err, ErrNotFound):
						t.Fatalf("op %d: get missing key: err=%v", op, err)
					case ok && err != nil:
						t.Fatalf("op %d: get present key: %v", op, err)
					case ok && !bytes.Equal(got, want):
						t.Fatalf("op %d: value mismatch", op)
					}
				case 8: // compact occasionally
					if rng.Intn(4) == 0 {
						if err := s.Compact(); err != nil {
							t.Fatalf("op %d: compact: %v", op, err)
						}
					}
				case 9: // close + reopen occasionally
					if rng.Intn(4) == 0 {
						if err := s.Close(); err != nil {
							t.Fatalf("op %d: close: %v", op, err)
						}
						s, err = Open(dir, &Options{MaxSegmentBytes: 512})
						if err != nil {
							t.Fatalf("op %d: reopen: %v", op, err)
						}
					}
				}
			}

			// Final full-state comparison.
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
			}
			for k, want := range model {
				got, err := s.Get([]byte(k))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("final: key %s mismatch (%v)", k, err)
				}
			}
			// And once more after a final reopen.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Len() != len(model) {
				t.Fatalf("after reopen: Len = %d, model has %d", s2.Len(), len(model))
			}
			for k, want := range model {
				got, err := s2.Get([]byte(k))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("after reopen: key %s mismatch (%v)", k, err)
				}
			}
			s = s2
		})
	}
}
