// Package analysis is the minimal analyzer framework pcrlint is built on.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer is a named check with a Run function over a Pass carrying
// one type-checked package — so the repo's custom passes read like
// standard vet passes and could be ported onto the upstream framework
// mechanically. It is self-contained on the standard library because the
// invariants it enforces (see the analyzers under internal/lint/...) are
// part of this repo's build and must check out of a clean checkout with
// nothing but the Go toolchain.
//
// Suppression: a finding can be acknowledged in place with a directive
// comment on the reported line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory — an unexplained opt-out is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check: a name findings are reported (and
// suppressed) under, a short doc string, and the Run function applied to
// each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore Name reason" directives. It must look like a Go
	// identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces and why the repo needs it.
	Doc string
	// Run reports the analyzer's findings for one package via
	// pass.Report/Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records the type and object resolution of Files.
	TypesInfo *types.Info

	analyzer *Analyzer
	diags    []Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, message string) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Analyzer: p.analyzer.Name, Message: message})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of expression e, or nil if not recorded.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by identifier id, consulting both
// definitions and uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Run applies one analyzer to one package and returns its findings with
// "//lint:ignore" suppressions already filtered out, sorted by position.
// Analyzer errors (not findings) abort the run.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		analyzer:  a,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := suppress(a.Name, fset, files, pass.diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreDirective is the prefix of a suppression comment.
const ignoreDirective = "lint:ignore"

// suppress drops diagnostics acknowledged by a "//lint:ignore <name>
// <reason>" directive on the same line or the line directly above.
func suppress(name string, fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	// file → set of lines a directive for this analyzer covers.
	covered := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				// Directive must name this analyzer (or "all") and carry a
				// reason; a bare name suppresses nothing.
				if len(fields) < 2 || (fields[0] != name && fields[0] != "all") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := covered[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					covered[pos.Filename] = m
				}
				// The directive covers its own line (end-of-line form) and
				// the next line (line-above form).
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if covered[pos.Filename][pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
