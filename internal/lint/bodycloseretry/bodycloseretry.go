// Package bodycloseretry enforces the repo's HTTP response hygiene in
// and around retry loops.
//
// The serve.Client / ClusterClient read path retries, hedges, and fails
// over: the same function can hold several *http.Response values in
// flight, and a body left open (or closed undrained) leaks a connection
// per retry — precisely when the server is struggling and connection
// churn hurts the most. The analyzer checks every *http.Response
// obtained from a call:
//
//   - the response must be resolved on some path: its Body closed,
//     handed to another function (a drain helper, or any callee that
//     takes the response or its body — ownership transfers), or
//     returned to the caller;
//   - a response acquired inside a for loop must not rely on defer for
//     cleanup: defers run at function exit, so a retry loop's bodies
//     all stay open until the last attempt returns;
//   - a direct (non-deferred) Body.Close with no earlier read or drain
//     of the body — the early `continue`/`return` path after a bad
//     status — wastes the connection: the transport can only reuse it
//     once the body is drained. Read or drain (io.Copy(io.Discard, ...)
//     or the package's drain helper) before closing.
//
// A deliberate exception is opted out with
// `//lint:ignore bodycloseretry <why>`.
package bodycloseretry

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "bodycloseretry",
	Doc:  "*http.Response bodies must be drained and closed on every path, without defer inside retry loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
		// Closures are separate ownership domains: a response acquired
		// in a goroutine's body must be resolved there.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

// A respVar tracks one *http.Response-typed variable through a function
// body.
type respVar struct {
	obj     *types.Var
	pos     token.Pos // acquisition site
	loops   []ast.Node
	closes  []useSite // v.Body.Close() calls
	reads   []useSite // v.Body consumed (ReadAll, Copy, decoder, ...)
	handoff []useSite // v or v.Body passed to another function
	ret     bool      // v or v.Body returned
}

type useSite struct {
	pos      token.Pos
	deferred bool
	loops    []ast.Node
}

// checkFunc analyzes one function body (closures excluded — they are
// checked as their own functions).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	vars := make(map[*types.Var]*respVar)

	// Pass 1: find acquisitions — assignments whose RHS call yields an
	// *http.Response — with their enclosing loops.
	var walk func(n ast.Node, loops []ast.Node, deferred bool)
	record := func(id *ast.Ident, loops []ast.Node) {
		obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			if obj, ok = pass.TypesInfo.Uses[id].(*types.Var); !ok {
				return
			}
		}
		if !isResponsePtr(obj.Type()) {
			return
		}
		if _, seen := vars[obj]; !seen {
			vars[obj] = &respVar{obj: obj, pos: id.Pos(), loops: loops}
		}
	}
	walk = func(n ast.Node, loops []ast.Node, deferred bool) {
		lintutil.WalkSkipFuncLits(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m != n {
					walk(m, append(append([]ast.Node{}, loops...), m), deferred)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					walk(m, append(append([]ast.Node{}, loops...), m), deferred)
					return false
				}
			case *ast.AssignStmt:
				if callYieldsResponse(pass, m.Rhs) {
					for _, lhs := range m.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							record(id, loops)
						}
					}
				}
			}
			return true
		})
	}
	walk(body, nil, false)
	if len(vars) == 0 {
		return
	}

	// Pass 2: classify every use of each response variable.
	var uses func(n ast.Node, loops []ast.Node, deferred bool)
	uses = func(n ast.Node, loops []ast.Node, deferred bool) {
		lintutil.WalkSkipFuncLits(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m != n {
					uses(m, append(append([]ast.Node{}, loops...), m), deferred)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					uses(m, append(append([]ast.Node{}, loops...), m), deferred)
					return false
				}
			case *ast.DeferStmt:
				uses(m.Call, loops, true)
				return false
			case *ast.CallExpr:
				classifyCall(pass, vars, m, loops, deferred)
			case *ast.ReturnStmt:
				for _, res := range m.Results {
					if rv := respOf(pass, vars, res); rv != nil {
						rv.ret = true
					}
					if rv := respBodyOf(pass, vars, res); rv != nil {
						rv.ret = true
					}
				}
			}
			return true
		})
	}
	uses(body, nil, false)

	for _, rv := range vars {
		report(pass, rv)
	}
}

func report(pass *analysis.Pass, rv *respVar) {
	resolved := rv.ret || len(rv.closes) > 0 || len(rv.handoff) > 0
	if !resolved {
		pass.Reportf(rv.pos,
			"%s's Body is never closed (and the response is neither returned nor handed off); drain and close it on every path", rv.obj.Name())
		return
	}
	// Acquired in a loop: some non-deferred close/handoff must live in
	// that same loop, or every iteration stacks an open body until the
	// function returns.
	if len(rv.loops) > 0 {
		loop := rv.loops[len(rv.loops)-1]
		ok := rv.ret // returning from inside the loop hands the body off
		for _, sites := range [][]useSite{rv.closes, rv.handoff} {
			for _, s := range sites {
				if !s.deferred && containsLoop(s.loops, loop) {
					ok = true
				}
			}
		}
		if !ok {
			pass.Reportf(rv.pos,
				"%s is acquired inside a retry loop but only resolved by defer, which runs at function exit; close or hand it off before the next iteration", rv.obj.Name())
		}
	}
	// Direct closes need a preceding drain/read, or the connection is
	// torn down instead of reused.
	for _, cl := range rv.closes {
		if cl.deferred {
			continue
		}
		drained := false
		for _, rd := range append(rv.reads, rv.handoff...) {
			if rd.pos < cl.pos {
				drained = true
			}
		}
		if !drained {
			pass.Reportf(cl.pos,
				"%s.Body is closed without being drained; read it or io.Copy(io.Discard, ...) first so the connection can be reused", rv.obj.Name())
		}
	}
}

// classifyCall files one call expression under close/read/handoff for
// any response variable it touches.
func classifyCall(pass *analysis.Pass, vars map[*types.Var]*respVar, call *ast.CallExpr, loops []ast.Node, deferred bool) {
	site := useSite{pos: call.Pos(), deferred: deferred, loops: loops}
	// v.Body.Close()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if rv := respBodyOf(pass, vars, sel.X); rv != nil {
			rv.closes = append(rv.closes, site)
			return
		}
	}
	// v.Body.Read(...) etc. — a method call on the body is a read.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if rv := respBodyOf(pass, vars, sel.X); rv != nil {
			rv.reads = append(rv.reads, site)
			return
		}
	}
	// v or v.Body as an argument: reading (io.ReadAll(v.Body),
	// json.NewDecoder(v.Body), ...) and ownership transfer
	// (drainClose(v), handle(v)) are both "somebody consumes it".
	for _, arg := range call.Args {
		if rv := respBodyOf(pass, vars, arg); rv != nil {
			rv.reads = append(rv.reads, site)
			rv.handoff = append(rv.handoff, site)
		} else if rv := respOf(pass, vars, arg); rv != nil {
			rv.handoff = append(rv.handoff, site)
		}
	}
}

// respOf resolves an expression to a tracked response variable.
func respOf(pass *analysis.Pass, vars map[*types.Var]*respVar, e ast.Expr) *respVar {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	return vars[obj]
}

// respBodyOf resolves v.Body to v's tracked response variable.
func respBodyOf(pass *analysis.Pass, vars map[*types.Var]*respVar, e ast.Expr) *respVar {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return nil
	}
	return respOf(pass, vars, sel.X)
}

func callYieldsResponse(pass *analysis.Pass, rhs []ast.Expr) bool {
	for _, e := range rhs {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			continue
		}
		switch t := pass.TypeOf(call).(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if isResponsePtr(t.At(i).Type()) {
					return true
				}
			}
		default:
			if isResponsePtr(t) {
				return true
			}
		}
	}
	return false
}

func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && lintutil.IsNamed(p.Elem(), "net/http", "Response")
}

// containsLoop reports whether the site's loop stack includes loop.
func containsLoop(stack []ast.Node, loop ast.Node) bool {
	for _, l := range stack {
		if l == loop {
			return true
		}
	}
	return false
}
