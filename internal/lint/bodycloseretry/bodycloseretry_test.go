package bodycloseretry_test

import (
	"testing"

	"repro/internal/lint/bodycloseretry"
	"repro/internal/lint/linttest"
)

func TestBodycloseretry(t *testing.T) {
	linttest.Run(t, bodycloseretry.Analyzer, "testdata/src/httpfix")
}
