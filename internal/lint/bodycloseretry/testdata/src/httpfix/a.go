package httpfix

import (
	"io"
	"net/http"
)

func leak(url string) (int, error) {
	resp, err := http.Get(url) // want `never closed`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func deferInLoop(urls []string) error {
	for _, u := range urls {
		resp, err := http.Get(u) // want `only resolved by defer`
		if err != nil {
			return err
		}
		defer resp.Body.Close()
	}
	return nil
}

func closeUndrained(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close() // want `without being drained`
		return nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}
