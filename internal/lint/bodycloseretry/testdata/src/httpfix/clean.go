package httpfix

import (
	"errors"
	"io"
	"net/http"
)

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func retry(urls []string) ([]byte, error) {
	for _, u := range urls {
		resp, err := http.Get(u)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			drain(resp.Body)
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		return b, nil
	}
	return nil, errors.New("all attempts failed")
}

// handOff returns the response: the caller owns the body now.
func handOff(url string) (*http.Response, error) {
	return http.Get(url)
}

func handOffVar(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// drain consumes and closes a body so its connection can be reused.
func drain(body io.ReadCloser) {
	io.Copy(io.Discard, body)
	body.Close()
}
