package httpfix

import "net/http"

var last *http.Response

// keepOpen parks the response for a caller that streams its body later;
// a shutdown hook (not shown) closes it. The analyzer cannot see that
// ownership transfer, so the acquisition carries a directive.
func keepOpen(url string) error {
	//lint:ignore bodycloseretry body is parked in a registry the caller streams from; closed on shutdown
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	last = resp
	return nil
}
