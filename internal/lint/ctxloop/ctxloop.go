// Package ctxloop enforces the repo's cancellation invariant: a loop
// that performs blocking I/O while a context.Context is in scope must
// observe that context on every iteration.
//
// The Scan, Loader, and fleet paths all promise prompt cancellation
// ("cancelling ctx stops it promptly with ctx.Err()" — pcr.Dataset.Scan),
// and the promise is only as good as the hottest loop that forgets to
// look at ctx between backend reads. The analyzer flags a for/range loop
// when all three hold:
//
//   - a context.Context is in scope (function parameter or local);
//   - the loop body performs blocking I/O: a method on a type
//     implementing a Backend or SampleReader interface, an
//     *http.Client round trip, or a raw channel send/receive outside a
//     select (a decode-pool submit);
//   - no iteration observes the context: no ctx.Err()/ctx.Done() call
//     and no call that is handed a context (delegation counts — the
//     callee owns cancellation then).
//
// Loops with no context in scope are exempt: they have nothing to
// check (the single-server retry loops in internal/serve are the
// deliberate example — their cancellation budget is the http.Client
// timeout). A loop that must block uncancellably is opted out with
// `//lint:ignore ctxloop <why>`.
package ctxloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc:  "loops doing blocking I/O with a context.Context in scope must check ctx.Err()/ctx.Done() (or delegate ctx) every iteration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, backends: backendInterfaces(pass.Pkg)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd.Type, fd.Body, 0)
			}
		}
	}
	return nil
}

// backendInterfaces collects the I/O interfaces the invariant names —
// types called Backend or SampleReader — from the package itself and
// everything it imports.
func backendInterfaces(pkg *types.Package) []*types.Interface {
	var ifaces []*types.Interface
	scopes := []*types.Scope{pkg.Scope()}
	for _, imp := range pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		for _, name := range []string{"Backend", "SampleReader"} {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, iface)
			}
		}
	}
	return ifaces
}

type checker struct {
	pass     *analysis.Pass
	backends []*types.Interface
}

// checkFunc analyzes one function or closure body. outerCtxs counts the
// context-typed variables visible from enclosing functions; the walk
// adds this function's own parameters and locals as it encounters them,
// so a loop sees exactly the contexts declared before it.
func (c *checker) checkFunc(ft *ast.FuncType, body *ast.BlockStmt, outerCtxs int) {
	ctxs := outerCtxs + countCtxFields(c.pass, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFunc(n.Type, n.Body, ctxs)
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && c.isCtx(c.pass.TypeOf(id)) {
					if _, isDef := c.pass.TypesInfo.Defs[id]; isDef {
						ctxs++
					}
				}
			}
		case *ast.ForStmt:
			if ctxs > 0 {
				c.checkLoop(n, n.Body)
			}
		case *ast.RangeStmt:
			if ctxs > 0 {
				c.checkLoop(n, n.Body)
			}
		}
		return true
	})
}

// checkLoop reports the loop if its body does blocking I/O and never
// observes a context.
func (c *checker) checkLoop(loop ast.Node, body *ast.BlockStmt) {
	var io, checked bool
	lintutil.WalkSkipFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.observesCtx(n) {
				checked = true
			} else if c.isIOCall(n) {
				io = true
			}
		case *ast.SendStmt:
			if !inSelect(body, n.Pos()) {
				io = true
			}
		case *ast.UnaryExpr:
			// A blocking receive outside a select (inside one, the
			// ctx.Done() case — if present — is the check).
			if n.Op == token.ARROW && !inSelect(body, n.Pos()) {
				io = true
			}
		}
		return true
	})
	if io && !checked {
		c.pass.Report(loop.Pos(),
			"loop performs blocking I/O with a context.Context in scope but no iteration checks ctx.Err()/ctx.Done() or passes ctx on")
	}
}

// observesCtx reports whether the call checks or delegates a context:
// ctx.Err(), ctx.Done(), or any context-typed argument.
func (c *checker) observesCtx(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && c.isCtx(c.pass.TypeOf(sel.X)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if c.isCtx(c.pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isIOCall reports whether the call is blocking I/O under the
// invariant: an *http.Client round trip, a net/http package-level
// request helper, or a method of a Backend/SampleReader implementation.
func (c *checker) isIOCall(call *ast.CallExpr) bool {
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	recv := lintutil.Receiver(fn)
	if recv != nil && lintutil.IsNamed(recv, "net/http", "Client") {
		return true
	}
	if recv == nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		switch fn.Name() {
		case "Get", "Head", "Post", "PostForm":
			return true
		}
	}
	if recv == nil {
		return false
	}
	for _, iface := range c.backends {
		if !hasMethod(iface, fn.Name()) {
			continue
		}
		if types.Implements(recv, iface) {
			return true
		}
		if p, ok := recv.(*types.Pointer); ok && types.Implements(p.Elem(), iface) {
			return true
		}
	}
	return false
}

func hasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// countCtxFields counts context.Context parameters of a function type.
func countCtxFields(pass *analysis.Pass, ft *ast.FuncType) int {
	n := 0
	if ft.Params == nil {
		return 0
	}
	for _, f := range ft.Params.List {
		if isCtxType(pass.TypeOf(f.Type)) {
			if len(f.Names) == 0 {
				n++
			}
			for _, name := range f.Names {
				if name.Name != "_" {
					n++
				}
			}
		}
	}
	return n
}

func (c *checker) isCtx(t types.Type) bool { return isCtxType(t) }

func isCtxType(t types.Type) bool {
	return t != nil && lintutil.IsNamed(t, "context", "Context")
}

// inSelect reports whether pos falls inside a select statement within
// root: sends and receives there are already paired with their
// alternatives (a well-formed loop puts ctx.Done() among them, which the
// check detection sees independently).
func inSelect(root ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok && sel.Pos() <= pos && pos < sel.End() {
			found = true
			return false
		}
		return !found
	})
	return found
}
