package ctxloop_test

import (
	"testing"

	"repro/internal/lint/ctxloop"
	"repro/internal/lint/linttest"
)

func TestCtxloop(t *testing.T) {
	linttest.Run(t, ctxloop.Analyzer, "testdata/src/ctxfix")
}
