package ctxfix

import (
	"context"
	"net/http"
)

// Backend mirrors the repo's core.Backend: its methods are blocking I/O.
type Backend interface {
	Open(name string) ([]byte, error)
}

func readAll(ctx context.Context, b Backend, names []string) error {
	for _, name := range names { // want `no iteration checks`
		if _, err := b.Open(name); err != nil {
			return err
		}
	}
	return nil
}

func pump(ctx context.Context, work chan<- string, names []string) {
	for _, name := range names { // want `no iteration checks`
		work <- name
	}
}

func poll(ctx context.Context, hc *http.Client, url string) error {
	for { // want `no iteration checks`
		resp, err := hc.Get(url)
		if err != nil {
			return err
		}
		resp.Body.Close()
	}
}
