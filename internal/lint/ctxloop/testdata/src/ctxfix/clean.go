package ctxfix

import "context"

// checked observes ctx.Err() every iteration.
func checked(ctx context.Context, b Backend, names []string) error {
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := b.Open(name); err != nil {
			return err
		}
	}
	return nil
}

// delegated hands ctx to the callee each iteration; the callee owns
// cancellation then.
func delegated(ctx context.Context, names []string) error {
	for _, name := range names {
		if err := openCtx(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

func openCtx(ctx context.Context, name string) error { return ctx.Err() }

// noContext has no context in scope, so there is nothing to check: the
// caller bounds the loop some other way (e.g. client timeouts).
func noContext(b Backend, names []string) error {
	for _, name := range names {
		if _, err := b.Open(name); err != nil {
			return err
		}
	}
	return nil
}

// selected pairs the channel receive with ctx.Done in a select.
func selected(ctx context.Context, in <-chan string) {
	for {
		select {
		case <-ctx.Done():
			return
		case name, ok := <-in:
			if !ok {
				return
			}
			_ = name
		}
	}
}
