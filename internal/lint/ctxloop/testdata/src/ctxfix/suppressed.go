package ctxfix

import "context"

type diskBackend struct{}

func (diskBackend) Open(name string) ([]byte, error) { return nil, nil }

// flushAll is a shutdown flush: it must visit every name even after the
// context is cancelled, so the missing per-iteration check is deliberate.
func flushAll(ctx context.Context, names []string) error {
	var b diskBackend
	//lint:ignore ctxloop shutdown flush must complete even after ctx is cancelled
	for _, name := range names {
		if _, err := b.Open(name); err != nil {
			return err
		}
	}
	return nil
}
