// Package linttest runs an analyzer over a fixture package and checks
// its findings against expectations written in the fixture itself — the
// same contract as golang.org/x/tools/go/analysis/analysistest, on which
// its fixture syntax is modeled:
//
//	resp.Body.Close() // want `closed without draining`
//
// Each `// want` comment carries one or more backquoted or quoted regular
// expressions; every reported diagnostic must match a want on its line,
// and every want must be matched by a diagnostic. A fixture line that
// carries a //lint:ignore directive and no want therefore asserts the
// suppression path: the analyzer would fire there, and the directive
// silences it.
//
// Fixtures live under testdata/src/<pkg>/ beside each analyzer — inside
// testdata so the surrounding module's builds, vets, and lints never see
// their deliberate violations — and may import only the standard library.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run applies the analyzer to the fixture package in dir (conventionally
// "testdata/src/<name>", relative to the test) and reports any mismatch
// between its diagnostics and the fixture's `// want` expectations as
// test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	diags, fset, err := analyze(a, dir)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey{filepath.Base(pos.Filename), pos.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, re)
			}
		}
	}
}

// analyze loads the fixture package in dir and runs the analyzer on it.
func analyze(a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, nil, err
	}
	exports, err := load.StdExports()
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(fset, filepath.Base(dir), names, load.ExportImporter(fset, exports))
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.Run(a, fset, pkg.Files, pkg.Types, pkg.Info)
	return diags, fset, err
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("linttest: no fixture .go files in %s", dir)
	}
	return names, nil
}

type posKey struct {
	file string
	line int
}

// wantSet maps a fixture line to its expected-diagnostic patterns;
// matched patterns are nilled out so each want satisfies one diagnostic.
type wantSet map[posKey][]*regexp.Regexp

func (w wantSet) match(key posKey, message string) bool {
	for i, re := range w[key] {
		if re != nil && re.MatchString(message) {
			w[key][i] = nil
			return true
		}
	}
	return false
}

// wantRE extracts the patterns of one `// want` comment: backquoted or
// double-quoted strings after the marker.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants scans fixture sources line by line for `// want`
// expectations. Textual (not AST) scanning keeps column information out
// of the contract: a want covers its whole line, like analysistest.
func collectWants(dir string) (wantSet, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	wants := make(wantSet)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			key := posKey{filepath.Base(name), i + 1}
			for _, m := range wantRE.FindAllStringSubmatch(spec, -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", name, i+1, pat, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants, nil
}
