// Package lintutil holds the small type-resolution helpers the pcrlint
// analyzers share: resolving a call's callee through the types.Info maps,
// unwrapping receivers, and classifying types the invariants care about.
package lintutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes, or
// nil for calls through function-typed values, built-ins, and type
// conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// Named returns the named type of t (through one pointer), or nil.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t is (a pointer to) the named type
// pkgpath.name.
func IsNamed(t types.Type, pkgpath, name string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgpath && n.Obj().Name() == name
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// Receiver returns the receiver type of a method, or nil for a plain
// function.
func Receiver(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// WalkSkipFuncLits visits the nodes of root in depth-first order like
// ast.Inspect, but does not descend into function literals: the caller is
// reasoning about one function body's control flow, and a closure's body
// runs on somebody else's schedule.
func WalkSkipFuncLits(root ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return visit(n)
	})
}
