// Package load type-checks Go packages for pcrlint without importing the
// build system's internals: it asks the toolchain for the package graph
// and compiled export data (`go list -deps -export`) and feeds the export
// files to the standard gc importer, so each target package parses and
// type-checks from source against the exact dependencies the real build
// uses. This keeps the linter's view of the code byte-identical to the
// compiler's and works offline from a clean checkout.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one parsed, type-checked target package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps the package's token positions; shared across one Load.
	Fset *token.FileSet
	// Files are the parsed sources (comments included), production
	// .go files only — testdata and _test.go files are the fixtures and
	// harnesses of the checks, not their subject.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the package's type and object resolution.
	Info *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

const listFields = "-json=ImportPath,Dir,Export,GoFiles,Standard"

// Load type-checks the packages matching patterns (e.g. "./...")
// relative to dir and returns them in `go list` order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One walk of the dependency graph yields export data for every
	// dependency (standard library included); a second, -deps-less list
	// distinguishes the target packages from their dependencies.
	deps, err := goList(dir, append([]string{"list", "-deps", "-export", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	targets, err := goList(dir, append([]string{"list", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, gf := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, gf)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Path, pkg.Dir = t.ImportPath, t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer resolving import paths through
// the given path→export-file map (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses and type-checks one package from the given source files.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

// StdExports returns export data for the whole standard library,
// computed once per process (fixture packages import only the standard
// library, so this is all a fixture type-check needs).
func StdExports() (map[string]string, error) {
	stdOnce.Do(func() {
		entries, err := goList(".", "list", "-export", listFields, "std")
		if err != nil {
			stdErr = err
			return
		}
		stdExports = make(map[string]string, len(entries))
		for _, e := range entries {
			if e.Export != "" {
				stdExports[e.ImportPath] = e.Export
			}
		}
	})
	return stdExports, stdErr
}
