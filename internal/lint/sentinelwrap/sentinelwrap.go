// Package sentinelwrap enforces the repo's error-identity invariant.
//
// The pcr facade promises callers that errors.Is keeps working across
// every layer: structural damage is pcr.ErrCorrupt, closed handles are
// pcr.ErrClosed, and so on (see DESIGN.md, "Static analysis"). That
// promise only holds while three conventions do:
//
//  1. No package re-mints a facade sentinel. A fresh
//     `var ErrCorrupt = errors.New(...)` outside the sentinel's home
//     package creates an error that *looks* like the contract but never
//     matches it. Sentinels are aliased (`var ErrCorrupt =
//     core.ErrCorrupt`) or wrapped, never re-declared.
//  2. The facade packages (pcr, internal/core) never create anonymous
//     errors inside function bodies: an inline errors.New can't be
//     matched by any caller. Errors there are sentinels, or wrap one
//     (or another error) with %w.
//  3. An error formatted into fmt.Errorf rides %w, not %v/%s: formatting
//     an error as a plain string severs the unwrap chain that the
//     callers' errors.Is dispatch walks.
//
// A deliberate exception — e.g. a domain package keeping its own private
// sentinel namespace that a boundary maps onto the facade's — is opted
// out with `//lint:ignore sentinelwrap <why>`.
package sentinelwrap

import (
	"go/ast"
	"go/constant"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "errors crossing the pcr facade must wrap the exported sentinels; no fresh errors.New may shadow one, and error arguments to fmt.Errorf must use %w",
	Run:  run,
}

// sentinelHome maps each facade sentinel to the package (by name) that
// owns it. Only the home may declare the name with a fresh errors.New.
var sentinelHome = map[string]string{
	"ErrCorrupt":       "core",
	"ErrNoSampleIndex": "core",
	"ErrClosed":        "pcr",
	"ErrNoSuchQuality": "pcr",
}

// facadePackages are the packages (by name) where rule 2 — no inline
// errors.New in function bodies — applies.
var facadePackages = map[string]bool{"pcr": true, "core": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkShadow(pass, d)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				if facadePackages[pass.Pkg.Name()] {
					checkInlineNew(pass, d.Body)
				}
				checkErrorfWrap(pass, d.Body)
			}
		}
	}
	return nil
}

// checkShadow flags a package-level `var ErrX = errors.New(...)` whose
// name is a facade sentinel owned by another package (rule 1).
func checkShadow(pass *analysis.Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			home, isSentinel := sentinelHome[name.Name]
			if !isSentinel || pass.Pkg.Name() == home || i >= len(vs.Values) {
				continue
			}
			call, ok := vs.Values[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil && fn.FullName() == "errors.New" {
				pass.Reportf(name.Pos(),
					"%s shadows the facade sentinel with a fresh errors.New; alias the %s package's sentinel or wrap it with %%w",
					name.Name, home)
			}
		}
	}
}

// checkInlineNew flags errors.New calls inside facade function bodies
// (rule 2).
func checkInlineNew(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil && fn.FullName() == "errors.New" {
			pass.Report(call.Pos(),
				"inline errors.New creates an error no caller can errors.Is-match; return a package sentinel or wrap with fmt.Errorf(...%w...)")
		}
		return true
	})
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument with a string verb instead of %w (rule 3).
func checkErrorfWrap(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		for _, v := range parseVerbs(constant.StringVal(tv.Value)) {
			argIndex := 1 + v.arg // args[0] is the format string
			if v.verb == 'w' || argIndex >= len(call.Args) {
				continue
			}
			if v.verb != 'v' && v.verb != 's' && v.verb != 'q' {
				continue
			}
			if lintutil.IsErrorType(pass.TypeOf(call.Args[argIndex])) {
				pass.Reportf(call.Args[argIndex].Pos(),
					"error formatted with %%%c severs the unwrap chain callers' errors.Is relies on; use %%w", v.verb)
			}
		}
		return true
	})
}

// verb is one formatting directive: which zero-based operand it consumes
// and with what verb character.
type verb struct {
	arg  int
	verb rune
}

// parseVerbs resolves a format string's directives to operand indexes,
// handling flags, star width/precision (which consume operands), and
// explicit [n] argument indexes.
func parseVerbs(format string) []verb {
	var verbs []verb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(runes) && strings.ContainsRune("#0- +", runes[i]) {
			i++
		}
		scanIndex := func() {
			if i < len(runes) && runes[i] == '[' {
				j := i + 1
				for j < len(runes) && runes[j] != ']' {
					j++
				}
				if j < len(runes) {
					if n, err := strconv.Atoi(string(runes[i+1 : j])); err == nil {
						arg = n - 1 // explicit indexes are 1-based
					}
					i = j + 1
				}
			}
		}
		scanNumOrStar := func() {
			if i < len(runes) && runes[i] == '*' {
				arg++ // star consumes an operand
				i++
				return
			}
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		scanIndex()
		scanNumOrStar()
		if i < len(runes) && runes[i] == '.' {
			i++
			scanNumOrStar()
		}
		scanIndex()
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue // %% consumes nothing
		}
		verbs = append(verbs, verb{arg: arg, verb: runes[i]})
		arg++
	}
	return verbs
}
