package sentinelwrap_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/sentinelwrap"
)

func TestSentinelwrap(t *testing.T) {
	linttest.Run(t, sentinelwrap.Analyzer, "testdata/src/pcr")
}
