package pcr

import (
	"errors"
	"fmt"
)

// ErrClosed is this package's own sentinel: the home package may mint it
// fresh.
var ErrClosed = errors.New("pcr: closed")

// ErrCorrupt belongs to the core package; re-minting it here creates an
// error the facade's errors.Is contract can never match.
var ErrCorrupt = errors.New("pcr: corrupt") // want `shadows the facade sentinel`

func scan(name string) error {
	if name == "" {
		return errors.New("pcr: empty name") // want `inline errors.New`
	}
	if err := open(name); err != nil {
		return fmt.Errorf("pcr: scanning %s: %v", name, err) // want `severs the unwrap chain`
	}
	return nil
}

func open(name string) error {
	if name == "missing" {
		return ErrClosed
	}
	return nil
}
