package pcr

import (
	"errors"
	"fmt"
)

// ErrNoSuchQuality is the facade's own sentinel, minted in its home
// package.
var ErrNoSuchQuality = errors.New("pcr: no such quality")

// errInternal is a private sentinel: package-level, matchable, fine.
var errInternal = errors.New("pcr: internal")

func load(q int) error {
	if q < 0 {
		return fmt.Errorf("pcr: quality %d: %w", q, ErrNoSuchQuality)
	}
	if q > 100 {
		return fmt.Errorf("pcr: quality %d: %w", q, errInternal)
	}
	return nil
}
