package pcr

import "errors"

// compat returns the pre-facade error message verbatim: callers of the
// original release matched it by string, and the wire protocol froze it.
// The directive acknowledges the finding instead of silencing the
// analyzer globally.
func compat(ok bool) error {
	if ok {
		return nil
	}
	//lint:ignore sentinelwrap pre-facade message preserved verbatim for wire compatibility
	return errors.New("pcr: legacy failure")
}
