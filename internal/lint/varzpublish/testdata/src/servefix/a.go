package servefix

import (
	"expvar"
	"sync/atomic"
)

type counters struct {
	served  atomic.Int64
	dropped atomic.Int64 // want `incremented but never loaded`
}

func (c *counters) hit() {
	c.served.Add(1)
	c.dropped.Add(1)
}

func (c *counters) snapshot() int64 { return c.served.Load() }

type legacy struct {
	misses int64 // want `atomically written but never read`
	hits   int64
}

func (l *legacy) bump() {
	atomic.AddInt64(&l.misses, 1)
	atomic.AddInt64(&l.hits, 1)
}

func (l *legacy) total() int64 { return atomic.LoadInt64(&l.hits) }

type stats struct {
	BytesServed int64 `json:"bytes_served"`
	CacheHits   int64 `json:"cacheHits"` // want `not snake_case`
}

func publish() {
	expvar.NewInt("pcr_requests")
	expvar.NewInt("pcrRequests") // want `not snake_case`
}
