package servefix

import (
	"expvar"
	"sync/atomic"
)

type cleanCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

func (c *cleanCounters) observe(failed bool) {
	c.requests.Add(1)
	if failed {
		c.errors.Add(1)
	}
}

// Stats is the /varz snapshot: every counter is loaded, every tag is
// snake_case.
type Stats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors_total"`
	Internal int64 `json:"-"`
}

func (c *cleanCounters) stats() Stats {
	return Stats{
		Requests: c.requests.Load(),
		Errors:   c.errors.Load(),
	}
}

func publishClean() {
	expvar.NewInt("pcr_bytes_served")
}
