package servefix

import "sync/atomic"

type scratchpad struct {
	//lint:ignore varzpublish scratch counter consumed by the test harness via unsafe inspection
	scratch atomic.Int64
}

func (s *scratchpad) poke() { s.scratch.Add(1) }
