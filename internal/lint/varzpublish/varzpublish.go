// Package varzpublish enforces the repo's observability invariant: a
// counter that exists must be visible.
//
// internal/serve's counters are sync/atomic integer fields snapshotted
// into a Stats struct whose JSON is /varz (and, via cmd/pcrserved,
// expvar). Three things have historically been easy to get wrong as
// handlers accrete, and the analyzer checks each:
//
//   - a counter field that is incremented (.Add) somewhere but loaded
//     (.Load) nowhere is dark telemetry: increments that no /varz
//     snapshot will ever surface;
//   - every `json:"..."` tag must name a snake_case key, the /varz
//     wire convention every dashboard and e2e assertion in this repo
//     greps for;
//   - names handed to expvar (NewInt, Publish, ...) must be snake_case
//     for the same reason.
//
// A counter that is deliberately internal-only is opted out with
// `//lint:ignore varzpublish <why>`.
package varzpublish

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "varzpublish",
	Doc:  "atomic counter fields must have a Load (snapshot) site for every Add site; json tags and expvar names must be snake_case",
	Run:  run,
}

var snakeRE = regexp.MustCompile(`^[a-z0-9_]+$`)

// atomicCounterTypes are the sync/atomic wrapper types treated as
// counters when used as struct fields.
var atomicCounterTypes = []string{"Int32", "Int64", "Uint32", "Uint64"}

func run(pass *analysis.Pass) error {
	checkCounters(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkTags(pass, n)
			case *ast.CallExpr:
				checkExpvarName(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCounters flags counter fields with increment sites but no load
// site in the package. Both field styles in use count: sync/atomic
// wrapper types (x.field.Add / x.field.Load) and plain integers mutated
// through the sync/atomic functions (atomic.AddInt64(&x.field, ...)).
// For the latter, any read of the field outside an atomic.Add* call
// counts as surfacing it.
func checkCounters(pass *analysis.Pass) {
	counters := make(map[*types.Var]token.Pos) // atomic-wrapper fields
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			for _, wrap := range atomicCounterTypes {
				if lintutil.IsNamed(f.Type(), "sync/atomic", wrap) {
					counters[f] = f.Pos()
				}
			}
		}
	}

	added := make(map[*types.Var]bool)
	loaded := make(map[*types.Var]bool)
	legacyAdded := make(map[*types.Var]token.Pos) // plain fields via atomic.AddXxx
	legacyRead := make(map[*types.Var]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// x.field.Add(...) / x.field.Load() on wrapper fields.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if fv, ok := pass.TypesInfo.Uses[inner.Sel].(*types.Var); ok {
						if _, isCounter := counters[fv]; isCounter {
							switch sel.Sel.Name {
							case "Add", "Store", "Swap", "CompareAndSwap":
								added[fv] = true
							case "Load":
								loaded[fv] = true
							}
						}
					}
				}
			}
			// atomic.AddInt64(&x.field, ...) / atomic.LoadInt64(&x.field).
			if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync/atomic" && len(call.Args) > 0 {
				if fv := addrField(pass, call.Args[0]); fv != nil {
					if strings.HasPrefix(fn.Name(), "Add") || strings.HasPrefix(fn.Name(), "Store") {
						legacyAdded[fv] = fv.Pos()
					} else {
						legacyRead[fv] = true
					}
				}
			}
			return true
		})
	}

	// A plain read of a legacy counter field anywhere (snapshotting,
	// struct copy aside) counts as surfacing it.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := legacyAdded[fv]; tracked && !insideAtomicWrite(pass, f, sel) {
				legacyRead[fv] = true
			}
			return true
		})
	}

	for fv := range added {
		if !loaded[fv] {
			pass.Reportf(fv.Pos(),
				"counter %s is incremented but never loaded: no /varz snapshot can surface it", fv.Name())
		}
	}
	for fv, pos := range legacyAdded {
		if !legacyRead[fv] {
			pass.Reportf(pos,
				"counter %s is atomically written but never read: no snapshot can surface it", fv.Name())
		}
	}
}

// addrField unwraps &x.field to the field's object.
func addrField(pass *analysis.Pass, e ast.Expr) *types.Var {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fv, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !fv.IsField() {
		return nil
	}
	return fv
}

// insideAtomicWrite reports whether the selector is the &x.field operand
// of a sync/atomic write call (which must not count as a read).
func insideAtomicWrite(pass *analysis.Pass, file *ast.File, target *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ast.Unparen(u.X) == target {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkTags flags non-snake_case json tag names.
func checkTags(pass *analysis.Pass, st *ast.StructType) {
	for _, f := range st.Fields.List {
		if f.Tag == nil {
			continue
		}
		raw, err := strconv.Unquote(f.Tag.Value)
		if err != nil {
			continue
		}
		name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
		if name == "" || name == "-" {
			continue
		}
		if !snakeRE.MatchString(name) {
			pass.Reportf(f.Tag.Pos(),
				"json tag %q is not snake_case; /varz consumers key on snake_case names", name)
		}
	}
}

// checkExpvarName flags non-snake_case names registered with expvar.
func checkExpvarName(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "expvar" || len(call.Args) == 0 {
		return
	}
	switch fn.Name() {
	case "NewInt", "NewFloat", "NewString", "NewMap", "Publish":
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if name := constant.StringVal(tv.Value); !snakeRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"expvar name %q is not snake_case; /varz consumers key on snake_case names", name)
	}
}
