package varzpublish_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/varzpublish"
)

func TestVarzpublish(t *testing.T) {
	linttest.Run(t, varzpublish.Analyzer, "testdata/src/servefix")
}
