// Package loader simulates the paper's data-loading pipeline (Appendix A.1)
// on the iosim virtual clock: prefetch worker threads read record prefixes
// from simulated storage, decode them (a CPU cost), and push them into a
// bounded FCFS queue consumed by the compute unit. The loader is a closed
// system (each thread starts its next read when the previous finishes); the
// compute unit is an open system fed by the queue — the exact structure of
// the paper's queueing analysis (Appendix A.2).
//
// The simulation exposes the quantities the paper plots: per-iteration data
// load times and stalls (Figure 11), images/second throughput (Figures 9 and
// 18), and end-to-end epoch times used for time-to-accuracy (Figures 4–6).
package loader

import (
	"fmt"
	"math/rand"

	"repro/internal/iosim"
)

// Config describes one simulated epoch of loading.
type Config struct {
	// Cluster provides storage.
	Cluster *iosim.Cluster
	// Threads is the number of prefetch workers (the paper uses 4–8).
	Threads int
	// QueueCap is the prefetch queue capacity in records.
	QueueCap int
	// RecordBytes gives the bytes to read for each record at the chosen
	// scan group (RecordPrefixLen of the PCR dataset).
	RecordBytes []int64
	// ImagesPerRecord gives the image count of each record.
	ImagesPerRecord []int
	// DecodeSecPerImage is CPU decode cost per image; progressive decode
	// costs ~1.4–1.5× baseline (paper §A.5).
	DecodeSecPerImage float64
	// ComputeSecPerImage is the accelerator's per-image update time
	// (1/405 s for ResNet-18 FP32, 1/760 for ShuffleNetv2 on the paper's
	// TitanX).
	ComputeSecPerImage float64
	// Shuffle, when non-nil, visits records in a random order drawn from
	// the given source (record-level shuffling as in the paper).
	Shuffle *rand.Rand
	// StartAt offsets the virtual clock (to chain epochs).
	StartAt float64
	// Passes repeats the record set (reshuffled per pass) to measure
	// steady-state rates on small datasets. 0 means 1.
	Passes int
}

// Result summarizes one simulated epoch.
type Result struct {
	// EndAt is the virtual time when the last record finished computing.
	EndAt float64
	// Elapsed is EndAt − StartAt.
	Elapsed float64
	// Images is the number of images consumed.
	Images int
	// BytesRead is the total bytes fetched from storage.
	BytesRead int64
	// ImagesPerSec is the epoch's aggregate training rate.
	ImagesPerSec float64
	// LoadSec[i] is the wall time from read start to ready-for-compute of
	// the i-th consumed record (Figure 11's "data load time").
	LoadSec []float64
	// StallSec[i] is how long the compute unit sat idle waiting for the
	// i-th record.
	StallSec []float64
	// TotalStallSec sums StallSec.
	TotalStallSec float64
}

// Run simulates one epoch and returns its statistics.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.RecordBytes)
	if n == 0 {
		return nil, fmt.Errorf("loader: no records")
	}
	if len(cfg.ImagesPerRecord) != n {
		return nil, fmt.Errorf("loader: %d byte sizes but %d image counts", n, len(cfg.ImagesPerRecord))
	}
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("loader: nil cluster")
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = 4
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 2 * threads
	}

	passes := cfg.Passes
	if passes <= 0 {
		passes = 1
	}
	total := n * passes
	order := make([]int, 0, total)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for p := 0; p < passes; p++ {
		if cfg.Shuffle != nil {
			cfg.Shuffle.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		order = append(order, perm...)
	}

	res := &Result{
		LoadSec:  make([]float64, total),
		StallSec: make([]float64, total),
	}
	threadFree := make([]float64, threads)
	for t := range threadFree {
		threadFree[t] = cfg.StartAt
	}
	computeStart := make([]float64, total)
	computeFree := cfg.StartAt

	for k := 0; k < total; k++ {
		rec := order[k]
		t := k % threads
		// The worker issues its read as soon as it is free (closed system).
		readStart := threadFree[t]
		readDone := cfg.Cluster.ReadRecord(rec, cfg.RecordBytes[rec], readStart)
		decoded := readDone + cfg.DecodeSecPerImage*float64(cfg.ImagesPerRecord[rec])
		// Backpressure: the queue holds queueCap records; enqueueing the
		// k-th item requires the compute unit to have started item k−cap.
		ready := decoded
		if k >= queueCap && computeStart[k-queueCap] > ready {
			ready = computeStart[k-queueCap]
		}
		threadFree[t] = ready
		res.LoadSec[k] = ready - readStart

		start := ready
		if computeFree > start {
			start = computeFree
		}
		computeStart[k] = start
		stall := start - computeFree
		if k == 0 {
			// The first record's wait is pipeline warmup, not a stall.
			stall = 0
		}
		res.StallSec[k] = stall
		res.TotalStallSec += stall
		computeFree = start + cfg.ComputeSecPerImage*float64(cfg.ImagesPerRecord[rec])

		res.Images += cfg.ImagesPerRecord[rec]
		res.BytesRead += cfg.RecordBytes[rec]
	}
	res.EndAt = computeFree
	res.Elapsed = res.EndAt - cfg.StartAt
	if res.Elapsed > 0 {
		res.ImagesPerSec = float64(res.Images) / res.Elapsed
	}
	return res, nil
}

// ReadOnlyRate simulates the reader microbenchmark of §A.5: no compute unit,
// just threads reading record prefixes and decoding, reporting images/sec.
// This is what Figure 18 plots.
func ReadOnlyRate(cfg Config) (*Result, error) {
	cfg.ComputeSecPerImage = 0
	passes := cfg.Passes
	if passes <= 0 {
		passes = 1
	}
	cfg.QueueCap = len(cfg.RecordBytes)*passes + 1 // no backpressure
	return Run(cfg)
}
