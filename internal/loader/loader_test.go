package loader

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/iosim"
)

func uniformRecords(n int, bytes int64, images int) ([]int64, []int) {
	rb := make([]int64, n)
	ipr := make([]int, n)
	for i := range rb {
		rb[i] = bytes
		ipr[i] = images
	}
	return rb, ipr
}

func TestRunBasicInvariants(t *testing.T) {
	cluster, _ := iosim.NewCluster(iosim.SATASSD, 2)
	rb, ipr := uniformRecords(50, 4<<20, 64)
	res, err := Run(Config{
		Cluster: cluster, Threads: 4, QueueCap: 8,
		RecordBytes: rb, ImagesPerRecord: ipr,
		DecodeSecPerImage:  1e-4,
		ComputeSecPerImage: 1.0 / 405,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 50*64 {
		t.Errorf("images = %d", res.Images)
	}
	if res.BytesRead != 50*(4<<20) {
		t.Errorf("bytes = %d", res.BytesRead)
	}
	if res.Elapsed <= 0 || res.ImagesPerSec <= 0 {
		t.Errorf("elapsed %v rate %v", res.Elapsed, res.ImagesPerSec)
	}
	// The epoch can be no faster than pure compute and no faster than pure
	// I/O.
	computeFloor := float64(res.Images) / 405
	ioFloor := float64(res.BytesRead) / cluster.AggregateBandwidth()
	if res.Elapsed < computeFloor-1e-9 {
		t.Errorf("elapsed %v beats compute floor %v", res.Elapsed, computeFloor)
	}
	if res.Elapsed < ioFloor-1e-9 {
		t.Errorf("elapsed %v beats I/O floor %v", res.Elapsed, ioFloor)
	}
}

func TestIOBoundThroughputMatchesLittlesLaw(t *testing.T) {
	// With a slow device and fast compute, throughput must approach
	// W / E[bytes per image] (Lemma A.2).
	spec := iosim.DeviceSpec{Name: "slow", BandwidthBps: 50e6, SeekSec: 1e-3}
	cluster, _ := iosim.NewCluster(spec, 1)
	imagesPerRecord := 64
	recordBytes := int64(imagesPerRecord) * 100e3 // 100 kB/image
	rb, ipr := uniformRecords(200, recordBytes, imagesPerRecord)
	res, err := Run(Config{
		Cluster: cluster, Threads: 4, QueueCap: 8,
		RecordBytes: rb, ImagesPerRecord: ipr,
		DecodeSecPerImage:  0,
		ComputeSecPerImage: 1e-6, // effectively infinite compute
	})
	if err != nil {
		t.Fatal(err)
	}
	predicted := spec.BandwidthBps / 100e3
	if rel := math.Abs(res.ImagesPerSec-predicted) / predicted; rel > 0.05 {
		t.Errorf("rate %v vs Little's-law prediction %v (%.1f%% off)", res.ImagesPerSec, predicted, rel*100)
	}
	if res.TotalStallSec <= 0 {
		t.Error("I/O-bound run should stall the compute unit")
	}
}

func TestComputeBoundHasNoStalls(t *testing.T) {
	cluster, _ := iosim.NewCluster(iosim.RAMDisk, 4)
	rb, ipr := uniformRecords(100, 1<<20, 64)
	res, err := Run(Config{
		Cluster: cluster, Threads: 8, QueueCap: 16,
		RecordBytes: rb, ImagesPerRecord: ipr,
		DecodeSecPerImage:  0,
		ComputeSecPerImage: 1.0 / 100, // very slow model
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStallSec > res.Elapsed*0.01 {
		t.Errorf("compute-bound run stalled %.3fs of %.3fs", res.TotalStallSec, res.Elapsed)
	}
	want := float64(res.Images) / 100
	if rel := math.Abs(res.Elapsed-want) / want; rel > 0.05 {
		t.Errorf("elapsed %v, want ~%v", res.Elapsed, want)
	}
}

func TestSmallerBytesProportionalSpeedup(t *testing.T) {
	// Observation 6: a 2× byte reduction gives a ~2× rate increase when
	// I/O bound.
	spec := iosim.DeviceSpec{BandwidthBps: 100e6, SeekSec: 1e-4}
	rate := func(bytesPerImage int64) float64 {
		cluster, _ := iosim.NewCluster(spec, 1)
		rb, ipr := uniformRecords(100, bytesPerImage*64, 64)
		res, err := Run(Config{
			Cluster: cluster, Threads: 4,
			RecordBytes: rb, ImagesPerRecord: ipr,
			ComputeSecPerImage: 1e-7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ImagesPerSec
	}
	r100 := rate(100e3)
	r50 := rate(50e3)
	speedup := r50 / r100
	if speedup < 1.9 || speedup > 2.1 {
		t.Errorf("2x byte reduction gave %.2fx speedup", speedup)
	}
}

func TestQueueBackpressureBoundsLead(t *testing.T) {
	// With a tiny queue and slow compute, readers must not run arbitrarily
	// far ahead: total bytes read by any point is bounded by what compute
	// has consumed plus the queue+thread window.
	cluster, _ := iosim.NewCluster(iosim.RAMDisk, 1)
	rb, ipr := uniformRecords(50, 1<<20, 32)
	res, err := Run(Config{
		Cluster: cluster, Threads: 2, QueueCap: 2,
		RecordBytes: rb, ImagesPerRecord: ipr,
		ComputeSecPerImage: 1.0 / 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Late-record load times include the back-pressure wait, so they
	// stretch toward the compute period per record (~0.64 s).
	late := res.LoadSec[len(res.LoadSec)-1]
	if late < 0.5 {
		t.Errorf("backpressure not visible in load time: %v", late)
	}
}

func TestShuffleChangesOrderNotTotals(t *testing.T) {
	spec := iosim.DeviceSpec{BandwidthBps: 200e6, SeekSec: 1e-3}
	rb := make([]int64, 64)
	ipr := make([]int, 64)
	for i := range rb {
		rb[i] = int64(1+i%7) << 18
		ipr[i] = 32
	}
	run := func(shuffle *rand.Rand) *Result {
		cluster, _ := iosim.NewCluster(spec, 2)
		res, err := Run(Config{
			Cluster: cluster, Threads: 4,
			RecordBytes: rb, ImagesPerRecord: ipr,
			ComputeSecPerImage: 1e-4,
			Shuffle:            shuffle,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(nil)
	b := run(rand.New(rand.NewSource(5)))
	if a.Images != b.Images || a.BytesRead != b.BytesRead {
		t.Error("shuffling changed totals")
	}
}

func TestRunValidation(t *testing.T) {
	cluster, _ := iosim.NewCluster(iosim.SATASSD, 1)
	if _, err := Run(Config{Cluster: cluster}); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := Run(Config{RecordBytes: []int64{1}, ImagesPerRecord: []int{1}}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(Config{Cluster: cluster, RecordBytes: []int64{1, 2}, ImagesPerRecord: []int{1}}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestReadOnlyRateScalesWithScanBytes(t *testing.T) {
	// Figure 18's shape: throughput in images/sec is inversely proportional
	// to bytes per image once the drive saturates.
	spec := iosim.SATASSD
	rate := func(bytesPerImage int64) float64 {
		cluster, _ := iosim.NewCluster(spec, 1)
		rb, ipr := uniformRecords(100, bytesPerImage*128, 128)
		res, err := ReadOnlyRate(Config{
			Cluster: cluster, Threads: 8,
			RecordBytes: rb, ImagesPerRecord: ipr,
			DecodeSecPerImage: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ImagesPerSec
	}
	r1 := rate(12e3)  // scan-1-ish bytes
	r10 := rate(90e3) // full-quality bytes
	ratio := r1 / r10
	want := 90.0 / 12.0
	if math.Abs(ratio-want)/want > 0.1 {
		t.Errorf("rate ratio %.2f, want ~%.2f", ratio, want)
	}
}
