// Package mssim implements structural-similarity image quality metrics:
// single-scale SSIM and multi-scale SSIM (MS-SSIM, Wang, Simoncelli & Bovik
// 2003). The paper uses MSSIM as the static estimator of how much accuracy a
// scan group sacrifices (§4.4): scans with MSSIM ≥ 0.95 train like the
// baseline.
//
// Metrics operate on luma; color inputs are converted with the BT.601
// weights JPEG itself uses.
package mssim

import (
	"fmt"
	"image"
	"math"
)

// Plane is a float64 grayscale raster.
type Plane struct {
	W, H int
	Pix  []float64
}

// NewPlane allocates a zeroed plane.
func NewPlane(w, h int) *Plane {
	return &Plane{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the sample at (x, y).
func (p *Plane) At(x, y int) float64 { return p.Pix[y*p.W+x] }

// FromImage extracts the luma plane of an image.
func FromImage(img image.Image) *Plane {
	b := img.Bounds()
	p := NewPlane(b.Dx(), b.Dy())
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := img.At(x, y).RGBA()
			// BT.601 luma from 16-bit channels, scaled to [0, 255].
			p.Pix[i] = (0.299*float64(r) + 0.587*float64(g) + 0.114*float64(bb)) / 257.0
			i++
		}
	}
	return p
}

// downsample2 halves a plane with a 2×2 box filter, the dyadic step MS-SSIM
// prescribes between scales.
func downsample2(p *Plane) *Plane {
	w, h := p.W/2, p.H/2
	out := NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := p.At(2*x, 2*y) + p.At(2*x+1, 2*y) + p.At(2*x, 2*y+1) + p.At(2*x+1, 2*y+1)
			out.Pix[y*w+x] = s / 4
		}
	}
	return out
}

// SSIM constants for 8-bit dynamic range (K1=0.01, K2=0.03, L=255).
const (
	c1 = (0.01 * 255) * (0.01 * 255)
	c2 = (0.03 * 255) * (0.03 * 255)
)

// gaussianKernel returns the 11-tap, σ=1.5 window from the SSIM paper.
func gaussianKernel() []float64 {
	const n, sigma = 11, 1.5
	k := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		d := float64(i - n/2)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

var kernel = gaussianKernel()

// windowStats computes Gaussian-weighted means, variances and covariance of
// two planes over the 11×11 window centered at (cx, cy). Windows are clipped
// at borders with weight renormalization.
func windowStats(a, b *Plane, cx, cy int) (ma, mb, va, vb, cov float64) {
	const half = 5
	var wsum float64
	for dy := -half; dy <= half; dy++ {
		y := cy + dy
		if y < 0 || y >= a.H {
			continue
		}
		for dx := -half; dx <= half; dx++ {
			x := cx + dx
			if x < 0 || x >= a.W {
				continue
			}
			w := kernel[dy+half] * kernel[dx+half]
			wsum += w
			ma += w * a.At(x, y)
			mb += w * b.At(x, y)
		}
	}
	ma /= wsum
	mb /= wsum
	for dy := -half; dy <= half; dy++ {
		y := cy + dy
		if y < 0 || y >= a.H {
			continue
		}
		for dx := -half; dx <= half; dx++ {
			x := cx + dx
			if x < 0 || x >= a.W {
				continue
			}
			w := kernel[dy+half] * kernel[dx+half] / wsum
			da := a.At(x, y) - ma
			db := b.At(x, y) - mb
			va += w * da * da
			vb += w * db * db
			cov += w * da * db
		}
	}
	return ma, mb, va, vb, cov
}

// ssimParts returns the mean luminance term l and the mean
// contrast-structure term cs over the full SSIM map of two planes.
func ssimParts(a, b *Plane) (l, cs float64, err error) {
	if a.W != b.W || a.H != b.H {
		return 0, 0, fmt.Errorf("mssim: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	if a.W == 0 || a.H == 0 {
		return 0, 0, fmt.Errorf("mssim: empty plane")
	}
	// Stride 2 sampling keeps the metric stable while cutting cost 4×.
	step := 1
	if a.W*a.H > 64*64 {
		step = 2
	}
	var sumL, sumCS float64
	var n int
	for y := 0; y < a.H; y += step {
		for x := 0; x < a.W; x += step {
			ma, mb, va, vb, cov := windowStats(a, b, x, y)
			lt := (2*ma*mb + c1) / (ma*ma + mb*mb + c1)
			cst := (2*cov + c2) / (va + vb + c2)
			sumL += lt
			sumCS += cst
			n++
		}
	}
	return sumL / float64(n), sumCS / float64(n), nil
}

// SSIM computes the mean single-scale SSIM index of two images in [−1, 1]
// (1 means identical).
func SSIM(a, b image.Image) (float64, error) {
	pa, pb := FromImage(a), FromImage(b)
	l, cs, err := ssimParts(pa, pb)
	if err != nil {
		return 0, err
	}
	return l * cs, nil
}

// msWeights are the five per-scale exponents from Wang et al. 2003.
var msWeights = []float64{0.0448, 0.2856, 0.3001, 0.2363, 0.1333}

// MSSIM computes the multi-scale SSIM index of two images. Images smaller
// than the full five-scale pyramid use as many scales as fit (at least one),
// with the weight vector renormalized — the standard practical adaptation
// for small inputs.
func MSSIM(a, b image.Image) (float64, error) {
	pa, pb := FromImage(a), FromImage(b)
	if pa.W != pb.W || pa.H != pb.H {
		return 0, fmt.Errorf("mssim: size mismatch %dx%d vs %dx%d", pa.W, pa.H, pb.W, pb.H)
	}

	// Determine how many scales fit: each needs at least 11 pixels a side.
	scales := 0
	w, h := pa.W, pa.H
	for scales < len(msWeights) && w >= 11 && h >= 11 {
		scales++
		w, h = w/2, h/2
	}
	if scales == 0 {
		scales = 1
	}
	var wsum float64
	for _, wt := range msWeights[:scales] {
		wsum += wt
	}

	result := 1.0
	for s := 0; s < scales; s++ {
		l, cs, err := ssimParts(pa, pb)
		if err != nil {
			return 0, err
		}
		wt := msWeights[s] / wsum
		if s == scales-1 {
			// Luminance enters only at the coarsest scale.
			result *= signedPow(l, wt) * signedPow(cs, wt)
		} else {
			result *= signedPow(cs, wt)
		}
		if s < scales-1 {
			pa = downsample2(pa)
			pb = downsample2(pb)
		}
	}
	return result, nil
}

// signedPow raises v to exponent w, clamping tiny negatives (possible in cs
// for adversarial inputs) to zero rather than producing NaN.
func signedPow(v, w float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Pow(v, w)
}
