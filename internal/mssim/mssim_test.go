package mssim

import (
	"image"
	"image/color"
	"math"
	"math/rand"
	"testing"
)

func grad(w, h int) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetGray(x, y, color.Gray{Y: uint8((x*3 + y*5) % 256)})
		}
	}
	return img
}

func noisy(src *image.Gray, amp float64, seed int64) *image.Gray {
	rng := rand.New(rand.NewSource(seed))
	b := src.Bounds()
	out := image.NewGray(b)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			v := float64(src.GrayAt(x, y).Y) + (rng.Float64()*2-1)*amp
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out.SetGray(x, y, color.Gray{Y: uint8(v)})
		}
	}
	return out
}

func TestSSIMIdentical(t *testing.T) {
	img := grad(64, 64)
	v, err := SSIM(img, img)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("SSIM(x,x) = %v, want 1", v)
	}
}

func TestMSSIMIdentical(t *testing.T) {
	img := grad(128, 96)
	v, err := MSSIM(img, img)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("MSSIM(x,x) = %v, want 1", v)
	}
}

func TestMSSIMDecreasesWithNoise(t *testing.T) {
	ref := grad(96, 96)
	prev := 1.0
	for _, amp := range []float64{5, 20, 60} {
		v, err := MSSIM(ref, noisy(ref, amp, 1))
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("MSSIM at noise %v = %v, not below %v", amp, v, prev)
		}
		if v <= 0 || v > 1 {
			t.Errorf("MSSIM at noise %v = %v out of (0,1]", amp, v)
		}
		prev = v
	}
}

func TestSSIMSizeMismatch(t *testing.T) {
	if _, err := SSIM(grad(32, 32), grad(16, 16)); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := MSSIM(grad(32, 32), grad(16, 16)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestMSSIMSmallImages(t *testing.T) {
	// Must not panic or NaN on images smaller than the 5-scale pyramid.
	for _, n := range []int{11, 16, 24, 40} {
		img := grad(n, n)
		v, err := MSSIM(img, noisy(img, 10, 2))
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if math.IsNaN(v) || v <= 0 || v > 1 {
			t.Errorf("size %d: MSSIM = %v", n, v)
		}
	}
}

func TestSSIMContrastInversion(t *testing.T) {
	// An inverted image should score far below a noisy copy.
	ref := grad(64, 64)
	inv := image.NewGray(ref.Bounds())
	for i, p := range ref.Pix {
		inv.Pix[i] = 255 - p
	}
	vInv, err := SSIM(ref, inv)
	if err != nil {
		t.Fatal(err)
	}
	vNoise, err := SSIM(ref, noisy(ref, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if vInv >= vNoise {
		t.Errorf("SSIM(inverted)=%v not below SSIM(noisy)=%v", vInv, vNoise)
	}
}

func TestDownsampleHalves(t *testing.T) {
	p := NewPlane(8, 6)
	for i := range p.Pix {
		p.Pix[i] = float64(i)
	}
	d := downsample2(p)
	if d.W != 4 || d.H != 3 {
		t.Fatalf("downsampled size %dx%d", d.W, d.H)
	}
	// Top-left 2×2 block of 0,1,8,9 averages to 4.5.
	if d.At(0, 0) != 4.5 {
		t.Errorf("d(0,0) = %v, want 4.5", d.At(0, 0))
	}
}
