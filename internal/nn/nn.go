// Package nn is a small from-scratch neural-network library: multi-layer
// perceptrons with ReLU activations, softmax cross-entropy loss, and SGD
// with momentum. The reproduction trains these models for real on decoded
// pixels — losses, accuracies, and gradients in the experiments are
// computed, not synthesized. Two model profiles ("resnetlike" and
// "shufflenetlike") pair a network shape with the paper's measured
// images/second service rates (§4.1, Figure 9) so that the virtual time
// axis reflects the paper's hardware balance.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully connected network with one hidden ReLU layer.
type MLP struct {
	In, Hidden, Out int

	// Parameters, row-major: W1 is Hidden×In, W2 is Out×Hidden.
	W1, B1, W2, B2 []float64

	// Momentum buffers, allocated lazily by Step.
	vW1, vB1, vW2, vB2 []float64
}

// NewMLP builds a network with He-initialized weights drawn from seed.
func NewMLP(in, hidden, out int, seed int64) (*MLP, error) {
	if in <= 0 || hidden <= 0 || out <= 1 {
		return nil, fmt.Errorf("nn: bad shape %d-%d-%d", in, hidden, out)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{
		In: in, Hidden: hidden, Out: out,
		W1: make([]float64, hidden*in),
		B1: make([]float64, hidden),
		W2: make([]float64, out*hidden),
		B2: make([]float64, out),
	}
	s1 := math.Sqrt(2 / float64(in))
	for i := range m.W1 {
		m.W1[i] = rng.NormFloat64() * s1
	}
	s2 := math.Sqrt(2 / float64(hidden))
	for i := range m.W2 {
		m.W2[i] = rng.NormFloat64() * s2
	}
	return m, nil
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	return len(m.W1) + len(m.B1) + len(m.W2) + len(m.B2)
}

// Clone deep-copies the parameters and momentum buffers; used for the
// checkpoint/rollback step of the paper's autotuner (§4.5). Because the
// optimizer velocity is part of the copy, training resumed from a restored
// checkpoint is bit-identical to a run where the probe never happened.
func (m *MLP) Clone() *MLP {
	c := &MLP{In: m.In, Hidden: m.Hidden, Out: m.Out}
	c.W1 = append([]float64(nil), m.W1...)
	c.B1 = append([]float64(nil), m.B1...)
	c.W2 = append([]float64(nil), m.W2...)
	c.B2 = append([]float64(nil), m.B2...)
	if m.vW1 != nil {
		c.vW1 = append([]float64(nil), m.vW1...)
		c.vB1 = append([]float64(nil), m.vB1...)
		c.vW2 = append([]float64(nil), m.vW2...)
		c.vB2 = append([]float64(nil), m.vB2...)
	}
	return c
}

// Restore copies parameters and momentum buffers from the checkpoint into m.
func (m *MLP) Restore(ckpt *MLP) error {
	if m.In != ckpt.In || m.Hidden != ckpt.Hidden || m.Out != ckpt.Out {
		return fmt.Errorf("nn: restore shape mismatch")
	}
	copy(m.W1, ckpt.W1)
	copy(m.B1, ckpt.B1)
	copy(m.W2, ckpt.W2)
	copy(m.B2, ckpt.B2)
	if ckpt.vW1 == nil {
		// The checkpoint predates the first optimizer step: clear any
		// velocity accumulated since, restoring the optimizer state too.
		m.vW1, m.vB1, m.vW2, m.vB2 = nil, nil, nil, nil
	} else {
		m.vW1 = append(m.vW1[:0], ckpt.vW1...)
		m.vB1 = append(m.vB1[:0], ckpt.vB1...)
		m.vW2 = append(m.vW2[:0], ckpt.vW2...)
		m.vB2 = append(m.vB2[:0], ckpt.vB2...)
	}
	return nil
}

// forward computes hidden activations and logits for one input.
func (m *MLP) forward(x []float64, hidden, logits []float64) {
	for h := 0; h < m.Hidden; h++ {
		s := m.B1[h]
		row := m.W1[h*m.In : (h+1)*m.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		if s < 0 {
			s = 0
		}
		hidden[h] = s
	}
	for o := 0; o < m.Out; o++ {
		s := m.B2[o]
		row := m.W2[o*m.Hidden : (o+1)*m.Hidden]
		for h, hv := range hidden {
			s += row[h] * hv
		}
		logits[o] = s
	}
}

// Predict returns the argmax class for one input.
func (m *MLP) Predict(x []float64) int {
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Out)
	m.forward(x, hidden, logits)
	best := 0
	for o := 1; o < m.Out; o++ {
		if logits[o] > logits[best] {
			best = o
		}
	}
	return best
}

// softmaxCE computes softmax probabilities in place over logits and returns
// the cross-entropy loss against the label.
func softmaxCE(logits []float64, label int) float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		logits[i] = e
		sum += e
	}
	for i := range logits {
		logits[i] /= sum
	}
	p := logits[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// Grads holds a full parameter gradient.
type Grads struct {
	W1, B1, W2, B2 []float64
}

// NewGrads allocates a zero gradient matching m's shape.
func (m *MLP) NewGrads() *Grads {
	return &Grads{
		W1: make([]float64, len(m.W1)),
		B1: make([]float64, len(m.B1)),
		W2: make([]float64, len(m.W2)),
		B2: make([]float64, len(m.B2)),
	}
}

// Flatten concatenates the gradient into one vector (for cosine-similarity
// comparisons between scan groups, §A.6).
func (g *Grads) Flatten() []float64 {
	out := make([]float64, 0, len(g.W1)+len(g.B1)+len(g.W2)+len(g.B2))
	out = append(out, g.W1...)
	out = append(out, g.B1...)
	out = append(out, g.W2...)
	out = append(out, g.B2...)
	return out
}

// Batch is a set of feature vectors with labels.
type Batch struct {
	X [][]float64
	Y []int
}

// Gradient computes the mean loss, accuracy, and parameter gradient over the
// batch.
func (m *MLP) Gradient(b Batch) (*Grads, float64, float64, error) {
	if len(b.X) == 0 || len(b.X) != len(b.Y) {
		return nil, 0, 0, fmt.Errorf("nn: bad batch (%d inputs, %d labels)", len(b.X), len(b.Y))
	}
	g := m.NewGrads()
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Out)
	dHidden := make([]float64, m.Hidden)
	var loss float64
	var correct int
	for n, x := range b.X {
		if len(x) != m.In {
			return nil, 0, 0, fmt.Errorf("nn: input %d has %d features, want %d", n, len(x), m.In)
		}
		y := b.Y[n]
		if y < 0 || y >= m.Out {
			return nil, 0, 0, fmt.Errorf("nn: label %d out of range [0,%d)", y, m.Out)
		}
		m.forward(x, hidden, logits)
		best := 0
		for o := 1; o < m.Out; o++ {
			if logits[o] > logits[best] {
				best = o
			}
		}
		if best == y {
			correct++
		}
		loss += softmaxCE(logits, y) // logits now hold probabilities

		// dLogits = p − onehot(y)
		logits[y] -= 1
		for h := range dHidden {
			dHidden[h] = 0
		}
		for o := 0; o < m.Out; o++ {
			d := logits[o]
			g.B2[o] += d
			row := g.W2[o*m.Hidden : (o+1)*m.Hidden]
			wrow := m.W2[o*m.Hidden : (o+1)*m.Hidden]
			for h, hv := range hidden {
				row[h] += d * hv
				dHidden[h] += d * wrow[h]
			}
		}
		for h := 0; h < m.Hidden; h++ {
			if hidden[h] <= 0 {
				continue // ReLU gate
			}
			d := dHidden[h]
			g.B1[h] += d
			row := g.W1[h*m.In : (h+1)*m.In]
			for i, xi := range x {
				row[i] += d * xi
			}
		}
	}
	inv := 1 / float64(len(b.X))
	for _, s := range [][]float64{g.W1, g.B1, g.W2, g.B2} {
		for i := range s {
			s[i] *= inv
		}
	}
	return g, loss * inv, float64(correct) * inv, nil
}

// Evaluate returns mean loss and accuracy without computing gradients.
func (m *MLP) Evaluate(b Batch) (loss, acc float64, err error) {
	if len(b.X) == 0 || len(b.X) != len(b.Y) {
		return 0, 0, fmt.Errorf("nn: bad batch")
	}
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Out)
	var correct int
	for n, x := range b.X {
		m.forward(x, hidden, logits)
		best := 0
		for o := 1; o < m.Out; o++ {
			if logits[o] > logits[best] {
				best = o
			}
		}
		if best == b.Y[n] {
			correct++
		}
		loss += softmaxCE(logits, b.Y[n])
	}
	n := float64(len(b.X))
	return loss / n, float64(correct) / n, nil
}

// Step applies one SGD-with-momentum update: v = μv − lr·g; θ += v.
func (m *MLP) Step(g *Grads, lr, momentum float64) {
	if m.vW1 == nil {
		m.vW1 = make([]float64, len(m.W1))
		m.vB1 = make([]float64, len(m.B1))
		m.vW2 = make([]float64, len(m.W2))
		m.vB2 = make([]float64, len(m.B2))
	}
	apply := func(p, v, grad []float64) {
		for i := range p {
			v[i] = momentum*v[i] - lr*grad[i]
			p[i] += v[i]
		}
	}
	apply(m.W1, m.vW1, g.W1)
	apply(m.B1, m.vB1, g.B1)
	apply(m.W2, m.vW2, g.W2)
	apply(m.B2, m.vB2, g.B2)
}

// CosineSimilarity returns a·b / (|a||b|), the gradient-agreement measure of
// §A.6 (1 means the compressed-data gradient points exactly along the
// full-quality gradient).
func CosineSimilarity(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("nn: vector length mismatch %d vs %d", len(a), len(b))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, fmt.Errorf("nn: zero-norm gradient")
	}
	return dot / math.Sqrt(na*nb), nil
}
