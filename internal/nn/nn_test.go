package nn

import (
	"math"
	"math/rand"
	"testing"
)

// xorish builds a small linearly-inseparable dataset.
func blobs(n, in, classes int, seed int64) Batch {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, in)
		for i := range centers[c] {
			centers[c][i] = rng.NormFloat64() * 2
		}
	}
	var b Batch
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, in)
		for j := range x {
			x[j] = centers[c][j] + rng.NormFloat64()*0.4
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, c)
	}
	return b
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(0, 4, 2, 1); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := NewMLP(4, 0, 2, 1); err == nil {
		t.Error("zero hidden accepted")
	}
	if _, err := NewMLP(4, 4, 1, 1); err == nil {
		t.Error("single class accepted")
	}
}

func TestGradientNumerically(t *testing.T) {
	// Central-difference check of the analytic gradient.
	m, err := NewMLP(5, 7, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b := blobs(8, 5, 3, 1)
	g, _, _, err := m.Gradient(b)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	check := func(name string, params []float64, grads []float64, idx int) {
		t.Helper()
		orig := params[idx]
		params[idx] = orig + eps
		lp, _, _ := m.Evaluate(b)
		params[idx] = orig - eps
		lm, _, _ := m.Evaluate(b)
		params[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-grads[idx]) > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %v vs numeric %v", name, idx, grads[idx], numeric)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		check("W1", m.W1, g.W1, rng.Intn(len(m.W1)))
		check("B1", m.B1, g.B1, rng.Intn(len(m.B1)))
		check("W2", m.W2, g.W2, rng.Intn(len(m.W2)))
		check("B2", m.B2, g.B2, rng.Intn(len(m.B2)))
	}
}

func TestTrainingConvergesOnBlobs(t *testing.T) {
	m, err := NewMLP(6, 16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	all := blobs(280, 6, 4, 11)
	train := Batch{X: all.X[:200], Y: all.Y[:200]}
	test := Batch{X: all.X[200:], Y: all.Y[200:]}
	var firstLoss float64
	for epoch := 0; epoch < 200; epoch++ {
		g, loss, _, err := m.Gradient(train)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			firstLoss = loss
		}
		m.Step(g, 0.05, 0.9)
	}
	finalLoss, acc, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if finalLoss >= firstLoss {
		t.Errorf("loss did not decrease: %v -> %v", firstLoss, finalLoss)
	}
	if acc < 0.9 {
		t.Errorf("test accuracy %.2f on separable blobs", acc)
	}
}

func TestCloneRestoreRollback(t *testing.T) {
	m, _ := NewMLP(4, 8, 3, 1)
	b := blobs(32, 4, 3, 2)
	ckpt := m.Clone()
	lossBefore, _, _ := m.Evaluate(b)
	for i := 0; i < 5; i++ {
		g, _, _, _ := m.Gradient(b)
		m.Step(g, 0.5, 0)
	}
	lossAfter, _, _ := m.Evaluate(b)
	if lossAfter == lossBefore {
		t.Fatal("training had no effect")
	}
	if err := m.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	lossRestored, _, _ := m.Evaluate(b)
	if lossRestored != lossBefore {
		t.Errorf("rollback imperfect: %v vs %v", lossRestored, lossBefore)
	}
	other, _ := NewMLP(4, 9, 3, 1)
	if err := m.Restore(other); err == nil {
		t.Error("shape-mismatched restore accepted")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float64{1, 0, 2}
	if s, err := CosineSimilarity(a, a); err != nil || math.Abs(s-1) > 1e-12 {
		t.Errorf("self similarity = %v, %v", s, err)
	}
	b := []float64{-1, 0, -2}
	if s, _ := CosineSimilarity(a, b); math.Abs(s+1) > 1e-12 {
		t.Errorf("opposite similarity = %v", s)
	}
	if _, err := CosineSimilarity(a, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CosineSimilarity(a, []float64{0, 0, 0}); err == nil {
		t.Error("zero vector accepted")
	}
}

func TestGradientValidation(t *testing.T) {
	m, _ := NewMLP(4, 4, 2, 1)
	if _, _, _, err := m.Gradient(Batch{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, _, err := m.Gradient(Batch{X: [][]float64{{1, 2}}, Y: []int{0}}); err == nil {
		t.Error("wrong feature width accepted")
	}
	if _, _, _, err := m.Gradient(Batch{X: [][]float64{{1, 2, 3, 4}}, Y: []int{5}}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := NewMLP(4, 4, 2, 99)
	b, _ := NewMLP(4, 4, 2, 99)
	for i := range a.W1 {
		if a.W1[i] != b.W1[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c, _ := NewMLP(4, 4, 2, 100)
	same := true
	for i := range a.W1 {
		if a.W1[i] != c.W1[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}

func TestProfiles(t *testing.T) {
	if _, err := ProfileByName("resnetlike"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	for _, p := range Profiles() {
		m, err := p.Build(100, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Hidden != p.Hidden {
			t.Errorf("%s hidden = %d", p.Name, m.Hidden)
		}
	}
	if ShuffleNetLike.ImagesPerSecPerGPU <= ResNetLike.ImagesPerSecPerGPU {
		t.Error("shufflenet profile should be faster per image")
	}
}
