package nn

import "fmt"

// ModelProfile pairs a network architecture with the measured per-GPU
// service rates the paper reports for it (§A.5 benchmark cluster speeds).
// The reproduction trains the Shape for real; the rates parameterize the
// virtual compute clock.
type ModelProfile struct {
	// Name is "resnetlike" or "shufflenetlike".
	Name string
	// Hidden is the MLP hidden width. The ResNet-18 stand-in is wider
	// (more statistical capacity, slower per image); the ShuffleNetv2
	// stand-in is narrower and faster — preserving the paper's contrast.
	Hidden int
	// ImagesPerSecPerGPU is the paper's measured FP16 single-GPU rate
	// (ResNet-18: 445, ShuffleNetv2: 750 on a TitanX).
	ImagesPerSecPerGPU float64
	// ClusterImagesPerSec is the paper's measured 10-worker aggregate rate
	// from cached data (ResNet-18: 4240, ShuffleNetv2: 7180).
	ClusterImagesPerSec float64
	// LR and Momentum are the optimizer defaults for this profile.
	LR, Momentum float64
}

// The two evaluation models.
var (
	ResNetLike = ModelProfile{
		Name:                "resnetlike",
		Hidden:              96,
		ImagesPerSecPerGPU:  445,
		ClusterImagesPerSec: 4240,
		LR:                  0.08,
		Momentum:            0.9,
	}
	ShuffleNetLike = ModelProfile{
		Name:                "shufflenetlike",
		Hidden:              40,
		ImagesPerSecPerGPU:  750,
		ClusterImagesPerSec: 7180,
		LR:                  0.08,
		Momentum:            0.9,
	}
)

// Profiles lists both evaluation models.
func Profiles() []ModelProfile { return []ModelProfile{ResNetLike, ShuffleNetLike} }

// ProfileByName looks up a model profile.
func ProfileByName(name string) (ModelProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return ModelProfile{}, fmt.Errorf("nn: unknown model %q", name)
}

// Build constructs the profile's network for the given input width and
// class count.
func (p ModelProfile) Build(in, classes int, seed int64) (*MLP, error) {
	return NewMLP(in, p.Hidden, classes, seed)
}
