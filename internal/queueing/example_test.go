package queueing_test

import (
	"fmt"
	"log"

	"repro/internal/queueing"
)

// Example computes the paper's headline quantity: the speedup of reading a
// scan group that halves mean image bytes, on an I/O-bound pipeline
// (Theorem A.5), and where the compute roofline clips it.
func Example() {
	p := queueing.Pipeline{
		BandwidthBps:        425e6, // the testbed's ~425 MB/s Ceph pool
		ComputeImagesPerSec: 7180,  // ShuffleNetv2 cluster rate from RAM
	}

	// Baseline ImageNet images average ~110 kB; scan group 5 halves that.
	s, err := p.Speedup(110e3, 55e3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2x byte reduction -> %.2fx speedup\n", s)

	// Below the crossover byte intensity the compute roof takes over.
	knee, err := p.CrossoverBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compute-bound below %.0f bytes/image\n", knee)

	s, err = p.Speedup(110e3, 11e3) // a 10x reduction cannot give 10x
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10x byte reduction -> only %.2fx (clipped by the roof)\n", s)

	// Output:
	// 2x byte reduction -> 1.86x speedup
	// compute-bound below 59192 bytes/image
	// 10x byte reduction -> only 1.86x (clipped by the roof)
}
