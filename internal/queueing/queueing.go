// Package queueing implements the paper's throughput analysis (Appendix
// A.2): the closed-loop data pipeline feeding an open compute unit, analyzed
// with Little's law. It predicts loader throughput from mean record size and
// device bandwidth (Lemmas A.1–A.2), the speedup of a scan group (Lemma
// A.3), and the whole-pipeline bound X ≤ min(Xc, Xg) (Lemma A.4 /
// Theorem A.5, visualized in Figure 14).
package queueing

import (
	"fmt"
	"math"
)

// Pipeline captures the two-stage model's parameters.
type Pipeline struct {
	// BandwidthBps is the storage system's aggregate delivery rate W.
	BandwidthBps float64
	// ComputeImagesPerSec is the compute unit's saturated service rate Xc.
	ComputeImagesPerSec float64
}

// LoaderThroughput returns Xg = W / E[s(x, g)] (Lemma A.2): the closed-loop
// loader's image rate when the mean image costs meanBytes at the chosen scan
// group.
func (p Pipeline) LoaderThroughput(meanBytes float64) (float64, error) {
	if meanBytes <= 0 {
		return 0, fmt.Errorf("queueing: non-positive mean image size %v", meanBytes)
	}
	if p.BandwidthBps <= 0 {
		return 0, fmt.Errorf("queueing: non-positive bandwidth %v", p.BandwidthBps)
	}
	return p.BandwidthBps / meanBytes, nil
}

// SystemThroughput returns X = min(Xc, Xg) (Lemma A.4): the training
// pipeline's image rate at the given mean image size.
func (p Pipeline) SystemThroughput(meanBytes float64) (float64, error) {
	xg, err := p.LoaderThroughput(meanBytes)
	if err != nil {
		return 0, err
	}
	if p.ComputeImagesPerSec > 0 && p.ComputeImagesPerSec < xg {
		return p.ComputeImagesPerSec, nil
	}
	return xg, nil
}

// Speedup returns the maximum achievable speedup of reading scan group g
// instead of the baseline (Theorem A.5): E[s(x)] / E[s(x,g)], clipped by the
// compute roofline.
func (p Pipeline) Speedup(baselineMeanBytes, groupMeanBytes float64) (float64, error) {
	xBase, err := p.SystemThroughput(baselineMeanBytes)
	if err != nil {
		return 0, err
	}
	xGroup, err := p.SystemThroughput(groupMeanBytes)
	if err != nil {
		return 0, err
	}
	return xGroup / xBase, nil
}

// IsIOBound reports whether the pipeline is storage-bound at the given mean
// image size (Xg < Xc).
func (p Pipeline) IsIOBound(meanBytes float64) (bool, error) {
	xg, err := p.LoaderThroughput(meanBytes)
	if err != nil {
		return false, err
	}
	return p.ComputeImagesPerSec <= 0 || xg < p.ComputeImagesPerSec, nil
}

// CrossoverBytes returns the byte intensity at which the pipeline moves from
// compute-bound to I/O-bound: images smaller than this leave the compute
// unit as the bottleneck (the knee in Figure 14).
func (p Pipeline) CrossoverBytes() (float64, error) {
	if p.ComputeImagesPerSec <= 0 {
		return 0, fmt.Errorf("queueing: compute rate not set")
	}
	if p.BandwidthBps <= 0 {
		return 0, fmt.Errorf("queueing: bandwidth not set")
	}
	return p.BandwidthBps / p.ComputeImagesPerSec, nil
}

// RooflinePoint is one sample of the Figure 14 curve.
type RooflinePoint struct {
	// BytesPerImage is the x-axis byte intensity.
	BytesPerImage float64
	// ImagesPerSec is the achieved system throughput.
	ImagesPerSec float64
	// IOBound marks which regime the point falls in.
	IOBound bool
}

// Roofline sweeps byte intensity over [minBytes, maxBytes] in n
// multiplicative steps and returns the throughput curve of Figure 14.
func (p Pipeline) Roofline(minBytes, maxBytes float64, n int) ([]RooflinePoint, error) {
	if n < 2 || minBytes <= 0 || maxBytes <= minBytes {
		return nil, fmt.Errorf("queueing: bad sweep [%v,%v]x%d", minBytes, maxBytes, n)
	}
	pts := make([]RooflinePoint, 0, n)
	ratio := maxBytes / minBytes
	for i := 0; i < n; i++ {
		b := minBytes * math.Pow(ratio, float64(i)/float64(n-1))
		x, err := p.SystemThroughput(b)
		if err != nil {
			return nil, err
		}
		io, err := p.IsIOBound(b)
		if err != nil {
			return nil, err
		}
		pts = append(pts, RooflinePoint{BytesPerImage: b, ImagesPerSec: x, IOBound: io})
	}
	return pts, nil
}
