package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoaderThroughput(t *testing.T) {
	p := Pipeline{BandwidthBps: 400e6, ComputeImagesPerSec: 4240}
	x, err := p.LoaderThroughput(110e3) // ImageNet-like mean image
	if err != nil {
		t.Fatal(err)
	}
	want := 400e6 / 110e3
	if math.Abs(x-want) > 1e-9 {
		t.Errorf("Xg = %v, want %v", x, want)
	}
}

func TestSystemThroughputMinRule(t *testing.T) {
	p := Pipeline{BandwidthBps: 400e6, ComputeImagesPerSec: 4240}
	// Large images: I/O bound.
	x, _ := p.SystemThroughput(400e3)
	if x != 1000 {
		t.Errorf("I/O-bound X = %v, want 1000", x)
	}
	// Tiny images: compute bound.
	x, _ = p.SystemThroughput(10e3)
	if x != 4240 {
		t.Errorf("compute-bound X = %v, want 4240", x)
	}
}

func TestSpeedupTheoremA5(t *testing.T) {
	// Deep in the I/O-bound regime, speedup equals the size ratio.
	p := Pipeline{BandwidthBps: 100e6, ComputeImagesPerSec: 1e9}
	s, err := p.Speedup(110e3, 55e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("speedup = %v, want 2", s)
	}
	// Near the compute roofline the speedup is clipped.
	p.ComputeImagesPerSec = 1500
	s, _ = p.Speedup(110e3, 11e3) // raw ratio 10x
	raw := 10.0
	if s >= raw {
		t.Errorf("speedup %v not clipped below raw ratio %v", s, raw)
	}
	if s <= 1 {
		t.Errorf("speedup %v should still exceed 1", s)
	}
}

func TestCrossover(t *testing.T) {
	p := Pipeline{BandwidthBps: 400e6, ComputeImagesPerSec: 4000}
	c, err := p.CrossoverBytes()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-100e3) > 1e-9 {
		t.Errorf("crossover = %v, want 100e3", c)
	}
	io, _ := p.IsIOBound(c * 1.01)
	if !io {
		t.Error("just above crossover should be I/O bound")
	}
	io, _ = p.IsIOBound(c * 0.99)
	if io {
		t.Error("just below crossover should be compute bound")
	}
}

func TestRooflineShape(t *testing.T) {
	p := Pipeline{BandwidthBps: 400e6, ComputeImagesPerSec: 4240}
	pts, err := p.Roofline(5e3, 500e3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 40 {
		t.Fatalf("%d points", len(pts))
	}
	// Throughput must be non-increasing in byte intensity, flat at the
	// compute roof, and 1/x beyond the knee.
	sawFlat, sawDecline := false, false
	for i := 1; i < len(pts); i++ {
		if pts[i].ImagesPerSec > pts[i-1].ImagesPerSec+1e-9 {
			t.Fatalf("throughput increased at %v bytes", pts[i].BytesPerImage)
		}
		if pts[i].ImagesPerSec == pts[i-1].ImagesPerSec {
			sawFlat = true
		} else {
			sawDecline = true
		}
	}
	if !sawFlat || !sawDecline {
		t.Errorf("roofline should have both a flat roof and a declining slope (flat=%v decline=%v)", sawFlat, sawDecline)
	}
}

func TestSpeedupNeverExceedsSizeRatioQuick(t *testing.T) {
	f := func(w, xc uint32, base, group uint16) bool {
		p := Pipeline{
			BandwidthBps:        float64(w%1000+1) * 1e6,
			ComputeImagesPerSec: float64(xc%10000 + 1),
		}
		b := float64(base%500+1) * 1e3
		g := float64(group%500+1) * 1e3
		if g > b {
			b, g = g, b
		}
		s, err := p.Speedup(b, g)
		if err != nil {
			return false
		}
		return s <= b/g+1e-9 && s >= 1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidationErrors(t *testing.T) {
	p := Pipeline{}
	if _, err := p.LoaderThroughput(100); err == nil {
		t.Error("zero bandwidth accepted")
	}
	p = Pipeline{BandwidthBps: 1e6}
	if _, err := p.LoaderThroughput(0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := p.CrossoverBytes(); err == nil {
		t.Error("missing compute rate accepted")
	}
	if _, err := p.Roofline(10, 5, 10); err == nil {
		t.Error("inverted sweep accepted")
	}
}
