// Package realtrain trains the reproduction's models over REAL I/O: batches
// come out of a pcr.Loader streaming an on-disk (or remote) dataset, not out
// of the iosim virtual clock. Wall-clock time, bytes moved, and stall time
// are measured, not simulated — this is the harness behind cmd/pcrtrain's
// default mode, producing the paper's Figure-11-style per-epoch numbers
// from a live storage path.
//
// The split of roles with internal/train is deliberate: train owns the
// virtual-clock experiments that regenerate the paper's figures under the
// paper's hardware balance; realtrain owns the production-style loop where
// the dataset is bytes on a disk or a prefix server and quality is a live
// I/O knob (the PlateauPolicy adapter feeds real observed losses back into
// the §4.5 plateau heuristic).
package realtrain

import (
	"context"
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

// Config configures one real-I/O training run.
type Config struct {
	// Model selects the architecture and optimizer defaults.
	Model nn.ModelProfile
	// Task remaps the dataset's stored fine labels.
	Task synth.Task
	// Epochs is the epoch budget (must be positive).
	Epochs int
	// BatchSize is the SGD minibatch size (default 32).
	BatchSize int
	// Seed drives model init and the loader's shuffle.
	Seed int64
	// Policy chooses per-record read quality. Nil means FixedQuality(Full).
	// A policy with a Report(float64) method (PlateauPolicy, ProbePolicy)
	// additionally receives every minibatch loss, closing the paper's §4.5
	// loop on real observations; a ProbeDriver (ProbePolicy) is also told
	// about learning-rate drops and gets its upward probes run at epoch
	// boundaries — model checkpointed, probe minibatches trained per
	// candidate quality through Loader.ProbeBatches, updates rolled back.
	Policy pcr.QualityPolicy
	// Shards and ShardIndex partition records across distributed workers
	// (defaults: 1 shard, index 0).
	Shards, ShardIndex int
	// ShuffleWindow is the loader's shuffle buffer in records (0 = loader
	// default).
	ShuffleWindow int
	// LRDropAt lists epoch fractions where the LR drops 10× (default
	// {1/3, 2/3}, mirroring the paper's schedule).
	LRDropAt []float64
}

// lossReporter is the feedback half of an adaptive policy: every minibatch
// loss is fed through it.
type lossReporter interface {
	Report(loss float64)
}

// ProbeDriver is the harness-facing surface of a bidirectional quality
// policy (pcr.ProbePolicy implements it). The harness reports improvement
// signals in through ReportLRDrop; when the policy wants an upward probe,
// ProbePlan returns the candidate qualities and the per-candidate minibatch
// budget, the harness measures each candidate on checkpointed model state,
// and CompleteProbe hands the results back for the policy's decision.
type ProbeDriver interface {
	pcr.QualityPolicy
	ReportLRDrop()
	ProbePlan() (candidates []int, steps int, ok bool)
	CompleteProbe(results []pcr.ProbeResult)
	// Quality returns the policy's current quality, so the harness can
	// report whether a completed probe re-ascended it.
	Quality() int
}

// EpochResult is one epoch's measured curve point.
type EpochResult struct {
	Epoch int
	// TrainLoss is the epoch's mean minibatch loss.
	TrainLoss float64
	// Stats are the loader's measured I/O numbers for this epoch.
	Stats pcr.EpochStats
}

// Result is a full real-I/O training run.
type Result struct {
	Epochs []EpochResult
	// FinalLoss is the last epoch's mean loss.
	FinalLoss float64
	// TotalBytes sums bytes read across epochs (probe reads excluded; see
	// ProbeBytes).
	TotalBytes int64
	// TotalWall is the measured wall-clock of all epochs.
	TotalWall time.Duration
	// Probes counts upward probes run; ProbeWins counts probes whose
	// winning candidate re-ascended the quality; ProbeBytes sums the
	// logical record prefix bytes the probes read (with a warm disk cache
	// the network moves only the scan-group delta).
	Probes, ProbeWins int
	ProbeBytes        int64
}

// Run trains cfg.Model through a pcr.Loader over ds. The dataset must be a
// record-granular format; it may come from pcr.Open or pcr.OpenRemote —
// the loop is identical either way.
func Run(ctx context.Context, ds *pcr.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("realtrain: non-positive epochs")
	}
	if cfg.Task.Map == nil || cfg.Task.NumClasses < 2 {
		return nil, fmt.Errorf("realtrain: missing task")
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	drops := cfg.LRDropAt
	if drops == nil {
		drops = []float64{1.0 / 3, 2.0 / 3}
	}
	policy := cfg.Policy
	if policy == nil {
		policy = pcr.FixedQuality(pcr.Full)
	}

	// Apply the shard config unconditionally so WithShard's validation runs
	// even for a lone worker: `ShardIndex: 1` with Shards unset must error,
	// not silently train the whole dataset.
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	opts := []pcr.LoaderOption{
		pcr.WithBatchSize(batch),
		pcr.WithLoaderSeed(cfg.Seed),
		pcr.WithQualityPolicy(policy),
		pcr.WithShard(cfg.ShardIndex, shards),
	}
	if cfg.ShuffleWindow > 0 {
		opts = append(opts, pcr.WithShuffleWindow(cfg.ShuffleWindow))
	}
	loader, err := pcr.NewLoader(ds, opts...)
	if err != nil {
		return nil, err
	}

	model, err := cfg.Model.Build(train.FeatureLen, cfg.Task.NumClasses, cfg.Seed)
	if err != nil {
		return nil, err
	}
	reporter, _ := policy.(lossReporter)
	driver, _ := policy.(ProbeDriver)

	res := &Result{}
	lr := cfg.Model.LR
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, frac := range drops {
			if epoch == int(frac*float64(cfg.Epochs)) && epoch > 0 {
				lr /= 10
				// An LR drop is the paper's improvement signal: the policy
				// may ask for an upward probe in response.
				if driver != nil {
					driver.ReportLRDrop()
				}
			}
		}
		// Run any pending upward probe at the epoch boundary, before the
		// epoch streams: its reads fold into this epoch's ProbeBytes and
		// its winning quality applies from this epoch's first record.
		if driver != nil {
			ran, won, probeBytes, err := probeOnce(ctx, loader, model, driver, cfg.Task, lr, cfg.Model.Momentum)
			if err != nil {
				return nil, err
			}
			if ran {
				res.Probes++
				res.ProbeBytes += probeBytes
				if won {
					res.ProbeWins++
				}
			}
		}
		var epochLoss float64
		var steps int
		for b, err := range loader.Epoch(ctx, epoch) {
			if err != nil {
				return nil, err
			}
			nb := toNNBatch(b, cfg.Task)
			grads, loss, _, err := model.Gradient(nb)
			if err != nil {
				return nil, err
			}
			model.Step(grads, lr, cfg.Model.Momentum)
			epochLoss += loss
			steps++
			// Feed the adaptive policy real observations at minibatch
			// granularity; the loader re-resolves quality at the next
			// record boundary, so a plateau cheapens the epoch in flight.
			if reporter != nil {
				reporter.Report(loss)
			}
		}
		if steps == 0 {
			return nil, fmt.Errorf("realtrain: epoch %d delivered no batches", epoch)
		}
		stats, ok := loader.LastEpochStats()
		if !ok {
			return nil, fmt.Errorf("realtrain: epoch %d completed without stats", epoch)
		}
		pt := EpochResult{
			Epoch:     epoch,
			TrainLoss: epochLoss / float64(steps),
			Stats:     stats,
		}
		res.Epochs = append(res.Epochs, pt)
		res.FinalLoss = pt.TrainLoss
		res.TotalBytes += stats.BytesRead
		res.TotalWall += stats.Wall
	}
	return res, nil
}

// toNNBatch featurizes one loader batch for the model.
func toNNBatch(b pcr.Batch, task synth.Task) nn.Batch {
	nb := nn.Batch{
		X: make([][]float64, 0, len(b.Samples)),
		Y: make([]int, 0, len(b.Samples)),
	}
	for _, s := range b.Samples {
		nb.X = append(nb.X, train.Featurize(s.Image))
		nb.Y = append(nb.Y, task.Map(int(s.Label)))
	}
	return nb
}

// probeOnce runs the driver's pending upward probe, if any: it checkpoints
// the model (parameters AND optimizer velocity), trains `steps` probe
// minibatches per candidate quality on out-of-band loader reads — each
// candidate starting from the same checkpoint and reading the SAME records
// (one Probe handle per probe), so the losses differ by quality, not by
// which random records each candidate happened to draw — hands the
// measured losses to the policy, and rolls every probe update back.
// Training that follows is bit-identical to a run where a losing probe
// never happened.
func probeOnce(ctx context.Context, loader *pcr.Loader, model *nn.MLP, driver ProbeDriver, task synth.Task, lr, momentum float64) (ran, won bool, bytes int64, err error) {
	cands, steps, ok := driver.ProbePlan()
	if !ok || len(cands) == 0 {
		return false, false, 0, nil
	}
	ckpt := model.Clone()
	probe := loader.Probe()
	results := make([]pcr.ProbeResult, 0, len(cands))
	for _, q := range cands {
		if err := model.Restore(ckpt); err != nil {
			return false, false, bytes, err
		}
		batches, probeBytes, err := probe.Batches(ctx, q, steps)
		if err != nil {
			return false, false, bytes, err
		}
		bytes += probeBytes
		var last float64
		for _, b := range batches {
			grads, loss, _, err := model.Gradient(toNNBatch(b, task))
			if err != nil {
				return false, false, bytes, err
			}
			model.Step(grads, lr, momentum)
			last = loss
		}
		results = append(results, pcr.ProbeResult{Quality: q, Loss: last, Bytes: probeBytes})
	}
	// Roll back: probe minibatches must not perturb the real trajectory.
	if err := model.Restore(ckpt); err != nil {
		return false, false, bytes, err
	}
	driver.CompleteProbe(results)
	return true, driver.Quality() > cands[0], bytes, nil
}
