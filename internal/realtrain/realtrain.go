// Package realtrain trains the reproduction's models over REAL I/O: batches
// come out of a pcr.Loader streaming an on-disk (or remote) dataset, not out
// of the iosim virtual clock. Wall-clock time, bytes moved, and stall time
// are measured, not simulated — this is the harness behind cmd/pcrtrain's
// default mode, producing the paper's Figure-11-style per-epoch numbers
// from a live storage path.
//
// The split of roles with internal/train is deliberate: train owns the
// virtual-clock experiments that regenerate the paper's figures under the
// paper's hardware balance; realtrain owns the production-style loop where
// the dataset is bytes on a disk or a prefix server and quality is a live
// I/O knob (the PlateauPolicy adapter feeds real observed losses back into
// the §4.5 plateau heuristic).
package realtrain

import (
	"context"
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/train"
	"repro/pcr"
)

// Config configures one real-I/O training run.
type Config struct {
	// Model selects the architecture and optimizer defaults.
	Model nn.ModelProfile
	// Task remaps the dataset's stored fine labels.
	Task synth.Task
	// Epochs is the epoch budget (must be positive).
	Epochs int
	// BatchSize is the SGD minibatch size (default 32).
	BatchSize int
	// Seed drives model init and the loader's shuffle.
	Seed int64
	// Policy chooses per-record read quality. Nil means FixedQuality(Full).
	// A *pcr.PlateauPolicy additionally receives every minibatch loss
	// through Report, closing the paper's §4.5 loop on real observations.
	Policy pcr.QualityPolicy
	// Shards and ShardIndex partition records across distributed workers
	// (defaults: 1 shard, index 0).
	Shards, ShardIndex int
	// ShuffleWindow is the loader's shuffle buffer in records (0 = loader
	// default).
	ShuffleWindow int
	// LRDropAt lists epoch fractions where the LR drops 10× (default
	// {1/3, 2/3}, mirroring the paper's schedule).
	LRDropAt []float64
}

// EpochResult is one epoch's measured curve point.
type EpochResult struct {
	Epoch int
	// TrainLoss is the epoch's mean minibatch loss.
	TrainLoss float64
	// Stats are the loader's measured I/O numbers for this epoch.
	Stats pcr.EpochStats
}

// Result is a full real-I/O training run.
type Result struct {
	Epochs []EpochResult
	// FinalLoss is the last epoch's mean loss.
	FinalLoss float64
	// TotalBytes sums bytes read across epochs.
	TotalBytes int64
	// TotalWall is the measured wall-clock of all epochs.
	TotalWall time.Duration
}

// Run trains cfg.Model through a pcr.Loader over ds. The dataset must be a
// record-granular format; it may come from pcr.Open or pcr.OpenRemote —
// the loop is identical either way.
func Run(ctx context.Context, ds *pcr.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("realtrain: non-positive epochs")
	}
	if cfg.Task.Map == nil || cfg.Task.NumClasses < 2 {
		return nil, fmt.Errorf("realtrain: missing task")
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	drops := cfg.LRDropAt
	if drops == nil {
		drops = []float64{1.0 / 3, 2.0 / 3}
	}
	policy := cfg.Policy
	if policy == nil {
		policy = pcr.FixedQuality(pcr.Full)
	}

	// Apply the shard config unconditionally so WithShard's validation runs
	// even for a lone worker: `ShardIndex: 1` with Shards unset must error,
	// not silently train the whole dataset.
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	opts := []pcr.LoaderOption{
		pcr.WithBatchSize(batch),
		pcr.WithLoaderSeed(cfg.Seed),
		pcr.WithQualityPolicy(policy),
		pcr.WithShard(cfg.ShardIndex, shards),
	}
	if cfg.ShuffleWindow > 0 {
		opts = append(opts, pcr.WithShuffleWindow(cfg.ShuffleWindow))
	}
	loader, err := pcr.NewLoader(ds, opts...)
	if err != nil {
		return nil, err
	}

	model, err := cfg.Model.Build(train.FeatureLen, cfg.Task.NumClasses, cfg.Seed)
	if err != nil {
		return nil, err
	}
	plateau, _ := policy.(*pcr.PlateauPolicy)

	res := &Result{}
	lr := cfg.Model.LR
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, frac := range drops {
			if epoch == int(frac*float64(cfg.Epochs)) && epoch > 0 {
				lr /= 10
			}
		}
		var epochLoss float64
		var steps int
		for b, err := range loader.Epoch(ctx, epoch) {
			if err != nil {
				return nil, err
			}
			nb := nn.Batch{
				X: make([][]float64, 0, len(b.Samples)),
				Y: make([]int, 0, len(b.Samples)),
			}
			for _, s := range b.Samples {
				nb.X = append(nb.X, train.Featurize(s.Image))
				nb.Y = append(nb.Y, cfg.Task.Map(int(s.Label)))
			}
			grads, loss, _, err := model.Gradient(nb)
			if err != nil {
				return nil, err
			}
			model.Step(grads, lr, cfg.Model.Momentum)
			epochLoss += loss
			steps++
			// Feed the adaptive policy real observations at minibatch
			// granularity; the loader re-resolves quality at the next
			// record boundary, so a plateau cheapens the epoch in flight.
			if plateau != nil {
				plateau.Report(loss)
			}
		}
		if steps == 0 {
			return nil, fmt.Errorf("realtrain: epoch %d delivered no batches", epoch)
		}
		stats, ok := loader.LastEpochStats()
		if !ok {
			return nil, fmt.Errorf("realtrain: epoch %d completed without stats", epoch)
		}
		pt := EpochResult{
			Epoch:     epoch,
			TrainLoss: epochLoss / float64(steps),
			Stats:     stats,
		}
		res.Epochs = append(res.Epochs, pt)
		res.FinalLoss = pt.TrainLoss
		res.TotalBytes += stats.BytesRead
		res.TotalWall += stats.Wall
	}
	return res, nil
}
