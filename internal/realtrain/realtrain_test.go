package realtrain_test

import (
	"context"
	"testing"

	"repro/internal/nn"
	"repro/internal/realtrain"
	"repro/internal/synth"
	"repro/pcr"
)

func buildDataset(t *testing.T) (string, synth.Profile) {
	t.Helper()
	dir := t.TempDir()
	if _, err := pcr.Synthesize(dir, "cars", 0.1, 7,
		pcr.WithImagesPerRecord(4), pcr.WithScanGroups(3)); err != nil {
		t.Fatal(err)
	}
	p, err := synth.ProfileByName("cars")
	if err != nil {
		t.Fatal(err)
	}
	return dir, p
}

// TestShardedWorkersCoverDataset: two shard workers together consume every
// image exactly once per epoch, with shard byte totals summing to the
// whole-dataset epoch.
func TestShardedWorkersCoverDataset(t *testing.T) {
	dir, profile := buildDataset(t)
	cfg := realtrain.Config{
		Model:     nn.ShuffleNetLike,
		Task:      synth.Multiclass(profile),
		Epochs:    1,
		BatchSize: 8,
		Seed:      5,
	}

	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	whole, err := realtrain.Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var images int
	var bytes int64
	for shard := 0; shard < 2; shard++ {
		sds, err := pcr.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		scfg := cfg
		scfg.Shards, scfg.ShardIndex = 2, shard
		res, err := realtrain.Run(context.Background(), sds, scfg)
		sds.Close()
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		images += res.Epochs[0].Stats.Images
		bytes += res.Epochs[0].Stats.BytesRead
	}
	if images != ds.NumImages() {
		t.Fatalf("shards consumed %d images, want %d", images, ds.NumImages())
	}
	if bytes != whole.Epochs[0].Stats.BytesRead {
		t.Fatalf("shard bytes sum to %d, whole-dataset epoch read %d", bytes, whole.Epochs[0].Stats.BytesRead)
	}
}

func TestRunValidation(t *testing.T) {
	dir, profile := buildDataset(t)
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model: nn.ShuffleNetLike, Task: synth.Multiclass(profile),
	}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model: nn.ShuffleNetLike, Epochs: 1,
	}); err == nil {
		t.Fatal("missing task accepted")
	}
	// A shard index without a shard count must fail loudly, not silently
	// train the whole dataset on every worker.
	if _, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model: nn.ShuffleNetLike, Task: synth.Multiclass(profile), Epochs: 1,
		ShardIndex: 1,
	}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}
