package realtrain_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/autotune"
	"repro/internal/nn"
	"repro/internal/realtrain"
	"repro/internal/synth"
	"repro/pcr"
)

func buildDataset(t *testing.T) (string, synth.Profile) {
	t.Helper()
	dir := t.TempDir()
	if _, err := pcr.Synthesize(dir, "cars", 0.1, 7,
		pcr.WithImagesPerRecord(4), pcr.WithScanGroups(3)); err != nil {
		t.Fatal(err)
	}
	p, err := synth.ProfileByName("cars")
	if err != nil {
		t.Fatal(err)
	}
	return dir, p
}

// TestShardedWorkersCoverDataset: two shard workers together consume every
// image exactly once per epoch, with shard byte totals summing to the
// whole-dataset epoch.
func TestShardedWorkersCoverDataset(t *testing.T) {
	dir, profile := buildDataset(t)
	cfg := realtrain.Config{
		Model:     nn.ShuffleNetLike,
		Task:      synth.Multiclass(profile),
		Epochs:    1,
		BatchSize: 8,
		Seed:      5,
	}

	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	whole, err := realtrain.Run(context.Background(), ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var images int
	var bytes int64
	for shard := 0; shard < 2; shard++ {
		sds, err := pcr.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		scfg := cfg
		scfg.Shards, scfg.ShardIndex = 2, shard
		res, err := realtrain.Run(context.Background(), sds, scfg)
		sds.Close()
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		images += res.Epochs[0].Stats.Images
		bytes += res.Epochs[0].Stats.BytesRead
	}
	if images != ds.NumImages() {
		t.Fatalf("shards consumed %d images, want %d", images, ds.NumImages())
	}
	if bytes != whole.Epochs[0].Stats.BytesRead {
		t.Fatalf("shard bytes sum to %d, whole-dataset epoch read %d", bytes, whole.Epochs[0].Stats.BytesRead)
	}
}

// aggressiveDetector plateaus on essentially every report, driving the
// policy to Min within the first epoch's minibatches.
func aggressiveDetector() autotune.PlateauDetector {
	return autotune.PlateauDetector{Window: 1, MinImprove: 0.99}
}

// losingProbeDriver pins quality at 1 and asks for an upward probe on
// every LR drop but never adopts a winner — so two runs, with and without
// probes, read identical bytes in identical order, and any trajectory
// difference can only come from probe updates leaking past the rollback.
type losingProbeDriver struct {
	cands []int

	mu     sync.Mutex
	wanted bool
}

func (d *losingProbeDriver) RecordQuality(int, int) int { return 1 }
func (d *losingProbeDriver) Quality() int               { return 1 }

func (d *losingProbeDriver) ReportLRDrop() {
	d.mu.Lock()
	d.wanted = true
	d.mu.Unlock()
}

func (d *losingProbeDriver) ProbePlan() ([]int, int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.wanted {
		return nil, 0, false
	}
	return d.cands, 2, true
}

func (d *losingProbeDriver) CompleteProbe([]pcr.ProbeResult) {
	d.mu.Lock()
	d.wanted = false
	d.mu.Unlock()
}

// TestProbeRollbackTrajectoryUnchanged is the rollback half of the §4.5
// probe contract: a run whose upward probes all lose must be bit-identical
// — per-epoch losses and bytes — to the same run with no probes at all.
// The probe minibatches really were rolled back, model parameters AND
// optimizer momentum (a leaked momentum buffer alone would shift every
// loss after the probe).
func TestProbeRollbackTrajectoryUnchanged(t *testing.T) {
	dir, profile := buildDataset(t)
	base := realtrain.Config{
		Model:     nn.ShuffleNetLike,
		Task:      synth.Multiclass(profile),
		Epochs:    6,
		BatchSize: 8,
		Seed:      5,
	}

	run := func(policy pcr.QualityPolicy) *realtrain.Result {
		t.Helper()
		ds, err := pcr.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		cfg := base
		cfg.Policy = policy
		res, err := realtrain.Run(context.Background(), ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	withProbes := run(&losingProbeDriver{cands: []int{1, 2, 3}})
	noProbes := run(pcr.FixedQuality(1))

	if withProbes.Probes != 2 { // LR drops at epochs 2 and 4
		t.Fatalf("ran %d probes, want 2", withProbes.Probes)
	}
	if withProbes.ProbeWins != 0 {
		t.Fatalf("losing probes recorded %d wins", withProbes.ProbeWins)
	}
	if withProbes.ProbeBytes == 0 {
		t.Fatal("probes read no bytes")
	}
	descendOnly := noProbes
	for i := range withProbes.Epochs {
		a, b := withProbes.Epochs[i], descendOnly.Epochs[i]
		if a.TrainLoss != b.TrainLoss {
			t.Fatalf("epoch %d loss %v with probes, %v without — probe updates leaked into the model",
				i, a.TrainLoss, b.TrainLoss)
		}
		if a.Stats.BytesRead != b.Stats.BytesRead {
			t.Fatalf("epoch %d read %d bytes with probes, %d without — probe reads leaked into BytesRead",
				i, a.Stats.BytesRead, b.Stats.BytesRead)
		}
	}
	// The probes themselves are visible in the probe accounting instead:
	// every probe byte read lands in some epoch's ProbeBytes.
	var probeBytes int64
	var passes int
	for _, e := range withProbes.Epochs {
		probeBytes += e.Stats.ProbeBytes
		passes += e.Stats.Probes
	}
	if probeBytes != withProbes.ProbeBytes {
		t.Fatalf("EpochStats fold %d probe bytes, Result says %d", probeBytes, withProbes.ProbeBytes)
	}
	if passes < withProbes.Probes {
		t.Fatalf("EpochStats fold %d probe passes for %d probes", passes, withProbes.Probes)
	}
}

// forcedWinDriver doctors each probe's measured losses so the top
// candidate decisively wins, making re-ascension deterministic; everything
// else — plan, probe reads, rollback, bookkeeping — is the real
// ProbePolicy.
type forcedWinDriver struct{ *pcr.ProbePolicy }

func (d *forcedWinDriver) CompleteProbe(results []pcr.ProbeResult) {
	doctored := append([]pcr.ProbeResult(nil), results...)
	for i := range doctored[:len(doctored)-1] {
		doctored[i].Loss = 1e9
	}
	doctored[len(doctored)-1].Loss = 1
	d.ProbePolicy.CompleteProbe(doctored)
}

// TestProbeWinReascendsQuality: a winning upward probe at an LR drop moves
// the policy back to full quality, and the very next epoch's reads happen
// there — the §4.5 bidirectional behavior the descend-only policy lacked.
func TestProbeWinReascendsQuality(t *testing.T) {
	dir, profile := buildDataset(t)
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	driver := &forcedWinDriver{&pcr.ProbePolicy{
		Detector:   aggressiveDetector(),
		ProbeSteps: 2,
	}}
	res, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model:     nn.ShuffleNetLike,
		Task:      synth.Multiclass(profile),
		Epochs:    4,
		BatchSize: 8,
		Seed:      5,
		Policy:    driver,
		LRDropAt:  []float64{0.75}, // one drop, at epoch 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != 1 || res.ProbeWins != 1 {
		t.Fatalf("probes run/won = %d/%d, want 1/1", res.Probes, res.ProbeWins)
	}
	full := ds.Qualities()
	// Epochs between the first-epoch descent and the probe run entirely at
	// the floor; the probe epoch re-ascends from its first record.
	pre := res.Epochs[2].Stats
	if pre.MaxQuality != 1 {
		t.Fatalf("pre-probe epoch qualities [%d,%d], want floor 1", pre.MinQuality, pre.MaxQuality)
	}
	post := res.Epochs[3].Stats
	if post.MaxQuality != full {
		t.Fatalf("post-probe epoch qualities [%d,%d]: quality did not re-ascend to %d",
			post.MinQuality, post.MaxQuality, full)
	}
	if post.Probes == 0 || post.ProbeBytes != res.ProbeBytes {
		t.Fatalf("probe accounting not folded into the probe epoch: %+v", post)
	}
	run, wins := driver.Probes()
	if run != 1 || wins != 1 {
		t.Fatalf("policy counted %d probes / %d wins, want 1/1", run, wins)
	}
}

func TestRunValidation(t *testing.T) {
	dir, profile := buildDataset(t)
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model: nn.ShuffleNetLike, Task: synth.Multiclass(profile),
	}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model: nn.ShuffleNetLike, Epochs: 1,
	}); err == nil {
		t.Fatal("missing task accepted")
	}
	// A shard index without a shard count must fail loudly, not silently
	// train the whole dataset on every worker.
	if _, err := realtrain.Run(context.Background(), ds, realtrain.Config{
		Model: nn.ShuffleNetLike, Task: synth.Multiclass(profile), Epochs: 1,
		ShardIndex: 1,
	}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}
