package recordio

import (
	"fmt"

	"repro/internal/wire"
)

// Example is the payload stored in one TFRecord frame: a labeled encoded
// image, mirroring tf.train.Example's role.
type Example struct {
	// ID is the sample's dataset-wide index.
	ID int64
	// Label is the task label.
	Label int64
	// JPEG holds the encoded image bytes.
	JPEG []byte
}

// Field numbers of the Example wire message.
const (
	fieldID    = 1
	fieldLabel = 2
	fieldJPEG  = 3
)

// Marshal encodes the example in protobuf wire format.
func (e *Example) Marshal() []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint64(fieldID, uint64(e.ID))
	enc.Int64(fieldLabel, e.Label)
	enc.Bytes(fieldJPEG, e.JPEG)
	return enc.Encode()
}

// UnmarshalExample decodes an Example from wire format.
func UnmarshalExample(data []byte) (*Example, error) {
	e := &Example{}
	d := wire.NewDecoder(data)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("recordio: example: %w", err)
		}
		switch field {
		case fieldID:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			e.ID = int64(v)
		case fieldLabel:
			v, err := d.Int64()
			if err != nil {
				return nil, err
			}
			e.Label = v
		case fieldJPEG:
			v, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			e.JPEG = append([]byte(nil), v...)
		default:
			if err := d.Skip(wtype); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}
