package recordio

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FilePerImage is the simplest dataset layout: one encoded image per file,
// grouped into per-class directories, the way PyTorch's ImageFolder expects.
// The paper's Figure 1 contrasts its highly random read behaviour with
// record layouts.
type FilePerImage struct {
	dir string
}

// CreateFilePerImage initializes the layout rooted at dir.
func CreateFilePerImage(dir string) (*FilePerImage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recordio: %w", err)
	}
	return &FilePerImage{dir: dir}, nil
}

// OpenFilePerImage opens an existing layout.
func OpenFilePerImage(dir string) (*FilePerImage, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("recordio: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("recordio: %s is not a directory", dir)
	}
	return &FilePerImage{dir: dir}, nil
}

// Put stores one image under its label's class directory.
func (f *FilePerImage) Put(id int64, label int64, jpeg []byte) error {
	classDir := filepath.Join(f.dir, fmt.Sprintf("class-%04d", label))
	if err := os.MkdirAll(classDir, 0o755); err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	path := filepath.Join(classDir, fmt.Sprintf("%08d.jpg", id))
	if err := os.WriteFile(path, jpeg, 0o644); err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	return nil
}

// Entry locates one stored image.
type Entry struct {
	ID    int64
	Label int64
	Path  string
	Size  int64
}

// List enumerates all stored images sorted by ID.
func (f *FilePerImage) List() ([]Entry, error) {
	var entries []Entry
	classDirs, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("recordio: %w", err)
	}
	for _, cd := range classDirs {
		if !cd.IsDir() || !strings.HasPrefix(cd.Name(), "class-") {
			continue
		}
		label, err := strconv.ParseInt(strings.TrimPrefix(cd.Name(), "class-"), 10, 64)
		if err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(f.dir, cd.Name()))
		if err != nil {
			return nil, fmt.Errorf("recordio: %w", err)
		}
		for _, fe := range files {
			name := fe.Name()
			if !strings.HasSuffix(name, ".jpg") {
				continue
			}
			id, err := strconv.ParseInt(strings.TrimSuffix(name, ".jpg"), 10, 64)
			if err != nil {
				continue
			}
			info, err := fe.Info()
			if err != nil {
				return nil, fmt.Errorf("recordio: %w", err)
			}
			entries = append(entries, Entry{
				ID:    id,
				Label: label,
				Path:  filepath.Join(f.dir, cd.Name(), name),
				Size:  info.Size(),
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return entries, nil
}

// Get reads one image by entry.
func (f *FilePerImage) Get(e Entry) ([]byte, error) {
	data, err := os.ReadFile(e.Path)
	if err != nil {
		return nil, fmt.Errorf("recordio: %w", err)
	}
	return data, nil
}

// ManifestName is the file WriteManifest produces at the dataset root.
const ManifestName = "manifest.txt"

// ParseManifest decodes a manifest written by WriteManifest. Entry paths
// are relative to the dataset root (slash-separated), which is what lets a
// loader resolve them through any storage backend instead of walking a
// local directory tree.
func ParseManifest(data []byte) ([]Entry, error) {
	var entries []Entry
	for ln, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Entry
		if _, err := fmt.Sscanf(line, "%d %d %s %d", &e.ID, &e.Label, &e.Path, &e.Size); err != nil {
			return nil, fmt.Errorf("recordio: manifest line %d: %w", ln+1, err)
		}
		if e.Size < 0 {
			return nil, fmt.Errorf("recordio: manifest line %d: negative size %d", ln+1, e.Size)
		}
		e.Path = filepath.ToSlash(e.Path)
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteManifest stores a deterministic listing (id label path size per
// line), which loaders use to avoid directory walks on every epoch.
func (f *FilePerImage) WriteManifest() error {
	entries, err := f.List()
	if err != nil {
		return err
	}
	out, err := os.Create(filepath.Join(f.dir, ManifestName))
	if err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	defer out.Close()
	w := bufio.NewWriter(out)
	for _, e := range entries {
		rel, err := filepath.Rel(f.dir, e.Path)
		if err != nil {
			return fmt.Errorf("recordio: %w", err)
		}
		fmt.Fprintf(w, "%d %d %s %d\n", e.ID, e.Label, rel, e.Size)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	return nil
}
