// Package recordio implements the baseline storage layouts the paper
// compares PCRs against (§2.1, §4.4): TFRecord-compatible framed records
// (length + masked CRC32C, the TensorFlow format) and a File-per-Image
// directory layout (PyTorch ImageFolder style, whose highly random reads
// Figure 1 contrasts with record formats). The file-per-image manifest
// (WriteManifest/ParseManifest) lists entries by dataset-relative path, so
// loaders can resolve images through any storage backend instead of
// walking a local directory tree.
package recordio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskCRC applies TensorFlow's CRC masking so that CRCs stored alongside the
// data they cover do not collide with CRCs of that stored form.
func maskCRC(crc uint32) uint32 {
	return (crc>>15 | crc<<17) + 0xa282ead8
}

// ErrBadCRC reports a frame whose checksum does not match.
var ErrBadCRC = errors.New("recordio: crc mismatch")

// Writer emits TFRecord-framed records.
type Writer struct {
	w io.Writer
	n int64
}

// NewWriter returns a Writer framing records onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// BytesWritten reports the total bytes emitted so far.
func (w *Writer) BytesWritten() int64 { return w.n }

// Write frames one record: length(8) + crc(length)(4) + data + crc(data)(4).
func (w *Writer) Write(data []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(data)))
	binary.LittleEndian.PutUint32(hdr[8:12], maskCRC(crc32.Checksum(hdr[0:8], castagnoli)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], maskCRC(crc32.Checksum(data, castagnoli)))
	if _, err := w.w.Write(foot[:]); err != nil {
		return fmt.Errorf("recordio: %w", err)
	}
	w.n += int64(12 + len(data) + 4)
	return nil
}

// Reader iterates TFRecord frames.
type Reader struct {
	r io.Reader
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record, io.EOF at a clean end of stream, or
// io.ErrUnexpectedEOF / ErrBadCRC on damage.
func (r *Reader) Next() ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	if maskCRC(crc32.Checksum(hdr[0:8], castagnoli)) != binary.LittleEndian.Uint32(hdr[8:12]) {
		return nil, fmt.Errorf("%w (length)", ErrBadCRC)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	if n > 1<<32 {
		return nil, fmt.Errorf("recordio: unreasonable record length %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	var foot [4]byte
	if _, err := io.ReadFull(r.r, foot[:]); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if maskCRC(crc32.Checksum(data, castagnoli)) != binary.LittleEndian.Uint32(foot[:]) {
		return nil, fmt.Errorf("%w (data)", ErrBadCRC)
	}
	return data, nil
}

// FrameOverhead is the per-record framing cost in bytes.
const FrameOverhead = 12 + 4
