package recordio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTFRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xAB}, 10000),
		[]byte("last"),
	}
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes := int64(0)
	for _, rec := range records {
		wantBytes += int64(len(rec) + FrameOverhead)
	}
	if w.BytesWritten() != wantBytes {
		t.Errorf("BytesWritten = %d, want %d", w.BytesWritten(), wantBytes)
	}

	r := NewReader(&buf)
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestTFRecordQuick(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(payload); err != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTFRecordDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(bytes.Repeat([]byte("data"), 100))
	raw := buf.Bytes()

	// Flip one byte at several positions; every flip must be detected.
	for _, pos := range []int{0, 5, 9, 12, 100, len(raw) - 2} {
		dam := append([]byte(nil), raw...)
		dam[pos] ^= 0x01
		_, err := NewReader(bytes.NewReader(dam)).Next()
		if err == nil {
			t.Errorf("corruption at byte %d not detected", pos)
		}
	}
}

func TestTFRecordTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(make([]byte, 256))
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 13 {
		_, err := NewReader(bytes.NewReader(raw[:cut])).Next()
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if errors.Is(err, io.EOF) && cut > 0 {
			t.Fatalf("truncation at %d reported clean EOF", cut)
		}
	}
}

func TestExampleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		e := &Example{
			ID:    rng.Int63(),
			Label: rng.Int63n(1000) - 500,
			JPEG:  make([]byte, rng.Intn(500)),
		}
		rng.Read(e.JPEG)
		got, err := UnmarshalExample(e.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != e.ID || got.Label != e.Label || !bytes.Equal(got.JPEG, e.JPEG) {
			t.Fatalf("example %d mismatch", i)
		}
	}
}

func TestExampleRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalExample([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFilePerImageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f, err := CreateFilePerImage(dir)
	if err != nil {
		t.Fatal(err)
	}
	type img struct {
		id, label int64
		data      []byte
	}
	imgs := []img{
		{0, 3, []byte("aaa")},
		{1, 3, []byte("bbbb")},
		{2, 7, []byte("c")},
	}
	for _, im := range imgs {
		if err := f.Put(im.id, im.label, im.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WriteManifest(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenFilePerImage(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := g.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listed %d entries", len(entries))
	}
	for i, e := range entries {
		if e.ID != imgs[i].id || e.Label != imgs[i].label {
			t.Errorf("entry %d = %+v", i, e)
		}
		data, err := g.Get(e)
		if err != nil || !bytes.Equal(data, imgs[i].data) {
			t.Errorf("entry %d data mismatch (%v)", i, err)
		}
		if e.Size != int64(len(imgs[i].data)) {
			t.Errorf("entry %d size = %d", i, e.Size)
		}
	}
}

func TestOpenFilePerImageMissing(t *testing.T) {
	if _, err := OpenFilePerImage("/nonexistent/path"); err == nil {
		t.Error("missing dir accepted")
	}
}
