package serve

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// Retry policy for the client's idempotent GETs (index, record, range
// reads): a mid-epoch connection reset or truncated response body must not
// abort a whole training epoch, so each read gets a small bounded budget of
// attempts with jittered exponential backoff. Per-attempt limits are the
// http.Client's own timeouts, so the worst case stays bounded.
const (
	retryAttempts  = 3
	retryBaseDelay = 50 * time.Millisecond
)

// retryDelay returns the backoff before retry attempt i (0-based): the
// exponential base delay plus up to one base-delay unit of jitter, so
// concurrent workers that failed together do not retry in lockstep.
func retryDelay(attempt int) time.Duration {
	d := retryBaseDelay << attempt
	return d + time.Duration(rand.Int63n(int64(d)))
}

// drainClose consumes what remains of a response body (up to a small cap
// — error bodies are short) and closes it, so the transport can return
// the connection to the idle pool instead of tearing it down. Closing an
// unread body kills the connection; in a retry loop that is a fresh TCP
// and TLS handshake per attempt, exactly when the server is struggling.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 4<<10))
	body.Close()
}

// retryableStatus reports whether a response status is worth retrying: the
// transient server-side 5xx family. Client errors (404, 416) are
// deterministic and fail immediately.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client is the read side of the wire protocol: a core.Backend whose
// objects are the records of a remote prefix server. Plugged into
// core.OpenDatasetIndex it gives a remote reader the exact local read path
// — sequential prefix reads become single Range requests, and the LRU
// prefix cache's delta upgrades (§5) become Range requests for only the
// missing bytes.
type Client struct {
	base string // normalized base URL, no trailing slash
	hc   *http.Client
	// ownedTransport is the transport built for the default client; Close
	// shuts its idle connections down. Nil when the caller supplied the
	// http.Client (then connection lifecycle is theirs).
	ownedTransport *http.Transport

	mu      sync.Mutex
	idx     *core.Index
	byName  map[string]int // lazy name → idx.Records index (ReadSamples)
	shard   int
	nshards int // 0 = whole index
}

// NewClient returns a Client for the prefix server at baseURL
// (e.g. "http://host:8100"). A nil httpClient gets a default with bounded
// dial/header/request timeouts so a wedged server fails a read instead of
// hanging a scan forever; pass an explicit client to change the limits
// (record prefix reads are size-bounded, so the 2-minute request cap is
// generous at any realistic bandwidth).
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("serve: bad server url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("serve: bad server url %q: want http:// or https://", baseURL)
	}
	var owned *http.Transport
	if httpClient == nil {
		owned = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		}
		httpClient = &http.Client{Timeout: 2 * time.Minute, Transport: owned}
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: httpClient, ownedTransport: owned}, nil
}

// SetShard restricts the client to stride shard index-of-count of the
// dataset: FetchIndex downloads only the shard view
// (GET /index?shard=i&nshards=n), so a distributed worker's index transfer
// — and everything planned from it — is proportional to its share of the
// dataset. Must be called before the first FetchIndex; the served shard
// view lists records r with r % count == index, the same disjoint
// partition pcr.Loader's WithShard computes locally.
func (c *Client) SetShard(index, count int) error {
	if count <= 0 {
		return fmt.Errorf("serve: shard count must be positive, got %d", count)
	}
	if index < 0 || index >= count {
		return fmt.Errorf("serve: shard index %d out of range [0,%d)", index, count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx != nil {
		return fmt.Errorf("serve: SetShard after the index was fetched")
	}
	c.shard, c.nshards = index, count
	return nil
}

// FetchIndex retrieves and caches the dataset's record index (the shard
// view when SetShard was called).
func (c *Client) FetchIndex() (*core.Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx != nil {
		return c.idx, nil
	}
	url := c.base + "/index"
	if c.nshards > 0 {
		url = fmt.Sprintf("%s/index?shard=%d&nshards=%d", c.base, c.shard, c.nshards)
	}
	var data []byte
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryDelay(attempt - 1))
		}
		var retryable bool
		data, retryable, lastErr = c.fetchIndexOnce(url)
		if lastErr == nil {
			break
		}
		if !retryable {
			return nil, lastErr
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	ix, err := core.ParseIndex(data)
	if err != nil {
		return nil, err
	}
	c.idx = ix
	return ix, nil
}

// fetchIndexOnce is one FetchIndex attempt; retryable marks failures worth
// another try (transport errors, 5xx, truncated bodies).
func (c *Client) fetchIndexOnce(url string) (data []byte, retryable bool, err error) {
	resp, err := c.hc.Get(url)
	if err != nil {
		return nil, true, fmt.Errorf("serve: fetching index: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, retryableStatus(resp.StatusCode), fmt.Errorf("serve: fetching index: server returned %s", resp.Status)
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, fmt.Errorf("serve: fetching index: %w", err)
	}
	return data, false, nil
}

func (c *Client) recordURL(name string) string {
	return c.base + "/records/" + url.PathEscape(name)
}

// Open streams the whole named record. The initial request is retried on
// transient failures (connection errors, 5xx); once the body is streaming
// it belongs to the caller, so a mid-stream failure surfaces as a read
// error there — record readers use ReadRange, which retries the whole
// window.
func (c *Client) Open(name string) (io.ReadCloser, error) {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryDelay(attempt - 1))
		}
		body, retryable, err := c.openOnce(name)
		if err == nil {
			return body, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// openOnce is one Open attempt; retryable marks failures worth another try
// (on this or — for a cluster client — another member).
func (c *Client) openOnce(name string) (body io.ReadCloser, retryable bool, err error) {
	resp, err := c.hc.Get(c.recordURL(name))
	if err != nil {
		return nil, true, fmt.Errorf("serve: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		drainClose(resp.Body)
		if resp.StatusCode == http.StatusMisdirectedRequest {
			return nil, true, &misdirectedError{name: name, owner: resp.Header.Get(ownerHeader)}
		}
		return nil, retryableStatus(resp.StatusCode),
			fmt.Errorf("serve: reading %s: server returned %s", name, resp.Status)
	}
	return resp.Body, false, nil
}

// misdirectedError reports a 421 from a fleet member: the client's ring
// placed the record on a member that disagrees — stale membership, not a
// broken record. It is retryable after a membership refresh; the owner
// header tells the cluster client where the server thinks the record
// lives.
type misdirectedError struct {
	name  string
	owner string
}

func (e *misdirectedError) Error() string {
	return fmt.Sprintf("serve: reading %s: misdirected (owner is %s)", e.name, e.owner)
}

// ReadRange reads [offset, offset+length) of the named record with one
// HTTP Range request per attempt: transient failures — a reset connection,
// a 5xx, a response body cut short mid-transfer — are retried with
// jittered backoff up to the attempt budget, so one flaky read does not
// abort a whole scan or training epoch. A 416 means the index promised
// bytes the server does not have — structural damage, reported immediately
// as core.ErrCorrupt like a truncated local file.
func (c *Client) ReadRange(name string, offset, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	if length < 0 {
		return nil, fmt.Errorf("serve: negative range length %d for %s", length, name)
	}
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryDelay(attempt - 1))
		}
		buf, retryable, err := c.readRangeOnce(name, offset, length, false)
		if err == nil {
			return buf, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// readRangeOnce is one ReadRange attempt; retryable marks failures worth
// another try. hedge marks the request as a tail-latency hedge (the
// X-Pcr-Hedge header), so the receiving member's /varz shows hedged load.
func (c *Client) readRangeOnce(name string, offset, length int64, hedge bool) (buf []byte, retryable bool, err error) {
	req, err := http.NewRequest(http.MethodGet, c.recordURL(name), nil)
	if err != nil {
		return nil, false, fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", offset, offset+length-1))
	if hedge {
		req.Header.Set(hedgeHeader, "1")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("serve: reading %s: %w", name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		buf := make([]byte, length)
		if n, err := io.ReadFull(resp.Body, buf); err != nil {
			// Could be a dropped connection (transient) or a truly short
			// object; retry, and report ErrCorrupt only once the budget is
			// spent.
			return nil, true, fmt.Errorf("serve: reading %s: %w: truncated response (got %d of %d bytes)",
				name, core.ErrCorrupt, n, length)
		}
		return buf, false, nil
	case http.StatusOK:
		// The server ignored the Range header; take the window out of the
		// full body.
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, true, fmt.Errorf("serve: reading %s: %w", name, err)
		}
		if int64(len(body)) < offset+length {
			return nil, false, fmt.Errorf("serve: reading %s: %w: object is %d bytes, want [%d,%d)",
				name, core.ErrCorrupt, len(body), offset, offset+length)
		}
		return body[offset : offset+length], false, nil
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, false, fmt.Errorf("serve: reading %s: %w: range [%d,%d) past end of record",
			name, core.ErrCorrupt, offset, offset+length)
	case http.StatusMisdirectedRequest:
		return nil, true, &misdirectedError{name: name, owner: resp.Header.Get(ownerHeader)}
	default:
		return nil, retryableStatus(resp.StatusCode),
			fmt.Errorf("serve: reading %s: server returned %s", name, resp.Status)
	}
}

// recordInfo resolves a record name against the client's cached index,
// fetching the index on first use.
func (c *Client) recordInfo(name string) (*core.RecordInfo, error) {
	ix, err := c.FetchIndex()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byName == nil {
		c.byName = make(map[string]int, len(ix.Records))
		for i, re := range ix.Records {
			c.byName[re.Name] = i
		}
	}
	i, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("serve: no record %q in the index", name)
	}
	return &ix.Records[i], nil
}

// ReadSamples implements core.SampleReader over the wire: one GET with the
// selection as a compact bitmap (?group=g&samples=b), answered by a
// pushdown-aware server with only the selected samples' coalesced byte
// ranges. The expected ranges are computed client-side from the same index
// the server holds, so the response is verified by length. An old server
// ignores the samples parameter and sends the full group prefix; the
// response then lacks the pushdown header and the client extracts the
// ranges locally — same bytes, no transfer savings. Transient failures
// retry like ReadRange.
var _ core.SampleReader = (*Client)(nil)

func (c *Client) ReadSamples(name string, group int, sel []bool) ([]byte, error) {
	re, err := c.recordInfo(name)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(retryDelay(attempt - 1))
		}
		buf, retryable, err := c.readSamplesOnce(re, group, sel, false)
		if err == nil {
			return buf, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// readSamplesOnce is one ReadSamples attempt; retryable marks failures
// worth another try (on this or — for a cluster client — another member).
func (c *Client) readSamplesOnce(re *core.RecordInfo, group int, sel []bool, hedge bool) (buf []byte, retryable bool, err error) {
	if group >= len(re.Prefixes) {
		group = len(re.Prefixes) - 1 // mirror the server's clamp
	}
	ranges, err := re.SampleRanges(group, sel)
	if err != nil {
		return nil, false, err
	}
	want := core.RangesTotal(ranges)
	u := fmt.Sprintf("%s?group=%d&samples=%s", c.recordURL(re.Name), group, encodeSampleBitmap(sel))
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, false, fmt.Errorf("serve: %w", err)
	}
	if hedge {
		req.Header.Set(hedgeHeader, "1")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("serve: reading %s: %w", re.Name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if resp.Header.Get(pushdownHeader) != "" {
			buf := make([]byte, want)
			if n, err := io.ReadFull(resp.Body, buf); err != nil {
				return nil, true, fmt.Errorf("serve: reading %s: %w: truncated pushdown response (got %d of %d bytes)",
					re.Name, core.ErrCorrupt, n, want)
			}
			return buf, false, nil
		}
		// Fallback: the server predates pushdown, ignored ?samples=, and
		// served the whole group prefix. Extract the ranges locally.
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, true, fmt.Errorf("serve: reading %s: %w", re.Name, err)
		}
		if int64(len(body)) < re.Prefixes[group] {
			return nil, false, fmt.Errorf("serve: reading %s: %w: group %d prefix is %d bytes, got %d",
				re.Name, core.ErrCorrupt, group, re.Prefixes[group], len(body))
		}
		out, err := core.GatherRanges(body, ranges)
		if err != nil {
			return nil, false, err
		}
		return out, false, nil
	case http.StatusMisdirectedRequest:
		return nil, true, &misdirectedError{name: re.Name, owner: resp.Header.Get(ownerHeader)}
	default:
		return nil, retryableStatus(resp.StatusCode),
			fmt.Errorf("serve: reading %s: server returned %s", re.Name, resp.Status)
	}
}

// List returns the record object names from the server's index.
func (c *Client) List() ([]string, error) {
	ix, err := c.FetchIndex()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ix.Records))
	for _, re := range ix.Records {
		names = append(names, re.Name)
	}
	return names, nil
}

// Close releases the client: the default transport's idle connections are
// shut down; a caller-supplied http.Client is left untouched.
func (c *Client) Close() error {
	if c.ownedTransport != nil {
		c.ownedTransport.CloseIdleConnections()
	}
	return nil
}
