package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// Client is the read side of the wire protocol: a core.Backend whose
// objects are the records of a remote prefix server. Plugged into
// core.OpenDatasetIndex it gives a remote reader the exact local read path
// — sequential prefix reads become single Range requests, and the LRU
// prefix cache's delta upgrades (§5) become Range requests for only the
// missing bytes.
type Client struct {
	base string // normalized base URL, no trailing slash
	hc   *http.Client
	// ownedTransport is the transport built for the default client; Close
	// shuts its idle connections down. Nil when the caller supplied the
	// http.Client (then connection lifecycle is theirs).
	ownedTransport *http.Transport

	mu      sync.Mutex
	idx     *core.Index
	shard   int
	nshards int // 0 = whole index
}

// NewClient returns a Client for the prefix server at baseURL
// (e.g. "http://host:8100"). A nil httpClient gets a default with bounded
// dial/header/request timeouts so a wedged server fails a read instead of
// hanging a scan forever; pass an explicit client to change the limits
// (record prefix reads are size-bounded, so the 2-minute request cap is
// generous at any realistic bandwidth).
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("serve: bad server url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("serve: bad server url %q: want http:// or https://", baseURL)
	}
	var owned *http.Transport
	if httpClient == nil {
		owned = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		}
		httpClient = &http.Client{Timeout: 2 * time.Minute, Transport: owned}
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: httpClient, ownedTransport: owned}, nil
}

// SetShard restricts the client to stride shard index-of-count of the
// dataset: FetchIndex downloads only the shard view
// (GET /index?shard=i&nshards=n), so a distributed worker's index transfer
// — and everything planned from it — is proportional to its share of the
// dataset. Must be called before the first FetchIndex; the served shard
// view lists records r with r % count == index, the same disjoint
// partition pcr.Loader's WithShard computes locally.
func (c *Client) SetShard(index, count int) error {
	if count <= 0 {
		return fmt.Errorf("serve: shard count must be positive, got %d", count)
	}
	if index < 0 || index >= count {
		return fmt.Errorf("serve: shard index %d out of range [0,%d)", index, count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx != nil {
		return fmt.Errorf("serve: SetShard after the index was fetched")
	}
	c.shard, c.nshards = index, count
	return nil
}

// FetchIndex retrieves and caches the dataset's record index (the shard
// view when SetShard was called).
func (c *Client) FetchIndex() (*core.Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx != nil {
		return c.idx, nil
	}
	url := c.base + "/index"
	if c.nshards > 0 {
		url = fmt.Sprintf("%s/index?shard=%d&nshards=%d", c.base, c.shard, c.nshards)
	}
	resp, err := c.hc.Get(url)
	if err != nil {
		return nil, fmt.Errorf("serve: fetching index: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: fetching index: server returned %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: fetching index: %w", err)
	}
	ix, err := core.ParseIndex(data)
	if err != nil {
		return nil, err
	}
	c.idx = ix
	return ix, nil
}

func (c *Client) recordURL(name string) string {
	return c.base + "/records/" + url.PathEscape(name)
}

// Open streams the whole named record.
func (c *Client) Open(name string) (io.ReadCloser, error) {
	resp, err := c.hc.Get(c.recordURL(name))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("serve: reading %s: server returned %s", name, resp.Status)
	}
	return resp.Body, nil
}

// ReadRange reads [offset, offset+length) of the named record with one
// HTTP Range request. A 416 means the index promised bytes the server does
// not have — structural damage, reported as core.ErrCorrupt like a
// truncated local file.
func (c *Client) ReadRange(name string, offset, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	if length < 0 {
		return nil, fmt.Errorf("serve: negative range length %d for %s", length, name)
	}
	req, err := http.NewRequest(http.MethodGet, c.recordURL(name), nil)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", offset, offset+length-1))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: reading %s: %w", name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent:
		buf := make([]byte, length)
		if n, err := io.ReadFull(resp.Body, buf); err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w: truncated response (got %d of %d bytes)",
				name, core.ErrCorrupt, n, length)
		}
		return buf, nil
	case http.StatusOK:
		// The server ignored the Range header; take the window out of the
		// full body.
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("serve: reading %s: %w", name, err)
		}
		if int64(len(body)) < offset+length {
			return nil, fmt.Errorf("serve: reading %s: %w: object is %d bytes, want [%d,%d)",
				name, core.ErrCorrupt, len(body), offset, offset+length)
		}
		return body[offset : offset+length], nil
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, fmt.Errorf("serve: reading %s: %w: range [%d,%d) past end of record",
			name, core.ErrCorrupt, offset, offset+length)
	default:
		return nil, fmt.Errorf("serve: reading %s: server returned %s", name, resp.Status)
	}
}

// List returns the record object names from the server's index.
func (c *Client) List() ([]string, error) {
	ix, err := c.FetchIndex()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ix.Records))
	for _, re := range ix.Records {
		names = append(names, re.Name)
	}
	return names, nil
}

// Close releases the client: the default transport's idle connections are
// shut down; a caller-supplied http.Client is left untouched.
func (c *Client) Close() error {
	if c.ownedTransport != nil {
		c.ownedTransport.CloseIdleConnections()
	}
	return nil
}
