package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Cluster-client tuning knobs. Hedge delays derive from the observed read
// latency distribution (see hedgeDelay); the down-member TTL bounds how
// long a dead member keeps absorbing first-attempt connection failures
// before the client stops preferring it.
const (
	// defaultHedgeFloor is the minimum hedge delay when the caller sets
	// none: local fleets complete reads in well under this, so hedging
	// stays dormant until the tail genuinely misbehaves.
	defaultHedgeFloor = 25 * time.Millisecond
	// latencyWindow is how many recent successful read durations feed the
	// hedge-delay quantiles.
	latencyWindow = 64
	// downTTL is how long a member that failed a read is deprioritized
	// before the client gives it another first-choice chance.
	downTTL = 2 * time.Second
)

// ClusterStats snapshots a ClusterClient's fleet counters.
type ClusterStats struct {
	// Hedges counts backup requests fired because the first replica
	// exceeded the hedge delay; HedgeWins counts hedges whose response
	// was used.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// Failovers counts reads that abandoned one member for the next
	// replica after a transient failure.
	Failovers int64 `json:"failovers"`
	// Refreshes counts membership re-resolutions (/cluster re-fetches
	// after a member died or a server reported the ring stale).
	Refreshes int64 `json:"refreshes"`
	// Misdirects counts 421 responses — a member that disagreed with
	// this client's ring about a record's placement.
	Misdirects int64 `json:"misdirects"`
}

// ClusterClient is the fleet-aware read side of the wire protocol: a
// core.Backend over a sharded, replicated set of prefix servers. It
// bootstraps membership from any seed's /cluster endpoint, rebuilds the
// same consistent-hash ring every server uses (placement is deterministic,
// so no coordination is needed), and routes every record read to the
// record's owner. Tail latency is hedged: a read that exceeds a
// p99-derived delay is re-sent to the next replica and the first response
// wins. A member that dies mid-scan is failed over through the same
// bounded-retry machinery the single-server client uses — the read moves
// to the surviving replicas and membership is re-resolved — so a scan or
// training epoch keeps streaming through a server kill as long as each
// record retains one live replica.
//
// A ClusterClient pointed at a standalone (non-fleet) server degrades
// cleanly: /cluster synthesizes a single-member fleet, the ring routes
// everything there, and hedging never has a second replica to aim at.
type ClusterClient struct {
	seeds []string
	hc    *http.Client
	// ownedTransport is the transport built for the default client; Close
	// shuts its idle connections down (per-member Clients share hc and
	// own nothing).
	ownedTransport *http.Transport

	// hedgeFloor is the minimum hedge delay; negative disables hedging.
	hedgeFloor time.Duration

	mu      sync.Mutex
	info    *cluster.Info
	ring    *cluster.Ring
	clients map[string]*Client
	down    map[string]time.Time // member -> down-until
	idx     *core.Index
	byName  map[string]int // lazy name → idx.Records index (ReadSamples)
	shard   int
	nshards int // 0 = whole index

	latMu sync.Mutex
	lats  []time.Duration // ring buffer of recent successful read durations
	latIx int

	hedges     atomic.Int64
	hedgeWins  atomic.Int64
	failovers  atomic.Int64
	refreshes  atomic.Int64
	misdirects atomic.Int64
}

// NewClusterClient returns a cluster-aware client bootstrapped from the
// given seed URLs (any member of the fleet; one is enough — the rest of
// the membership comes from /cluster). A nil httpClient gets the same
// bounded-timeout default as NewClient. Membership is fetched lazily on
// the first read or FetchIndex, so constructing a client does not require
// a live fleet.
func NewClusterClient(seedURLs []string, httpClient *http.Client) (*ClusterClient, error) {
	if len(seedURLs) == 0 {
		return nil, fmt.Errorf("serve: cluster client needs at least one seed URL")
	}
	seeds := make([]string, 0, len(seedURLs))
	for _, s := range seedURLs {
		// Validate and normalize each seed exactly as NewClient does.
		c, err := NewClient(s, http.DefaultClient)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, c.base)
	}
	var owned *http.Transport
	if httpClient == nil {
		owned = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		}
		httpClient = &http.Client{Timeout: 2 * time.Minute, Transport: owned}
	}
	return &ClusterClient{
		seeds:          seeds,
		hc:             httpClient,
		ownedTransport: owned,
		clients:        make(map[string]*Client),
		down:           make(map[string]time.Time),
	}, nil
}

// SetHedgeDelay sets the hedge delay floor: a read hedges to the next
// replica when its first attempt has been in flight for
// max(floor, p99-derived delay). Zero restores the default floor; a
// negative value disables hedging entirely (reads still fail over on
// errors — hedging only concerns slowness, not failure).
func (c *ClusterClient) SetHedgeDelay(floor time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hedgeFloor = floor
}

// SetShard restricts FetchIndex to stride shard index-of-count, exactly
// like Client.SetShard. Must be called before the first FetchIndex.
func (c *ClusterClient) SetShard(index, count int) error {
	if count <= 0 {
		return fmt.Errorf("serve: shard count must be positive, got %d", count)
	}
	if index < 0 || index >= count {
		return fmt.Errorf("serve: shard index %d out of range [0,%d)", index, count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx != nil {
		return fmt.Errorf("serve: SetShard after the index was fetched")
	}
	c.shard, c.nshards = index, count
	return nil
}

// Stats snapshots the client's fleet counters.
func (c *ClusterClient) Stats() ClusterStats {
	return ClusterStats{
		Hedges:     c.hedges.Load(),
		HedgeWins:  c.hedgeWins.Load(),
		Failovers:  c.failovers.Load(),
		Refreshes:  c.refreshes.Load(),
		Misdirects: c.misdirects.Load(),
	}
}

// Members returns the current fleet membership (fetching it if needed).
func (c *ClusterClient) Members() ([]string, error) {
	info, _, err := c.membership()
	if err != nil {
		return nil, err
	}
	return info.Members, nil
}

// membership returns the cached membership and ring, bootstrapping from
// the seeds on first use.
func (c *ClusterClient) membership() (*cluster.Info, *cluster.Ring, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring != nil {
		return c.info, c.ring, nil
	}
	return c.resolveMembershipLocked(c.seeds)
}

// refreshMembership re-resolves the fleet membership — called after a
// member died or reported the client's ring stale. Known members and the
// original seeds are all candidate sources, so the refresh succeeds as
// long as anyone is alive.
func (c *ClusterClient) refreshMembership() {
	c.mu.Lock()
	defer c.mu.Unlock()
	sources := c.seeds
	if c.info != nil {
		sources = append(append([]string(nil), c.info.Members...), c.seeds...)
	}
	old := c.ring
	if _, _, err := c.resolveMembershipLocked(sources); err != nil {
		// Keep the stale ring: routing against yesterday's membership
		// plus failover beats not routing at all.
		c.ring = old
		return
	}
	c.refreshes.Add(1)
}

// resolveMembershipLocked fetches /cluster from the first responsive
// source and installs the resulting ring. A 404 means a pre-fleet server:
// synthesize a single-member fleet around it. Caller holds c.mu.
func (c *ClusterClient) resolveMembershipLocked(sources []string) (*cluster.Info, *cluster.Ring, error) {
	var lastErr error
	tried := make(map[string]bool, len(sources))
	for _, src := range sources {
		if tried[src] {
			continue
		}
		tried[src] = true
		info, err := c.fetchClusterInfo(src)
		if err != nil {
			lastErr = err
			continue
		}
		ring, err := cluster.New(info.Members, 0)
		if err != nil {
			lastErr = err
			continue
		}
		c.info, c.ring = info, ring
		return info, ring, nil
	}
	return nil, nil, fmt.Errorf("serve: no cluster member reachable: %w", lastErr)
}

// fetchClusterInfo GETs one source's /cluster document.
func (c *ClusterClient) fetchClusterInfo(src string) (*cluster.Info, error) {
	resp, err := c.hc.Get(src + "/cluster")
	if err != nil {
		return nil, fmt.Errorf("serve: fetching membership from %s: %w", src, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var info cluster.Info
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return nil, fmt.Errorf("serve: fetching membership from %s: %w", src, err)
		}
		if len(info.Members) == 0 {
			return nil, fmt.Errorf("serve: %s reported an empty fleet", src)
		}
		if info.Replication <= 0 {
			info.Replication = 1
		}
		return &info, nil
	case http.StatusNotFound:
		// A server from before the fleet era: a one-member "fleet".
		return &cluster.Info{
			Members:     []string{src},
			Replication: 1,
			Self:        src,
			Epoch:       cluster.Epoch([]string{src}, 1),
		}, nil
	default:
		return nil, fmt.Errorf("serve: fetching membership from %s: server returned %s", src, resp.Status)
	}
}

// memberClient returns (creating if needed) the single-server client for
// one member. Member clients share the cluster client's http.Client, so
// connection pooling and timeouts are uniform across the fleet.
func (c *ClusterClient) memberClient(member string) (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mc, ok := c.clients[member]; ok {
		return mc, nil
	}
	mc, err := NewClient(member, c.hc)
	if err != nil {
		return nil, err
	}
	c.clients[member] = mc
	return mc, nil
}

// markDown deprioritizes a member for downTTL after a failed read, so a
// dead member stops absorbing every record's first attempt. It is only a
// preference: if every replica of a record is marked down, reads still try
// them all.
func (c *ClusterClient) markDown(member string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[member] = time.Now().Add(downTTL)
}

// replicasFor returns the record's replica set in preference order: the
// ring's owner-first order, with members recently marked down moved to the
// back (their relative order preserved).
func (c *ClusterClient) replicasFor(name string) ([]string, error) {
	info, ring, err := c.membership()
	if err != nil {
		return nil, err
	}
	reps := ring.Replicas(name, info.Replication)
	c.mu.Lock()
	now := time.Now()
	live := make([]string, 0, len(reps))
	var dead []string
	for _, m := range reps {
		if until, ok := c.down[m]; ok && now.Before(until) {
			dead = append(dead, m)
		} else {
			live = append(live, m)
		}
	}
	c.mu.Unlock()
	return append(live, dead...), nil
}

// observeLatency records one successful read's duration for the hedge
// quantiles.
func (c *ClusterClient) observeLatency(d time.Duration) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if len(c.lats) < latencyWindow {
		c.lats = append(c.lats, d)
		return
	}
	c.lats[c.latIx] = d
	c.latIx = (c.latIx + 1) % latencyWindow
}

// hedgeDelay derives the backup-request delay from recent read latencies:
// max(floor, min(p99, 5×p50)). The p99 term makes hedging a tail
// phenomenon — at most ~1% of healthy reads pay a redundant request — and
// the 5×p50 clamp keeps the delay anchored to the healthy members' speed
// when one slow member would otherwise drag p99 (and with it the trigger
// threshold) up to its own latency, which would turn hedging off exactly
// when it is needed. ok is false when hedging is disabled.
func (c *ClusterClient) hedgeDelay() (time.Duration, bool) {
	c.mu.Lock()
	floor := c.hedgeFloor
	c.mu.Unlock()
	if floor < 0 {
		return 0, false
	}
	if floor == 0 {
		floor = defaultHedgeFloor
	}
	c.latMu.Lock()
	lats := append([]time.Duration(nil), c.lats...)
	c.latMu.Unlock()
	if len(lats) < 8 {
		return floor, true
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	p99 := lats[(len(lats)*99+99)/100-1]
	d := p99
	if clamp := 5 * p50; clamp < d {
		d = clamp
	}
	if d < floor {
		d = floor
	}
	return d, true
}

// ReadRange reads [offset, offset+length) of the named record from its
// replica set: the owner first (hedging to the next replica past the hedge
// delay), failing over through the remaining replicas on transient errors,
// and re-resolving membership between retry rounds once a whole replica
// set has failed. Structural errors — 416/404, the index promising bytes
// no member has — fail fast like the single-server client. A 421
// (placement disagreement) triggers a membership refresh and a retry.
func (c *ClusterClient) ReadRange(name string, offset, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	if length < 0 {
		return nil, fmt.Errorf("serve: negative range length %d for %s", length, name)
	}
	var lastErr error
	for round := 0; round < retryAttempts; round++ {
		if round > 0 {
			time.Sleep(retryDelay(round - 1))
			// A full replica set failed: the fleet may have changed under
			// us — re-resolve before the next pass.
			c.refreshMembership()
		}
		reps, err := c.replicasFor(name)
		if err != nil {
			lastErr = err
			continue
		}
		for i, member := range reps {
			if i > 0 {
				c.failovers.Add(1)
			}
			var buf []byte
			var retryable bool
			if i == 0 && len(reps) > 1 {
				buf, retryable, err = c.hedgedRead(member, reps[1:], name, offset, length)
			} else {
				buf, retryable, err = c.readFromMember(member, name, offset, length, false)
			}
			if err == nil {
				return buf, nil
			}
			var mis *misdirectedError
			if errors.As(err, &mis) {
				c.misdirects.Add(1)
				c.refreshMembership()
			} else if !retryable {
				return nil, err
			} else {
				c.markDown(member)
			}
			lastErr = err
		}
	}
	return nil, lastErr
}

// readFromMember is one attempt against one member, with latency recorded
// on success.
func (c *ClusterClient) readFromMember(member, name string, offset, length int64, hedge bool) ([]byte, bool, error) {
	mc, err := c.memberClient(member)
	if err != nil {
		return nil, false, err
	}
	start := time.Now()
	buf, retryable, err := mc.readRangeOnce(name, offset, length, hedge)
	if err == nil {
		c.observeLatency(time.Since(start))
	}
	return buf, retryable, err
}

// hedgedRead reads from the primary replica, firing one backup request at
// the next live replica if the primary has not answered within the hedge
// delay; the first success wins. A structural error (416/404) from EITHER
// request fails the read immediately — the index promised bytes the fleet
// does not have, and asking another member cannot change that. Transient
// errors wait for the other request before giving up.
func (c *ClusterClient) hedgedRead(primary string, backups []string, name string, offset, length int64) ([]byte, bool, error) {
	delay, hedgeOK := c.hedgeDelay()
	if !hedgeOK || len(backups) == 0 {
		return c.readFromMember(primary, name, offset, length, false)
	}

	type result struct {
		member    string
		buf       []byte
		retryable bool
		err       error
	}
	resc := make(chan result, 2)
	attempt := func(member string, hedge bool) {
		buf, retryable, err := c.readFromMember(member, name, offset, length, hedge)
		resc <- result{member: member, buf: buf, retryable: retryable, err: err}
	}
	go attempt(primary, false)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	inFlight := 1
	hedged := ""
	var lastErr error
	lastRetryable := true
	for inFlight > 0 {
		select {
		case res := <-resc:
			inFlight--
			if res.err == nil {
				if res.member == hedged {
					c.hedgeWins.Add(1)
				}
				return res.buf, false, nil
			}
			var mis *misdirectedError
			if !res.retryable && !errors.As(res.err, &mis) {
				// Structural: fail the whole read now. The other request
				// (if any) drains into the buffered channel and is
				// discarded.
				return nil, false, res.err
			}
			lastErr, lastRetryable = res.err, res.retryable
		case <-timer.C:
			if hedged == "" {
				hedged = backups[0]
				c.hedges.Add(1)
				inFlight++
				go attempt(hedged, true)
			}
		}
	}
	return nil, lastRetryable, lastErr
}

// ReadSamples implements core.SampleReader against the fleet: the pushdown
// read goes to the record's replica set owner-first with the same failover
// and membership-refresh discipline as ReadRange (no hedging: pushdown
// responses are already the small, selected fraction of a record, so the
// tail-latency machinery buys little against the added duplicate bytes).
var _ core.SampleReader = (*ClusterClient)(nil)

func (c *ClusterClient) ReadSamples(name string, group int, sel []bool) ([]byte, error) {
	re, err := c.recordInfoFor(name)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for round := 0; round < retryAttempts; round++ {
		if round > 0 {
			time.Sleep(retryDelay(round - 1))
			c.refreshMembership()
		}
		reps, err := c.replicasFor(name)
		if err != nil {
			lastErr = err
			continue
		}
		for i, member := range reps {
			if i > 0 {
				c.failovers.Add(1)
			}
			mc, err := c.memberClient(member)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			buf, retryable, err := mc.readSamplesOnce(re, group, sel, false)
			if err == nil {
				c.observeLatency(time.Since(start))
				return buf, nil
			}
			var mis *misdirectedError
			if errors.As(err, &mis) {
				c.misdirects.Add(1)
				c.refreshMembership()
			} else if !retryable {
				return nil, err
			} else {
				c.markDown(member)
			}
			lastErr = err
		}
	}
	return nil, lastErr
}

// recordInfoFor resolves a record name against the fleet's cached index.
func (c *ClusterClient) recordInfoFor(name string) (*core.RecordInfo, error) {
	ix, err := c.FetchIndex()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byName == nil {
		c.byName = make(map[string]int, len(ix.Records))
		for i, re := range ix.Records {
			c.byName[re.Name] = i
		}
	}
	i, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("serve: no record %q in the index", name)
	}
	return &ix.Records[i], nil
}

// Open streams the whole named record from its replica set, owner first
// with failover (no hedging: the body is handed to the caller as soon as
// headers arrive, so there is no in-flight wait to hedge against).
func (c *ClusterClient) Open(name string) (io.ReadCloser, error) {
	var lastErr error
	for round := 0; round < retryAttempts; round++ {
		if round > 0 {
			time.Sleep(retryDelay(round - 1))
			c.refreshMembership()
		}
		reps, err := c.replicasFor(name)
		if err != nil {
			lastErr = err
			continue
		}
		for i, member := range reps {
			if i > 0 {
				c.failovers.Add(1)
			}
			mc, err := c.memberClient(member)
			if err != nil {
				return nil, err
			}
			body, retryable, err := mc.openOnce(name)
			if err == nil {
				return body, nil
			}
			var mis *misdirectedError
			if errors.As(err, &mis) {
				c.misdirects.Add(1)
				c.refreshMembership()
			} else if !retryable {
				return nil, err
			} else {
				c.markDown(member)
			}
			lastErr = err
		}
	}
	return nil, lastErr
}

// FetchIndex retrieves and caches the dataset's record index (the shard
// view when SetShard was called) from any live member — the index is
// identical fleet-wide, so the first member to answer wins.
func (c *ClusterClient) FetchIndex() (*core.Index, error) {
	c.mu.Lock()
	if c.idx != nil {
		defer c.mu.Unlock()
		return c.idx, nil
	}
	shard, nshards := c.shard, c.nshards
	c.mu.Unlock()

	info, _, err := c.membership()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for round := 0; round < retryAttempts; round++ {
		if round > 0 {
			time.Sleep(retryDelay(round - 1))
			c.refreshMembership()
			if info, _, err = c.membership(); err != nil {
				lastErr = err
				continue
			}
		}
		for _, member := range info.Members {
			mc, err := c.memberClient(member)
			if err != nil {
				return nil, err
			}
			url := member + "/index"
			if nshards > 0 {
				url = fmt.Sprintf("%s/index?shard=%d&nshards=%d", member, shard, nshards)
			}
			data, retryable, err := mc.fetchIndexOnce(url)
			if err == nil {
				ix, err := core.ParseIndex(data)
				if err != nil {
					return nil, err
				}
				c.mu.Lock()
				c.idx = ix
				c.mu.Unlock()
				return ix, nil
			}
			if !retryable {
				return nil, err
			}
			c.markDown(member)
			lastErr = err
		}
	}
	return nil, lastErr
}

// List returns the record object names from the fleet's index.
func (c *ClusterClient) List() ([]string, error) {
	ix, err := c.FetchIndex()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ix.Records))
	for _, re := range ix.Records {
		names = append(names, re.Name)
	}
	return names, nil
}

// Close releases the client: the default transport's idle connections are
// shut down; a caller-supplied http.Client is left untouched.
func (c *ClusterClient) Close() error {
	if c.ownedTransport != nil {
		c.ownedTransport.CloseIdleConnections()
	}
	return nil
}
