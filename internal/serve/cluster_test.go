package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/pcr"
)

// fleetMember is one in-process fleet server: a serve.Server in cluster
// mode behind its own listener. httptest.NewServer cannot be used directly
// because every member's URL must be known before any server is
// constructed — the member set is part of each server's configuration.
type fleetMember struct {
	url string
	srv *serve.Server
	hs  *http.Server
	ln  net.Listener
}

func (m *fleetMember) kill() {
	m.hs.Close()
	m.ln.Close()
}

// startFleet synthesizes a dataset and serves it from n fleet members with
// the given replication. wrap (optional) decorates member i's handler —
// the hook for injecting slowness or failures.
func startFleet(t *testing.T, n, replication int, wrap func(i int, h http.Handler) http.Handler) (string, []*fleetMember) {
	t.Helper()
	dir := t.TempDir()
	if _, err := pcr.Synthesize(dir, "cars", 0.1, 1,
		pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4)); err != nil {
		t.Fatal(err)
	}

	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}

	members := make([]*fleetMember, n)
	for i := range members {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		srv, err := serve.New(dir, &serve.Options{
			CacheBytes: 8 << 20,
			Cluster:    &serve.ClusterConfig{Self: urls[i], Peers: peers, Replication: replication},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := http.Handler(srv)
		if wrap != nil {
			h = wrap(i, h)
		}
		hs := &http.Server{Handler: h}
		members[i] = &fleetMember{url: urls[i], srv: srv, hs: hs, ln: lns[i]}
		go hs.Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.kill()
			m.srv.Close()
		}
	})
	return dir, members
}

func getClusterInfo(t *testing.T, url string) cluster.Info {
	t.Helper()
	resp, err := http.Get(url + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster: %s", resp.Status)
	}
	var info cluster.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func fetchIndexURL(t *testing.T, url string) *core.Index {
	t.Helper()
	resp, err := http.Get(url + "/index")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /index: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.ParseIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestClusterEndpoint: every fleet member publishes the same sorted
// membership and epoch, names itself, and answers conditional polls with
// 304.
func TestClusterEndpoint(t *testing.T) {
	_, members := startFleet(t, 3, 2, nil)
	var epoch string
	for i, m := range members {
		info := getClusterInfo(t, m.url)
		if len(info.Members) != 3 || info.Replication != 2 {
			t.Fatalf("member %d: bad info %+v", i, info)
		}
		if info.Self != m.url {
			t.Fatalf("member %d: self = %s, want %s", i, info.Self, m.url)
		}
		if i == 0 {
			epoch = info.Epoch
		} else if info.Epoch != epoch {
			t.Fatalf("member %d: epoch %s differs from %s", i, info.Epoch, epoch)
		}
		for j := 1; j < len(info.Members); j++ {
			if info.Members[j] < info.Members[j-1] {
				t.Fatalf("member %d: members not sorted: %v", i, info.Members)
			}
		}
	}

	// Conditional poll: the ETag round-trips as a 304.
	resp, err := http.Get(members[0].url + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /cluster")
	}
	req, _ := http.NewRequest(http.MethodGet, members[0].url+"/cluster", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional /cluster: got %s, want 304", resp.Status)
	}
}

// TestClusterEndpointStandalone: a server without cluster config
// synthesizes a single-member fleet from the URL the client used, so
// cluster-aware clients speak one protocol to any server.
func TestClusterEndpointStandalone(t *testing.T) {
	_, _, ts := startServer(t, &serve.Options{})
	info := getClusterInfo(t, ts.URL)
	if len(info.Members) != 1 || info.Members[0] != ts.URL || info.Self != ts.URL {
		t.Fatalf("bad standalone info %+v (server at %s)", info, ts.URL)
	}
	if info.Replication != 1 {
		t.Fatalf("standalone replication = %d, want 1", info.Replication)
	}
}

// TestFleetServesOnlyPlacedRecords: each member admits exactly the records
// the ring places on it and answers 421 with the owner's URL for the rest
// — and the fleet's verdicts agree with a ring built independently, the
// server half of the placement-determinism contract.
func TestFleetServesOnlyPlacedRecords(t *testing.T) {
	_, members := startFleet(t, 3, 2, nil)
	ix := fetchIndexURL(t, members[0].url)
	if len(ix.Records) == 0 {
		t.Fatal("empty index")
	}
	urls := []string{members[0].url, members[1].url, members[2].url}
	ring, err := cluster.New(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range ix.Records {
		reps := ring.Replicas(re.Name, 2)
		placed := map[string]bool{}
		for _, m := range reps {
			placed[m] = true
		}
		got := 0
		for _, m := range members {
			resp, err := http.Get(m.url + "/records/" + re.Name)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if placed[m.url] {
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("member %s should serve %s, got %s", m.url, re.Name, resp.Status)
				}
				got++
			} else {
				if resp.StatusCode != http.StatusMisdirectedRequest {
					t.Fatalf("member %s should refuse %s with 421, got %s", m.url, re.Name, resp.Status)
				}
				if owner := resp.Header.Get("X-Pcr-Owner"); owner != reps[0] {
					t.Fatalf("421 owner header = %q, want %q", owner, reps[0])
				}
			}
		}
		if got != 2 {
			t.Fatalf("record %s served by %d members, want replication 2", re.Name, got)
		}
	}
	// Each record drew a 421 from every member it is not placed on.
	var misdirected int64
	for _, m := range members {
		misdirected += m.srv.Stats().Misdirected
	}
	if want := int64(len(ix.Records)) * (3 - 2); misdirected != want {
		t.Fatalf("fleet counted %d misdirected requests, want %d", misdirected, want)
	}
}

// TestClusterClientRoutesToOwners: a cluster client reading every record
// is never misdirected — client and servers agree on placement — and the
// bytes match what the owning member serves directly.
func TestClusterClientRoutesToOwners(t *testing.T) {
	_, members := startFleet(t, 3, 2, nil)
	cc, err := serve.NewClusterClient([]string{members[1].url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	ix, err := cc.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Records) == 0 {
		t.Fatal("empty index")
	}
	urls := []string{members[0].url, members[1].url, members[2].url}
	ring, err := cluster.New(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range ix.Records {
		size := re.Prefixes[len(re.Prefixes)-1]
		got, err := cc.ReadRange(re.Name, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		_, want := get(t, ring.Owner(re.Name)+"/records/"+re.Name, nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("record %s: cluster read differs from owner's copy (%d vs %d bytes)",
				re.Name, len(got), len(want))
		}
	}
	if st := cc.Stats(); st.Misdirects != 0 {
		t.Fatalf("client was misdirected %d times; placement disagrees", st.Misdirects)
	}
	for _, m := range members {
		if s := m.srv.Stats(); s.Misdirected != 0 {
			t.Fatalf("member %s saw %d misdirected requests", m.url, s.Misdirected)
		}
	}
}

// TestClusterClientFailover: killing one member mid-workload moves reads
// to the surviving replicas; every record stays readable because
// replication 2 leaves a live copy of everything.
func TestClusterClientFailover(t *testing.T) {
	_, members := startFleet(t, 3, 2, nil)
	cc, err := serve.NewClusterClient([]string{members[0].url, members[2].url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	ix, err := cc.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	readAll := func() {
		t.Helper()
		for _, re := range ix.Records {
			size := re.Prefixes[len(re.Prefixes)-1]
			if _, err := cc.ReadRange(re.Name, 0, size); err != nil {
				t.Fatalf("read %s: %v", re.Name, err)
			}
		}
	}
	readAll()

	// Kill a member that owns at least one record (a tiny dataset can
	// leave a member ownerless), so the second pass must fail over.
	urls := []string{members[0].url, members[1].url, members[2].url}
	ring, err := cluster.New(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	killed := ""
	for _, m := range members {
		for _, re := range ix.Records {
			if ring.Owner(re.Name) == m.url {
				killed = m.url
				m.kill()
				break
			}
		}
		if killed != "" {
			break
		}
	}
	if killed == "" {
		t.Fatal("no member owns any record")
	}
	readAll()
	if st := cc.Stats(); st.Failovers == 0 {
		t.Fatalf("no failovers counted after owner %s died: %+v", killed, st)
	}
}

// TestSyncReplicas: members warm their replicated records by pulling the
// bytes from each record's owner over HTTP — counted on both sides. With
// replication 2 every record has exactly one non-owning replica, so the
// fleet-wide warm count must equal the record count.
func TestSyncReplicas(t *testing.T) {
	_, members := startFleet(t, 3, 2, nil)
	ix := fetchIndexURL(t, members[0].url)
	var warmed int
	var pulled, pulls int64
	for _, m := range members {
		w, err := m.srv.SyncReplicas(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		warmed += w
		st := m.srv.Stats()
		pulled += st.ReplicaPullBytes
		pulls += st.ReplicaPulls
	}
	if warmed != len(ix.Records) {
		t.Fatalf("fleet warmed %d records, want %d (one non-owning replica per record)",
			warmed, len(ix.Records))
	}
	if pulls == 0 || pulled == 0 {
		t.Fatalf("no owner pulls counted (pulls=%d bytes=%d)", pulls, pulled)
	}
	// The pulls landed on the owners as served record bytes.
	var served int64
	for _, m := range members {
		served += m.srv.Stats().BytesServed
	}
	if served < pulled {
		t.Fatalf("owners served %d bytes < %d pulled", served, pulled)
	}
}

// scriptedFleet binds n listeners up front and installs raw handlers —
// the failure-injection rig for client behavior that real fleet servers
// cannot exhibit on demand. Handlers are installed after the URLs (and
// thus the ring placement) are known.
func scriptedFleet(t *testing.T, n int) ([]string, func(i int, h http.Handler)) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	return urls, func(i int, h http.Handler) {
		hs := &http.Server{Handler: h}
		go hs.Serve(lns[i])
		t.Cleanup(func() { hs.Close(); lns[i].Close() })
	}
}

func clusterInfoJSON(t *testing.T, members []string, replication int, self string) []byte {
	t.Helper()
	data, err := json.Marshal(cluster.Info{
		Members:     members,
		Replication: replication,
		Self:        self,
		Epoch:       cluster.Epoch(members, replication),
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHedgeStructuralFailsFast: when the owner is slow and the hedged
// replica answers 416 (or 404), the read fails immediately with the
// structural error — it neither waits out the slow owner nor retries the
// other member, because the index promised bytes the fleet does not have.
func TestHedgeStructuralFailsFast(t *testing.T) {
	for _, tc := range []struct {
		name       string
		status     int
		wantErr    error
		wantSubstr string
	}{
		{name: "416", status: http.StatusRequestedRangeNotSatisfiable, wantErr: core.ErrCorrupt},
		{name: "404", status: http.StatusNotFound, wantSubstr: "404"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const rec = "records/000000.pcr"
			const slowFor = 2 * time.Second

			urls, install := scriptedFleet(t, 2)
			ring, err := cluster.New(urls, 0)
			if err != nil {
				t.Fatal(err)
			}
			owner := ring.Owner(rec)

			var structHits atomic.Int64
			for i, u := range urls {
				self := u
				install(i, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if strings.HasPrefix(r.URL.Path, "/cluster") {
						w.Write(clusterInfoJSON(t, urls, 2, self))
						return
					}
					if self == owner {
						// The owner hangs: only a hedge can answer sooner.
						time.Sleep(slowFor)
						w.WriteHeader(http.StatusOK)
						return
					}
					structHits.Add(1)
					http.Error(w, "scripted", tc.status)
				}))
			}

			cc, err := serve.NewClusterClient([]string{urls[0]}, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cc.Close()
			cc.SetHedgeDelay(time.Millisecond)

			start := time.Now()
			_, err = cc.ReadRange(rec, 0, 64)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("read should fail")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
			if tc.wantSubstr != "" && !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantSubstr)
			}
			if elapsed >= slowFor {
				t.Fatalf("read took %v: waited out the slow owner instead of failing fast", elapsed)
			}
			if n := structHits.Load(); n != 1 {
				t.Fatalf("structural member hit %d times, want exactly 1 (no retry)", n)
			}
			if st := cc.Stats(); st.Hedges != 1 {
				t.Fatalf("hedges = %d, want 1: %+v", st.Hedges, st)
			}
		})
	}
}

// TestMisdirectRefreshesMembership: a 421 from a member whose world view
// is newer than the client's makes the client re-fetch /cluster and route
// by the fresh ring until the read lands.
func TestMisdirectRefreshesMembership(t *testing.T) {
	const rec = "records/000000.pcr"
	payload := []byte("0123456789abcdef")

	urls, install := scriptedFleet(t, 2)
	a, b := urls[0], urls[1]

	// Member B serves the record and reports the true two-member fleet.
	install(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/cluster") {
			w.Write(clusterInfoJSON(t, urls, 2, b))
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 0-%d/%d", len(payload)-1, len(payload)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(payload)
	}))
	// Member A initially claims to be alone; once it has refused a record
	// it starts telling the truth. Until then the client's ring is [A]
	// only, so the first read must go to A and be misdirected.
	var told atomic.Bool
	install(0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/cluster") {
			if told.Load() {
				w.Write(clusterInfoJSON(t, urls, 2, a))
			} else {
				w.Write(clusterInfoJSON(t, []string{a}, 1, a))
			}
			return
		}
		told.Store(true)
		w.Header().Set("X-Pcr-Owner", b)
		http.Error(w, "not mine", http.StatusMisdirectedRequest)
	}))

	cc, err := serve.NewClusterClient([]string{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	got, err := cc.ReadRange(rec, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}
	st := cc.Stats()
	if st.Misdirects == 0 || st.Refreshes == 0 {
		t.Fatalf("expected a misdirect-driven refresh, got %+v", st)
	}
}
