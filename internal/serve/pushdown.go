package serve

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
)

// Sample-level predicate pushdown: GET /records/{name}?group=g&samples=<bitmap>
// serves only the byte ranges needed to materialize the selected samples at
// scan group g — the metadata section plus the selected samples' slices of
// every group ≤ g, coalesced and concatenated in ascending offset order.
//
// The selection travels as a compact bitmap rather than an offset list
// because both sides hold the same immutable index: the client computes the
// expected ranges (core.RecordInfo.SampleRanges) from the bitmap exactly as
// the server does, so the wire carries only which samples, never where
// their bytes live. Responses carry the pushdownHeader so a client can tell
// a pushdown-aware server from an old one that ignored the parameter and
// served the whole group prefix (the client then extracts the ranges
// locally — same bytes, no savings; see Client.ReadSamples).
//
// Audit rules, mirroring resolveRange's: a samples= request must name a
// group, must not carry a Range header, and its bitmap must be well-formed
// base64url, no longer than the record's sample count needs, with no bits
// set past the last sample. Violations are the client's fault and get 400,
// never 500. Records without the side index (datasets written before it
// existed) cannot compute sample ranges and also get 400.

// pushdownHeader marks a response as a pushdown result (its value is the
// served range count). Its absence on a 200 tells the client the server
// ignored ?samples= and sent the full group prefix.
const pushdownHeader = "X-Pcr-Pushdown"

// maxSampleBitmapChars caps the accepted ?samples= value length before
// decoding — a backstop against absurd query strings; any real bitmap for a
// record's samples is far smaller (one bit per sample).
const maxSampleBitmapChars = 1 << 16

// encodeSampleBitmap packs a selection mask LSB-first (bit j of byte j/8 is
// sample j) and encodes it as unpadded base64url. Trailing zero bytes are
// trimmed: a shorter-than-full bitmap means the remaining samples are
// unselected.
func encodeSampleBitmap(sel []bool) string {
	buf := make([]byte, (len(sel)+7)/8)
	for j, on := range sel {
		if on {
			buf[j/8] |= 1 << (j % 8)
		}
	}
	n := len(buf)
	for n > 0 && buf[n-1] == 0 {
		n--
	}
	return base64.RawURLEncoding.EncodeToString(buf[:n])
}

// decodeSampleBitmap reverses encodeSampleBitmap for a record of n samples.
// It rejects malformed base64, bitmaps longer than n samples need, and bits
// set at or past sample n. An empty string is a valid all-unselected
// bitmap.
func decodeSampleBitmap(s string, n int) ([]bool, error) {
	if len(s) > maxSampleBitmapChars {
		return nil, fmt.Errorf("serve: samples bitmap is %d characters, limit %d", len(s), maxSampleBitmapChars)
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("serve: samples bitmap is not base64url: %w", err)
	}
	if max := (n + 7) / 8; len(raw) > max {
		return nil, fmt.Errorf("serve: samples bitmap has %d bytes, a %d-sample record needs at most %d", len(raw), n, max)
	}
	sel := make([]bool, n)
	for j := range raw {
		b := raw[j]
		for k := 0; k < 8; k++ {
			if b&(1<<k) == 0 {
				continue
			}
			idx := j*8 + k
			if idx >= n {
				return nil, fmt.Errorf("serve: samples bitmap selects sample %d of a %d-sample record", idx, n)
			}
			sel[idx] = true
		}
	}
	return sel, nil
}

// handleSamples serves a pushdown request for record rec. The caller has
// resolved the record and passed the fleet admission check; bitmap is the
// raw ?samples= value.
func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request, rec int, bitmap string) {
	re := &s.records[rec]
	gs := r.URL.Query().Get("group")
	if gs == "" {
		s.fail(w, http.StatusBadRequest, "serve: samples requires a group")
		return
	}
	g, err := strconv.Atoi(gs)
	if err != nil || g < 0 {
		s.fail(w, http.StatusBadRequest, "serve: bad group %q", gs)
		return
	}
	if g >= len(re.Prefixes) {
		g = len(re.Prefixes) - 1
	}
	if r.Header.Get("Range") != "" {
		// A byte range within a range-selected view has no defined object to
		// range over; refuse rather than guess.
		s.fail(w, http.StatusBadRequest, "serve: samples and Range cannot be combined")
		return
	}
	if !re.HasSampleIndex() {
		s.fail(w, http.StatusBadRequest, "serve: record %q predates the sample index; read the whole prefix", re.Name)
		return
	}
	sel, err := decodeSampleBitmap(bitmap, re.Samples)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ranges, err := re.SampleRanges(g, sel)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "serve: %v", err)
		return
	}
	total := core.RangesTotal(ranges)

	etag := s.etags[rec]
	w.Header().Set("ETag", etag)
	if ifNoneMatch(r, etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	// Read all ranges before committing success headers (same discipline as
	// handleRecord). Each range reads through the hot prefix cache, so a
	// pushdown request still warms and reuses whole prefixes server-side.
	var body []byte
	if r.Method != http.MethodHead {
		body = make([]byte, 0, total)
		for _, rg := range ranges {
			part, err := s.readRange(rec, rg.Offset, rg.Length)
			if err != nil {
				w.Header().Del("ETag")
				s.fail(w, http.StatusInternalServerError, "serve: %v", err)
				return
			}
			body = append(body, part...)
		}
	}
	s.pushdownRequests.Add(1)
	s.pushdownBytesSaved.Add(re.Prefixes[g] - total)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(total, 10))
	w.Header().Set(pushdownHeader, strconv.Itoa(len(ranges)))
	if r.Method == http.MethodHead {
		return
	}
	n, _ := w.Write(body)
	s.bytesServed.Add(int64(n))
}
