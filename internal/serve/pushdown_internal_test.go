package serve

import (
	"reflect"
	"strings"
	"testing"
)

func TestSampleBitmapRoundTrip(t *testing.T) {
	cases := [][]bool{
		{},
		{true},
		{false},
		{true, false, true},
		{false, false, false, false, false, false, false, false, true}, // bit 8: second byte
		make([]bool, 64),
	}
	cases[len(cases)-1][63] = true
	for _, sel := range cases {
		s := encodeSampleBitmap(sel)
		got, err := decodeSampleBitmap(s, len(sel))
		if err != nil {
			t.Fatalf("decode(%q, %d): %v", s, len(sel), err)
		}
		if !reflect.DeepEqual(got, sel) {
			t.Fatalf("round trip %v -> %q -> %v", sel, s, got)
		}
	}
}

func TestDecodeSampleBitmapRejects(t *testing.T) {
	cases := []struct {
		name string
		s    string
		n    int
	}{
		{"not base64", "!!!", 8},
		{"padded base64", "AQ==", 8},
		{"overlong for count", encodeSampleBitmap(make([]bool, 64)) + "AAAA", 8},
		{"two bytes for one sample", "AAE", 1},
		{"bit past sample count", "Ag", 1},             // bit 1 of a 1-sample record
		{"bit at sample count", "gA", 7},               // bit 7 of a 7-sample record
		{"bitmap for empty record", "AQ", 0},           // any byte is overlong for 0 samples
		{"giant input", strings.Repeat("A", 1<<17), 8}, // over maxSampleBitmapChars
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if sel, err := decodeSampleBitmap(tc.s, tc.n); err == nil {
				t.Fatalf("decodeSampleBitmap(%q, %d) accepted as %v", tc.s, tc.n, sel)
			}
		})
	}
	// Trailing zero bytes are the one permitted laxity: a short bitmap means
	// the rest is unselected, and an explicit all-zero byte is not overlong.
	if sel, err := decodeSampleBitmap("AA", 8); err != nil || len(sel) != 8 {
		t.Fatalf("all-zero byte: %v, %v", sel, err)
	}
	if sel, err := decodeSampleBitmap("", 8); err != nil || len(sel) != 8 {
		t.Fatalf("empty bitmap: %v, %v", sel, err)
	}
}

// FuzzSampleBitmap hardens the wire-format decoder: arbitrary query values
// must be cleanly accepted or rejected (never panic, never a mask of the
// wrong length), and every accepted mask must survive an encode/decode
// round trip.
func FuzzSampleBitmap(f *testing.F) {
	f.Add("", 0)
	f.Add("", 8)
	f.Add("AQ", 8)
	f.Add("Ag", 1)
	f.Add("AA", 8)
	f.Add("_w", 8)
	f.Add("-_-_", 24)
	f.Add("AQ==", 8)
	f.Add("!!!", 8)
	f.Add(strings.Repeat("A", 70000), 8)
	f.Add(encodeSampleBitmap([]bool{true, false, true, true}), 4)
	f.Fuzz(func(t *testing.T, s string, n int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 12
		sel, err := decodeSampleBitmap(s, n)
		if err != nil {
			return
		}
		if len(sel) != n {
			t.Fatalf("decodeSampleBitmap(%q, %d) returned %d-sample mask", s, n, len(sel))
		}
		sel2, err := decodeSampleBitmap(encodeSampleBitmap(sel), n)
		if err != nil {
			t.Fatalf("re-decode of %v failed: %v", sel, err)
		}
		if !reflect.DeepEqual(sel, sel2) {
			t.Fatalf("bitmap round trip changed the mask: %v -> %v", sel, sel2)
		}
	})
}
