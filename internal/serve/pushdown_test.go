package serve_test

import (
	"encoding/base64"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// bitmap packs a selection mask the way the client does (LSB-first,
// trailing zeros trimmed, unpadded base64url) — reimplemented here so the
// test checks the wire format, not the helper against itself.
func bitmap(sel []bool) string {
	buf := make([]byte, (len(sel)+7)/8)
	for i, on := range sel {
		if on {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	n := len(buf)
	for n > 0 && buf[n-1] == 0 {
		n--
	}
	return base64.RawURLEncoding.EncodeToString(buf[:n])
}

// TestSamplesEndpointTable audits GET /records/{name}?samples= the way
// TestResolveRangeTable audits Range: every malformed selection is the
// client's fault (400, never 500), and well-formed ones serve exactly the
// planned bytes with the pushdown header.
func TestSamplesEndpointTable(t *testing.T) {
	_, srv, ts := startServer(t, nil)
	ix := fetchIndex(t, ts)
	re := &ix.Records[0]
	if !re.HasSampleIndex() {
		t.Fatal("served index lacks the sample side index")
	}
	n := re.Samples
	maxGroup := len(re.Prefixes) - 1
	one := make([]bool, n)
	one[0] = true

	pastEnd := make([]byte, (n+8+7)/8)
	pastEnd[n/8] |= 1 << (n % 8) // bit n of an n-sample record

	cases := []struct {
		name       string
		query      string
		rangeHdr   string
		wantStatus int
	}{
		{"no group", "samples=" + bitmap(one), "", http.StatusBadRequest},
		{"bad group", "group=x&samples=" + bitmap(one), "", http.StatusBadRequest},
		{"negative group", "group=-1&samples=" + bitmap(one), "", http.StatusBadRequest},
		{"samples plus range", "group=1&samples=" + bitmap(one), "bytes=0-9", http.StatusBadRequest},
		{"bad base64", "group=1&samples=" + url.QueryEscape("!!!"), "", http.StatusBadRequest},
		{"padded base64", "group=1&samples=" + url.QueryEscape("AQ=="), "", http.StatusBadRequest},
		{"overlong bitmap", "group=1&samples=" + base64.RawURLEncoding.EncodeToString(make([]byte, n+8)), "", http.StatusBadRequest},
		{"bit past sample count", "group=1&samples=" + base64.RawURLEncoding.EncodeToString(pastEnd), "", http.StatusBadRequest},
		{"giant bitmap", "group=1&samples=" + strings.Repeat("A", 1<<17), "", http.StatusBadRequest},
		{"one sample", "group=1&samples=" + bitmap(one), "", http.StatusOK},
		{"all unselected", "group=1&samples=", "", http.StatusOK}, // empty value = no pushdown, full group
		{"group clamps", "group=999&samples=" + bitmap(one), "", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			headers := map[string]string{}
			if tc.rangeHdr != "" {
				headers["Range"] = tc.rangeHdr
			}
			resp, _ := get(t, ts.URL+"/records/"+re.Name+"?"+tc.query, headers)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("server fault %d for a client error", resp.StatusCode)
			}
		})
	}

	// A well-formed selection serves exactly the planned ranges of the full
	// prefix, marked with the pushdown header, and moves the counters.
	sel := make([]bool, n)
	sel[0], sel[n-1] = true, true
	for _, g := range []int{1, maxGroup} {
		ranges, err := re.SampleRanges(g, sel)
		if err != nil {
			t.Fatal(err)
		}
		want := core.RangesTotal(ranges)
		resp, fullPrefix := get(t, ts.URL+"/records/"+re.Name+"?group="+strconv.Itoa(g), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("full read: %s", resp.Status)
		}
		expect, err := core.GatherRanges(fullPrefix, ranges)
		if err != nil {
			t.Fatal(err)
		}
		before := srv.Stats()
		resp, body := get(t, ts.URL+"/records/"+re.Name+"?group="+strconv.Itoa(g)+"&samples="+bitmap(sel), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pushdown read: %s", resp.Status)
		}
		if resp.Header.Get("X-Pcr-Pushdown") != strconv.Itoa(len(ranges)) {
			t.Fatalf("pushdown header = %q, want %d ranges", resp.Header.Get("X-Pcr-Pushdown"), len(ranges))
		}
		if int64(len(body)) != want {
			t.Fatalf("group %d: got %d bytes, planned %d", g, len(body), want)
		}
		if string(body) != string(expect) {
			t.Fatalf("group %d: pushdown bytes differ from gathered full prefix", g)
		}
		after := srv.Stats()
		if after.PushdownRequests != before.PushdownRequests+1 {
			t.Fatalf("PushdownRequests %d -> %d", before.PushdownRequests, after.PushdownRequests)
		}
		if saved := after.PushdownBytesSaved - before.PushdownBytesSaved; saved != re.Prefixes[g]-want {
			t.Fatalf("PushdownBytesSaved delta = %d, want %d", saved, re.Prefixes[g]-want)
		}
	}

	// HEAD plans without serving a body.
	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/records/"+re.Name+"?group=1&samples="+bitmap(sel), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Pcr-Pushdown") == "" {
		t.Fatalf("HEAD: %s, header %q", resp.Status, resp.Header.Get("X-Pcr-Pushdown"))
	}

	// Conditional pushdown requests revalidate like record reads.
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("pushdown response has no ETag")
	}
	resp, _ = get(t, ts.URL+"/records/"+re.Name+"?group=1&samples="+bitmap(sel),
		map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match: %s, want 304", resp.Status)
	}
}

// TestClientReadSamplesPushdown: the client's pushdown read returns
// exactly the bytes a local gather over the full prefix produces, and the
// server counters prove only the selected ranges moved.
func TestClientReadSamplesPushdown(t *testing.T) {
	_, srv, ts := startServer(t, nil)
	c, err := serve.NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ix, err := c.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	re := &ix.Records[0]
	g := len(re.Prefixes) - 1
	sel := make([]bool, re.Samples)
	sel[0] = true

	full, err := c.ReadRange(re.Name, 0, re.Prefixes[g])
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := re.SampleRanges(g, sel)
	if err != nil {
		t.Fatal(err)
	}
	expect, err := core.GatherRanges(full, ranges)
	if err != nil {
		t.Fatal(err)
	}

	before := srv.Stats()
	got, err := c.ReadSamples(re.Name, g, sel)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(expect) {
		t.Fatal("ReadSamples bytes differ from local gather")
	}
	after := srv.Stats()
	if after.PushdownRequests != before.PushdownRequests+1 {
		t.Fatalf("PushdownRequests %d -> %d", before.PushdownRequests, after.PushdownRequests)
	}
	if served := after.BytesServed - before.BytesServed; served != core.RangesTotal(ranges) {
		t.Fatalf("pushdown moved %d bytes, want %d (only the selected ranges)", served, core.RangesTotal(ranges))
	}
}

// TestClientReadSamplesOldServerFallback: a server that ignores ?samples=
// (any pre-pushdown build) answers with the full group prefix and no
// pushdown header; the client must detect that and extract the ranges
// locally — same bytes, no savings, no error.
func TestClientReadSamplesOldServerFallback(t *testing.T) {
	_, _, ts := startServer(t, nil)
	// The "old server": a proxy that drops the samples parameter before
	// delegating, exactly what a handler that never knew it would do.
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		q.Del("samples")
		r.URL.RawQuery = q.Encode()
		proxyReq, err := http.NewRequest(r.Method, ts.URL+r.URL.Path+"?"+r.URL.RawQuery, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		proxyReq.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(proxyReq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer old.Close()

	direct, err := serve.NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	fallback, err := serve.NewClient(old.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fallback.Close()

	ix, err := direct.FetchIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range ix.Records {
		sel := make([]bool, re.Samples)
		sel[re.Samples/2] = true
		g := 1
		want, err := direct.ReadSamples(re.Name, g, sel)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fallback.ReadSamples(re.Name, g, sel)
		if err != nil {
			t.Fatalf("fallback ReadSamples(%s): %v", re.Name, err)
		}
		if string(got) != string(want) {
			t.Fatalf("record %s: fallback bytes differ from pushdown bytes", re.Name)
		}
	}
}
