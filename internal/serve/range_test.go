package serve

import (
	"net/http"
	"testing"
)

// TestResolveRangeTable audits resolveRange against RFC 9110 §14 edge
// cases, including the ones no real record can exercise over HTTP (empty
// objects, int64 overflow).
func TestResolveRangeTable(t *testing.T) {
	const (
		ok   = http.StatusOK
		part = http.StatusPartialContent
		uns  = http.StatusRequestedRangeNotSatisfiable
	)
	huge := "99999999999999999999999999" // > int64

	cases := []struct {
		name       string
		header     string
		size       int64
		wantStart  int64
		wantLength int64
		wantStatus int
	}{
		{"no header", "", 100, 0, 100, ok},
		{"plain range", "bytes=10-19", 100, 10, 10, part},
		{"open ended", "bytes=90-", 100, 90, 10, part},
		{"suffix", "bytes=-10", 100, 90, 10, part},
		{"suffix longer than object", "bytes=-500", 100, 0, 100, part},
		{"end clamped", "bytes=50-1000", 100, 50, 50, part},
		{"single byte", "bytes=0-0", 100, 0, 1, part},
		{"last byte", "bytes=99-99", 100, 99, 1, part},

		// Unsatisfiable forms (416).
		{"start at EOF", "bytes=100-", 100, 0, 0, uns},
		{"start past EOF", "bytes=101-200", 100, 0, 0, uns},
		{"empty suffix", "bytes=-0", 100, 0, 0, uns},
		{"overflowing start", "bytes=" + huge + "-", 100, 0, 0, uns},

		// Overflow in positions that denote "the rest of the object"
		// clamps instead of invalidating the header (§14.1.1).
		{"overflowing end clamps", "bytes=10-" + huge, 100, 10, 90, part},
		{"overflowing suffix clamps", "bytes=-" + huge, 100, 0, 100, part},

		// Empty representation: no byte range is satisfiable, and a 206
		// could not carry a well-formed Content-Range ("bytes 0--1/0").
		{"empty object plain", "bytes=0-", 0, 0, 0, uns},
		{"empty object suffix", "bytes=-5", 0, 0, 0, uns},
		{"empty object suffix zero", "bytes=-0", 0, 0, 0, uns},
		{"empty object no header", "", 0, 0, 0, ok},
		{"empty object invalid header", "bytes=x", 0, 0, 0, ok},

		// Malformed or unsupported headers are ignored (200, whole object).
		{"inverted", "bytes=9-3", 100, 0, 100, ok},
		{"no spec", "bytes=", 100, 0, 100, ok},
		{"no dash", "bytes=5", 100, 0, 100, ok},
		{"negative start", "bytes=--5-", 100, 0, 100, ok},
		{"non-numeric", "bytes=a-b", 100, 0, 100, ok},
		{"wrong unit", "items=0-5", 100, 0, 100, ok},
		{"unit space", "bytes = 0-5", 100, 0, 100, ok},
		{"multipart", "bytes=0-5,10-15", 100, 0, 100, ok},
		{"multipart trailing comma", "bytes=0-5,", 100, 0, 100, ok},

		// OWS around bounds is invalid grammar but tolerated leniently.
		{"spaces around bounds", "bytes= 10 - 19 ", 100, 10, 10, part},
		{"spaces around suffix", "bytes= -10", 100, 90, 10, part},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start, length, status := resolveRange(tc.header, tc.size)
			if status != tc.wantStatus {
				t.Fatalf("resolveRange(%q, %d) status = %d, want %d", tc.header, tc.size, status, tc.wantStatus)
			}
			if status == http.StatusRequestedRangeNotSatisfiable {
				return // window is meaningless for 416
			}
			if start != tc.wantStart || length != tc.wantLength {
				t.Fatalf("resolveRange(%q, %d) = [%d,+%d), want [%d,+%d)",
					tc.header, tc.size, start, length, tc.wantStart, tc.wantLength)
			}
		})
	}
}
