package serve

import (
	"testing"
	"time"
)

// TestRetryDelayJitterBounds: the backoff before attempt i is the
// exponential base delay plus up to one base-delay unit of jitter —
// d in [base<<i, 2*(base<<i)) — never less (no thundering retry storms
// faster than the schedule) and never doubling past the next tier.
func TestRetryDelayJitterBounds(t *testing.T) {
	for attempt := 0; attempt < 4; attempt++ {
		lo := retryBaseDelay << attempt
		hi := 2 * lo
		var min, max time.Duration = hi, 0
		for i := 0; i < 500; i++ {
			d := retryDelay(attempt)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, lo, hi)
			}
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		// 500 draws across a base-delay-wide window: seeing no spread at
		// all means the jitter term is gone.
		if min == max {
			t.Fatalf("attempt %d: 500 draws all returned %v — no jitter", attempt, min)
		}
	}
}
