package serve_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// flakyHandler makes the first `failures` requests fail in the configured
// way, then serves normally — the shape of a transient network or server
// hiccup mid-epoch.
type flakyHandler struct {
	inner http.Handler
	mode  string // "reset", "truncate", "unavailable"

	mu        sync.Mutex
	remaining int
	attempts  int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.attempts++
	fail := f.remaining > 0
	if fail {
		f.remaining--
	}
	f.mu.Unlock()
	if !fail {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.mode {
	case "reset":
		// Drop the connection before writing a response: the client sees a
		// connection reset / unexpected EOF at the transport layer.
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	case "truncate":
		// Promise a body and cut it short: the client's body read fails
		// with an unexpected EOF mid-transfer.
		w.Header().Set("Content-Length", "1048576")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("short"))
	case "unavailable":
		http.Error(w, "try again", http.StatusServiceUnavailable)
	}
}

func (f *flakyHandler) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

// flakyServer wraps a real prefix server in a flakyHandler.
func flakyServer(t *testing.T, mode string, failures int) (*flakyHandler, *httptest.Server, *core.Index) {
	t.Helper()
	_, srv, ts := startServer(t, nil)
	ix := fetchIndex(t, ts)
	flaky := &flakyHandler{inner: srv, mode: mode, remaining: failures}
	fts := httptest.NewServer(flaky)
	t.Cleanup(fts.Close)
	return flaky, fts, ix
}

// TestClientRetriesTransientFailures: ReadRange, Open, and FetchIndex
// survive a server that fails the first N attempts — connection resets,
// truncated bodies, 503s — without surfacing an error to the scan.
func TestClientRetriesTransientFailures(t *testing.T) {
	for _, mode := range []string{"reset", "truncate", "unavailable"} {
		t.Run("readrange_"+mode, func(t *testing.T) {
			flaky, fts, ix := flakyServer(t, mode, 2)
			c, err := serve.NewClient(fts.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rec := ix.Records[0]
			got, err := c.ReadRange(rec.Name, 0, 64)
			if err != nil {
				t.Fatalf("ReadRange through a flaky server: %v", err)
			}
			if len(got) != 64 {
				t.Fatalf("got %d bytes, want 64", len(got))
			}
			if n := flaky.count(); n != 3 {
				t.Fatalf("server saw %d attempts, want 2 failures + 1 success", n)
			}
		})
	}

	t.Run("open_reset", func(t *testing.T) {
		flaky, fts, ix := flakyServer(t, "reset", 2)
		c, err := serve.NewClient(fts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rc, err := c.Open(ix.Records[0].Name)
		if err != nil {
			t.Fatalf("Open through a flaky server: %v", err)
		}
		rc.Close()
		if n := flaky.count(); n != 3 {
			t.Fatalf("server saw %d attempts, want 3", n)
		}
	})

	t.Run("index_unavailable", func(t *testing.T) {
		flaky, fts, _ := flakyServer(t, "unavailable", 2)
		c, err := serve.NewClient(fts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.FetchIndex(); err != nil {
			t.Fatalf("FetchIndex through a flaky server: %v", err)
		}
		if n := flaky.count(); n != 3 {
			t.Fatalf("server saw %d attempts, want 3", n)
		}
	})
}

// TestClientRetryBudgetExhausted: a persistently failing server surfaces an
// error after the bounded attempt budget — no infinite retry loops.
func TestClientRetryBudgetExhausted(t *testing.T) {
	flaky, fts, ix := flakyServer(t, "unavailable", 1_000_000)
	c, err := serve.NewClient(fts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadRange(ix.Records[0].Name, 0, 64); err == nil {
		t.Fatal("ReadRange against a dead server succeeded")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error does not carry the final status: %v", err)
	}
	if n := flaky.count(); n != 3 {
		t.Fatalf("server saw %d attempts, want exactly the retry budget 3", n)
	}
}

// TestClientDoesNotRetryStructuralErrors: deterministic failures — a range
// past the end of a record (416), a missing record (404) — fail
// immediately with a single attempt; retrying them would only mask
// corruption and triple every hard error's latency.
func TestClientDoesNotRetryStructuralErrors(t *testing.T) {
	t.Run("416_is_corrupt", func(t *testing.T) {
		flaky, fts, ix := flakyServer(t, "", 0)
		c, err := serve.NewClient(fts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rec := ix.Records[0]
		recLen := rec.Prefixes[len(rec.Prefixes)-1]
		_, err = c.ReadRange(rec.Name, recLen+10, 64)
		if !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("range past end: %v, want ErrCorrupt", err)
		}
		if n := flaky.count(); n != 1 {
			t.Fatalf("server saw %d attempts for a structural error, want 1", n)
		}
	})

	t.Run("404_fails_fast", func(t *testing.T) {
		flaky, fts, _ := flakyServer(t, "", 0)
		c, err := serve.NewClient(fts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.ReadRange("no-such-record", 0, 64); err == nil {
			t.Fatal("read of a missing record succeeded")
		}
		if n := flaky.count(); n != 1 {
			t.Fatalf("server saw %d attempts for a 404, want 1", n)
		}
	})
}
