package serve

import (
	"log"
	"net/http"
	"time"
)

// Middleware wraps a handler with cross-cutting behavior. The router
// applies its chain outermost-first, so the first middleware installed sees
// the request first and the response last — the conventional onion.
//
// The serving tier grew past the point where a bare ServeMux scales:
// counters were hand-rolled into ServeHTTP, and every new endpoint
// (/cluster today; auth and per-tenant accounting on the roadmap) would
// have re-threaded them. The router centralizes that: endpoints register
// plain handlers, and metrics/logging/auth compose around the mux once.
type Middleware func(http.Handler) http.Handler

// router is a ServeMux with a middleware chain baked around it at build
// time (the chain is fixed once use() calls stop, so ServeHTTP does no
// per-request composition).
type router struct {
	mux     *http.ServeMux
	handler http.Handler
	chain   []Middleware
}

func newRouter(mw ...Middleware) *router {
	rt := &router{mux: http.NewServeMux(), chain: mw}
	h := http.Handler(rt.mux)
	for i := len(rt.chain) - 1; i >= 0; i-- {
		h = rt.chain[i](h)
	}
	rt.handler = h
	return rt
}

// handle registers a handler for a ServeMux pattern (method-qualified
// patterns supported as usual).
func (rt *router) handle(pattern string, h http.HandlerFunc) {
	rt.mux.HandleFunc(pattern, h)
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.handler.ServeHTTP(w, r)
}

// statusRecorder captures the response code so middleware observes what the
// endpoint (or the mux's own 404/405) actually wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// metricsMiddleware maintains the server's request counters: every request,
// every 4xx/5xx, and — fleet mode — every request a client marked as a
// hedge (the X-Pcr-Hedge header), so /varz shows hedged load landing on
// replicas.
func (s *Server) metricsMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if r.Header.Get(hedgeHeader) != "" {
			s.hedgedRequests.Add(1)
		}
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sr, r)
		if sr.code >= 400 {
			s.errors.Add(1)
		}
	})
}

// loggingMiddleware logs one line per request (method, path, status,
// duration). Off by default; enabled by Options.LogRequests for debugging a
// fleet member without a proxy in front.
func loggingMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sr, r)
		log.Printf("serve: %s %s -> %d (%v)", r.Method, r.URL.RequestURI(), sr.code, time.Since(start).Round(time.Microsecond))
	})
}
