// Package serve is the remote serving layer: an HTTP server that exposes a
// PCR dataset's record index and byte-range prefix reads, plus the matching
// client Backend (see client.go) that lets a reader on another machine run
// the paper's entire read path — quality selection, sequential prefix
// reads, delta cache upgrades (§5) — over a network.
//
// The wire protocol is deliberately tiny and HTTP-native, because the
// paper's central operation maps exactly onto an HTTP Range request:
//
//	GET /index                      → the record index as JSON (core.Index):
//	                                  record names, sample counts, and the
//	                                  per-scan-group prefix lengths readers
//	                                  plan reads with (§3.2's metadata DB
//	                                  role). Carries an ETag; If-None-Match
//	                                  is answered with 304.
//	GET /records/{name}             → record bytes. "Range: bytes=a-b" is
//	                                  honored with 206/Content-Range;
//	                                  a past-EOF start yields 416. Each
//	                                  record carries a strong ETag (records
//	                                  are immutable once written).
//	GET /records/{name}?group=g     → the same object truncated to the
//	                                  record's scan-group-g prefix, so a
//	                                  client without the index can still
//	                                  fetch "every image of this record at
//	                                  quality g" in one request. Range
//	                                  applies within the truncated view.
//	                                  g uses the record's own scan-group
//	                                  numbering: group 0 is the metadata-only
//	                                  prefix (no image scans) and groups
//	                                  beyond what the record stores clamp to
//	                                  the whole record. This is NOT the pcr
//	                                  facade's quality scale, where 0 (Full)
//	                                  means best — omit ?group for all bytes.
//	GET /records/{name}?group=g&samples=b
//	                                → sample-level predicate pushdown: only
//	                                  the byte ranges of the samples the
//	                                  base64url bitmap b selects, coalesced
//	                                  and concatenated (see pushdown.go).
//	GET /varz                       → counters as expvar-style JSON.
//	GET /healthz                    → liveness.
//
// A reader that scanned at quality g and wants quality g+k issues a Range
// request starting at its cached prefix length — the server sends only the
// delta bytes, which is the §5 cache-pressure property working end to end.
//
// The server keeps a byte-budgeted LRU of hot record prefixes (reusing
// internal/cache): concurrent requests for different records (shards) are
// served in parallel by net/http, and a request that extends a cached
// prefix performs one backing delta read rather than a full re-read. A
// second, persistent tier (internal/diskcache, Options.DiskCacheDir) can
// sit under the memory LRU for servers whose backing store is itself
// remote or slow: prefixes evicted from memory stay one local read away,
// and the tier survives server restarts.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diskcache"
)

// hedgeHeader marks a request a cluster client fired as a hedge against a
// slow owner; the receiving replica counts it (Stats.HedgedRequests), so
// /varz shows hedged load landing where it was re-aimed.
const hedgeHeader = "X-Pcr-Hedge"

// ownerHeader carries the owning member's URL on a 421 Misdirected
// Request, so a client with a stale ring learns where to go without a
// second membership round-trip.
const ownerHeader = "X-Pcr-Owner"

// ClusterConfig makes a Server one member of a sharded, replicated fleet:
// it serves — and admits requests for — only the records the fleet's
// consistent-hash ring places on it (as owner or replica), publishes the
// membership at /cluster, and answers requests for anything else with 421
// Misdirected Request plus the owner's URL. All members must be configured
// with the same member set (Self ∪ Peers) and Replication; ring
// determinism (internal/cluster) then guarantees they agree on placement
// without talking to each other.
type ClusterConfig struct {
	// Self is this server's own member URL as clients reach it
	// (e.g. "http://10.0.0.7:8100"). It is implicitly a member.
	Self string
	// Peers are the other members' URLs.
	Peers []string
	// Replication is the replica count per record, owner included
	// (default 1: ownership only, no redundancy).
	Replication int
	// VirtualNodes overrides the ring's virtual-node count per member
	// (default cluster.DefaultVirtualNodes).
	VirtualNodes int
}

// Options configure a Server.
type Options struct {
	// CacheBytes is the byte budget of the server's LRU of hot record
	// prefixes. Zero disables the cache: every request reads through to
	// the backing store.
	CacheBytes int64
	// Cluster, when set, runs the server as one member of a serving
	// fleet; see ClusterConfig. Nil serves the whole dataset standalone.
	Cluster *ClusterConfig
	// LogRequests logs one line per request (method, path, status,
	// duration) — debugging aid for a fleet member.
	LogRequests bool
	// DiskCacheDir mounts a persistent prefix cache (internal/diskcache)
	// under the memory LRU: record bytes evicted from memory are still one
	// local read away instead of one backing-store read away — the second
	// tier of the cache hierarchy, surviving server restarts. Empty
	// disables the tier. The directory must belong to this server process
	// alone.
	DiskCacheDir string
	// DiskCacheBytes is the disk tier's byte budget (default 4× CacheBytes
	// when a directory is set).
	DiskCacheBytes int64
	// DiskCacheLazyVerify defers the disk tier's recovery CRC pass from
	// startup to each entry's first read (diskcache.WithLazyVerify), so a
	// server fronting a huge warm cache starts serving immediately.
	DiskCacheLazyVerify bool
}

// Stats is a point-in-time snapshot of the server's counters, exposed at
// /varz and via expvar in cmd/pcrserved.
type Stats struct {
	// Requests counts all HTTP requests handled.
	Requests int64 `json:"requests"`
	// RangeRequests counts requests that carried a satisfiable Range.
	RangeRequests int64 `json:"range_requests"`
	// NotModified counts If-None-Match hits answered with 304.
	NotModified int64 `json:"not_modified"`
	// Errors counts requests answered with a 4xx/5xx status.
	Errors int64 `json:"errors"`
	// BytesServed counts record payload bytes written to clients.
	BytesServed int64 `json:"bytes_served"`
	// BytesRead counts bytes read from the backing store (with the hot
	// cache enabled this lags BytesServed on re-reads — the serving-side
	// analogue of the paper's cache-pressure reduction).
	BytesRead int64 `json:"bytes_read"`
	// HedgedRequests counts requests that arrived marked as client
	// hedges (the X-Pcr-Hedge header): tail-latency re-aims that landed
	// on this member.
	HedgedRequests int64 `json:"hedged_requests"`
	// Misdirected counts record requests refused with 421 because the
	// ring places the record on other members (fleet mode only).
	Misdirected int64 `json:"misdirected"`
	// ReplicaPulls and ReplicaPullBytes count replica warm-up reads
	// served by the records' owners during SyncReplicas (fleet mode
	// only).
	ReplicaPulls     int64 `json:"replica_pulls"`
	ReplicaPullBytes int64 `json:"replica_pull_bytes"`
	// PushdownRequests counts sample-selective record reads (?samples=
	// bitmap requests answered with only the selected byte ranges);
	// PushdownBytesSaved accumulates the bytes those responses did NOT
	// move relative to the full group prefix — the serving-side measure of
	// predicate pushdown working.
	PushdownRequests   int64 `json:"pushdown_requests"`
	PushdownBytesSaved int64 `json:"pushdown_bytes_saved"`
	// Cache are the hot-prefix cache's counters (zero when disabled).
	Cache cache.Stats `json:"cache"`
	// DiskCache are the persistent disk tier's counters (zero when
	// disabled).
	DiskCache diskcache.Stats `json:"disk_cache"`
}

// Server serves one opened PCR dataset over HTTP. It is an http.Handler;
// all methods are safe for concurrent use.
type Server struct {
	ds      *core.Dataset
	ownsDS  bool
	router  *router
	byName  map[string]int
	records []core.RecordInfo

	indexJSON []byte
	indexETag string
	etags     []string

	cache *cache.Cache
	disk  *diskcache.Backend

	// Fleet state (nil/empty standalone): the placement ring, this
	// member's identity, and the per-record verdicts derived from them.
	ring        *cluster.Ring
	self        string
	replication int
	serves      []bool   // ring places record i on this member
	owner       []string // owning member URL of record i
	clusterJSON []byte
	clusterETag string

	// pullOwner maps a record index to its owner's URL while SyncReplicas
	// is warming that record, rerouting the cache's backing fetch from
	// the store to the owner.
	pullMu    sync.Mutex
	pullOwner map[int]string

	requests           atomic.Int64
	rangeRequests      atomic.Int64
	notModified        atomic.Int64
	errors             atomic.Int64
	bytesServed        atomic.Int64
	bytesRead          atomic.Int64
	hedgedRequests     atomic.Int64
	misdirected        atomic.Int64
	replicaPulls       atomic.Int64
	replicaPullBytes   atomic.Int64
	pushdownRequests   atomic.Int64
	pushdownBytesSaved atomic.Int64
}

// New opens the PCR dataset directory at dir and serves it. Close releases
// the dataset.
func New(dir string, opts *Options) (*Server, error) {
	ds, err := core.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	s, err := NewFromDataset(ds, opts)
	if err != nil {
		ds.Close()
		return nil, err
	}
	s.ownsDS = true
	return s, nil
}

// NewFromDataset serves an already-opened dataset, which the caller remains
// responsible for closing. With Options.DiskCacheDir set, the dataset's
// storage backend is wrapped in the persistent cache tier in place; the
// wrapper is released by the dataset's own Close.
func NewFromDataset(ds *core.Dataset, opts *Options) (*Server, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	ix := ds.Index()
	indexJSON, err := core.EncodeIndex(ix)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ds:        ds,
		byName:    make(map[string]int, len(ix.Records)),
		records:   ix.Records,
		indexJSON: indexJSON,
		indexETag: fmt.Sprintf("%q", fmt.Sprintf("idx-%08x-%d", crc32.ChecksumIEEE(indexJSON), len(indexJSON))),
	}
	for i, re := range ix.Records {
		s.byName[re.Name] = i
		// Records are immutable once written, so name + full length is a
		// strong validator.
		s.etags = append(s.etags, fmt.Sprintf("%q", fmt.Sprintf("%s-%d", re.Name, re.Prefixes[len(re.Prefixes)-1])))
	}
	if o.DiskCacheLazyVerify && o.DiskCacheDir == "" {
		return nil, fmt.Errorf("serve: DiskCacheLazyVerify requires DiskCacheDir")
	}
	if o.DiskCacheDir != "" {
		budget := o.DiskCacheBytes
		if budget <= 0 {
			if budget = 4 * o.CacheBytes; budget <= 0 {
				budget = 1 << 30
			}
		}
		gen, err := core.IndexFingerprint(ix)
		if err != nil {
			return nil, err
		}
		var dcOpts []diskcache.Option
		if o.DiskCacheLazyVerify {
			dcOpts = append(dcOpts, diskcache.WithLazyVerify())
		}
		dc, err := diskcache.Wrap(ds.Backend(), o.DiskCacheDir, budget, gen, dcOpts...)
		if err != nil {
			return nil, err
		}
		ds.SetBackend(dc)
		s.disk = dc
	}
	if o.CacheBytes > 0 {
		c, err := cache.New(o.CacheBytes, s.fetchRange)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	if o.Cluster != nil {
		if err := s.initCluster(o.Cluster); err != nil {
			return nil, err
		}
	}
	mw := []Middleware{s.metricsMiddleware}
	if o.LogRequests {
		mw = append(mw, loggingMiddleware)
	}
	rt := newRouter(mw...)
	rt.handle("GET /index", s.handleIndex)
	rt.handle("GET /records/{name}", s.handleRecord)
	rt.handle("GET /cluster", s.handleCluster)
	rt.handle("GET /varz", s.handleVarz)
	rt.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.router = rt
	return s, nil
}

// initCluster resolves this member's slice of the fleet: the ring over
// Self ∪ Peers, the per-record serve/refuse verdicts, and the frozen
// /cluster document.
func (s *Server) initCluster(cc *ClusterConfig) error {
	if cc.Self == "" {
		return fmt.Errorf("serve: cluster config needs Self (this member's URL)")
	}
	members := append([]string{cc.Self}, cc.Peers...)
	ring, err := cluster.New(members, cc.VirtualNodes)
	if err != nil {
		return err
	}
	repl := cc.Replication
	if repl <= 0 {
		repl = 1
	}
	if repl > len(ring.Members()) {
		return fmt.Errorf("serve: replication %d exceeds the %d-member fleet", repl, len(ring.Members()))
	}
	s.ring, s.self, s.replication = ring, cc.Self, repl
	s.serves = make([]bool, len(s.records))
	s.owner = make([]string, len(s.records))
	for i, re := range s.records {
		reps := ring.Replicas(re.Name, repl)
		s.owner[i] = reps[0]
		for _, m := range reps {
			if m == cc.Self {
				s.serves[i] = true
				break
			}
		}
	}
	info := cluster.Info{
		Members:     ring.Members(),
		Replication: repl,
		Self:        cc.Self,
		Epoch:       cluster.Epoch(ring.Members(), repl),
	}
	data, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("serve: encoding cluster info: %w", err)
	}
	s.clusterJSON = data
	s.clusterETag = fmt.Sprintf("%q", "cl-"+info.Epoch)
	return nil
}

// Close releases the dataset when the server owns it (constructed with New).
func (s *Server) Close() error {
	if s.ownsDS {
		return s.ds.Close()
	}
	return nil
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:           s.requests.Load(),
		RangeRequests:      s.rangeRequests.Load(),
		NotModified:        s.notModified.Load(),
		Errors:             s.errors.Load(),
		BytesServed:        s.bytesServed.Load(),
		BytesRead:          s.bytesRead.Load(),
		HedgedRequests:     s.hedgedRequests.Load(),
		Misdirected:        s.misdirected.Load(),
		ReplicaPulls:       s.replicaPulls.Load(),
		ReplicaPullBytes:   s.replicaPullBytes.Load(),
		PushdownRequests:   s.pushdownRequests.Load(),
		PushdownBytesSaved: s.pushdownBytesSaved.Load(),
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	if s.disk != nil {
		st.DiskCache = s.disk.Stats()
	}
	return st
}

// ServeHTTP implements http.Handler: the middleware chain (metrics always;
// logging when enabled) around the endpoint mux. Every 4xx/5xx — including
// the mux's own 404/405 for unknown paths and methods — lands in the
// Errors counter via the metrics middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.router.ServeHTTP(w, r)
}

// fail writes an error status (counted by ServeHTTP's status recorder).
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// handleIndex serves the record index — whole, or one worker's shard view
// (?shard=i&nshards=n: records r with r % n == i, the same stride
// partition pcr.Loader uses), so a distributed worker can plan its reads
// from an index proportional to its share of the dataset.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	shard, nshards := 0, 0
	if q := r.URL.Query(); q.Get("shard") != "" || q.Get("nshards") != "" {
		var err1, err2 error
		shard, err1 = strconv.Atoi(q.Get("shard"))
		nshards, err2 = strconv.Atoi(q.Get("nshards"))
		if err1 != nil || err2 != nil || nshards <= 0 || shard < 0 || shard >= nshards {
			s.fail(w, http.StatusBadRequest, "serve: bad shard %q of %q (want 0 <= shard < nshards)",
				q.Get("shard"), q.Get("nshards"))
			return
		}
	}
	// A shard view is a pure function of the immutable index, so its
	// validator derives from the whole-index ETag — a conditional poll is
	// answered with 304 before any encoding work.
	etag := s.indexETag
	if nshards > 0 {
		etag = fmt.Sprintf("%q", fmt.Sprintf("%s-s%d.%d", strings.Trim(s.indexETag, `"`), shard, nshards))
	}
	w.Header().Set("ETag", etag)
	if ifNoneMatch(r, etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body := s.indexJSON
	if nshards > 0 {
		if r.Method == http.MethodHead {
			// Don't pay the per-request encode just to discard the body
			// (Content-Length is optional on HEAD responses).
			return
		}
		sub := core.Index{NumGroups: s.ds.NumGroups}
		for i := shard; i < len(s.records); i += nshards {
			sub.Records = append(sub.Records, s.records[i])
			sub.NumImages += s.records[i].Samples
		}
		var err error
		if body, err = core.EncodeIndex(&sub); err != nil {
			w.Header().Del("ETag")
			s.fail(w, http.StatusInternalServerError, "serve: %v", err)
			return
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}

// handleCluster serves the fleet membership (cluster.Info): member list,
// replication factor, this member's identity, and the placement epoch,
// with an ETag derived from the epoch so clients poll with If-None-Match
// and rebuild their ring only when membership actually moves. A standalone
// server (no ClusterConfig) synthesizes a single-member fleet from the URL
// the client reached it at — so a cluster-aware client speaks one protocol
// to any server, fleet or not.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	body, etag := s.clusterJSON, s.clusterETag
	if s.ring == nil {
		scheme := "http"
		if r.TLS != nil {
			scheme = "https"
		}
		self := scheme + "://" + r.Host
		info := cluster.Info{
			Members:     []string{self},
			Replication: 1,
			Self:        self,
			Epoch:       cluster.Epoch([]string{self}, 1),
		}
		var err error
		if body, err = json.Marshal(info); err != nil {
			s.fail(w, http.StatusInternalServerError, "serve: %v", err)
			return
		}
		etag = fmt.Sprintf("%q", "cl-"+info.Epoch)
	}
	w.Header().Set("ETag", etag)
	if ifNoneMatch(r, etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// handleRecord serves record bytes: the whole record, a ?group=g prefix
// view, or a byte range within either.
func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rec, ok := s.byName[name]
	if !ok {
		s.fail(w, http.StatusNotFound, "serve: no record %q", name)
		return
	}
	// Fleet mode: refuse records the ring places elsewhere. 421 (not 404)
	// tells a routing client its ring is stale rather than the record
	// missing, and the owner header points it at the right member without
	// a membership round-trip.
	if s.ring != nil && !s.serves[rec] {
		s.misdirected.Add(1)
		w.Header().Set(ownerHeader, s.owner[rec])
		s.fail(w, http.StatusMisdirectedRequest,
			"serve: record %q belongs to %s (this member is %s)", name, s.owner[rec], s.self)
		return
	}
	// Sample-level pushdown: serve only the selected samples' byte ranges
	// (see pushdown.go).
	if bitmap := r.URL.Query().Get("samples"); bitmap != "" {
		s.handleSamples(w, r, rec, bitmap)
		return
	}
	re := &s.records[rec]

	// The served object is the record truncated to the requested scan
	// group's prefix (clamped to what the record stores, mirroring the
	// local reader's grayscale clamp); without ?group it is the whole
	// record file. Scan-group numbering is the record's own: group 0 is
	// the metadata-only prefix, not the facade's "Full".
	size := re.Prefixes[len(re.Prefixes)-1]
	if gs := r.URL.Query().Get("group"); gs != "" {
		g, err := strconv.Atoi(gs)
		if err != nil || g < 0 {
			s.fail(w, http.StatusBadRequest, "serve: bad group %q", gs)
			return
		}
		if g >= len(re.Prefixes) {
			g = len(re.Prefixes) - 1
		}
		size = re.Prefixes[g]
	}

	etag := s.etags[rec]
	w.Header().Set("ETag", etag)
	w.Header().Set("Accept-Ranges", "bytes")
	if ifNoneMatch(r, etag) {
		s.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	start, length, status := resolveRange(r.Header.Get("Range"), size)
	if status == http.StatusRequestedRangeNotSatisfiable {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		s.fail(w, status, "serve: unsatisfiable range %q for %d-byte object", r.Header.Get("Range"), size)
		return
	}

	if status == http.StatusPartialContent {
		s.rangeRequests.Add(1)
	}
	// Read before committing any success headers, so a backing failure
	// (record deleted or truncated underfoot) yields a clean 500 without a
	// stale Content-Range or ETag attached.
	var data []byte
	if r.Method != http.MethodHead {
		var err error
		data, err = s.readRange(rec, start, length)
		if err != nil {
			w.Header().Del("ETag")
			w.Header().Del("Accept-Ranges")
			s.fail(w, http.StatusInternalServerError, "serve: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	if status == http.StatusPartialContent {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, start+length-1, size))
	}
	w.WriteHeader(status)
	if r.Method == http.MethodHead {
		return
	}
	n, _ := w.Write(data)
	s.bytesServed.Add(int64(n))
}

// readRange produces [start, start+length) of record rec, through the hot
// prefix cache when enabled. Because PCR reads are prefix reads, caching
// the prefix through start+length serves both this request and any future
// request at the same or lower quality; a longer future request costs only
// the delta.
func (s *Server) readRange(rec int, start, length int64) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	if s.cache == nil {
		return s.ds.ReadRecordRange(rec, start, length)
	}
	prefix, err := s.cache.Get(rec, start+length)
	if err != nil {
		return nil, err
	}
	return prefix[start : start+length], nil
}

// fetchRange is the hot cache's backing fetcher, counted as backing-store
// reads. While SyncReplicas is warming a replicated record, the fetch is
// rerouted to the record's owner over HTTP (falling back to the backing
// store if the owner is unreachable), so a replica fills from the member
// that most likely has the bytes hot instead of hammering cold storage.
func (s *Server) fetchRange(rec int, offset, length int64) ([]byte, error) {
	if owner := s.pullTarget(rec); owner != "" {
		data, err := s.pullFromOwner(owner, rec, offset, length)
		if err == nil {
			return data, nil
		}
	}
	data, err := s.ds.ReadRecordRange(rec, offset, length)
	if err == nil {
		s.bytesRead.Add(int64(len(data)))
	}
	return data, err
}

func (s *Server) pullTarget(rec int) string {
	s.pullMu.Lock()
	defer s.pullMu.Unlock()
	return s.pullOwner[rec]
}

func (s *Server) pullFromOwner(owner string, rec int, offset, length int64) ([]byte, error) {
	c, err := NewClient(owner, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	data, err := c.ReadRange(s.records[rec].Name, offset, length)
	if err != nil {
		return nil, err
	}
	s.replicaPulls.Add(1)
	s.replicaPullBytes.Add(int64(len(data)))
	return data, nil
}

// SyncReplicas warms this member's hot cache with every record the ring
// assigns it as a non-owning replica, pulling the bytes from each record's
// owner over HTTP — the fleet's replication-on-sync step. The owner has
// (or will then have) the record hot, so a rolling restart re-warms
// replicas peer-to-peer instead of stampeding the backing store; an
// unreachable owner silently degrades to a backing-store read. Requires
// the hot cache (Options.CacheBytes) and fleet mode; otherwise a no-op.
// Best-effort: the first error cancels nothing, and the method reports how
// many records were warmed.
func (s *Server) SyncReplicas(ctx context.Context) (warmed int, err error) {
	if s.ring == nil || s.cache == nil {
		return 0, nil
	}
	var firstErr error
	for rec := range s.records {
		if !s.serves[rec] || s.owner[rec] == s.self {
			continue
		}
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		size := s.records[rec].Prefixes[len(s.records[rec].Prefixes)-1]
		s.pullMu.Lock()
		if s.pullOwner == nil {
			s.pullOwner = make(map[int]string)
		}
		s.pullOwner[rec] = s.owner[rec]
		s.pullMu.Unlock()
		_, gerr := s.cache.Get(rec, size)
		s.pullMu.Lock()
		delete(s.pullOwner, rec)
		s.pullMu.Unlock()
		if gerr != nil {
			if firstErr == nil {
				firstErr = gerr
			}
			continue
		}
		warmed++
	}
	return warmed, firstErr
}

// ifNoneMatch reports whether the request's If-None-Match header matches
// the entity tag (weak comparison over a list, per RFC 9110 §13.1.2).
func ifNoneMatch(r *http.Request, etag string) bool {
	h := r.Header.Get("If-None-Match")
	if h == "" {
		return false
	}
	for _, part := range strings.Split(h, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// resolveRange interprets a Range header against an object of the given
// size, per RFC 9110 §14. It returns the byte window to serve and the HTTP
// status to serve it with:
//
//   - no header, a malformed header, or a multi-part range → the whole
//     object with 200 (an invalid Range header is ignored, and a server
//     MAY ignore multi-part ranges);
//   - "bytes=a-b", "bytes=a-", "bytes=-n" → the clamped window with 206;
//     a last-byte-pos or suffix-length too large to represent clamps to
//     the object (§14.1.1: recipients must handle out-of-range values);
//   - a start at or past EOF (including a first-byte-pos that overflows
//     int64), an empty suffix ("bytes=-0"), or any range against an empty
//     object → 416 (no byte range is satisfiable when the selected
//     representation is empty, and 206 could not carry a well-formed
//     Content-Range for it).
//
// Whitespace around the range bounds is tolerated even though the grammar
// does not produce it (generous-recipient leniency; OWS is only valid
// around commas in a range set).
func resolveRange(header string, size int64) (start, length int64, status int) {
	full := func() (int64, int64, int) { return 0, size, http.StatusOK }
	notSatisfiable := func() (int64, int64, int) { return 0, 0, http.StatusRequestedRangeNotSatisfiable }
	if header == "" {
		return full()
	}
	spec, ok := strings.CutPrefix(header, "bytes=")
	if !ok || strings.Contains(spec, ",") {
		return full()
	}
	first, last, ok := strings.Cut(spec, "-")
	if !ok {
		return full()
	}
	first, last = strings.TrimSpace(first), strings.TrimSpace(last)
	if first == "" {
		// Suffix form: the final n bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if overflowed(err) {
			n = size // longer than the representation: entire object
		} else if err != nil || n < 0 {
			return full()
		}
		if n == 0 || size == 0 {
			return notSatisfiable()
		}
		if n > size {
			n = size
		}
		return size - n, n, http.StatusPartialContent
	}
	a, err := strconv.ParseInt(first, 10, 64)
	if overflowed(err) {
		return notSatisfiable() // a first-byte-pos past any object is past EOF
	}
	if err != nil || a < 0 {
		return full()
	}
	if a >= size {
		return notSatisfiable()
	}
	end := size - 1
	if last != "" {
		b, err := strconv.ParseInt(last, 10, 64)
		if overflowed(err) {
			b = end // larger than the representation: clamp, don't ignore
		} else if err != nil {
			return full()
		}
		if b < a {
			return full()
		}
		if b < end {
			end = b
		}
	}
	return a, end - a + 1, http.StatusPartialContent
}

// overflowed reports whether a ParseInt failure was a syntactically valid
// number too large for int64 — which RFC 9110 treats as a value past any
// real object, not as a malformed header.
func overflowed(err error) bool {
	return errors.Is(err, strconv.ErrRange)
}
