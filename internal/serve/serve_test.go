package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/pcr"
)

// startServer synthesizes a small dataset and serves it.
func startServer(t *testing.T, opts *serve.Options, dsOpts ...pcr.Option) (dir string, srv *serve.Server, ts *httptest.Server) {
	t.Helper()
	dir = t.TempDir()
	if len(dsOpts) == 0 {
		dsOpts = []pcr.Option{pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4)}
	}
	if _, err := pcr.Synthesize(dir, "cars", 0.1, 1, dsOpts...); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts = httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return dir, srv, ts
}

func fetchIndex(t *testing.T, ts *httptest.Server) *core.Index {
	t.Helper()
	resp, err := http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /index: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.ParseIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// get issues a GET with optional headers and returns the response and body.
func get(t *testing.T, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestIndexRoundTripAndETag(t *testing.T) {
	dir, _, ts := startServer(t, nil)
	ix := fetchIndex(t, ts)
	if len(ix.Records) == 0 || ix.NumImages == 0 {
		t.Fatalf("index is empty: %+v", ix)
	}
	// The served index must match what the local dataset reports.
	ds, err := core.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ix.NumImages != ds.NumImages() || len(ix.Records) != ds.NumRecords() || ix.NumGroups != ds.NumGroups {
		t.Fatalf("served index %+v disagrees with local dataset", ix)
	}

	resp, _ := get(t, ts.URL+"/index", nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("index has no ETag")
	}
	resp304, body := get(t, ts.URL+"/index", map[string]string{"If-None-Match": etag})
	if resp304.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-None-Match: got %s with %d body bytes, want 304 empty", resp304.Status, len(body))
	}
}

// TestIndexShardView: ?shard=i&nshards=n returns the stride partition of
// the record index — disjoint across shards, covering, with its own ETag.
func TestIndexShardView(t *testing.T) {
	_, _, ts := startServer(t, nil)
	whole := fetchIndex(t, ts)

	const nshards = 3
	seen := make(map[string]int)
	images := 0
	var etags []string
	for shard := 0; shard < nshards; shard++ {
		url := fmt.Sprintf("%s/index?shard=%d&nshards=%d", ts.URL, shard, nshards)
		resp, body := get(t, url, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d: %s", shard, resp.Status)
		}
		ix, err := core.ParseIndex(body)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if ix.NumGroups != whole.NumGroups {
			t.Fatalf("shard %d reports %d groups, want %d", shard, ix.NumGroups, whole.NumGroups)
		}
		for _, re := range ix.Records {
			if prev, dup := seen[re.Name]; dup {
				t.Fatalf("record %s appears in shards %d and %d", re.Name, prev, shard)
			}
			seen[re.Name] = shard
			images += re.Samples
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("shard %d view has no ETag", shard)
		}
		etags = append(etags, etag)
		resp304, _ := get(t, url, map[string]string{"If-None-Match": etag})
		if resp304.StatusCode != http.StatusNotModified {
			t.Fatalf("shard %d If-None-Match: %s, want 304", shard, resp304.Status)
		}
	}
	if len(seen) != len(whole.Records) || images != whole.NumImages {
		t.Fatalf("shard views cover %d records / %d images, want %d / %d",
			len(seen), images, len(whole.Records), whole.NumImages)
	}
	for i := 1; i < len(etags); i++ {
		if etags[i] == etags[0] {
			t.Fatalf("shards %d and 0 share ETag %s", i, etags[0])
		}
	}

	for _, bad := range []string{"shard=0", "nshards=2", "shard=2&nshards=2", "shard=-1&nshards=2", "shard=x&nshards=2", "shard=0&nshards=0"} {
		resp, _ := get(t, ts.URL+"/index?"+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/index?%s: %s, want 400", bad, resp.Status)
		}
	}
}

func TestRecordRangeSemantics(t *testing.T) {
	dir, _, ts := startServer(t, nil)
	ix := fetchIndex(t, ts)
	re := ix.Records[0]
	full, err := os.ReadFile(filepath.Join(dir, re.Name))
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(full))
	if want := re.Prefixes[len(re.Prefixes)-1]; size != want {
		t.Fatalf("record file is %d bytes, index says %d", size, want)
	}
	url := ts.URL + "/records/" + re.Name

	cases := []struct {
		name       string
		rangeHdr   string
		wantStatus int
		wantBody   []byte
		wantCR     string // Content-Range
	}{
		{"full", "", http.StatusOK, full, ""},
		{"mid range", "bytes=10-19", http.StatusPartialContent, full[10:20], fmt.Sprintf("bytes 10-19/%d", size)},
		{"open ended", "bytes=5-", http.StatusPartialContent, full[5:], fmt.Sprintf("bytes 5-%d/%d", size-1, size)},
		{"suffix", "bytes=-7", http.StatusPartialContent, full[size-7:], fmt.Sprintf("bytes %d-%d/%d", size-7, size-1, size)},
		{"clamped end", fmt.Sprintf("bytes=0-%d", size+1000), http.StatusPartialContent, full, fmt.Sprintf("bytes 0-%d/%d", size-1, size)},
		{"first byte", "bytes=0-0", http.StatusPartialContent, full[:1], fmt.Sprintf("bytes 0-0/%d", size)},
		{"past EOF", fmt.Sprintf("bytes=%d-", size), http.StatusRequestedRangeNotSatisfiable, nil, fmt.Sprintf("bytes */%d", size)},
		{"empty suffix", "bytes=-0", http.StatusRequestedRangeNotSatisfiable, nil, fmt.Sprintf("bytes */%d", size)},
		{"inverted range ignored", "bytes=9-3", http.StatusOK, full, ""},
		{"empty spec ignored", "bytes=", http.StatusOK, full, ""},
		{"multipart ignored", "bytes=0-1,4-5", http.StatusOK, full, ""},
		{"non-bytes unit ignored", "items=0-4", http.StatusOK, full, ""},
		{"whitespace tolerated", "bytes= 10 - 19 ", http.StatusPartialContent, full[10:20], fmt.Sprintf("bytes 10-19/%d", size)},
		{"overflowing end clamps", "bytes=0-99999999999999999999999", http.StatusPartialContent, full, fmt.Sprintf("bytes 0-%d/%d", size-1, size)},
		{"overflowing start unsatisfiable", "bytes=99999999999999999999999-", http.StatusRequestedRangeNotSatisfiable, nil, fmt.Sprintf("bytes */%d", size)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := map[string]string{}
			if tc.rangeHdr != "" {
				hdr["Range"] = tc.rangeHdr
			}
			resp, body := get(t, url, hdr)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("Range %q: status %s, want %d", tc.rangeHdr, resp.Status, tc.wantStatus)
			}
			if tc.wantStatus != http.StatusRequestedRangeNotSatisfiable && !bytes.Equal(body, tc.wantBody) {
				t.Fatalf("Range %q: body %d bytes, want %d", tc.rangeHdr, len(body), len(tc.wantBody))
			}
			if tc.wantCR != "" {
				if got := resp.Header.Get("Content-Range"); got != tc.wantCR {
					t.Fatalf("Range %q: Content-Range %q, want %q", tc.rangeHdr, got, tc.wantCR)
				}
			}
			if resp.Header.Get("Accept-Ranges") != "bytes" {
				t.Fatalf("Range %q: missing Accept-Ranges", tc.rangeHdr)
			}
		})
	}
}

func TestGroupPrefixView(t *testing.T) {
	dir, _, ts := startServer(t, nil)
	ix := fetchIndex(t, ts)
	re := ix.Records[0]
	full, err := os.ReadFile(filepath.Join(dir, re.Name))
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/records/" + re.Name

	for g := 0; g < len(re.Prefixes); g++ {
		resp, body := get(t, fmt.Sprintf("%s?group=%d", url, g), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("group=%d: %s", g, resp.Status)
		}
		if want := full[:re.Prefixes[g]]; !bytes.Equal(body, want) {
			t.Fatalf("group=%d: got %d bytes, want the %d-byte prefix", g, len(body), len(want))
		}
	}
	// A group beyond what the record stores clamps to the whole record.
	resp, body := get(t, url+"?group=99", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, full) {
		t.Fatalf("group=99: status %s, %d bytes; want full record", resp.Status, len(body))
	}
	// Range applies within the truncated view: past the group prefix is 416.
	resp, _ = get(t, url+"?group=1", map[string]string{
		"Range": fmt.Sprintf("bytes=%d-", re.Prefixes[1]),
	})
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("range past group prefix: %s, want 416", resp.Status)
	}
	for _, bad := range []string{"-1", "x", ""} {
		resp, _ := get(t, url+"?group="+bad, nil)
		want := http.StatusBadRequest
		if bad == "" { // empty value means "no group filter"
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Fatalf("group=%q: %s, want %d", bad, resp.Status, want)
		}
	}
}

func TestRecordETagAndNotFound(t *testing.T) {
	_, _, ts := startServer(t, nil)
	ix := fetchIndex(t, ts)
	url := ts.URL + "/records/" + ix.Records[0].Name
	resp, _ := get(t, url, nil)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("record has no ETag")
	}
	resp304, body := get(t, url, map[string]string{"If-None-Match": etag})
	if resp304.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-None-Match: %s with %d bytes, want 304 empty", resp304.Status, len(body))
	}
	respNF, _ := get(t, ts.URL+"/records/no-such-record.pcr", nil)
	if respNF.StatusCode != http.StatusNotFound {
		t.Fatalf("missing record: %s, want 404", respNF.Status)
	}
}

// TestHotCacheServesRepeatsFromMemory: with the server-side LRU on, a
// repeated read costs no backing-store bytes and a group upgrade costs only
// the delta.
func TestHotCacheServesRepeatsFromMemory(t *testing.T) {
	_, srv, ts := startServer(t, &serve.Options{CacheBytes: 1 << 30})
	ix := fetchIndex(t, ts)
	re := ix.Records[0]
	url := ts.URL + "/records/" + re.Name

	get(t, url+"?group=1", nil)
	afterCold := srv.Stats()
	if afterCold.BytesRead != re.Prefixes[1] {
		t.Fatalf("cold group-1 read: BytesRead = %d, want %d", afterCold.BytesRead, re.Prefixes[1])
	}
	get(t, url+"?group=1", nil)
	afterWarm := srv.Stats()
	if afterWarm.BytesRead != afterCold.BytesRead {
		t.Fatalf("warm repeat read hit the backing store: %d → %d bytes", afterCold.BytesRead, afterWarm.BytesRead)
	}
	if afterWarm.Cache.Hits == 0 {
		t.Fatal("warm repeat read did not count a cache hit")
	}
	get(t, url+"?group=2", nil)
	afterUpgrade := srv.Stats()
	if want := afterWarm.BytesRead + (re.Prefixes[2] - re.Prefixes[1]); afterUpgrade.BytesRead != want {
		t.Fatalf("group upgrade read %d backing bytes total, want %d (delta only)", afterUpgrade.BytesRead, want)
	}
	if afterUpgrade.Cache.UpgradeHits == 0 {
		t.Fatal("group upgrade did not count an upgrade hit")
	}
}

func TestVarzAndHealthz(t *testing.T) {
	_, srv, ts := startServer(t, &serve.Options{CacheBytes: 1 << 20})
	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	_ = body
	fetchIndex(t, ts)
	resp, body = get(t, ts.URL+"/varz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("varz: %s", resp.Status)
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("varz is not Stats JSON: %v", err)
	}
	if st.Requests == 0 {
		t.Fatal("varz reports zero requests after requests were made")
	}
	if st.Requests != srv.Stats().Requests-1 { // -1: the /varz request itself raced the snapshot
		// Allow the snapshot to differ by in-flight requests; just check sanity.
		if st.Requests > srv.Stats().Requests {
			t.Fatalf("varz requests %d exceeds live counter %d", st.Requests, srv.Stats().Requests)
		}
	}
}

// TestConcurrentRangeReads hammers the server with concurrent ranged reads
// across records — the shared LRU and counters must stay consistent (run
// under -race in CI).
func TestConcurrentRangeReads(t *testing.T) {
	dir, srv, ts := startServer(t, &serve.Options{CacheBytes: 1 << 20})
	ix := fetchIndex(t, ts)
	files := make(map[string][]byte)
	for _, re := range ix.Records {
		data, err := os.ReadFile(filepath.Join(dir, re.Name))
		if err != nil {
			t.Fatal(err)
		}
		files[re.Name] = data
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				re := ix.Records[rng.Intn(len(ix.Records))]
				full := files[re.Name]
				start := rng.Int63n(int64(len(full)))
				end := start + rng.Int63n(int64(len(full))-start)
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/records/"+re.Name, nil)
				req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", start, end))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusPartialContent {
					errc <- fmt.Errorf("range read: %s", resp.Status)
					return
				}
				if !bytes.Equal(body, full[start:end+1]) {
					errc <- fmt.Errorf("range [%d,%d] of %s: wrong bytes", start, end, re.Name)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.RangeRequests == 0 || st.BytesServed == 0 {
		t.Fatalf("counters not advancing: %+v", st)
	}
}
