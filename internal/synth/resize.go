package synth

import (
	"image"
	"math/rand"
)

// ResizeBilinear scales an image to w×h with bilinear interpolation. The
// training pipeline uses it to bring variable-size dataset images to the
// model's fixed input resolution, mirroring the paper's resize augmentation.
func ResizeBilinear(src image.Image, w, h int) *image.RGBA {
	sb := src.Bounds()
	sw, sh := sb.Dx(), sb.Dy()
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	if sw == 0 || sh == 0 || w <= 0 || h <= 0 {
		return dst
	}
	for y := 0; y < h; y++ {
		fy := (float64(y) + 0.5) * float64(sh) / float64(h)
		sy0 := int(fy - 0.5)
		dy := fy - 0.5 - float64(sy0)
		sy1 := sy0 + 1
		if sy0 < 0 {
			sy0, dy = 0, 0
		}
		if sy1 >= sh {
			sy1 = sh - 1
		}
		for x := 0; x < w; x++ {
			fx := (float64(x) + 0.5) * float64(sw) / float64(w)
			sx0 := int(fx - 0.5)
			dx := fx - 0.5 - float64(sx0)
			sx1 := sx0 + 1
			if sx0 < 0 {
				sx0, dx = 0, 0
			}
			if sx1 >= sw {
				sx1 = sw - 1
			}
			blend := func(c00, c10, c01, c11 uint32) uint8 {
				top := float64(c00)*(1-dx) + float64(c10)*dx
				bot := float64(c01)*(1-dx) + float64(c11)*dx
				return uint8((top*(1-dy) + bot*dy) / 257)
			}
			r00, g00, b00, _ := src.At(sb.Min.X+sx0, sb.Min.Y+sy0).RGBA()
			r10, g10, b10, _ := src.At(sb.Min.X+sx1, sb.Min.Y+sy0).RGBA()
			r01, g01, b01, _ := src.At(sb.Min.X+sx0, sb.Min.Y+sy1).RGBA()
			r11, g11, b11, _ := src.At(sb.Min.X+sx1, sb.Min.Y+sy1).RGBA()
			i := dst.PixOffset(x, y)
			dst.Pix[i+0] = blend(r00, r10, r01, r11)
			dst.Pix[i+1] = blend(g00, g10, g01, g11)
			dst.Pix[i+2] = blend(b00, b10, b01, b11)
			dst.Pix[i+3] = 255
		}
	}
	return dst
}

// CenterCrop extracts the centered w×h region (clipped to the source).
func CenterCrop(src image.Image, w, h int) *image.RGBA {
	sb := src.Bounds()
	if w > sb.Dx() {
		w = sb.Dx()
	}
	if h > sb.Dy() {
		h = sb.Dy()
	}
	x0 := sb.Min.X + (sb.Dx()-w)/2
	y0 := sb.Min.Y + (sb.Dy()-h)/2
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst.Set(x, y, src.At(x0+x, y0+y))
		}
	}
	return dst
}

// RandomFlip returns a horizontally mirrored copy with probability 1/2 —
// the standard training augmentation the paper applies.
func RandomFlip(src *image.RGBA, rng *rand.Rand) *image.RGBA {
	if rng.Intn(2) == 0 {
		return src
	}
	b := src.Bounds()
	w, h := b.Dx(), b.Dy()
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dst.SetRGBA(x, y, src.RGBAAt(b.Min.X+w-1-x, b.Min.Y+y))
		}
	}
	return dst
}
