// Package synth generates the synthetic stand-ins for the paper's four
// evaluation datasets (ImageNet, HAM10000, Stanford Cars, CelebA-HQ).
//
// The reproduction cannot ship the real datasets, so it builds images whose
// *label signal has controlled spectral structure*: every class pattern is a
// sum of low-spatial-frequency components (chosen by the coarse label) and
// high-spatial-frequency components (chosen by the fine label within the
// coarse group). JPEG's early progressive scans carry only low frequencies,
// so coarse tasks remain learnable from scan group 1–2 while fine-grained
// tasks need later scans — exactly the dependence the paper demonstrates
// with Cars (multiclass vs make-only vs Is-Corvette, §4.3).
package synth

import (
	"fmt"
	"image"
	"image/color"
	"math"
	"math/rand"
)

// Profile describes one synthetic dataset in the shape of the paper's
// Table 1 entries.
type Profile struct {
	// Name identifies the dataset ("imagenet", "ham10000", ...).
	Name string
	// ImageSize is the square edge length in pixels. HAM10000 images are
	// the largest, mirroring the paper.
	ImageSize int
	// FineClasses is the number of fine-grained classes; CoarseClasses
	// must divide it (fine labels group into coarse ones).
	FineClasses, CoarseClasses int
	// NumImages is the dataset size.
	NumImages int
	// JPEGQuality is the quality at which the "original" dataset is stored,
	// mirroring Table 1 (ImageNet ≈ 92, HAM 100, Cars ≈ 84, CelebAHQ 75).
	JPEGQuality int
	// HighFreqAmp and LowFreqAmp weight the fine/coarse label signal.
	HighFreqAmp, LowFreqAmp float64
	// NoiseAmp is per-pixel instance noise.
	NoiseAmp float64
	// SizeJitter varies per-image texture amplitude, spreading encoded
	// sizes the way real photographs spread (Figure 12).
	SizeJitter float64
}

// The four evaluation profiles, scaled to laptop size. Relative proportions
// (image sizes, class counts, qualities) follow Table 1.
var (
	ImageNet = Profile{
		Name: "imagenet", ImageSize: 80, FineClasses: 20, CoarseClasses: 5,
		NumImages: 512, JPEGQuality: 92,
		HighFreqAmp: 28, LowFreqAmp: 46, NoiseAmp: 10, SizeJitter: 0.7,
	}
	HAM10000 = Profile{
		Name: "ham10000", ImageSize: 128, FineClasses: 7, CoarseClasses: 7,
		NumImages: 256, JPEGQuality: 100,
		HighFreqAmp: 18, LowFreqAmp: 52, NoiseAmp: 8, SizeJitter: 0.5,
	}
	Cars = Profile{
		Name: "cars", ImageSize: 64, FineClasses: 24, CoarseClasses: 6,
		NumImages: 384, JPEGQuality: 84,
		HighFreqAmp: 42, LowFreqAmp: 34, NoiseAmp: 8, SizeJitter: 0.5,
	}
	CelebAHQ = Profile{
		Name: "celebahq", ImageSize: 96, FineClasses: 2, CoarseClasses: 2,
		NumImages: 384, JPEGQuality: 75,
		HighFreqAmp: 12, LowFreqAmp: 56, NoiseAmp: 9, SizeJitter: 0.6,
	}
)

// Profiles lists the four evaluation datasets in paper order.
func Profiles() []Profile { return []Profile{ImageNet, CelebAHQ, HAM10000, Cars} }

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown dataset %q", name)
}

// Scaled returns a copy of the profile with the image count scaled by f
// (minimum one image per fine class).
func (p Profile) Scaled(f float64) Profile {
	n := int(float64(p.NumImages) * f)
	if n < p.FineClasses {
		n = p.FineClasses
	}
	p.NumImages = n
	return p
}

// Sample is one generated example: pixels plus its fine label. Coarse and
// binary labels derive from the fine label via the Task remappings below.
type Sample struct {
	ID    int
	Label int
	Img   *image.RGBA
}

// Dataset is a generated collection of samples split into train and test.
type Dataset struct {
	Profile Profile
	Train   []Sample
	Test    []Sample
}

// classBasis holds the sinusoidal components that define a class's pattern.
type classBasis struct {
	low, high []wave
	baseR     float64
	baseG     float64
	baseB     float64
}

type wave struct {
	fx, fy, phase, amp float64
}

// buildBases derives the deterministic per-class pattern parameters. Fine
// classes within one coarse group share the low-frequency components.
func buildBases(p Profile, rng *rand.Rand) []classBasis {
	perCoarse := p.FineClasses / p.CoarseClasses
	bases := make([]classBasis, p.FineClasses)

	// Low-frequency bases per coarse class: 0.5–2.5 cycles per image.
	lows := make([][]wave, p.CoarseClasses)
	for c := range lows {
		for i := 0; i < 3; i++ {
			lows[c] = append(lows[c], wave{
				fx:    0.5 + rng.Float64()*2,
				fy:    0.5 + rng.Float64()*2,
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 + rng.Float64(),
			})
		}
	}
	for f := 0; f < p.FineClasses; f++ {
		coarse := f / perCoarse
		b := classBasis{
			low:   lows[coarse],
			baseR: 90 + rng.Float64()*70,
			baseG: 90 + rng.Float64()*70,
			baseB: 90 + rng.Float64()*70,
		}
		// High-frequency bases per fine class: 1/8–1/4 of the image edge in
		// cycles, i.e. content that only late AC scans deliver.
		hi := float64(p.ImageSize)
		for i := 0; i < 3; i++ {
			b.high = append(b.high, wave{
				fx:    hi/8 + rng.Float64()*hi/8,
				fy:    hi/8 + rng.Float64()*hi/8,
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 + rng.Float64(),
			})
		}
		bases[f] = b
	}
	return bases
}

// Generate builds the dataset deterministically from the seed, with an
// 80/20 train/test split.
func Generate(p Profile, seed int64) (*Dataset, error) {
	if p.FineClasses <= 0 || p.CoarseClasses <= 0 || p.FineClasses%p.CoarseClasses != 0 {
		return nil, fmt.Errorf("synth: %d fine classes not divisible into %d coarse", p.FineClasses, p.CoarseClasses)
	}
	if p.ImageSize < 16 {
		return nil, fmt.Errorf("synth: image size %d too small", p.ImageSize)
	}
	rng := rand.New(rand.NewSource(seed))
	bases := buildBases(p, rng)

	// Pick the 20% test subset with a dedicated RNG over a permutation, so
	// membership is independent of the label cycle. (A per-index i%5 rule
	// would starve classes from the train split whenever 5 divides
	// FineClasses, since labels are assigned as i % FineClasses.)
	splitRng := rand.New(rand.NewSource(seed ^ 0x5eed))
	perm := splitRng.Perm(p.NumImages)
	nTest := p.NumImages / 5
	if nTest == 0 && p.NumImages > 1 {
		nTest = 1
	}
	isTest := make([]bool, p.NumImages)
	for _, idx := range perm[:nTest] {
		isTest[idx] = true
	}

	ds := &Dataset{Profile: p}
	for i := 0; i < p.NumImages; i++ {
		label := i % p.FineClasses // balanced classes
		img := renderSample(p, &bases[label], rng)
		s := Sample{ID: i, Label: label, Img: img}
		if isTest[i] {
			ds.Test = append(ds.Test, s)
		} else {
			ds.Train = append(ds.Train, s)
		}
	}
	return ds, nil
}

func renderSample(p Profile, b *classBasis, rng *rand.Rand) *image.RGBA {
	n := p.ImageSize
	img := image.NewRGBA(image.Rect(0, 0, n, n))
	// Per-instance variation makes the tasks non-trivial: every wave gets a
	// random phase offset and amplitude factor, the whole pattern shifts,
	// and the base color drifts. Structured perturbations (rather than more
	// white noise) keep the images JPEG-compressible like photographs.
	type waveInst struct {
		wave
		dphase, afac float64
	}
	instantiate := func(ws []wave, phaseSigma float64) []waveInst {
		out := make([]waveInst, len(ws))
		for i, w := range ws {
			out[i] = waveInst{
				wave:   w,
				dphase: rng.NormFloat64() * phaseSigma,
				afac:   0.7 + rng.Float64()*0.6,
			}
		}
		return out
	}
	lows := instantiate(b.low, 0.9)
	highs := instantiate(b.high, 1.6)
	texture := 1 + (rng.Float64()*2-1)*p.SizeJitter
	dx, dy := rng.Float64()*0.2-0.1, rng.Float64()*0.2-0.1 // pattern shift
	drift := rng.NormFloat64() * 12                        // base-color drift
	inv := 1 / float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			fx, fy := float64(x)*inv+dx, float64(y)*inv+dy
			var low, high float64
			for _, w := range lows {
				low += w.afac * w.amp * math.Sin(2*math.Pi*(w.fx*fx+w.fy*fy)+w.phase+w.dphase)
			}
			for _, w := range highs {
				high += w.afac * w.amp * math.Sin(2*math.Pi*(w.fx*fx+w.fy*fy)+w.phase+w.dphase)
			}
			v := p.LowFreqAmp*low/3 + p.HighFreqAmp*texture*high/3
			noise := (rng.Float64()*2 - 1) * p.NoiseAmp
			img.SetRGBA(x, y, color.RGBA{
				R: clamp8(b.baseR + drift + v + noise),
				G: clamp8(b.baseG + drift + v*0.8 + noise),
				B: clamp8(b.baseB + drift + v*0.6 + noise),
				A: 255,
			})
		}
	}
	return img
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
