package synth

import (
	"image"
	"image/color"
	"math/rand"
	"testing"

	"repro/internal/jpegc"
	"repro/internal/mssim"
)

func tinyProfile() Profile {
	p := Cars
	p.NumImages = 48
	p.ImageSize = 48
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := tinyProfile()
	a, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
		t.Fatal("split sizes differ across identical seeds")
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatalf("labels differ at %d", i)
		}
		ai, bi := a.Train[i].Img, b.Train[i].Img
		for j := range ai.Pix {
			if ai.Pix[j] != bi.Pix[j] {
				t.Fatalf("pixels differ in image %d", i)
			}
		}
	}
}

func TestGenerateSplitAndBalance(t *testing.T) {
	p := tinyProfile()
	ds, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Train) + len(ds.Test); got != p.NumImages {
		t.Errorf("total images %d, want %d", got, p.NumImages)
	}
	if len(ds.Test) == 0 || len(ds.Train) < 3*len(ds.Test) {
		t.Errorf("split %d/%d not ~80/20", len(ds.Train), len(ds.Test))
	}
	counts := map[int]int{}
	for _, s := range ds.Train {
		if s.Label < 0 || s.Label >= p.FineClasses {
			t.Fatalf("label %d out of range", s.Label)
		}
		counts[s.Label]++
	}
	if len(counts) != p.FineClasses {
		t.Errorf("train split covers %d classes, want %d", len(counts), p.FineClasses)
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	p := tinyProfile()
	p.CoarseClasses = 5 // does not divide 24
	if _, err := Generate(p, 1); err == nil {
		t.Error("non-divisible class structure accepted")
	}
	p = tinyProfile()
	p.ImageSize = 4
	if _, err := Generate(p, 1); err == nil {
		t.Error("tiny image size accepted")
	}
}

func TestTasksRemapLabels(t *testing.T) {
	p := tinyProfile() // 24 fine, 6 coarse
	mc := Multiclass(p)
	if mc.NumClasses != 24 || mc.Map(13) != 13 {
		t.Error("multiclass remap broken")
	}
	co := CoarseOnly(p)
	if co.NumClasses != 6 {
		t.Errorf("coarse classes = %d", co.NumClasses)
	}
	if co.Map(0) != 0 || co.Map(3) != 0 || co.Map(4) != 1 || co.Map(23) != 5 {
		t.Error("coarse remap broken")
	}
	bin, err := Binary(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Map(8) != 1 || bin.Map(9) != 1 || bin.Map(12) != 0 || bin.Map(0) != 0 {
		t.Error("binary remap broken")
	}
	if _, err := Binary(p, 99); err == nil {
		t.Error("out-of-range binary target accepted")
	}
}

// TestFrequencyStructure verifies the central design property: truncating
// the progressive stream to early scans hurts fine-class separability much
// more than coarse-class separability. We check the proxy: within one
// coarse group, two fine classes become nearly indistinguishable at scan 1
// (high MSSIM between their class means) while two coarse groups stay apart.
func TestFrequencyStructure(t *testing.T) {
	p := Cars
	p.NumImages = 24
	p.ImageSize = 64
	p.NoiseAmp = 0 // isolate the class signal
	p.SizeJitter = 0
	ds, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pick one image from fine classes 0, 1 (same coarse group) and 4
	// (different group).
	find := func(label int) image.Image {
		for _, s := range ds.Train {
			if s.Label == label {
				return s.Img
			}
		}
		for _, s := range ds.Test {
			if s.Label == label {
				return s.Img
			}
		}
		t.Fatalf("no sample with label %d", label)
		return nil
	}
	atScan := func(img image.Image, n int) image.Image {
		data, err := jpegc.Encode(img, &jpegc.Options{Quality: p.JPEGQuality, Progressive: true})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := jpegc.IndexScans(data)
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := jpegc.TruncateToScan(data, idx, n)
		if err != nil {
			t.Fatal(err)
		}
		out, err := jpegc.Decode(trunc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a0 := find(0)
	a1 := find(1) // same coarse group as 0
	b0 := find(4) // different coarse group

	simFineLow, err := mssim.SSIM(atScan(a0, 1), atScan(a1, 1))
	if err != nil {
		t.Fatal(err)
	}
	simFineHigh, err := mssim.SSIM(atScan(a0, 10), atScan(a1, 10))
	if err != nil {
		t.Fatal(err)
	}
	simCoarseLow, err := mssim.SSIM(atScan(a0, 1), atScan(b0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if simFineLow <= simFineHigh {
		t.Errorf("fine classes should converge at scan 1: sim@1=%.3f sim@10=%.3f", simFineLow, simFineHigh)
	}
	if simCoarseLow >= simFineLow {
		t.Errorf("coarse classes should stay apart at scan 1: coarse=%.3f fine=%.3f", simCoarseLow, simFineLow)
	}
}

func TestResizeBilinear(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 4, 4))
	for i := range src.Pix {
		src.Pix[i] = 200
	}
	dst := ResizeBilinear(src, 8, 8)
	if dst.Bounds().Dx() != 8 || dst.Bounds().Dy() != 8 {
		t.Fatalf("bounds = %v", dst.Bounds())
	}
	// A constant image must stay constant under resize.
	for i := 0; i < len(dst.Pix); i += 4 {
		if d := int(dst.Pix[i]) - 200; d < -1 || d > 1 {
			t.Fatalf("pixel %d = %d, want ~200", i, dst.Pix[i])
		}
	}
}

func TestCenterCrop(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 10, 10))
	src.SetRGBA(5, 5, color.RGBA{R: 42, A: 255})
	dst := CenterCrop(src, 4, 4)
	if dst.Bounds().Dx() != 4 {
		t.Fatalf("crop width %d", dst.Bounds().Dx())
	}
	if dst.RGBAAt(2, 2).R != 42 {
		t.Error("crop not centered")
	}
	big := CenterCrop(src, 100, 100)
	if big.Bounds().Dx() != 10 {
		t.Error("oversized crop not clipped")
	}
}

func TestRandomFlipPreservesPixels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := image.NewRGBA(image.Rect(0, 0, 6, 1))
	for x := 0; x < 6; x++ {
		src.SetRGBA(x, 0, color.RGBA{R: uint8(x), A: 255})
	}
	flipped, identity := 0, 0
	for i := 0; i < 100; i++ {
		out := RandomFlip(src, rng)
		if out.RGBAAt(0, 0).R == 5 {
			flipped++
		} else if out.RGBAAt(0, 0).R == 0 {
			identity++
		} else {
			t.Fatal("flip corrupted pixels")
		}
	}
	if flipped == 0 || identity == 0 {
		t.Errorf("flip not randomized: %d flips, %d identities", flipped, identity)
	}
}
