package synth

import "fmt"

// Task remaps a dataset's fine labels into the label space a training job
// uses. The paper's Cars experiments (§4.3) show that the same PCR dataset
// serves multiclass, make-only, and binary tasks — only the remap changes.
type Task struct {
	// Name identifies the task ("multiclass", "make-only", "binary").
	Name string
	// NumClasses is the size of the remapped label space.
	NumClasses int
	// Map converts a fine label into the task's label.
	Map func(fine int) int
}

// Multiclass is the identity task over all fine classes.
func Multiclass(p Profile) Task {
	return Task{
		Name:       "multiclass",
		NumClasses: p.FineClasses,
		Map:        func(f int) int { return f },
	}
}

// CoarseOnly groups fine labels into their coarse class — the paper's
// "Make-Only" Cars variant.
func CoarseOnly(p Profile) Task {
	per := p.FineClasses / p.CoarseClasses
	return Task{
		Name:       "make-only",
		NumClasses: p.CoarseClasses,
		Map:        func(f int) int { return f / per },
	}
}

// Binary is one-vs-rest detection of a single coarse class — the paper's
// "Is-Corvette" Cars variant.
func Binary(p Profile, target int) (Task, error) {
	if target < 0 || target >= p.CoarseClasses {
		return Task{}, fmt.Errorf("synth: binary target %d out of range [0,%d)", target, p.CoarseClasses)
	}
	per := p.FineClasses / p.CoarseClasses
	return Task{
		Name:       "binary",
		NumClasses: 2,
		Map: func(f int) int {
			if f/per == target {
				return 1
			}
			return 0
		},
	}, nil
}
