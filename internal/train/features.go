// Package train is the reproduction's training harness. It materializes a
// synthetic dataset as an in-memory PCR dataset, trains the nn models for
// real on images decoded at a chosen scan group, and charges virtual time
// for storage and compute through the loader/iosim pipeline — producing the
// time-to-accuracy curves, loading-rate bars, and gradient-similarity data
// of the paper's evaluation (§4, Figures 4–9 and 19–22).
package train

import (
	"image"

	"repro/internal/synth"
)

// FeatureEdge is the model input resolution: decoded images are resized to
// FeatureEdge×FeatureEdge luma (the paper resizes to 224×224; the stand-in
// models use a proportionally smaller input).
const FeatureEdge = 24

// FeatureLen is the model input width.
const FeatureLen = FeatureEdge * FeatureEdge

// Featurize converts a decoded image into the model's input vector:
// bilinear resize to FeatureEdge², BT.601 luma, scaled to [−1, 1].
func Featurize(img image.Image) []float64 {
	small := synth.ResizeBilinear(img, FeatureEdge, FeatureEdge)
	out := make([]float64, FeatureLen)
	i := 0
	for y := 0; y < FeatureEdge; y++ {
		for x := 0; x < FeatureEdge; x++ {
			o := small.PixOffset(x, y)
			r := float64(small.Pix[o+0])
			g := float64(small.Pix[o+1])
			b := float64(small.Pix[o+2])
			luma := 0.299*r + 0.587*g + 0.114*b
			out[i] = luma/127.5 - 1
			i++
		}
	}
	return out
}
