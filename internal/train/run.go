package train

import (
	"fmt"
	"math/rand"

	"repro/internal/iosim"
	"repro/internal/loader"
	"repro/internal/nn"
	"repro/internal/synth"
)

// Paper system constants used to scale the simulated storage so the
// bandwidth/compute balance matches the evaluation cluster (§4.1, §A.3):
// a 5-OSD Ceph HDD pool delivering ~425 MB/s against ~110 kB mean ImageNet
// images, with seeks ~3% of a record read.
const (
	paperClusterBandwidth = 425e6
	paperMeanImageBytes   = 110e3
	paperSeekSec          = 8e-3
	paperImagesPerRecord  = 1024
	paperDecodeBaseSec    = 1.0 / 230 // PIL baseline decode (§A.5)
	paperDecodeProgSec    = 1.0 / 150 // PIL progressive decode (§A.5)
	paperOSDs             = 5
	paperLoaderThreads    = 6  // "4 to 8 threads" (§A.3)
	paperWorkers          = 10 // training nodes; decode fans out across their cores
)

// ScaledStorage builds a simulated cluster whose balance against the models
// matches the paper's testbed. meanImageBytes is the reproduction dataset's
// mean full-quality image size: bandwidth and seek scale by
// meanImageBytes/110kB so that images-per-second delivery and the
// seek-to-transfer ratio both match the paper.
func ScaledStorage(meanImageBytes float64, imagesPerRecord int) (*iosim.Cluster, error) {
	if meanImageBytes <= 0 {
		return nil, fmt.Errorf("train: non-positive mean image size")
	}
	scale := meanImageBytes / paperMeanImageBytes
	recScale := float64(imagesPerRecord) / paperImagesPerRecord
	spec := iosim.DeviceSpec{
		Name:         "scaled-ceph-hdd",
		BandwidthBps: paperClusterBandwidth / paperOSDs * scale,
		SeekSec:      paperSeekSec * recScale,
	}
	return iosim.NewCluster(spec, paperOSDs)
}

// RunConfig configures one training run at a fixed scan group.
type RunConfig struct {
	// Model selects the architecture/speed profile.
	Model nn.ModelProfile
	// Task remaps labels (multiclass, make-only, binary).
	Task synth.Task
	// ScanGroup is the quality to read; use the set's NumGroups for the
	// baseline.
	ScanGroup int
	// Epochs is the epoch budget.
	Epochs int
	// BatchSize is the SGD minibatch size.
	BatchSize int
	// Seed drives initialization and shuffling.
	Seed int64
	// Cluster simulates storage; nil builds ScaledStorage automatically.
	Cluster *iosim.Cluster
	// EvalEvery samples test accuracy every k epochs (default 1).
	EvalEvery int
	// LRDropAt lists epoch fractions where the LR drops 10× (default
	// {1.0/3, 2.0/3}, mirroring the paper's 30/60-of-90 schedule).
	LRDropAt []float64
}

// EpochPoint is one sample of a training curve.
type EpochPoint struct {
	Epoch int
	// TimeSec is the virtual wall-clock at the end of this epoch, relative
	// to the first epoch's start.
	TimeSec float64
	// TrainLoss is the epoch's mean training loss.
	TrainLoss float64
	// TestAcc is the test accuracy sampled at this epoch (NaN when not
	// sampled; the Sampled flag distinguishes).
	TestAcc float64
	Sampled bool
	// ImagesPerSec is the epoch's loading/training rate.
	ImagesPerSec float64
	// StallSec is the compute unit's idle time during this epoch.
	StallSec float64
}

// RunResult is a full training curve.
type RunResult struct {
	Config RunConfig
	Points []EpochPoint
	// FinalAcc is the last sampled test accuracy.
	FinalAcc float64
	// TotalTimeSec is the virtual time of the whole run.
	TotalTimeSec float64
	// BytesPerEpoch is the storage bytes fetched each epoch.
	BytesPerEpoch int64
}

// Run trains the model at the configured scan group: real SGD over decoded
// features, virtual time from the simulated pipeline.
func Run(set *PCRSet, cfg RunConfig) (*RunResult, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: non-positive epochs")
	}
	if cfg.ScanGroup < 1 || cfg.ScanGroup > set.NumGroups {
		return nil, fmt.Errorf("train: scan group %d out of range [1,%d]", cfg.ScanGroup, set.NumGroups)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	drops := cfg.LRDropAt
	if drops == nil {
		drops = []float64{1.0 / 3, 2.0 / 3}
	}

	feats, err := set.TrainFeatures(cfg.ScanGroup)
	if err != nil {
		return nil, err
	}
	labels := set.TrainLabels(cfg.Task)
	testFeats, err := set.TestFeatures(cfg.ScanGroup)
	if err != nil {
		return nil, err
	}
	testLabels := set.TestLabels(cfg.Task)

	model, err := cfg.Model.Build(FeatureLen, cfg.Task.NumClasses, cfg.Seed)
	if err != nil {
		return nil, err
	}

	cluster := cfg.Cluster
	if cluster == nil {
		mean, err := set.MeanImageBytesAtGroup(set.NumGroups)
		if err != nil {
			return nil, err
		}
		cluster, err = ScaledStorage(mean, set.ImagesPerRecord)
		if err != nil {
			return nil, err
		}
	}

	recordBytes, err := set.RecordBytesAtGroup(cfg.ScanGroup)
	if err != nil {
		return nil, err
	}
	imagesPerRecord := set.ImagesPerRecordList()

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &RunResult{Config: cfg}
	clock := 0.0
	lr := cfg.Model.LR

	order := make([]int, len(feats))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, frac := range drops {
			if epoch == int(frac*float64(cfg.Epochs)) && epoch > 0 {
				lr /= 10
			}
		}
		// Virtual time: one epoch of the simulated pipeline.
		sim, err := loader.Run(loader.Config{
			Cluster:         cluster,
			Threads:         paperLoaderThreads,
			QueueCap:        2 * paperLoaderThreads,
			RecordBytes:     recordBytes,
			ImagesPerRecord: imagesPerRecord,
			// Each simulated loader stream stands for one stream per
			// training node, so decode parallelizes across the workers'
			// CPU cores (the paper notes near-linear data-parallel decode
			// scaling, §A.5).
			DecodeSecPerImage:  paperDecodeProgSec / paperWorkers,
			ComputeSecPerImage: 1 / cfg.Model.ClusterImagesPerSec,
			Shuffle:            rng,
			StartAt:            clock,
		})
		if err != nil {
			return nil, err
		}
		clock = sim.EndAt
		res.BytesPerEpoch = sim.BytesRead

		// Real SGD epoch.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var steps int
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			b := nn.Batch{}
			for _, idx := range order[start:end] {
				b.X = append(b.X, feats[idx])
				b.Y = append(b.Y, labels[idx])
			}
			g, loss, _, err := model.Gradient(b)
			if err != nil {
				return nil, err
			}
			model.Step(g, lr, cfg.Model.Momentum)
			epochLoss += loss
			steps++
		}

		pt := EpochPoint{
			Epoch:        epoch,
			TimeSec:      clock,
			TrainLoss:    epochLoss / float64(steps),
			ImagesPerSec: sim.ImagesPerSec,
			StallSec:     sim.TotalStallSec,
		}
		if epoch%evalEvery == 0 || epoch == cfg.Epochs-1 {
			_, acc, err := model.Evaluate(nn.Batch{X: testFeats, Y: testLabels})
			if err != nil {
				return nil, err
			}
			pt.TestAcc = acc
			pt.Sampled = true
			res.FinalAcc = acc
		}
		res.Points = append(res.Points, pt)
	}
	res.TotalTimeSec = clock
	return res, nil
}

// TimeToAccuracy returns the first virtual time at which a sampled test
// accuracy reaches the target, or (0, false) if never reached.
func (r *RunResult) TimeToAccuracy(target float64) (float64, bool) {
	for _, p := range r.Points {
		if p.Sampled && p.TestAcc >= target {
			return p.TimeSec, true
		}
	}
	return 0, false
}

// FullGradient computes the full-batch gradient of the current task at scan
// group g for a given model — the quantity compared across scan groups in
// the paper's cosine-distance analysis (Figure 19).
func FullGradient(set *PCRSet, model *nn.MLP, task synth.Task, g int) (*nn.Grads, error) {
	feats, err := set.TrainFeatures(g)
	if err != nil {
		return nil, err
	}
	labels := set.TrainLabels(task)
	grads, _, _, err := model.Gradient(nn.Batch{X: feats, Y: labels})
	return grads, err
}
