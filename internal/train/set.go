package train

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/jpegc"
	"repro/internal/synth"
)

// PCRSet is a synthetic dataset materialized as in-memory PCR records, with
// per-scan-group feature caches. The same PCRSet serves every scan group and
// every task — which is the point of the format.
type PCRSet struct {
	Profile synth.Profile
	// NumGroups is the scan-group count (10 for color data).
	NumGroups int
	// ImagesPerRecord is the record batching factor used at build time.
	ImagesPerRecord int

	records [][]byte
	metas   []*core.RecordMeta

	// trainLabels[i] is the fine label of train sample i (record-major
	// order); testLabels likewise.
	trainLabels []int
	testLabels  []int

	// testJPEG holds the encoded test images (tests are decoded at a scan
	// group too, so quality affects evaluation consistently).
	testProg [][]byte
	testIdx  []*jpegc.StreamIndex

	mu         sync.Mutex
	trainFeats map[int][][]float64 // scan group -> per-sample features
	testFeats  map[int][][]float64

	// BaselineBytes is the total size of the original baseline JPEG
	// dataset; PCRBytes the total PCR record bytes.
	BaselineBytes int64
	PCRBytes      int64
}

// BuildPCRSet encodes the dataset's train split into PCR records (via
// baseline JPEG at the profile's quality, then lossless progressive
// transcode inside WriteRecord) and prepares the test split.
func BuildPCRSet(ds *synth.Dataset, imagesPerRecord int) (*PCRSet, error) {
	return BuildPCRSetGrouped(ds, imagesPerRecord, 0)
}

// BuildPCRSetGrouped is BuildPCRSet with scan-group coalescing: scanGroups
// > 0 buckets the progressive scans into that many groups per record (see
// core.RecordOptions.ScanGroups).
func BuildPCRSetGrouped(ds *synth.Dataset, imagesPerRecord, scanGroups int) (*PCRSet, error) {
	if imagesPerRecord <= 0 {
		imagesPerRecord = 32
	}
	set := &PCRSet{
		Profile:         ds.Profile,
		ImagesPerRecord: imagesPerRecord,
		trainFeats:      make(map[int][][]float64),
		testFeats:       make(map[int][][]float64),
	}
	var pending []core.Sample
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		var buf bytes.Buffer
		meta, err := core.WriteRecordOpts(&buf, pending, &core.RecordOptions{ScanGroups: scanGroups})
		if err != nil {
			return err
		}
		set.records = append(set.records, buf.Bytes())
		set.metas = append(set.metas, meta)
		set.PCRBytes += int64(buf.Len())
		if meta.NumGroups > set.NumGroups {
			set.NumGroups = meta.NumGroups
		}
		pending = pending[:0]
		return nil
	}
	for _, s := range ds.Train {
		// Real photographic datasets are stored with 4:2:0 chroma
		// subsampling; match that so scan-group byte splits are realistic.
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: ds.Profile.JPEGQuality, Subsample420: true})
		if err != nil {
			return nil, fmt.Errorf("train: encoding sample %d: %w", s.ID, err)
		}
		set.BaselineBytes += int64(len(data))
		pending = append(pending, core.Sample{ID: int64(s.ID), Label: int64(s.Label), JPEG: data})
		set.trainLabels = append(set.trainLabels, s.Label)
		if len(pending) == imagesPerRecord {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for _, s := range ds.Test {
		data, err := jpegc.Encode(s.Img, &jpegc.Options{Quality: ds.Profile.JPEGQuality, Progressive: true, Subsample420: true})
		if err != nil {
			return nil, fmt.Errorf("train: encoding test sample %d: %w", s.ID, err)
		}
		idx, err := jpegc.IndexScans(data)
		if err != nil {
			return nil, err
		}
		set.testProg = append(set.testProg, data)
		set.testIdx = append(set.testIdx, idx)
		set.testLabels = append(set.testLabels, s.Label)
	}
	if len(set.records) == 0 {
		return nil, fmt.Errorf("train: empty train split")
	}
	return set, nil
}

// NumRecords returns the record count.
func (s *PCRSet) NumRecords() int { return len(s.records) }

// NumTrain returns the train sample count.
func (s *PCRSet) NumTrain() int { return len(s.trainLabels) }

// NumTest returns the test sample count.
func (s *PCRSet) NumTest() int { return len(s.testLabels) }

// RecordBytesAtGroup returns, for each record, the prefix bytes a reader
// fetches at scan group g — the loader simulation's input.
func (s *PCRSet) RecordBytesAtGroup(g int) ([]int64, error) {
	out := make([]int64, len(s.metas))
	for i, m := range s.metas {
		gg := g
		if gg > m.NumGroups {
			gg = m.NumGroups
		}
		n, err := m.PrefixLen(gg)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// ImagesPerRecordList returns each record's image count.
func (s *PCRSet) ImagesPerRecordList() []int {
	out := make([]int, len(s.metas))
	for i, m := range s.metas {
		out[i] = len(m.Samples)
	}
	return out
}

// MeanImageBytesAtGroup returns E[s(x, g)]: mean bytes per image when
// reading at scan group g (record overhead amortized in).
func (s *PCRSet) MeanImageBytesAtGroup(g int) (float64, error) {
	rb, err := s.RecordBytesAtGroup(g)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, b := range rb {
		total += b
	}
	return float64(total) / float64(s.NumTrain()), nil
}

// GroupSizeStats returns, for each scan group g in 1..NumGroups, the total
// cumulative bytes across all records (Figure 16's y-axis).
func (s *PCRSet) GroupSizeStats() ([]int64, error) {
	out := make([]int64, s.NumGroups)
	for g := 1; g <= s.NumGroups; g++ {
		rb, err := s.RecordBytesAtGroup(g)
		if err != nil {
			return nil, err
		}
		for _, b := range rb {
			out[g-1] += b
		}
	}
	return out, nil
}

// TrainFeatures returns the per-sample feature vectors of the train split
// decoded at scan group g, computing and caching them on first use.
func (s *PCRSet) TrainFeatures(g int) ([][]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.trainFeats[g]; ok {
		return f, nil
	}
	if g < 1 || g > s.NumGroups {
		return nil, fmt.Errorf("train: scan group %d out of range [1,%d]", g, s.NumGroups)
	}
	feats := make([][]float64, 0, s.NumTrain())
	for r, meta := range s.metas {
		gg := g
		if gg > meta.NumGroups {
			gg = meta.NumGroups
		}
		need, err := meta.PrefixLen(gg)
		if err != nil {
			return nil, err
		}
		prefix := s.records[r][:need]
		for i := range meta.Samples {
			img, err := meta.DecodeSample(prefix, i, gg)
			if err != nil {
				return nil, fmt.Errorf("train: record %d sample %d at group %d: %w", r, i, gg, err)
			}
			feats = append(feats, Featurize(img))
		}
	}
	s.trainFeats[g] = feats
	return feats, nil
}

// TestFeatures returns the test split's features at scan group g.
func (s *PCRSet) TestFeatures(g int) ([][]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.testFeats[g]; ok {
		return f, nil
	}
	if g < 1 || g > s.NumGroups {
		return nil, fmt.Errorf("train: scan group %d out of range [1,%d]", g, s.NumGroups)
	}
	feats := make([][]float64, 0, len(s.testProg))
	for i, data := range s.testProg {
		idx := s.testIdx[i]
		gg := g
		if gg > len(idx.Scans) {
			gg = len(idx.Scans)
		}
		trunc, err := jpegc.TruncateToScan(data, idx, gg)
		if err != nil {
			return nil, err
		}
		img, err := jpegc.Decode(trunc)
		if err != nil {
			return nil, fmt.Errorf("train: test sample %d at group %d: %w", i, gg, err)
		}
		feats = append(feats, Featurize(img))
	}
	s.testFeats[g] = feats
	return feats, nil
}

// SampleSizes reports one train image's storage footprint inside its
// record: header bytes plus per-scan-group byte lengths.
type SampleSizes struct {
	HeaderLen int64
	GroupLens []int64
}

// SampleGroupLens returns the per-image size breakdown of every train
// sample in record-major order (the Figure 16/31 data).
func (s *PCRSet) SampleGroupLens() []SampleSizes {
	var out []SampleSizes
	for _, m := range s.metas {
		for i := range m.Samples {
			sm := &m.Samples[i]
			lens := append([]int64(nil), sm.GroupLens...)
			out = append(out, SampleSizes{
				HeaderLen: int64(len(sm.Header)),
				GroupLens: lens,
			})
		}
	}
	return out
}

// RecordRanges returns each record's [start, end) sample-index range in the
// record-major train ordering. Mixture training draws a scan group per
// record (records are the unit of read), so it needs this mapping.
func (s *PCRSet) RecordRanges() [][2]int {
	out := make([][2]int, len(s.metas))
	start := 0
	for i, m := range s.metas {
		out[i] = [2]int{start, start + len(m.Samples)}
		start += len(m.Samples)
	}
	return out
}

// TrainLabels returns the fine labels of the train split, remapped by task.
func (s *PCRSet) TrainLabels(task synth.Task) []int {
	out := make([]int, len(s.trainLabels))
	for i, f := range s.trainLabels {
		out[i] = task.Map(f)
	}
	return out
}

// TestLabels returns the remapped test labels.
func (s *PCRSet) TestLabels(task synth.Task) []int {
	out := make([]int, len(s.testLabels))
	for i, f := range s.testLabels {
		out[i] = task.Map(f)
	}
	return out
}
