package train

import (
	"image"
	"image/color"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/synth"
)

func smallSet(t testing.TB, p synth.Profile, n int) *PCRSet {
	t.Helper()
	p.NumImages = n
	ds, err := synth.Generate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := BuildPCRSet(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestFeaturizeRangeAndShape(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 50, 40))
	for y := 0; y < 40; y++ {
		for x := 0; x < 50; x++ {
			img.SetRGBA(x, y, color.RGBA{uint8(x * 5), uint8(y * 6), 100, 255})
		}
	}
	f := Featurize(img)
	if len(f) != FeatureLen {
		t.Fatalf("len = %d", len(f))
	}
	for i, v := range f {
		if v < -1 || v > 1 {
			t.Fatalf("feature %d = %v out of [-1,1]", i, v)
		}
	}
	// A black image maps to all −1.
	black := image.NewRGBA(image.Rect(0, 0, 8, 8))
	for i := 3; i < len(black.Pix); i += 4 {
		black.Pix[i] = 255
	}
	for _, v := range Featurize(black) {
		if v != -1 {
			t.Fatalf("black feature = %v", v)
		}
	}
}

func TestBuildPCRSetBasics(t *testing.T) {
	p := synth.Cars
	p.ImageSize = 48
	set := smallSet(t, p, 60)
	if set.NumGroups != 10 {
		t.Fatalf("NumGroups = %d", set.NumGroups)
	}
	if set.NumTrain() != 48 || set.NumTest() != 12 {
		t.Fatalf("split %d/%d", set.NumTrain(), set.NumTest())
	}
	if set.NumRecords() != 3 {
		t.Fatalf("records = %d", set.NumRecords())
	}
	// No-space-overhead invariant at dataset scale.
	ratio := float64(set.PCRBytes) / float64(set.BaselineBytes)
	if ratio > 1.15 {
		t.Errorf("PCR/baseline = %.3f", ratio)
	}
	// Prefix bytes strictly increase with scan group; group 10 equals the
	// record size.
	for g := 1; g < set.NumGroups; g++ {
		a, err := set.RecordBytesAtGroup(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := set.RecordBytesAtGroup(g + 1)
		if err != nil {
			t.Fatal(err)
		}
		for r := range a {
			if a[r] >= b[r] {
				t.Fatalf("record %d: prefix(%d)=%d !< prefix(%d)=%d", r, g, a[r], g+1, b[r])
			}
		}
	}
	// Scan group 1 should cut bytes by at least 3x (the paper sees 2–10x).
	m1, _ := set.MeanImageBytesAtGroup(1)
	m10, _ := set.MeanImageBytesAtGroup(10)
	if m10/m1 < 3 {
		t.Errorf("scan 1 reduction only %.2fx", m10/m1)
	}
}

func TestFeaturesCachedAndDistinctAcrossGroups(t *testing.T) {
	p := synth.Cars
	p.ImageSize = 48
	set := smallSet(t, p, 30)
	f1, err := set.TrainFeatures(1)
	if err != nil {
		t.Fatal(err)
	}
	f1again, err := set.TrainFeatures(1)
	if err != nil {
		t.Fatal(err)
	}
	if &f1[0][0] != &f1again[0][0] {
		t.Error("features not cached")
	}
	f10, err := set.TrainFeatures(10)
	if err != nil {
		t.Fatal(err)
	}
	// Scan-1 features must differ from scan-10 features (lost detail), but
	// not wildly (same low-frequency content).
	var dist, norm float64
	for i := range f1 {
		for j := range f1[i] {
			d := f1[i][j] - f10[i][j]
			dist += d * d
			norm += f10[i][j] * f10[i][j]
		}
	}
	rel := math.Sqrt(dist / norm)
	if rel < 0.001 || rel > 1.0 {
		t.Errorf("relative feature distance scan1 vs scan10 = %.4f", rel)
	}
	if _, err := set.TrainFeatures(99); err == nil {
		t.Error("bad group accepted")
	}
	if _, err := set.TestFeatures(0); err == nil {
		t.Error("group 0 accepted")
	}
}

func TestRunProducesLearningCurve(t *testing.T) {
	p := synth.Cars
	p.ImageSize = 48
	set := smallSet(t, p, 96)
	res, err := Run(set, RunConfig{
		Model:     nn.ShuffleNetLike,
		Task:      synth.CoarseOnly(set.Profile),
		ScanGroup: set.NumGroups,
		Epochs:    12,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("loss did not decrease: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if res.FinalAcc <= 1.0/float64(synth.CoarseOnly(set.Profile).NumClasses)+0.05 {
		t.Errorf("final acc %.3f barely above chance", res.FinalAcc)
	}
	// Virtual time must increase monotonically.
	prev := 0.0
	for _, pt := range res.Points {
		if pt.TimeSec <= prev {
			t.Fatalf("time not increasing at epoch %d", pt.Epoch)
		}
		prev = pt.TimeSec
	}
	if res.BytesPerEpoch <= 0 {
		t.Error("no bytes charged")
	}
}

func TestLowerScanGroupIsFasterPerEpoch(t *testing.T) {
	p := synth.Cars
	p.ImageSize = 48
	set := smallSet(t, p, 96)
	task := synth.CoarseOnly(set.Profile)
	timing := func(g int) float64 {
		res, err := Run(set, RunConfig{
			Model: nn.ShuffleNetLike, Task: task,
			ScanGroup: g, Epochs: 2, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTimeSec
	}
	t1 := timing(1)
	t10 := timing(10)
	if t1 >= t10 {
		t.Errorf("scan 1 epoch time %.3f not faster than scan 10 %.3f", t1, t10)
	}
	// The paper's headline: roughly 2x or more speedup for low scans on
	// bandwidth-bound models.
	if t10/t1 < 1.5 {
		t.Errorf("speedup only %.2fx", t10/t1)
	}
}

func TestRunValidation(t *testing.T) {
	p := synth.Cars
	p.ImageSize = 48
	set := smallSet(t, p, 24)
	if _, err := Run(set, RunConfig{Model: nn.ResNetLike, Task: synth.Multiclass(set.Profile), ScanGroup: 0, Epochs: 1}); err == nil {
		t.Error("scan group 0 accepted")
	}
	if _, err := Run(set, RunConfig{Model: nn.ResNetLike, Task: synth.Multiclass(set.Profile), ScanGroup: 1, Epochs: 0}); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	r := &RunResult{Points: []EpochPoint{
		{Epoch: 0, TimeSec: 10, TestAcc: 0.3, Sampled: true},
		{Epoch: 1, TimeSec: 20, TestAcc: 0.6, Sampled: true},
		{Epoch: 2, TimeSec: 30, TestAcc: 0.9, Sampled: true},
	}}
	if tt, ok := r.TimeToAccuracy(0.5); !ok || tt != 20 {
		t.Errorf("tta(0.5) = %v, %v", tt, ok)
	}
	if _, ok := r.TimeToAccuracy(0.95); ok {
		t.Error("unreached target reported")
	}
}

func TestScaledStorageBalance(t *testing.T) {
	// The scaled cluster must deliver images at the same rate relative to
	// model compute as the paper's testbed: ~3860 img/s of full-quality
	// delivery against ResNet's 4240 and ShuffleNet's 7180.
	cluster, err := ScaledStorage(2500, 32)
	if err != nil {
		t.Fatal(err)
	}
	rate := cluster.AggregateBandwidth() / 2500
	if rate < 3500 || rate > 4200 {
		t.Errorf("scaled delivery rate %.0f img/s, want ~3860", rate)
	}
	if _, err := ScaledStorage(0, 32); err == nil {
		t.Error("zero mean size accepted")
	}
}

func TestFullGradientAcrossGroupsCosine(t *testing.T) {
	// Gradient at scan 10 vs itself is 1; gradient at scan 1 is positively
	// correlated but not identical (Figure 19's structure).
	p := synth.Cars
	p.ImageSize = 48
	set := smallSet(t, p, 48)
	task := synth.Multiclass(set.Profile)
	model, err := nn.ShuffleNetLike.Build(FeatureLen, task.NumClasses, 7)
	if err != nil {
		t.Fatal(err)
	}
	g10, err := FullGradient(set, model, task, 10)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := FullGradient(set, model, task, 1)
	if err != nil {
		t.Fatal(err)
	}
	self, err := nn.CosineSimilarity(g10.Flatten(), g10.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-1) > 1e-9 {
		t.Errorf("self cosine = %v", self)
	}
	cross, err := nn.CosineSimilarity(g1.Flatten(), g10.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	if cross <= 0.2 || cross >= 0.9999 {
		t.Errorf("scan1-vs-scan10 cosine = %v, want in (0.2, 1)", cross)
	}
}
