// Package wire implements the subset of the protobuf wire format the PCR
// system uses for metadata serialization (§3.2): varints, zigzag-encoded
// signed integers, and length-delimited fields. The paper notes that
// "serialization libraries, such as Protobuf, handle both the packing and
// unpacking steps transparently" — this package is that library, used by
// the record metadata sections, the kvstore index entries, and the
// TFRecord baseline's frames.
package wire

import (
	"errors"
	"fmt"
	"math"
)

// Wire types (protobuf-compatible numbering).
const (
	TypeVarint = 0
	TypeI64    = 1
	TypeBytes  = 2
	TypeI32    = 5
)

// ErrShort reports truncated input.
var ErrShort = errors.New("wire: truncated input")

// Encoder appends wire-format fields to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder, optionally reusing buf's storage.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Encode returns the encoded message.
func (e *Encoder) Encode() []byte { return e.buf }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) tag(field, wtype int) {
	e.varint(uint64(field)<<3 | uint64(wtype))
}

func (e *Encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Uint64 appends an unsigned varint field.
func (e *Encoder) Uint64(field int, v uint64) {
	e.tag(field, TypeVarint)
	e.varint(v)
}

// Int64 appends a zigzag-encoded signed varint field (sint64).
func (e *Encoder) Int64(field int, v int64) {
	e.Uint64(field, uint64(v)<<1^uint64(v>>63))
}

// Bool appends a boolean varint field.
func (e *Encoder) Bool(field int, v bool) {
	if v {
		e.Uint64(field, 1)
	} else {
		e.Uint64(field, 0)
	}
}

// Float64 appends a fixed64 floating-point field.
func (e *Encoder) Float64(field int, v float64) {
	e.tag(field, TypeI64)
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(bits>>(8*i)))
	}
}

// Bytes appends a length-delimited field.
func (e *Encoder) Bytes(field int, v []byte) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends a length-delimited string field.
func (e *Encoder) String(field int, v string) {
	e.tag(field, TypeBytes)
	e.varint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// PackedUint64 appends a packed repeated varint field.
func (e *Encoder) PackedUint64(field int, vs []uint64) {
	var tmp Encoder
	for _, v := range vs {
		tmp.varint(v)
	}
	e.Bytes(field, tmp.buf)
}

// Decoder iterates the fields of a wire-format message.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Done reports whether the whole message was consumed.
func (d *Decoder) Done() bool { return d.pos >= len(d.buf) }

func (d *Decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, ErrShort
		}
		b := d.buf[d.pos]
		d.pos++
		if shift >= 64 {
			return 0, fmt.Errorf("wire: varint overflow")
		}
		v |= uint64(b&0x7F) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}

// Next reads the next field's tag, returning its number and wire type.
func (d *Decoder) Next() (field, wtype int, err error) {
	tag, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	field = int(tag >> 3)
	wtype = int(tag & 7)
	if field <= 0 {
		return 0, 0, fmt.Errorf("wire: invalid field number %d", field)
	}
	return field, wtype, nil
}

// Uint64 reads a varint payload.
func (d *Decoder) Uint64() (uint64, error) { return d.varint() }

// Int64 reads a zigzag varint payload.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

// Bool reads a boolean varint payload.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.varint()
	return v != 0, err
}

// Float64 reads a fixed64 floating-point payload.
func (d *Decoder) Float64() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, ErrShort
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(d.buf[d.pos+i]) << (8 * i)
	}
	d.pos += 8
	return math.Float64frombits(bits), nil
}

// Bytes reads a length-delimited payload. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, ErrShort
	}
	v := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return v, nil
}

// String reads a length-delimited payload as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// PackedUint64 reads a packed repeated varint payload.
func (d *Decoder) PackedUint64() ([]uint64, error) {
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	sub := NewDecoder(b)
	var out []uint64
	for !sub.Done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Skip discards a field of the given wire type.
func (d *Decoder) Skip(wtype int) error {
	switch wtype {
	case TypeVarint:
		_, err := d.varint()
		return err
	case TypeI64:
		if d.pos+8 > len(d.buf) {
			return ErrShort
		}
		d.pos += 8
		return nil
	case TypeBytes:
		_, err := d.Bytes()
		return err
	case TypeI32:
		if d.pos+4 > len(d.buf) {
			return ErrShort
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("wire: unknown wire type %d", wtype)
	}
}
