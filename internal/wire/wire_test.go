package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(1, 300)
	e.Int64(2, -42)
	e.Bool(3, true)
	e.Float64(4, 3.14159)
	e.Bytes(5, []byte{1, 2, 3})
	e.String(6, "hello")
	e.PackedUint64(7, []uint64{0, 1, 127, 128, 1 << 40})

	d := NewDecoder(e.Encode())
	expectField := func(want, wantType int) {
		t.Helper()
		f, wt, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f != want || wt != wantType {
			t.Fatalf("field %d type %d, want %d/%d", f, wt, want, wantType)
		}
	}
	expectField(1, TypeVarint)
	if v, _ := d.Uint64(); v != 300 {
		t.Errorf("u64 = %d", v)
	}
	expectField(2, TypeVarint)
	if v, _ := d.Int64(); v != -42 {
		t.Errorf("i64 = %d", v)
	}
	expectField(3, TypeVarint)
	if v, _ := d.Bool(); !v {
		t.Error("bool = false")
	}
	expectField(4, TypeI64)
	if v, _ := d.Float64(); v != 3.14159 {
		t.Errorf("f64 = %v", v)
	}
	expectField(5, TypeBytes)
	if v, _ := d.Bytes(); string(v) != "\x01\x02\x03" {
		t.Errorf("bytes = %x", v)
	}
	expectField(6, TypeBytes)
	if v, _ := d.String(); v != "hello" {
		t.Errorf("string = %q", v)
	}
	expectField(7, TypeBytes)
	vs, err := d.PackedUint64()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 127, 128, 1 << 40}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("packed[%d] = %d, want %d", i, vs[i], want[i])
		}
	}
	if !d.Done() {
		t.Error("decoder not exhausted")
	}
}

func TestVarintQuick(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(nil)
		e.Uint64(1, v)
		d := NewDecoder(e.Encode())
		if _, _, err := d.Next(); err != nil {
			return false
		}
		got, err := d.Uint64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigzagQuick(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(nil)
		e.Int64(1, v)
		d := NewDecoder(e.Encode())
		if _, _, err := d.Next(); err != nil {
			return false
		}
		got, err := d.Int64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64SpecialValues(t *testing.T) {
	for _, v := range []float64{0, -0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		e := NewEncoder(nil)
		e.Float64(1, v)
		d := NewDecoder(e.Encode())
		d.Next()
		got, err := d.Float64()
		if err != nil || got != v {
			t.Errorf("f64 %v round-tripped to %v (err %v)", v, got, err)
		}
	}
	// NaN round-trips to NaN.
	e := NewEncoder(nil)
	e.Float64(1, math.NaN())
	d := NewDecoder(e.Encode())
	d.Next()
	if got, _ := d.Float64(); !math.IsNaN(got) {
		t.Errorf("NaN decoded as %v", got)
	}
}

func TestSkipUnknownFields(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(1, 7)
	e.Bytes(2, []byte("skip me"))
	e.Float64(3, 1.5)
	e.Uint64(4, 9)

	d := NewDecoder(e.Encode())
	var got []uint64
	for !d.Done() {
		f, wt, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == 1 || f == 4 {
			v, err := d.Uint64()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, v)
			continue
		}
		if err := d.Skip(wt); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("got %v", got)
	}
}

func TestTruncatedInputs(t *testing.T) {
	e := NewEncoder(nil)
	e.Bytes(1, make([]byte, 100))
	full := e.Encode()
	for cut := 1; cut < len(full); cut += 7 {
		d := NewDecoder(full[:cut])
		_, _, err := d.Next()
		if err != nil {
			continue // tag itself truncated: fine
		}
		if _, err := d.Bytes(); err == nil && cut < len(full) {
			t.Fatalf("cut %d: truncated bytes accepted", cut)
		}
	}
}

func TestFuzzishRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		d := NewDecoder(buf)
		// Must terminate without panicking.
		for !d.Done() {
			_, wt, err := d.Next()
			if err != nil {
				break
			}
			if err := d.Skip(wt); err != nil {
				break
			}
		}
	}
}
