package pcr_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/pcr"
)

// TestCloseDuringConcurrentScans pits many Scans against a concurrent
// Close (run under -race in CI): every scan must either complete cleanly
// (it beat the close) or terminate with ErrClosed at a sample boundary —
// never panic, race, or yield a partial sample.
func TestCloseDuringConcurrentScans(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir, pcr.WithPrefetchWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	const scanners = 8
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, scanners)
	counts := make([]int, scanners)
	for i := 0; i < scanners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			scan := ds.Scan
			if i%2 == 0 {
				scan = ds.ScanEncoded
			}
			for s, err := range scan(context.Background(), pcr.Full) {
				if err != nil {
					errs[i] = err
					return
				}
				if len(s.JPEG) == 0 {
					errs[i] = errors.New("yielded sample with no JPEG bytes")
					return
				}
				counts[i]++
			}
		}(i)
	}
	close(release)
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil && !errors.Is(err, pcr.ErrClosed) {
			t.Errorf("scanner %d: %v, want nil or ErrClosed", i, err)
		}
		if err == nil && counts[i] != n {
			t.Errorf("scanner %d completed cleanly with %d samples, want %d", i, counts[i], n)
		}
	}

	// Every operation started after Close fails with ErrClosed.
	for _, err := range []error{
		firstErr(ds.Scan(context.Background(), pcr.Full)),
		firstErr(ds.ScanEncoded(context.Background(), 1)),
	} {
		if !errors.Is(err, pcr.ErrClosed) {
			t.Errorf("scan after Close: %v, want ErrClosed", err)
		}
	}
	if _, err := ds.SizeAtQuality(1); !errors.Is(err, pcr.ErrClosed) {
		t.Errorf("SizeAtQuality after Close: %v, want ErrClosed", err)
	}
	if _, err := ds.ReadRecordEncoded(0, 1); !errors.Is(err, pcr.ErrClosed) {
		t.Errorf("ReadRecordEncoded after Close: %v, want ErrClosed", err)
	}
}

// firstErr drains a scan until its first error (nil if it completes).
func firstErr(seq func(func(pcr.Sample, error) bool)) error {
	var out error
	seq(func(_ pcr.Sample, err error) bool {
		out = err
		return err == nil
	})
	return out
}

// TestLoaderEpochAfterClose: a loader epoch over a closed dataset
// surfaces ErrClosed.
func TestLoaderEpochAfterClose(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(4))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pcr.NewLoader(ds)
	if err != nil {
		t.Fatal(err)
	}
	ds.Close()
	for _, err := range l.Epoch(context.Background(), 0) {
		if !errors.Is(err, pcr.ErrClosed) {
			t.Fatalf("epoch after Close: %v, want ErrClosed", err)
		}
		return
	}
	t.Fatal("epoch after Close yielded no error")
}
