package pcr

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/diskcache"
	"repro/internal/serve"
)

// CacheStats snapshots the prefix cache's counters (see WithCacheBytes).
type CacheStats = cache.Stats

// DiskCacheStats snapshots the persistent disk tier's counters (see
// WithDiskCache).
type DiskCacheStats = diskcache.Stats

// Dataset is an opened dataset in any Format. Scans are safe to run
// concurrently with each other and with Close. Close invalidates the
// dataset: any operation started after Close fails with ErrClosed, and a
// scan in flight when Close runs observes the close at a sample boundary
// and terminates with ErrClosed (it never yields partial or corrupt data).
type Dataset struct {
	r   formatReader
	cfg *config
	// cluster is the fleet-aware client of a remote dataset (nil for
	// local datasets), kept for ClusterStats.
	cluster *serve.ClusterClient
	closed  atomic.Bool
}

// Open opens the dataset at dir. The Format option must match the layout on
// disk (PCR by default); cache and prefetch options configure the read path.
func Open(dir string, opts ...Option) (*Dataset, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if cfg.diskCacheDir != "" && cfg.format != PCR {
		return nil, fmt.Errorf("pcr: disk cache supports the pcr format only, not %s", cfg.format.Name())
	}
	if cfg.indexShards > 0 {
		return nil, fmt.Errorf("pcr: WithIndexShard applies to OpenRemote; shard a local dataset with the loader's WithShard")
	}
	if cfg.hedgeSet {
		return nil, fmt.Errorf("pcr: WithHedgeDelay applies to OpenRemote; local reads have no replicas to hedge against")
	}
	r, err := cfg.format.open(dir, cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{r: r, cfg: cfg}, nil
}

// Close releases the dataset. It is safe to call concurrently with running
// scans (which terminate with ErrClosed at their next sample boundary) and
// is idempotent: only the first call releases the underlying reader.
func (d *Dataset) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	return d.r.close()
}

// Format returns the dataset's storage layout.
func (d *Dataset) Format() Format { return d.cfg.format }

// NumImages returns the total stored image count.
func (d *Dataset) NumImages() int { return d.r.numImages() }

// Qualities returns the number of quality levels the dataset stores: the
// scan-group count for PCR datasets, 1 for the baseline formats.
func (d *Dataset) Qualities() int { return d.r.qualities() }

// resolveQuality maps Full to the top level and rejects levels the dataset
// does not store.
func (d *Dataset) resolveQuality(q int) (int, error) {
	if d.closed.Load() {
		return 0, fmt.Errorf("pcr: scan: %w", ErrClosed)
	}
	top := d.r.qualities()
	if q == Full {
		return top, nil
	}
	if q < 1 || q > top {
		return 0, fmt.Errorf("pcr: quality %d: %w (dataset stores 1..%d)", q, ErrNoSuchQuality, top)
	}
	return q, nil
}

// SizeAtQuality returns the total bytes a full scan reads at quality q —
// the paper's bytes-vs-quality trade-off, computed from the record index
// without touching record files.
func (d *Dataset) SizeAtQuality(q int) (int64, error) {
	qq, err := d.resolveQuality(q)
	if err != nil {
		return 0, err
	}
	return d.r.sizeAtQuality(qq)
}

// ScanEncoded streams every sample in storage order at quality q, filling
// Sample.JPEG with a self-contained stream (PCR samples are reassembled from
// the record prefix) but not decoding it. Iteration stops at the first
// error; cancelling ctx stops it promptly with ctx.Err(). WithFilter
// restricts the stream to the samples a predicate selects, pushing the
// selection into the read plan where the format allows it.
func (d *Dataset) ScanEncoded(ctx context.Context, q int, opts ...ScanOption) iter.Seq2[Sample, error] {
	qq, err := d.resolveQuality(q)
	if err != nil {
		return errSeq(err)
	}
	sc, err := applyScanOptions(opts)
	if err != nil {
		return errSeq(err)
	}
	return d.guardClosed(d.scanEncodedWith(ctx, qq, sc))
}

// scanEncodedWith routes an encoded scan through the format's pushdown
// path when a filter is set and the format supports one, and through a
// generic post-read selection stage otherwise.
func (d *Dataset) scanEncodedWith(ctx context.Context, qq int, sc *scanConfig) iter.Seq2[Sample, error] {
	if sc.pred == nil {
		return d.r.scanEncoded(ctx, qq)
	}
	if fs, ok := d.r.(filteredScanner); ok {
		return fs.scanEncodedFiltered(ctx, qq, sc.pred, sc.stats)
	}
	return filterSeq(d.r.scanEncoded(ctx, qq), sc.pred, sc.stats)
}

// guardClosed makes an in-flight scan observe a concurrent Close at its next
// sample boundary, giving local and remote datasets the same semantics (a
// local backend would otherwise happily keep reading after Close).
func (d *Dataset) guardClosed(seq iter.Seq2[Sample, error]) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for s, err := range seq {
			if err == nil && d.closed.Load() {
				yield(Sample{}, fmt.Errorf("pcr: scan: %w", ErrClosed))
				return
			}
			if !yield(s, err) {
				return
			}
		}
	}
}

// Scan streams every sample in storage order at quality q with Image
// decoded. Record prefixes are read sequentially (through the LRU prefix
// cache when WithCacheBytes is set) and images are decoded concurrently by
// WithPrefetchWorkers goroutines; samples are yielded in storage order.
// Iteration stops at the first error; cancelling ctx stops it promptly with
// ctx.Err(). WithFilter restricts the stream to the samples a predicate
// selects (see ScanEncoded); only selected samples are decoded.
func (d *Dataset) Scan(ctx context.Context, q int, opts ...ScanOption) iter.Seq2[Sample, error] {
	qq, err := d.resolveQuality(q)
	if err != nil {
		return errSeq(err)
	}
	sc, err := applyScanOptions(opts)
	if err != nil {
		return errSeq(err)
	}
	workers := d.cfg.prefetchWorkers()
	return func(yield func(Sample, error) bool) {
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()

		// The producer walks the encoded stream and hands each sample to
		// the bounded decode pool; jobs preserve storage order so the
		// consumer below yields in-order while decodes overlap.
		jobs := decodePool(ictx, workers, func(emit func(*decodeJob) bool) {
			for s, err := range d.scanEncodedWith(ictx, qq, sc) {
				if !emit(&decodeJob{s: s, err: err}) {
					return
				}
			}
		})

		for {
			// Receive with a ctx case so cancellation is prompt even while
			// the producer sits inside a slow (non-cancellable) record read.
			var j *decodeJob
			var ok bool
			select {
			case j, ok = <-jobs:
			case <-ctx.Done():
				yield(Sample{}, ctx.Err())
				return
			}
			if !ok {
				break
			}
			select {
			case <-j.done:
			case <-ctx.Done():
				yield(Sample{}, ctx.Err())
				return
			}
			// A cancelled context wins over already-decoded queued jobs, so
			// cancellation surfaces promptly and unambiguously.
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			// Likewise a concurrent Close: queued decodes are discarded and
			// the scan terminates with ErrClosed at this sample boundary.
			if d.closed.Load() {
				yield(Sample{}, fmt.Errorf("pcr: scan: %w", ErrClosed))
				return
			}
			if j.err != nil {
				yield(Sample{}, j.err)
				return
			}
			if !yield(j.s, nil) {
				return
			}
		}
		// The producer bails out silently when the context fires mid-stream;
		// report that as an error, not a clean end of dataset.
		if err := ctx.Err(); err != nil {
			yield(Sample{}, err)
		}
	}
}

func errSeq(err error) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		yield(Sample{}, err)
	}
}

// decodeJob carries one sample through the bounded ordered decode pool
// shared by Dataset.Scan and Loader.Epoch. The loader attaches per-record
// read accounting to the first job of each record; Scan leaves those
// fields zero.
type decodeJob struct {
	s    Sample
	err  error
	done chan struct{}
	// bytes and quality describe the record read this job starts (prefix
	// bytes fetched, resolved quality) — set only by the Loader.
	bytes   int64
	quality int
}

// decodePool runs produce in a goroutine and decodes the samples it emits
// with up to workers concurrent decodes, preserving emission order. The
// emit callback returns false when the pool is shutting down (ctx
// cancelled); jobs emitted with err already set pass through undecoded.
// The returned channel closes when produce returns; each received job's
// done channel closes when its decode finishes.
func decodePool(ctx context.Context, workers int, produce func(emit func(*decodeJob) bool)) <-chan *decodeJob {
	jobs := make(chan *decodeJob, workers)
	sem := make(chan struct{}, workers)
	go func() {
		defer close(jobs)
		produce(func(j *decodeJob) bool {
			j.done = make(chan struct{})
			if j.err == nil {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return false
				}
				go func() {
					defer close(j.done)
					defer func() { <-sem }()
					j.err = decodeJPEG(&j.s)
				}()
			} else {
				close(j.done)
			}
			select {
			case jobs <- j:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return jobs
}

// recordAccessor is the record-granular surface only the PCR format has.
type recordAccessor interface {
	numRecords() int
	recordImages(i int) (int, error)
	recordPrefixLen(i, q int) (int64, error)
	readRecord(i, q int) ([]Sample, error)
	cacheStats() (cache.Stats, bool)
}

// NumRecords returns the on-disk record count: batched records for PCR, one
// per image for the baseline formats.
func (d *Dataset) NumRecords() int {
	if ra, ok := d.r.(recordAccessor); ok {
		return ra.numRecords()
	}
	return d.r.numImages()
}

// RecordImages returns the image count of record i (PCR format only).
func (d *Dataset) RecordImages(i int) (int, error) {
	ra, ok := d.r.(recordAccessor)
	if !ok {
		return 0, fmt.Errorf("pcr: record access on %s format: %w", d.cfg.format.Name(), errors.ErrUnsupported)
	}
	return ra.recordImages(i)
}

// RecordPrefixLen returns the bytes one sequential read fetches to
// materialize record i at quality q (PCR format only). It comes from the
// record index, not the record file.
func (d *Dataset) RecordPrefixLen(i, q int) (int64, error) {
	ra, ok := d.r.(recordAccessor)
	if !ok {
		return 0, fmt.Errorf("pcr: record access on %s format: %w", d.cfg.format.Name(), errors.ErrUnsupported)
	}
	qq, err := d.resolveQuality(q)
	if err != nil {
		return 0, err
	}
	return ra.recordPrefixLen(i, qq)
}

// ReadRecordEncoded materializes every image of record i at quality q as
// reassembled JPEG streams, without decoding — one sequential prefix read
// (PCR format only).
func (d *Dataset) ReadRecordEncoded(i, q int) ([]Sample, error) {
	ra, ok := d.r.(recordAccessor)
	if !ok {
		return nil, fmt.Errorf("pcr: record access on %s format: %w", d.cfg.format.Name(), errors.ErrUnsupported)
	}
	qq, err := d.resolveQuality(q)
	if err != nil {
		return nil, err
	}
	return ra.readRecord(i, qq)
}

// ReadRecord materializes every image of record i at quality q — the random
// access path (PCR format only); Scan is the streaming path.
func (d *Dataset) ReadRecord(ctx context.Context, i, q int) ([]Sample, error) {
	samples, err := d.ReadRecordEncoded(i, q)
	if err != nil {
		return nil, err
	}
	for si := range samples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := decodeJPEG(&samples[si]); err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// CacheStats reports the prefix cache's counters. ok is false when the
// dataset has no cache (WithCacheBytes unset or a non-PCR format).
func (d *Dataset) CacheStats() (stats CacheStats, ok bool) {
	if ra, raOK := d.r.(recordAccessor); raOK {
		return ra.cacheStats()
	}
	return CacheStats{}, false
}

// ClusterStats reports the remote client's fleet counters — hedged reads,
// hedge wins, failovers, and membership refreshes. ok is false for local
// datasets.
func (d *Dataset) ClusterStats() (stats ClusterStats, ok bool) {
	if d.cluster == nil {
		return ClusterStats{}, false
	}
	return d.cluster.Stats(), true
}

// diskCacheAccessor is implemented by readers carrying a persistent disk
// cache tier.
type diskCacheAccessor interface {
	diskCacheStats() (diskcache.Stats, bool)
}

// DiskCacheStats reports the persistent disk tier's counters — hits, delta
// bytes, evictions, and the recovery scan of the most recent open. ok is
// false when the dataset has no disk cache (WithDiskCache unset).
func (d *Dataset) DiskCacheStats() (stats DiskCacheStats, ok bool) {
	if da, daOK := d.r.(diskCacheAccessor); daOK {
		return da.diskCacheStats()
	}
	return DiskCacheStats{}, false
}
