package pcr_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pcr"
)

// TestDiskCacheWarmRestartMovesZeroNetworkBytes is the tentpole acceptance
// scenario: process 1 scans a remote dataset through a persistent disk
// cache and exits; process 2 mounts the same cache directory and re-scans —
// moving ~zero record bytes over the network — then upgrades quality,
// moving exactly the delta bytes. All assertions are on the server's own
// counters: what actually crossed the wire.
func TestDiskCacheWarmRestartMovesZeroNetworkBytes(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(5))
	srv, ts := startServer(t, dir, nil)
	cacheDir := filepath.Join(t.TempDir(), "worker-cache")

	ctx := context.Background()
	scan := func(ds *pcr.Dataset, q int) []pcr.Sample {
		t.Helper()
		var out []pcr.Sample
		for s, err := range ds.ScanEncoded(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
		return out
	}

	// Process 1: cold scan at quality 2, then exit.
	ds1, err := pcr.OpenRemote(ts.URL, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	size2, err := ds1.SizeAtQuality(2)
	if err != nil {
		t.Fatal(err)
	}
	want := scan(ds1, 2)
	if got := srv.Stats().BytesServed; got != size2 {
		t.Fatalf("cold scan served %d bytes, want %d", got, size2)
	}
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 2: same cache dir, fresh client. The re-scan must be served
	// entirely from the recovered disk cache — zero record bytes move.
	ds2, err := pcr.OpenRemote(ts.URL, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	prev := srv.Stats().BytesServed
	got := scan(ds2, 2)
	if moved := srv.Stats().BytesServed - prev; moved != 0 {
		t.Fatalf("warm-restart re-scan moved %d network bytes, want 0", moved)
	}
	if len(got) != len(want) {
		t.Fatalf("warm re-scan yielded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !bytes.Equal(got[i].JPEG, want[i].JPEG) {
			t.Fatalf("sample %d served from disk cache differs from the wire scan", i)
		}
	}
	st, ok := ds2.DiskCacheStats()
	if !ok {
		t.Fatal("remote dataset with WithDiskCache reports no disk cache")
	}
	if st.Recovered != int64(ds2.NumRecords()) {
		t.Fatalf("recovered %d cache entries, want one per record (%d)", st.Recovered, ds2.NumRecords())
	}

	// Quality upgrade in process 2: exactly the delta bytes cross the wire.
	size4, err := ds2.SizeAtQuality(4)
	if err != nil {
		t.Fatal(err)
	}
	prev = srv.Stats().BytesServed
	scan(ds2, 4)
	if moved, delta := srv.Stats().BytesServed-prev, size4-size2; moved != delta {
		t.Fatalf("quality upgrade 2→4 moved %d network bytes, want exactly the delta %d", moved, delta)
	}
	if st, _ := ds2.DiskCacheStats(); st.DeltaBytes != size4-size2 {
		t.Fatalf("disk cache delta bytes = %d, want %d", st.DeltaBytes, size4-size2)
	}
}

// TestDiskCacheComposesUnderMemoryCache: both tiers on, remote. The memory
// LRU absorbs repeat reads within the process; the disk tier persists them
// across the restart; the wire still sees exact delta pricing.
func TestDiskCacheComposesUnderMemoryCache(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	srv, ts := startServer(t, dir, nil)
	cacheDir := t.TempDir()

	open := func() *pcr.Dataset {
		t.Helper()
		ds, err := pcr.OpenRemote(ts.URL,
			pcr.WithCacheBytes(1<<30),
			pcr.WithDiskCache(cacheDir, 1<<30))
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	ctx := context.Background()
	scan := func(ds *pcr.Dataset, q int) {
		t.Helper()
		for _, err := range ds.ScanEncoded(ctx, q) {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	ds := open()
	scan(ds, 1)
	scan(ds, 1) // absorbed by the memory tier
	mem, _ := ds.CacheStats()
	if mem.Hits == 0 {
		t.Fatal("repeat scan did not hit the memory tier")
	}
	size1, _ := ds.SizeAtQuality(1)
	if got := srv.Stats().BytesServed; got != size1 {
		t.Fatalf("two scans with both tiers served %d wire bytes, want %d", got, size1)
	}
	ds.Close()

	ds2 := open()
	defer ds2.Close()
	prev := srv.Stats().BytesServed
	scan(ds2, 1)
	if moved := srv.Stats().BytesServed - prev; moved != 0 {
		t.Fatalf("restart with both tiers moved %d wire bytes, want 0", moved)
	}
	size2, _ := ds2.SizeAtQuality(2)
	prev = srv.Stats().BytesServed
	scan(ds2, 2)
	if moved := srv.Stats().BytesServed - prev; moved != size2-size1 {
		t.Fatalf("upgrade through both tiers moved %d wire bytes, want %d", moved, size2-size1)
	}
}

// TestDiskCacheLocalWarmRestart: the same decorator over a local directory
// backend — a restarted local job re-reads from the cache tier, not the
// dataset files.
func TestDiskCacheLocalWarmRestart(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(3))
	cacheDir := t.TempDir()

	ds, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, err := range ds.Scan(context.Background(), pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != n {
		t.Fatalf("scanned %d samples, want %d", got, n)
	}
	st, ok := ds.DiskCacheStats()
	if !ok || st.Misses == 0 {
		t.Fatalf("disk cache stats = %+v, ok=%v; want cold misses", st, ok)
	}
	ds.Close()

	ds2, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	for _, err := range ds2.Scan(context.Background(), pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
	}
	st2, _ := ds2.DiskCacheStats()
	if st2.Misses != 0 || st2.BytesFetched != 0 {
		t.Fatalf("warm local restart fetched %d bytes (%d misses) from the dataset, want 0",
			st2.BytesFetched, st2.Misses)
	}
}

// TestDiskCacheCrashRecoveryNeverCorruptsScan damages the cache like a
// crash would — torn manifest tail, truncated prefix file, flipped byte —
// and requires every subsequent Scan to deliver bit-identical samples:
// recovery discards what it cannot verify and refetches.
func TestDiskCacheCrashRecoveryNeverCorruptsScan(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(3))
	cacheDir := t.TempDir()
	ctx := context.Background()

	collect := func(ds *pcr.Dataset) []pcr.Sample {
		t.Helper()
		var out []pcr.Sample
		for s, err := range ds.ScanEncoded(ctx, pcr.Full) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
		return out
	}

	ds, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	want := collect(ds)
	ds.Close()

	// Damage everything damageable: truncate one object file, flip a byte
	// in another, tear the manifest's final line.
	var objects []string
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), "obj-") {
			objects = append(objects, filepath.Join(cacheDir, de.Name()))
		}
	}
	if len(objects) < 2 {
		t.Fatalf("expected ≥2 cached objects, got %d", len(objects))
	}
	if err := os.Truncate(objects[0], 10); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(objects[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x5A
	if err := os.WriteFile(objects[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(cacheDir, "manifest.log")
	mraw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, mraw[:len(mraw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	ds2, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	st, _ := ds2.DiskCacheStats()
	if st.Discarded == 0 {
		t.Fatalf("recovery discarded nothing after crash damage: %+v", st)
	}
	got := collect(ds2)
	if len(got) != len(want) {
		t.Fatalf("post-crash scan yielded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !bytes.Equal(got[i].JPEG, want[i].JPEG) {
			t.Fatalf("post-crash sample %d differs from pristine scan — corrupt bytes reached Scan", i)
		}
	}
}

// TestDiskCacheRejectsBaselineFormatsAndStaleGenerations: option guards,
// and the generation fence that keeps a cache from serving bytes of a
// different dataset build.
func TestDiskCacheRejectsBaselineFormatsAndStaleGenerations(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	cacheDir := t.TempDir()

	tfDir := t.TempDir()
	if _, err := pcr.Synthesize(tfDir, "cars", 0.1, 1, pcr.WithFormat(pcr.TFRecord)); err != nil {
		t.Fatal(err)
	}
	if _, err := pcr.Open(tfDir, pcr.WithFormat(pcr.TFRecord), pcr.WithDiskCache(cacheDir, 1<<20)); err == nil {
		t.Fatal("disk cache over a baseline format should fail")
	}

	ds, err := pcr.Open(dir, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range ds.ScanEncoded(context.Background(), 1) {
		if err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()

	// A different dataset build in the same cache dir: purge, not poison.
	dir2, _ := synthDir(t, pcr.WithImagesPerRecord(4))
	ds2, err := pcr.Open(dir2, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	st, _ := ds2.DiskCacheStats()
	if st.Recovered != 0 {
		t.Fatalf("recovered %d entries across dataset generations, want 0", st.Recovered)
	}
	for _, err := range ds2.ScanEncoded(context.Background(), 1) {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiskCacheLazyVerifyOption: WithDiskCacheLazyVerify wires lazy
// first-touch verification through the facade — a warm restart still moves
// zero network bytes — and is rejected without WithDiskCache.
func TestDiskCacheLazyVerifyOption(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(3))
	srv, ts := startServer(t, dir, nil)
	cacheDir := t.TempDir()
	ctx := context.Background()

	ds1, err := pcr.OpenRemote(ts.URL, pcr.WithDiskCache(cacheDir, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range ds1.ScanEncoded(ctx, 2) {
		if err != nil {
			t.Fatal(err)
		}
	}
	ds1.Close()

	ds2, err := pcr.OpenRemote(ts.URL,
		pcr.WithDiskCache(cacheDir, 1<<30), pcr.WithDiskCacheLazyVerify())
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	st, ok := ds2.DiskCacheStats()
	if !ok || st.Recovered != int64(ds2.NumRecords()) {
		t.Fatalf("lazy open recovered %d entries (ok=%v), want %d", st.Recovered, ok, ds2.NumRecords())
	}
	prev := srv.Stats().BytesServed
	for _, err := range ds2.ScanEncoded(ctx, 2) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if moved := srv.Stats().BytesServed - prev; moved != 0 {
		t.Fatalf("lazy warm re-scan moved %d network bytes, want 0", moved)
	}

	if _, err := pcr.Open(dir, pcr.WithDiskCacheLazyVerify()); err == nil {
		t.Fatal("WithDiskCacheLazyVerify without WithDiskCache accepted")
	}
}
