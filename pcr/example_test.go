package pcr_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/pcr"
)

// Create a PCR dataset from a synthetic profile, then stream it back at two
// quality levels. The byte counts show the paper's trade-off: quality 1
// reads a fraction of the full dataset with one sequential prefix read per
// record.
func Example() {
	dir, err := os.MkdirTemp("", "pcr-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	n, err := pcr.Synthesize(dir, "cars", 0.1, 1, pcr.WithImagesPerRecord(16))
	if err != nil {
		log.Fatal(err)
	}

	ds, err := pcr.Open(dir, pcr.WithPrefetchWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	ctx := context.Background()
	for _, q := range []int{1, pcr.Full} {
		decoded := 0
		for s, err := range ds.Scan(ctx, q) {
			if err != nil {
				log.Fatal(err)
			}
			if s.Image != nil {
				decoded++
			}
		}
		fmt.Printf("quality %d: decoded %d of %d images\n", q, decoded, n)
	}
	lo, _ := ds.SizeAtQuality(1)
	hi, _ := ds.SizeAtQuality(pcr.Full)
	fmt.Printf("quality 1 reads fewer bytes than full: %v\n", lo < hi)
	// Output:
	// quality 1: decoded 31 of 31 images
	// quality 0: decoded 31 of 31 images
	// quality 1 reads fewer bytes than full: true
}

// Switching storage layouts is one option: the write loop and the scan loop
// are identical for PCR, TFRecord, and file-per-image datasets.
func Example_formatSwitch() {
	ctx := context.Background()
	for _, format := range pcr.Formats() {
		dir, err := os.MkdirTemp("", "pcr-format-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)

		// The only per-format line is the option itself.
		if _, err := pcr.Synthesize(dir, "cars", 0.05, 1, pcr.WithFormat(format)); err != nil {
			log.Fatal(err)
		}
		ds, err := pcr.Open(dir, pcr.WithFormat(format))
		if err != nil {
			log.Fatal(err)
		}
		images := 0
		for s, err := range ds.Scan(ctx, pcr.Full) {
			if err != nil {
				log.Fatal(err)
			}
			if s.Image != nil {
				images++
			}
		}
		fmt.Printf("%-12s %d images, %d quality level(s)\n", ds.Format().Name(), images, ds.Qualities())
		ds.Close()
	}
	// Output:
	// pcr          20 images, 10 quality level(s)
	// tfrecord     20 images, 1 quality level(s)
	// fileperimage 20 images, 1 quality level(s)
}
