package pcr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Predicate selects samples by identity — the relational view over the
// metadata the record index already holds (per-sample IDs and labels).
// Build one from the combinators (LabelIn, IDRange, And, Or, Not) or parse
// one from its string form with ParseFilter; String renders the canonical
// form ParseFilter round-trips.
//
// Predicates are immutable and safe for concurrent use. The interface is
// sealed: evaluation must stay plannable from the index alone (that is what
// makes server-side pushdown possible), so arbitrary user implementations
// are not accepted.
type Predicate interface {
	// Matches reports whether the sample with the given ID and label is
	// selected.
	Matches(id, label int64) bool
	// String renders the predicate in ParseFilter's grammar.
	String() string
	sealedPredicate()
}

// LabelIn selects samples whose label is any of the given values. Labels
// are deduplicated and order-insensitive. With no labels it selects
// nothing.
func LabelIn(labels ...int64) Predicate {
	set := append([]int64(nil), labels...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	n := 0
	for i, v := range set {
		if i == 0 || v != set[n-1] {
			set[n] = v
			n++
		}
	}
	return labelIn{set: set[:n]}
}

// IDRange selects samples whose ID lies in [lo, hi], inclusive. An empty
// interval (lo > hi) selects nothing.
func IDRange(lo, hi int64) Predicate {
	if lo > hi {
		return idRange{lo: 1, hi: 0} // canonical empty interval
	}
	return idRange{lo: lo, hi: hi}
}

// And selects samples both predicates select.
func And(l, r Predicate) Predicate { return andPred{l: l, r: r} }

// Or selects samples either predicate selects.
func Or(l, r Predicate) Predicate { return orPred{l: l, r: r} }

// Not inverts a predicate.
func Not(p Predicate) Predicate { return notPred{p: p} }

type labelIn struct{ set []int64 } // sorted, deduplicated

func (p labelIn) Matches(id, label int64) bool {
	i := sort.Search(len(p.set), func(i int) bool { return p.set[i] >= label })
	return i < len(p.set) && p.set[i] == label
}

func (p labelIn) String() string {
	if len(p.set) == 1 {
		return fmt.Sprintf("label = %d", p.set[0])
	}
	parts := make([]string, len(p.set))
	for i, v := range p.set {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return "label IN (" + strings.Join(parts, ", ") + ")"
}

type idRange struct{ lo, hi int64 }

func (p idRange) Matches(id, label int64) bool { return p.lo <= id && id <= p.hi }

func (p idRange) String() string {
	switch {
	case p.lo == p.hi:
		return fmt.Sprintf("id = %d", p.lo)
	case p.hi == math.MaxInt64:
		return fmt.Sprintf("id >= %d", p.lo)
	case p.lo == math.MinInt64:
		return fmt.Sprintf("id <= %d", p.hi)
	default:
		return fmt.Sprintf("id IN [%d..%d]", p.lo, p.hi)
	}
}

type andPred struct{ l, r Predicate }

func (p andPred) Matches(id, label int64) bool {
	return p.l.Matches(id, label) && p.r.Matches(id, label)
}

func (p andPred) String() string {
	return "(" + p.l.String() + " AND " + p.r.String() + ")"
}

type orPred struct{ l, r Predicate }

func (p orPred) Matches(id, label int64) bool {
	return p.l.Matches(id, label) || p.r.Matches(id, label)
}

func (p orPred) String() string {
	return "(" + p.l.String() + " OR " + p.r.String() + ")"
}

type notPred struct{ p Predicate }

func (p notPred) Matches(id, label int64) bool { return !p.p.Matches(id, label) }

func (p notPred) String() string { return "NOT " + p.p.String() }

func (labelIn) sealedPredicate() {}
func (idRange) sealedPredicate() {}
func (andPred) sealedPredicate() {}
func (orPred) sealedPredicate()  {}
func (notPred) sealedPredicate() {}

// ParseFilter parses a predicate from its string form. The grammar, with
// case-insensitive keywords and free whitespace:
//
//	expr       := and { OR and }                  -- AND binds tighter
//	and        := unary { AND unary }
//	unary      := NOT unary | '(' expr ')' | comparison
//	comparison := label-cmp | id-cmp
//	label-cmp  := label IN '(' int {',' int} ')' | label ('='|'!=') int
//	id-cmp     := id IN '[' int '..' int ']'      -- inclusive range
//	            | id IN '(' int {',' int} ')'     -- sugar for an OR of =
//	            | id ('='|'!='|'<'|'<='|'>'|'>=') int
//
// Integers are signed 64-bit; out-of-range literals are an error, as is any
// trailing input. ParseFilter never panics; every accepted input's
// Predicate round-trips (parsing p.String() yields an equal predicate).
func ParseFilter(s string) (Predicate, error) {
	toks, err := lexFilter(s)
	if err != nil {
		return nil, err
	}
	p := &filterParser{toks: toks}
	pred, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("pcr: filter: unexpected %q after expression", t.text)
	}
	return pred, nil
}

// maxFilterDepth bounds parser recursion so adversarial inputs (deeply
// nested parens or NOT chains, e.g. from the fuzzer) fail cleanly instead
// of exhausting the stack.
const maxFilterDepth = 200

type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokInt
	tokLParen
	tokRParen
	tokLBrack
	tokRBrack
	tokComma
	tokDots
	tokOp
)

type filterToken struct {
	kind tokKind
	text string
	n    int64 // value for tokInt
}

func lexFilter(s string) ([]filterToken, error) {
	var toks []filterToken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, filterToken{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, filterToken{kind: tokRParen, text: ")"})
			i++
		case c == '[':
			toks = append(toks, filterToken{kind: tokLBrack, text: "["})
			i++
		case c == ']':
			toks = append(toks, filterToken{kind: tokRBrack, text: "]"})
			i++
		case c == ',':
			toks = append(toks, filterToken{kind: tokComma, text: ","})
			i++
		case c == '.':
			if i+1 >= len(s) || s[i+1] != '.' {
				return nil, fmt.Errorf("pcr: filter: stray '.' at offset %d", i)
			}
			toks = append(toks, filterToken{kind: tokDots, text: ".."})
			i += 2
		case c == '=':
			toks = append(toks, filterToken{kind: tokOp, text: "="})
			i++
		case c == '!':
			if i+1 >= len(s) || s[i+1] != '=' {
				return nil, fmt.Errorf("pcr: filter: stray '!' at offset %d", i)
			}
			toks = append(toks, filterToken{kind: tokOp, text: "!="})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(s) && s[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, filterToken{kind: tokOp, text: op})
		case c == '-' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' {
				j++
			}
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j == i+1 && c == '-' {
				return nil, fmt.Errorf("pcr: filter: stray '-' at offset %d", i)
			}
			n, err := strconv.ParseInt(s[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("pcr: filter: integer %q out of range", s[i:j])
			}
			toks = append(toks, filterToken{kind: tokInt, text: s[i:j], n: n})
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(s) && (s[j] == '_' || (s[j] >= 'a' && s[j] <= 'z') || (s[j] >= 'A' && s[j] <= 'Z')) {
				j++
			}
			toks = append(toks, filterToken{kind: tokWord, text: strings.ToLower(s[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("pcr: filter: unexpected character %q at offset %d", c, i)
		}
	}
	return append(toks, filterToken{kind: tokEOF, text: "end of input"}), nil
}

type filterParser struct {
	toks []filterToken
	pos  int
}

func (p *filterParser) peek() filterToken { return p.toks[p.pos] }

func (p *filterParser) next() filterToken {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *filterParser) word() (string, bool) {
	if t := p.peek(); t.kind == tokWord {
		p.pos++
		return t.text, true
	}
	return "", false
}

func (p *filterParser) expect(kind tokKind, what string) (filterToken, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("pcr: filter: expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *filterParser) parseExpr(depth int) (Predicate, error) {
	left, err := p.parseAnd(depth)
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "or" {
		p.next()
		right, err := p.parseAnd(depth)
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *filterParser) parseAnd(depth int) (Predicate, error) {
	left, err := p.parseUnary(depth)
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokWord && p.peek().text == "and" {
		p.next()
		right, err := p.parseUnary(depth)
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *filterParser) parseUnary(depth int) (Predicate, error) {
	if depth >= maxFilterDepth {
		return nil, fmt.Errorf("pcr: filter: expression nested deeper than %d", maxFilterDepth)
	}
	switch t := p.peek(); {
	case t.kind == tokWord && t.text == "not":
		p.next()
		inner, err := p.parseUnary(depth + 1)
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	case t.kind == tokLParen:
		p.next()
		inner, err := p.parseExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return p.parseComparison()
	}
}

func (p *filterParser) parseComparison() (Predicate, error) {
	field, ok := p.word()
	if !ok {
		return nil, fmt.Errorf("pcr: filter: expected 'label' or 'id', got %q", p.peek().text)
	}
	if field != "label" && field != "id" {
		return nil, fmt.Errorf("pcr: filter: unknown field %q (want 'label' or 'id')", field)
	}
	t := p.next()
	switch {
	case t.kind == tokWord && t.text == "in":
		return p.parseIn(field)
	case t.kind == tokOp:
		v, err := p.expect(tokInt, "an integer")
		if err != nil {
			return nil, err
		}
		return buildComparison(field, t.text, v.n)
	default:
		return nil, fmt.Errorf("pcr: filter: expected an operator after %q, got %q", field, t.text)
	}
}

// parseIn handles "IN (v, v, …)" for both fields and "IN [lo..hi]" for id.
func (p *filterParser) parseIn(field string) (Predicate, error) {
	switch t := p.next(); t.kind {
	case tokLParen:
		var vals []int64
		for {
			v, err := p.expect(tokInt, "an integer")
			if err != nil {
				return nil, err
			}
			vals = append(vals, v.n)
			sep := p.next()
			if sep.kind == tokRParen {
				break
			}
			if sep.kind != tokComma {
				return nil, fmt.Errorf("pcr: filter: expected ',' or ')', got %q", sep.text)
			}
		}
		if field == "label" {
			return LabelIn(vals...), nil
		}
		// id IN (…) is sugar for an OR of point ranges, deduplicated and
		// sorted so the result is canonical.
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var pred Predicate
		var prev int64
		for i, v := range vals {
			if i > 0 && v == prev {
				continue
			}
			prev = v
			if pred == nil {
				pred = IDRange(v, v)
			} else {
				pred = Or(pred, IDRange(v, v))
			}
		}
		return pred, nil
	case tokLBrack:
		if field != "id" {
			return nil, fmt.Errorf("pcr: filter: label ranges are unsupported; use label IN (…)")
		}
		lo, err := p.expect(tokInt, "an integer")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDots, "'..'"); err != nil {
			return nil, err
		}
		hi, err := p.expect(tokInt, "an integer")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		return IDRange(lo.n, hi.n), nil
	default:
		return nil, fmt.Errorf("pcr: filter: expected '(' or '[' after IN, got %q", t.text)
	}
}

func buildComparison(field, op string, n int64) (Predicate, error) {
	if field == "label" {
		switch op {
		case "=":
			return LabelIn(n), nil
		case "!=":
			return Not(LabelIn(n)), nil
		default:
			return nil, fmt.Errorf("pcr: filter: label supports =, != and IN, not %q", op)
		}
	}
	switch op {
	case "=":
		return IDRange(n, n), nil
	case "!=":
		return Not(IDRange(n, n)), nil
	case "<":
		if n == math.MinInt64 {
			return IDRange(1, 0), nil // empty
		}
		return IDRange(math.MinInt64, n-1), nil
	case "<=":
		return IDRange(math.MinInt64, n), nil
	case ">":
		if n == math.MaxInt64 {
			return IDRange(1, 0), nil // empty
		}
		return IDRange(n+1, math.MaxInt64), nil
	case ">=":
		return IDRange(n, math.MaxInt64), nil
	default:
		return nil, fmt.Errorf("pcr: filter: unsupported operator %q", op)
	}
}

// matchSelection evaluates pred over parallel id/label slices, returning
// the selection mask and the selected count.
func matchSelection(pred Predicate, ids, labels []int64) (sel []bool, n int) {
	sel = make([]bool, len(ids))
	for i := range ids {
		if pred.Matches(ids[i], labels[i]) {
			sel[i] = true
			n++
		}
	}
	return sel, n
}
