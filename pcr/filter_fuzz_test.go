package pcr_test

import (
	"reflect"
	"testing"

	"repro/pcr"
)

// FuzzParseFilter drives the predicate parser with arbitrary input. The
// invariants: ParseFilter never panics, and every accepted input
// round-trips — parsing the predicate's canonical String() form yields an
// equal predicate whose String() is a fixpoint. The seed corpus under
// testdata/fuzz/FuzzParseFilter covers every grammar production and the
// lexer's edge characters.
func FuzzParseFilter(f *testing.F) {
	for _, seed := range []string{
		"label = 3",
		"label != 3",
		"label IN (3, 7)",
		"id = 5",
		"id IN [10..20]",
		"id IN (1, 2, 9)",
		"id >= 100",
		"id < -5",
		"label IN (1, 2) AND id >= 10",
		"label = 1 OR label = 2 AND NOT id = 5",
		"NOT (label = 1 OR id IN [1..9])",
		"((label=0))",
		"id <= 9223372036854775807",
		"id = -9223372036854775808",
		"label IN [1..2]",
		"id .. 3",
		"label = 99999999999999999999",
		"", " ", "(", "!", "🚀",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := pcr.ParseFilter(in)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		s := p.String()
		p2, err := pcr.ParseFilter(s)
		if err != nil {
			t.Fatalf("ParseFilter(%q) accepted, but its String %q does not reparse: %v", in, s, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the predicate: %q parsed as %#v, reparsed as %#v", in, p, p2)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String is not a fixpoint: %q -> %q -> %q", in, s, s2)
		}
	})
}
