package pcr_test

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/pcr"
)

// randomPredicate draws a predicate AST whose leaves are grounded in the
// dataset's observed IDs and labels (plus out-of-domain values), so random
// predicates select interesting subsets instead of almost always nothing.
func randomPredicate(rng *rand.Rand, depth int, ids, labels []int64) pcr.Predicate {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			k := 1 + rng.Intn(3)
			vals := make([]int64, k)
			for i := range vals {
				vals[i] = labels[rng.Intn(len(labels))] + rng.Int63n(3) - 1
			}
			return pcr.LabelIn(vals...)
		case 1:
			a := ids[rng.Intn(len(ids))]
			b := ids[rng.Intn(len(ids))]
			return pcr.IDRange(a, b) // sometimes empty (a > b) on purpose
		case 2:
			return pcr.IDRange(ids[rng.Intn(len(ids))], math.MaxInt64)
		case 3:
			return pcr.IDRange(math.MinInt64, ids[rng.Intn(len(ids))])
		default:
			return pcr.LabelIn(rng.Int63n(1000)) // usually matches nothing
		}
	}
	switch rng.Intn(3) {
	case 0:
		return pcr.And(randomPredicate(rng, depth-1, ids, labels), randomPredicate(rng, depth-1, ids, labels))
	case 1:
		return pcr.Or(randomPredicate(rng, depth-1, ids, labels), randomPredicate(rng, depth-1, ids, labels))
	default:
		return pcr.Not(randomPredicate(rng, depth-1, ids, labels))
	}
}

// TestFilteredScanEquivalenceProperty is the central correctness property
// of the queryable dataset: for random predicates, at every quality level,
// Scan(WithFilter(p)) delivers exactly the samples of an unfiltered scan
// post-filtered client-side — same samples, same order, byte-identical
// streams — on every read path: the cacheless sparse-range path, the
// cached full-read path (including §5 delta upgrades as quality ascends),
// and the remote pushdown path. The filter must also account every sample
// and every byte: selected + skipped = all, read + avoided = the
// unfiltered scan's volume.
func TestFilteredScanEquivalenceProperty(t *testing.T) {
	datasets := []struct {
		name string
		opts []pcr.Option
	}{
		{"r8g4", []pcr.Option{pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4)}},
		{"r5g3", []pcr.Option{pcr.WithImagesPerRecord(5), pcr.WithScanGroups(3)}},
	}
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for _, dc := range datasets {
		t.Run(dc.name, func(t *testing.T) {
			dir, _ := synthDir(t, dc.opts...)
			_, ts := startServer(t, dir, nil)

			sparse, err := pcr.Open(dir) // no cache tiers: sparse range reads
			if err != nil {
				t.Fatal(err)
			}
			defer sparse.Close()
			cached, err := pcr.Open(dir, pcr.WithCacheBytes(1<<30)) // full reads + delta upgrades
			if err != nil {
				t.Fatal(err)
			}
			defer cached.Close()
			remote, err := pcr.OpenRemote(ts.URL) // bitmap pushdown over the wire
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()

			// Ground the predicate domain in the dataset's real identities.
			all, err := collect(ctx, sparse, pcr.Full)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]int64, len(all))
			labels := make([]int64, len(all))
			for i, s := range all {
				ids[i], labels[i] = s.ID, s.Label
			}

			variants := []struct {
				name string
				ds   *pcr.Dataset
			}{{"sparse", sparse}, {"cached", cached}, {"remote", remote}}
			for trial := 0; trial < 8; trial++ {
				pred := randomPredicate(rng, 3, ids, labels)
				// Ascending qualities make the cached variant exercise §5
				// delta upgrades under the filter.
				for q := 1; q <= sparse.Qualities(); q++ {
					ref, err := collect(ctx, sparse, q)
					if err != nil {
						t.Fatal(err)
					}
					var want []pcr.Sample
					for _, s := range ref {
						if pred.Matches(s.ID, s.Label) {
							want = append(want, s)
						}
					}
					size, err := sparse.SizeAtQuality(q)
					if err != nil {
						t.Fatal(err)
					}
					for _, v := range variants {
						var fs pcr.FilterStats
						var got []pcr.Sample
						for s, err := range v.ds.ScanEncoded(ctx, q, pcr.WithFilter(pred), pcr.WithFilterStats(&fs)) {
							if err != nil {
								t.Fatalf("%s q%d %q: %v", v.name, q, pred, err)
							}
							got = append(got, s)
						}
						if len(got) != len(want) {
							t.Fatalf("%s q%d %q: %d samples, want %d", v.name, q, pred, len(got), len(want))
						}
						for i := range got {
							if got[i].ID != want[i].ID || got[i].Label != want[i].Label {
								t.Fatalf("%s q%d %q: sample %d is (%d,%d), want (%d,%d)",
									v.name, q, pred, i, got[i].ID, got[i].Label, want[i].ID, want[i].Label)
							}
							if !bytes.Equal(got[i].JPEG, want[i].JPEG) {
								t.Fatalf("%s q%d %q: sample %d stream differs", v.name, q, pred, i)
							}
						}
						if fs.Selected != int64(len(want)) || fs.Selected+fs.Skipped != int64(v.ds.NumImages()) {
							t.Fatalf("%s q%d %q: stats %+v inconsistent with %d/%d samples",
								v.name, q, pred, fs, len(want), v.ds.NumImages())
						}
						// Byte accounting covers the unfiltered volume exactly.
						// (The cached variant reads full prefixes through the
						// cache, so its split differs, but the sum must not.)
						if fs.BytesRead+fs.BytesAvoided != size {
							t.Fatalf("%s q%d %q: read %d + avoided %d != size %d",
								v.name, q, pred, fs.BytesRead, fs.BytesAvoided, size)
						}
						if len(want) < v.ds.NumImages() && v.name == "sparse" && fs.BytesRead >= size {
							t.Fatalf("sparse q%d %q: proper subset read the full size %d", q, pred, size)
						}
					}
				}
			}
		})
	}
}
