package pcr_test

import (
	"bytes"
	"context"
	"testing"

	"repro/pcr"
)

// TestRemoteFilteredScanMovesOnlySelectedBytes is the pushdown acceptance
// scenario, the filtered counterpart of the delta-byte e2e: scan a served
// dataset with a predicate and prove with the server's own counters that
// exactly the planned subset bytes crossed the wire — no more — while the
// delivered samples stay byte-identical to a local filtered scan.
func TestRemoteFilteredScanMovesOnlySelectedBytes(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	srv, ts := startServer(t, dir, nil)

	local, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := pcr.OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	pred, err := pcr.ParseFilter("label IN (0, 1, 2) OR id = 3")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for q := 1; q <= local.Qualities(); q++ {
		plan, err := local.PlanFilter(pred, q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Selected == 0 || plan.Selected == plan.Total {
			t.Fatalf("q%d: degenerate plan %+v; pick a predicate selecting a proper subset", q, plan)
		}
		var want []pcr.Sample
		for s, err := range local.ScanEncoded(ctx, q, pcr.WithFilter(pred)) {
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, s)
		}

		before := srv.Stats()
		var fs pcr.FilterStats
		var got []pcr.Sample
		for s, err := range remote.ScanEncoded(ctx, q, pcr.WithFilter(pred), pcr.WithFilterStats(&fs)) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, s)
		}
		after := srv.Stats()

		if len(got) != len(want) {
			t.Fatalf("q%d: remote delivered %d samples, local %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Label != want[i].Label || !bytes.Equal(got[i].JPEG, want[i].JPEG) {
				t.Fatalf("q%d: sample %d differs between remote and local filtered scans", q, i)
			}
		}

		// The server served exactly the plan: the coalesced selected ranges,
		// strictly less than the unfiltered scan, one pushdown request per
		// record actually read, and zero bytes for index-skipped records.
		served := after.BytesServed - before.BytesServed
		if served != plan.Bytes {
			t.Fatalf("q%d: server moved %d bytes, plan says %d", q, served, plan.Bytes)
		}
		full, err := local.SizeAtQuality(q)
		if err != nil {
			t.Fatal(err)
		}
		if served >= full {
			t.Fatalf("q%d: filtered scan moved %d bytes, unfiltered is %d", q, served, full)
		}
		if reqs := after.PushdownRequests - before.PushdownRequests; int(reqs) != plan.Records-plan.RecordsSkipped {
			t.Fatalf("q%d: %d pushdown requests, want %d (records read)", q, reqs, plan.Records-plan.RecordsSkipped)
		}
		if saved := after.PushdownBytesSaved - before.PushdownBytesSaved; saved <= 0 {
			t.Fatalf("q%d: PushdownBytesSaved delta = %d, want > 0", q, saved)
		}
		if fs.BytesRead != plan.Bytes {
			t.Fatalf("q%d: client accounted %d bytes read, plan says %d", q, fs.BytesRead, plan.Bytes)
		}
	}
}

// TestRemoteFilteredLoaderMovesOnlySelectedBytes runs the filtered batch
// pipeline against the serving layer: one epoch must move exactly the
// planned subset bytes and deliver exactly the predicate's samples.
func TestRemoteFilteredLoaderMovesOnlySelectedBytes(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	srv, ts := startServer(t, dir, nil)

	remote, err := pcr.OpenRemote(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	pred, err := pcr.ParseFilter("label IN (0, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := remote.PlanFilter(pred, pcr.Full)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Selected == 0 || plan.Selected == plan.Total {
		t.Fatalf("degenerate plan %+v", plan)
	}
	l, err := pcr.NewLoader(remote, pcr.WithBatchSize(4), pcr.WithLoaderFilter(pred))
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Stats()
	delivered := 0
	for b, err := range l.Epoch(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range b.Samples {
			if !pred.Matches(s.ID, s.Label) {
				t.Fatalf("sample (%d,%d) escaped the loader filter", s.ID, s.Label)
			}
			delivered++
		}
	}
	after := srv.Stats()
	if delivered != plan.Selected {
		t.Fatalf("epoch delivered %d images, plan selects %d", delivered, plan.Selected)
	}
	if served := after.BytesServed - before.BytesServed; served != plan.Bytes {
		t.Fatalf("epoch moved %d bytes, plan says %d", served, plan.Bytes)
	}
	st, ok := l.LastEpochStats()
	if !ok {
		t.Fatal("no epoch stats")
	}
	if st.Images != plan.Selected || st.SkippedImages != plan.Total-plan.Selected {
		t.Fatalf("stats %d delivered / %d skipped, plan %d / %d",
			st.Images, st.SkippedImages, plan.Selected, plan.Total-plan.Selected)
	}
	if st.BytesRead != plan.Bytes {
		t.Fatalf("stats read %d bytes, plan says %d", st.BytesRead, plan.Bytes)
	}
	if st.BytesAvoided != plan.FullBytes-plan.Bytes {
		t.Fatalf("stats avoided %d bytes, plan says %d", st.BytesAvoided, plan.FullBytes-plan.Bytes)
	}
}
