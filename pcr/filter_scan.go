package pcr

import (
	"context"
	"fmt"
	"iter"
	"sync/atomic"
)

// FilterStats accounts for one filtered scan: what the predicate selected,
// what it skipped, and what the selection saved in record bytes. Byte
// accounting is exact for the PCR format (whose side index makes skipped
// bytes plannable); the baseline formats filter after the read and report
// zero byte savings.
//
// The stats are written while the scan runs; read the fields directly
// only after the scan's iterator has been fully consumed (or has yielded
// an error). While a Scan with prefetch workers is still mid-flight the
// plain fields are racy — use Snapshot, which loads them atomically, to
// observe a scan in progress.
type FilterStats struct {
	// Selected and Skipped count samples for and against the predicate.
	Selected int64
	Skipped  int64
	// RecordsSkipped counts records no byte of which was read because the
	// side index proved no sample matched.
	RecordsSkipped int64
	// BytesRead is the record bytes actually fetched; BytesAvoided is what
	// an unfiltered scan at the same quality would have fetched on top.
	BytesRead    int64
	BytesAvoided int64
}

func (s *FilterStats) addSamples(selected, skipped int64) {
	atomic.AddInt64(&s.Selected, selected)
	atomic.AddInt64(&s.Skipped, skipped)
}

func (s *FilterStats) addBytes(read, avoided int64) {
	atomic.AddInt64(&s.BytesRead, read)
	atomic.AddInt64(&s.BytesAvoided, avoided)
}

// Snapshot returns a consistent-enough copy of the stats, loading each
// field atomically. It is the only safe way to observe a scan that is
// still running: prefetch workers update the counters concurrently, and
// a plain field read while they do so is a data race. Each field is
// individually exact; the set may straddle an in-flight sample.
func (s *FilterStats) Snapshot() FilterStats {
	return FilterStats{
		Selected:       atomic.LoadInt64(&s.Selected),
		Skipped:        atomic.LoadInt64(&s.Skipped),
		RecordsSkipped: atomic.LoadInt64(&s.RecordsSkipped),
		BytesRead:      atomic.LoadInt64(&s.BytesRead),
		BytesAvoided:   atomic.LoadInt64(&s.BytesAvoided),
	}
}

// ScanOption configures one Scan or ScanEncoded call.
type ScanOption func(*scanConfig) error

type scanConfig struct {
	pred  Predicate
	stats *FilterStats
}

// WithFilter restricts a scan to the samples the predicate selects,
// preserving storage order among them. On PCR datasets carrying the
// sample-offset side index the selection is pushed into the read plan:
// records with no matching sample are not read at all, and — when the scan
// runs without cache tiers — partially matching records are fetched as
// sparse byte ranges covering only the selected samples (remotely, a single
// pushdown request moving only those bytes). With cache tiers the full
// prefix is read through the cache (caches are prefix-shaped) and filtering
// happens afterwards; on datasets without a side index, or on the baseline
// formats, filtering likewise happens after the read. Every path yields
// byte-identical samples.
func WithFilter(pred Predicate) ScanOption {
	return func(sc *scanConfig) error {
		if pred == nil {
			return fmt.Errorf("pcr: WithFilter: nil predicate")
		}
		sc.pred = pred
		return nil
	}
}

// WithFilterStats points a filtered scan's accounting at stats, which is
// reset when the scan starts and valid once its iterator has been fully
// consumed. Requires WithFilter.
func WithFilterStats(stats *FilterStats) ScanOption {
	return func(sc *scanConfig) error {
		if stats == nil {
			return fmt.Errorf("pcr: WithFilterStats: nil stats")
		}
		sc.stats = stats
		return nil
	}
}

func applyScanOptions(opts []ScanOption) (*scanConfig, error) {
	sc := &scanConfig{}
	for _, o := range opts {
		if err := o(sc); err != nil {
			return nil, err
		}
	}
	if sc.stats != nil && sc.pred == nil {
		return nil, fmt.Errorf("pcr: WithFilterStats requires WithFilter")
	}
	if sc.stats != nil {
		*sc.stats = FilterStats{}
	}
	return sc, nil
}

// FilterPlan is the index-only cost estimate of a filtered scan at one
// quality: how many samples the predicate selects and how many record
// bytes a cache-less filtered scan moves versus a full scan — the query
// planner's view, computed without touching a record file.
type FilterPlan struct {
	// Selected of Total samples match the predicate.
	Selected int
	Total    int
	// RecordsSkipped of Records contain no matching sample and are not
	// read at all.
	Records        int
	RecordsSkipped int
	// Bytes is the filtered scan's read volume (coalesced selected
	// ranges); FullBytes is the unfiltered scan's (SizeAtQuality).
	Bytes     int64
	FullBytes int64
}

// PlanFilter estimates what Scan(WithFilter(pred)) at quality q will read,
// purely from the record index. It requires the PCR format and the
// sample-offset side index on every record; datasets written before the
// side index existed report core's ErrNoSampleIndex (such datasets still
// scan filtered, just without planned byte savings).
func (d *Dataset) PlanFilter(pred Predicate, q int) (FilterPlan, error) {
	if pred == nil {
		return FilterPlan{}, fmt.Errorf("pcr: PlanFilter: nil predicate")
	}
	qq, err := d.resolveQuality(q)
	if err != nil {
		return FilterPlan{}, err
	}
	fp, ok := d.r.(filterPlanner)
	if !ok {
		return FilterPlan{}, fmt.Errorf("pcr: PlanFilter on %s format: filtering is post-read, no plan to compute", d.cfg.format.Name())
	}
	return fp.planFilter(pred, qq)
}

// filterPlanner is the format capability behind PlanFilter.
type filterPlanner interface {
	planFilter(pred Predicate, qq int) (FilterPlan, error)
}

// filteredScanner is the format capability behind predicate pushdown; only
// the PCR reader implements it. Formats without it get the generic
// post-read selection stage (filterSeq).
type filteredScanner interface {
	scanEncodedFiltered(ctx context.Context, q int, pred Predicate, stats *FilterStats) iter.Seq2[Sample, error]
}

// filteredRecordReader is the record-granular capability behind the
// Loader's WithLoaderFilter: side-index selection lookup plus filtered
// (possibly sparse) record reads. Only the PCR reader implements it.
type filteredRecordReader interface {
	selection(i int, pred Predicate) (sel []bool, nsel int, ok bool)
	readRecordFiltered(i, q int, pred Predicate, sel []bool) (samples []Sample, bytesRead, bytesAvoided int64, err error)
}

// filterSeq composes a pure selection stage onto an encoded scan — the
// relational-algebra view of WithFilter, usable over any sample stream.
func filterSeq(seq iter.Seq2[Sample, error], pred Predicate, stats *FilterStats) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for s, err := range seq {
			if err != nil {
				yield(s, err)
				return
			}
			if !pred.Matches(s.ID, s.Label) {
				if stats != nil {
					stats.addSamples(0, 1)
				}
				continue
			}
			if stats != nil {
				stats.addSamples(1, 0)
			}
			if !yield(s, nil) {
				return
			}
		}
	}
}
