package pcr_test

import (
	"context"
	"testing"

	"repro/pcr"
)

// FilterStats.Snapshot is the documented way to observe a scan that is
// still running: a second goroutine polls it for the whole duration of a
// filtered scan while the scan's workers update the counters. Under
// `go test -race` this fails if Snapshot (or the counter writes) ever
// touch the fields non-atomically.
func TestFilterStatsSnapshotDuringScan(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir, pcr.WithPrefetchWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	pred, err := pcr.ParseFilter("label IN (0, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}

	var fs pcr.FilterStats
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := fs.Snapshot()
			// Monotone non-negativity is all a mid-flight snapshot
			// promises per field.
			if snap.Selected < 0 || snap.Skipped < 0 || snap.BytesRead < 0 {
				t.Errorf("negative snapshot: %+v", snap)
				return
			}
		}
	}()

	n := 0
	for s, err := range ds.ScanEncoded(context.Background(), pcr.Full, pcr.WithFilter(pred), pcr.WithFilterStats(&fs)) {
		if err != nil {
			t.Fatal(err)
		}
		if !pred.Matches(s.ID, s.Label) {
			t.Fatalf("sample (%d,%d) escaped the filter", s.ID, s.Label)
		}
		n++
	}
	close(stop)
	<-done

	// With the scan fully consumed the snapshot and the plain fields must
	// agree exactly.
	snap := fs.Snapshot()
	if snap != fs {
		t.Fatalf("settled snapshot %+v != fields %+v", snap, fs)
	}
	if int(snap.Selected) != n {
		t.Fatalf("snapshot says %d selected, scan delivered %d", snap.Selected, n)
	}
}
