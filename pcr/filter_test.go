package pcr_test

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/pcr"
)

func TestParseFilterForms(t *testing.T) {
	cases := []struct {
		in        string
		canonical string // expected String(); "" means same as in
		match     [][3]int64
	}{
		{in: "label = 3", match: [][3]int64{{1, 3, 1}, {1, 4, 0}}},
		{in: "label != 3", canonical: "NOT label = 3", match: [][3]int64{{1, 3, 0}, {1, 4, 1}}},
		{in: "label IN (7, 3, 3)", canonical: "label IN (3, 7)",
			match: [][3]int64{{1, 3, 1}, {1, 7, 1}, {1, 5, 0}}},
		{in: "id = 5", match: [][3]int64{{5, 0, 1}, {6, 0, 0}}},
		{in: "id != 5", canonical: "NOT id = 5", match: [][3]int64{{5, 0, 0}, {6, 0, 1}}},
		{in: "id IN [3..6]", match: [][3]int64{{3, 0, 1}, {6, 0, 1}, {2, 0, 0}, {7, 0, 0}}},
		{in: "id IN [6..3]", canonical: "id IN [1..0]", match: [][3]int64{{1, 0, 0}, {4, 0, 0}}},
		{in: "id IN (9, 2, 2)", canonical: "(id = 2 OR id = 9)",
			match: [][3]int64{{2, 0, 1}, {9, 0, 1}, {5, 0, 0}}},
		{in: "id >= 4", match: [][3]int64{{4, 0, 1}, {3, 0, 0}, {math.MaxInt64, 0, 1}}},
		{in: "id > 4", canonical: "id >= 5", match: [][3]int64{{5, 0, 1}, {4, 0, 0}}},
		{in: "id <= 4", match: [][3]int64{{4, 0, 1}, {5, 0, 0}, {math.MinInt64, 0, 1}}},
		{in: "id < 4", canonical: "id <= 3", match: [][3]int64{{3, 0, 1}, {4, 0, 0}}},
		{in: "label IN (1, 2) AND id >= 10", canonical: "(label IN (1, 2) AND id >= 10)",
			match: [][3]int64{{10, 1, 1}, {10, 3, 0}, {9, 2, 0}}},
		{in: "label = 1 OR label = 2 AND id = 5", canonical: "(label = 1 OR (label = 2 AND id = 5))",
			match: [][3]int64{{0, 1, 1}, {5, 2, 1}, {4, 2, 0}}},
		{in: "NOT (label = 1 OR id = 2)", canonical: "NOT (label = 1 OR id = 2)",
			match: [][3]int64{{3, 3, 1}, {3, 1, 0}, {2, 3, 0}}},
		{in: "  LaBeL   iN  ( 3 ,7 )  ", canonical: "label IN (3, 7)",
			match: [][3]int64{{0, 3, 1}, {0, 5, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			p, err := pcr.ParseFilter(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.canonical
			if want == "" {
				want = tc.in
			}
			if got := p.String(); got != want {
				t.Errorf("String() = %q, want %q", got, want)
			}
			for _, m := range tc.match {
				if got := p.Matches(m[0], m[1]); got != (m[2] == 1) {
					t.Errorf("Matches(%d, %d) = %v, want %v", m[0], m[1], got, m[2] == 1)
				}
			}
			// Round trip: the canonical form reparses to an equal predicate.
			p2, err := pcr.ParseFilter(p.String())
			if err != nil {
				t.Fatalf("reparse %q: %v", p.String(), err)
			}
			if !reflect.DeepEqual(p, p2) {
				t.Errorf("round trip changed the predicate: %q -> %q", p, p2)
			}
		})
	}
}

func TestParseFilterErrors(t *testing.T) {
	cases := []string{
		"",
		"label",
		"label = ",
		"label < 3",
		"label IN [1..2]",
		"label IN ()",
		"id IN [1..2",
		"id IN [1, 2]",
		"id ** 3",
		"color = 3",
		"label = 3 extra",
		"label = 99999999999999999999",
		"id = 3 AND",
		"(label = 1",
		"label = 1)",
		"label = 3 🚀",
		strings.Repeat("NOT ", 500) + "label = 1",
		strings.Repeat("(", 500) + "label = 1" + strings.Repeat(")", 500),
	}
	for _, in := range cases {
		if p, err := pcr.ParseFilter(in); err == nil {
			t.Errorf("ParseFilter(%q) accepted as %q", in, p)
		}
	}
}

func TestFilterCombinators(t *testing.T) {
	if p := pcr.LabelIn(); p.Matches(1, 1) {
		t.Error("empty LabelIn matched")
	}
	if p := pcr.IDRange(5, 3); p.Matches(4, 0) {
		t.Error("empty IDRange matched")
	}
	if got, want := pcr.LabelIn(4, 1, 4, 2).String(), "label IN (1, 2, 4)"; got != want {
		t.Errorf("LabelIn String = %q, want %q", got, want)
	}
	p := pcr.And(pcr.Not(pcr.LabelIn(3)), pcr.Or(pcr.IDRange(1, 5), pcr.IDRange(10, 10)))
	for _, tc := range []struct {
		id, label int64
		want      bool
	}{
		{3, 1, true}, {3, 3, false}, {10, 0, true}, {7, 0, false},
	} {
		if got := p.Matches(tc.id, tc.label); got != tc.want {
			t.Errorf("Matches(%d, %d) = %v, want %v", tc.id, tc.label, got, tc.want)
		}
	}
	// Combinator output reparses to an equal predicate too.
	p2, err := pcr.ParseFilter(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("combinator round trip changed the predicate: %q -> %q", p, p2)
	}
}

func TestScanOptionValidation(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ctx := context.Background()
	expectErr := func(name string, opts ...pcr.ScanOption) {
		t.Helper()
		var got error
		for _, err := range ds.Scan(ctx, pcr.Full, opts...) {
			got = err
			break
		}
		if got == nil {
			t.Errorf("%s: no error", name)
		}
	}
	expectErr("nil predicate", pcr.WithFilter(nil))
	expectErr("nil stats", pcr.WithFilter(pcr.LabelIn(1)), pcr.WithFilterStats(nil))
	var fs pcr.FilterStats
	expectErr("stats without filter", pcr.WithFilterStats(&fs))
}

// The planner must price exactly what the filtered scan then reads.
func TestPlanFilterMatchesScan(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	pred, err := pcr.ParseFilter("label IN (0, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q <= ds.Qualities(); q++ {
		plan, err := ds.PlanFilter(pred, q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Total != ds.NumImages() {
			t.Fatalf("q%d: plan.Total = %d, want %d", q, plan.Total, ds.NumImages())
		}
		full, err := ds.SizeAtQuality(q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.FullBytes != full {
			t.Fatalf("q%d: plan.FullBytes = %d, want %d", q, plan.FullBytes, full)
		}
		var fs pcr.FilterStats
		got := 0
		for s, err := range ds.ScanEncoded(context.Background(), q, pcr.WithFilter(pred), pcr.WithFilterStats(&fs)) {
			if err != nil {
				t.Fatal(err)
			}
			if !pred.Matches(s.ID, s.Label) {
				t.Fatalf("q%d: sample (%d,%d) escaped the filter", q, s.ID, s.Label)
			}
			got++
		}
		if got != plan.Selected {
			t.Fatalf("q%d: scan delivered %d, plan said %d", q, got, plan.Selected)
		}
		if fs.BytesRead != plan.Bytes {
			t.Fatalf("q%d: scan read %d bytes, plan said %d", q, fs.BytesRead, plan.Bytes)
		}
		if int(fs.RecordsSkipped) != plan.RecordsSkipped {
			t.Fatalf("q%d: scan skipped %d records, plan said %d", q, fs.RecordsSkipped, plan.RecordsSkipped)
		}
		if fs.Selected+fs.Skipped != int64(plan.Total) {
			t.Fatalf("q%d: selected %d + skipped %d != total %d", q, fs.Selected, fs.Skipped, plan.Total)
		}
	}
	// A predicate matching nothing reads nothing.
	none, _ := pcr.ParseFilter("id < -1000000")
	var fs pcr.FilterStats
	for _, err := range ds.ScanEncoded(context.Background(), pcr.Full, pcr.WithFilter(none), pcr.WithFilterStats(&fs)) {
		if err != nil {
			t.Fatal(err)
		}
		t.Fatal("empty predicate delivered a sample")
	}
	if fs.BytesRead != 0 || fs.Selected != 0 {
		t.Fatalf("empty predicate read %d bytes, selected %d", fs.BytesRead, fs.Selected)
	}
	if fs.BytesAvoided == 0 {
		t.Fatal("empty predicate avoided no bytes")
	}
}

func TestPlanFilterNoSampleIndex(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithFormat(pcr.TFRecord))
	ds, err := pcr.Open(dir, pcr.WithFormat(pcr.TFRecord))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.PlanFilter(pcr.LabelIn(1), pcr.Full); err == nil {
		t.Fatal("PlanFilter on tfrecord succeeded; filtering there is post-read with no plan")
	}
	// Filtered scans still work on baseline formats via the generic
	// post-read selection stage.
	var fs pcr.FilterStats
	n := 0
	for s, err := range ds.ScanEncoded(context.Background(), pcr.Full, pcr.WithFilter(pcr.LabelIn(0, 1)), pcr.WithFilterStats(&fs)) {
		if err != nil {
			t.Fatal(err)
		}
		if s.Label != 0 && s.Label != 1 {
			t.Fatalf("label %d escaped the filter", s.Label)
		}
		n++
	}
	if int64(n) != fs.Selected {
		t.Fatalf("delivered %d, stats say %d", n, fs.Selected)
	}
	if fs.Selected+fs.Skipped != int64(ds.NumImages()) {
		t.Fatalf("selected %d + skipped %d != %d images", fs.Selected, fs.Skipped, ds.NumImages())
	}
}
