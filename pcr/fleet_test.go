package pcr_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/pcr"
)

// startFleet serves dir from n fleet members with the given replication.
// wrap (optional) decorates member i's handler. Listeners are bound before
// any server is built because each member's configuration names every
// member's URL.
func startFleet(t *testing.T, dir string, n, replication int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range urls {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		srv, err := serve.New(dir, &serve.Options{
			CacheBytes: 8 << 20,
			Cluster:    &serve.ClusterConfig{Self: urls[i], Peers: peers, Replication: replication},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := http.Handler(srv)
		if wrap != nil {
			h = wrap(i, h)
		}
		hs := &http.Server{Handler: h}
		go hs.Serve(lns[i])
		i := i
		t.Cleanup(func() {
			hs.Close()
			lns[i].Close()
			srv.Close()
		})
	}
	return urls
}

// varzHedged reads the hedged_requests counter a member exposes at /varz.
func varzHedged(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		HedgedRequests int64 `json:"hedged_requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats.HedgedRequests
}

// TestFleetScanHedgesSlowMember: scanning through a 3-member fleet with
// one artificially slow member, hedged reads fire (visible both in the
// client's stats and in the fleet's /varz hedged_requests counters) and
// every sample is delivered exactly once — a hedge that loses the race
// must not surface its copy of the data.
func TestFleetScanHedgesSlowMember(t *testing.T) {
	dir, n := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))

	// Member 0 answers record reads slowly; membership and index stay
	// fast so only the data path is dragged.
	const crawl = 60 * time.Millisecond
	urls := startFleet(t, dir, 3, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/records/") {
				time.Sleep(crawl)
			}
			h.ServeHTTP(w, r)
		})
	})

	ds, err := pcr.OpenRemote(strings.Join(urls, ","),
		pcr.WithCacheBytes(32<<20),
		pcr.WithHedgeDelay(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	seen := make(map[int64]int, n)
	for s, err := range ds.ScanEncoded(context.Background(), pcr.Full) {
		if err != nil {
			t.Fatal(err)
		}
		seen[s.ID]++
	}
	if len(seen) != n {
		t.Fatalf("scan delivered %d distinct samples, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d delivered %d times — hedging duplicated delivery", id, c)
		}
	}

	st, ok := ds.ClusterStats()
	if !ok {
		t.Fatal("no cluster stats from a fleet dataset")
	}
	if st.Hedges == 0 {
		t.Fatalf("no hedges fired against a member %v slower than the hedge delay: %+v", crawl, st)
	}
	var hedged int64
	for _, u := range urls {
		hedged += varzHedged(t, u)
	}
	if hedged == 0 {
		t.Fatalf("client hedged %d times but no member counted a hedged request on /varz", st.Hedges)
	}
}
