package pcr

import (
	"context"
	"fmt"
	"iter"
)

// Format is a storage layout for an image dataset. The package provides the
// three layouts the paper compares — PCR, TFRecord, and FilePerImage — and
// every Format flows through the same Create/Open/Scan surface, so switching
// layouts is a one-option change.
//
// The interface is sealed: implementations live in this package.
type Format interface {
	// Name is the layout's stable identifier ("pcr", "tfrecord",
	// "fileperimage"), accepted by FormatByName.
	Name() string

	create(dir string, cfg *config) (formatWriter, error)
	open(dir string, cfg *config) (formatReader, error)
}

// formatWriter is the write half a Format must provide. Samples arrive with
// JPEG bytes already resolved.
type formatWriter interface {
	append(s Sample) error
	close() error
}

// formatReader is the read half a Format must provide.
type formatReader interface {
	// numImages is the total stored image count.
	numImages() int
	// qualities is the number of stored quality levels (>= 1).
	qualities() int
	// sizeAtQuality is the total bytes a full scan reads at quality q
	// (1..qualities()).
	sizeAtQuality(q int) (int64, error)
	// scanEncoded streams every sample in storage order at quality q
	// (1..qualities()), filling Sample.JPEG with a decodable stream. It
	// stops early when ctx is cancelled (yielding ctx.Err()) or the
	// consumer breaks.
	scanEncoded(ctx context.Context, q int) iter.Seq2[Sample, error]
	close() error
}

// The built-in storage layouts.
var (
	// PCR stores batches of progressively-compressed images rearranged by
	// scan group, so one sequential prefix read yields every image of a
	// record at a chosen quality (the paper's format).
	PCR Format = pcrFormat{}
	// TFRecord stores one framed protobuf-style message per image with
	// TensorFlow's length+CRC framing (the record-format baseline).
	TFRecord Format = tfrecordFormat{}
	// FilePerImage stores one JPEG file per image in per-class directories
	// (the PyTorch ImageFolder baseline).
	FilePerImage Format = fpiFormat{}
)

// Formats lists the built-in layouts.
func Formats() []Format { return []Format{PCR, TFRecord, FilePerImage} }

// FormatByName resolves a layout by its Name (as used in CLI flags).
func FormatByName(name string) (Format, error) {
	for _, f := range Formats() {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("pcr: unknown format %q (want pcr, tfrecord, or fileperimage)", name)
}
