package pcr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"iter"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/recordio"
)

// fpiFormat stores one JPEG file per image in per-class directories (the
// ImageFolder baseline). It exposes a single quality level; reads are one
// small random read per image — the access pattern the paper's Figure 1
// contrasts with record layouts.
type fpiFormat struct{}

func (fpiFormat) Name() string { return "fileperimage" }

func (fpiFormat) create(dir string, cfg *config) (formatWriter, error) {
	fpi, err := recordio.CreateFilePerImage(dir)
	if err != nil {
		return nil, err
	}
	return &fpiWriter{fpi: fpi}, nil
}

type fpiWriter struct{ fpi *recordio.FilePerImage }

func (w *fpiWriter) append(s Sample) error { return w.fpi.Put(s.ID, s.Label, s.JPEG) }

func (w *fpiWriter) close() error { return w.fpi.WriteManifest() }

func (fpiFormat) open(dir string, cfg *config) (formatReader, error) {
	backend := core.NewDirBackend(dir)
	entries, err := fpiEntries(dir, backend)
	if err != nil {
		return nil, err
	}
	return &fpiReader{backend: backend, entries: entries}, nil
}

// fpiEntries lists the dataset through its manifest (relative paths, read
// through the Backend); a hand-built directory without a manifest falls
// back to the walk, relativized so reads still go through the Backend.
func fpiEntries(dir string, backend core.Backend) ([]recordio.Entry, error) {
	rc, err := backend.Open(recordio.ManifestName)
	switch {
	case err == nil:
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("pcr: %w", err)
		}
		entries, err := recordio.ParseManifest(data)
		if err != nil {
			return nil, fmt.Errorf("pcr: %w: %w", ErrCorrupt, err)
		}
		return entries, nil
	case !errors.Is(err, fs.ErrNotExist):
		// A manifest that exists but cannot be read is an error, not a
		// license to serve a possibly different entry set from the walk.
		return nil, err
	}
	fpi, err := recordio.OpenFilePerImage(dir)
	if err != nil {
		return nil, err
	}
	entries, err := fpi.List()
	if err != nil {
		return nil, err
	}
	for i := range entries {
		rel, err := filepath.Rel(dir, entries[i].Path)
		if err != nil {
			return nil, fmt.Errorf("pcr: %w", err)
		}
		entries[i].Path = filepath.ToSlash(rel)
	}
	return entries, nil
}

type fpiReader struct {
	backend core.Backend
	entries []recordio.Entry
}

func (r *fpiReader) numImages() int { return len(r.entries) }
func (r *fpiReader) qualities() int { return 1 }
func (r *fpiReader) close() error   { return r.backend.Close() }

func (r *fpiReader) sizeAtQuality(q int) (int64, error) {
	var total int64
	for _, e := range r.entries {
		total += e.Size
	}
	return total, nil
}

func (r *fpiReader) scanEncoded(ctx context.Context, q int) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for _, e := range r.entries {
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			data, err := r.backend.ReadRange(e.Path, 0, e.Size)
			if err != nil {
				yield(Sample{}, err)
				return
			}
			if !yield(Sample{ID: e.ID, Label: e.Label, JPEG: data}, nil) {
				return
			}
		}
	}
}
