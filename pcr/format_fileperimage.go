package pcr

import (
	"context"
	"iter"

	"repro/internal/recordio"
)

// fpiFormat stores one JPEG file per image in per-class directories (the
// ImageFolder baseline). It exposes a single quality level; reads are one
// small random read per image — the access pattern the paper's Figure 1
// contrasts with record layouts.
type fpiFormat struct{}

func (fpiFormat) Name() string { return "fileperimage" }

func (fpiFormat) create(dir string, cfg *config) (formatWriter, error) {
	fpi, err := recordio.CreateFilePerImage(dir)
	if err != nil {
		return nil, err
	}
	return &fpiWriter{fpi: fpi}, nil
}

type fpiWriter struct{ fpi *recordio.FilePerImage }

func (w *fpiWriter) append(s Sample) error { return w.fpi.Put(s.ID, s.Label, s.JPEG) }

func (w *fpiWriter) close() error { return w.fpi.WriteManifest() }

func (fpiFormat) open(dir string, cfg *config) (formatReader, error) {
	fpi, err := recordio.OpenFilePerImage(dir)
	if err != nil {
		return nil, err
	}
	entries, err := fpi.List()
	if err != nil {
		return nil, err
	}
	return &fpiReader{fpi: fpi, entries: entries}, nil
}

type fpiReader struct {
	fpi     *recordio.FilePerImage
	entries []recordio.Entry
}

func (r *fpiReader) numImages() int { return len(r.entries) }
func (r *fpiReader) qualities() int { return 1 }
func (r *fpiReader) close() error   { return nil }

func (r *fpiReader) sizeAtQuality(q int) (int64, error) {
	var total int64
	for _, e := range r.entries {
		total += e.Size
	}
	return total, nil
}

func (r *fpiReader) scanEncoded(ctx context.Context, q int) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for _, e := range r.entries {
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			data, err := r.fpi.Get(e)
			if err != nil {
				yield(Sample{}, err)
				return
			}
			if !yield(Sample{ID: e.ID, Label: e.Label, JPEG: data}, nil) {
				return
			}
		}
	}
}
