package pcr

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/jpegc"
)

type pcrFormat struct{}

func (pcrFormat) Name() string { return "pcr" }

func (pcrFormat) create(dir string, cfg *config) (formatWriter, error) {
	w, err := core.CreateDataset(dir, &core.DatasetOptions{
		ImagesPerRecord: cfg.imagesPerRecord,
		ScanGroups:      cfg.scanGroups,
	})
	if err != nil {
		return nil, err
	}
	return &pcrWriter{w: w}, nil
}

func (pcrFormat) open(dir string, cfg *config) (formatReader, error) {
	ds, err := core.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	r, err := newPCRReader(ds, cfg)
	if err != nil {
		ds.Close()
		return nil, err
	}
	return r, nil
}

// newPCRReader wires the optional cache tiers over a dataset opened
// against any Backend — the shared tail of Open (local disk) and
// OpenRemote (HTTP prefix server). The persistent disk cache
// (WithDiskCache) decorates the storage backend itself, so it sits under
// the in-memory LRU (WithCacheBytes): a read misses memory, then disk,
// then goes upstream — and each tier fills with exactly the delta bytes.
func newPCRReader(ds *core.Dataset, cfg *config) (*pcrReader, error) {
	r := &pcrReader{ds: ds}
	if cfg.diskCacheDir == "" && cfg.diskCacheLazy {
		return nil, fmt.Errorf("pcr: WithDiskCacheLazyVerify requires WithDiskCache")
	}
	if cfg.diskCacheDir != "" {
		gen, err := core.IndexFingerprint(ds.Index())
		if err != nil {
			return nil, err
		}
		var dcOpts []diskcache.Option
		if cfg.diskCacheLazy {
			dcOpts = append(dcOpts, diskcache.WithLazyVerify())
		}
		dc, err := diskcache.Wrap(ds.Backend(), cfg.diskCacheDir, cfg.diskCacheBytes, gen, dcOpts...)
		if err != nil {
			return nil, err
		}
		ds.SetBackend(dc)
		r.disk = dc
	}
	if cfg.cacheBytes > 0 {
		c, err := cache.New(cfg.cacheBytes, r.fetchRange)
		if err != nil {
			return nil, err
		}
		r.cache = c
	}
	return r, nil
}

type pcrWriter struct{ w *core.DatasetWriter }

func (w *pcrWriter) append(s Sample) error {
	return w.w.Append(core.Sample{ID: s.ID, Label: s.Label, JPEG: s.JPEG})
}

func (w *pcrWriter) close() error { return w.w.Close() }

// pcrReader reads record prefixes, optionally through the in-memory LRU
// prefix cache and the persistent disk tier beneath it.
type pcrReader struct {
	ds    *core.Dataset
	cache *cache.Cache
	disk  *diskcache.Backend
}

func (r *pcrReader) numImages() int { return r.ds.NumImages() }
func (r *pcrReader) qualities() int { return r.ds.NumGroups }
func (r *pcrReader) close() error   { return r.ds.Close() }

// recordQuality clamps quality q to what record i actually stores (grayscale
// records hold fewer scan groups than the dataset maximum).
func (r *pcrReader) recordQuality(i, q int) (int, error) {
	groups, err := r.ds.RecordGroups(i)
	if err != nil {
		return 0, err
	}
	if q > groups {
		q = groups
	}
	return q, nil
}

func (r *pcrReader) sizeAtQuality(q int) (int64, error) {
	var total int64
	for i := 0; i < r.ds.NumRecords(); i++ {
		gg, err := r.recordQuality(i, q)
		if err != nil {
			return 0, err
		}
		n, err := r.ds.RecordPrefixLen(i, gg)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// fetchRange is the cache's backing fetcher: one ranged read of a record
// through the dataset's storage Backend (local disk or a remote prefix
// server). The cache calls it with offset == 0 on a miss and offset ==
// cached length on a quality upgrade, so reads stay sequential per record
// — and a remote upgrade becomes a single HTTP Range request for only the
// delta bytes.
func (r *pcrReader) fetchRange(record int, offset, length int64) ([]byte, error) {
	return r.ds.ReadRecordRange(record, offset, length)
}

// readPrefix returns the prefix bytes and parsed metadata of record i at
// record-clamped quality gg.
func (r *pcrReader) readPrefix(i, gg int) ([]byte, *core.RecordMeta, error) {
	if r.cache == nil {
		return r.ds.ReadRecordPrefix(i, gg)
	}
	need, err := r.ds.RecordPrefixLen(i, gg)
	if err != nil {
		return nil, nil, err
	}
	prefix, err := r.cache.Get(i, need)
	if err != nil {
		return nil, nil, err
	}
	meta, err := core.ParseRecordMeta(prefix)
	if err != nil {
		return nil, nil, err
	}
	return prefix, meta, nil
}

// readRecord materializes record i's samples (encoded only) at quality q.
func (r *pcrReader) readRecord(i, q int) ([]Sample, error) {
	gg, err := r.recordQuality(i, q)
	if err != nil {
		return nil, err
	}
	prefix, meta, err := r.readPrefix(i, gg)
	if err != nil {
		return nil, err
	}
	out := make([]Sample, 0, len(meta.Samples))
	for si := range meta.Samples {
		stream, err := meta.SampleJPEG(prefix, si, gg)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{
			ID:    meta.Samples[si].ID,
			Label: meta.Samples[si].Label,
			JPEG:  stream,
		})
	}
	return out, nil
}

func (r *pcrReader) scanEncoded(ctx context.Context, q int) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for i := 0; i < r.ds.NumRecords(); i++ {
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			samples, err := r.readRecord(i, q)
			if err != nil {
				yield(Sample{}, err)
				return
			}
			for _, s := range samples {
				if !yield(s, nil) {
					return
				}
			}
		}
	}
}

// Record-level accessors behind Dataset's PCR-only methods.

func (r *pcrReader) numRecords() int { return r.ds.NumRecords() }

func (r *pcrReader) recordImages(i int) (int, error) { return r.ds.RecordSamples(i) }

func (r *pcrReader) recordPrefixLen(i, q int) (int64, error) {
	gg, err := r.recordQuality(i, q)
	if err != nil {
		return 0, err
	}
	return r.ds.RecordPrefixLen(i, gg)
}

func (r *pcrReader) cacheStats() (cache.Stats, bool) {
	if r.cache == nil {
		return cache.Stats{}, false
	}
	return r.cache.Stats(), true
}

func (r *pcrReader) diskCacheStats() (diskcache.Stats, bool) {
	if r.disk == nil {
		return diskcache.Stats{}, false
	}
	return r.disk.Stats(), true
}

// decode is shared by Dataset.Scan's worker pool.
func decodeJPEG(s *Sample) error {
	img, err := jpegc.Decode(s.JPEG)
	if err != nil {
		return fmt.Errorf("pcr: decoding sample %d: %w", s.ID, err)
	}
	s.Image = img
	return nil
}
