package pcr

import (
	"context"
	"fmt"
	"iter"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diskcache"
	"repro/internal/jpegc"
)

type pcrFormat struct{}

func (pcrFormat) Name() string { return "pcr" }

func (pcrFormat) create(dir string, cfg *config) (formatWriter, error) {
	w, err := core.CreateDataset(dir, &core.DatasetOptions{
		ImagesPerRecord: cfg.imagesPerRecord,
		ScanGroups:      cfg.scanGroups,
	})
	if err != nil {
		return nil, err
	}
	return &pcrWriter{w: w}, nil
}

func (pcrFormat) open(dir string, cfg *config) (formatReader, error) {
	ds, err := core.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	r, err := newPCRReader(ds, cfg)
	if err != nil {
		ds.Close()
		return nil, err
	}
	return r, nil
}

// newPCRReader wires the optional cache tiers over a dataset opened
// against any Backend — the shared tail of Open (local disk) and
// OpenRemote (HTTP prefix server). The persistent disk cache
// (WithDiskCache) decorates the storage backend itself, so it sits under
// the in-memory LRU (WithCacheBytes): a read misses memory, then disk,
// then goes upstream — and each tier fills with exactly the delta bytes.
func newPCRReader(ds *core.Dataset, cfg *config) (*pcrReader, error) {
	r := &pcrReader{ds: ds}
	if cfg.diskCacheDir == "" && cfg.diskCacheLazy {
		return nil, fmt.Errorf("pcr: WithDiskCacheLazyVerify requires WithDiskCache")
	}
	if cfg.diskCacheDir != "" {
		gen, err := core.IndexFingerprint(ds.Index())
		if err != nil {
			return nil, err
		}
		var dcOpts []diskcache.Option
		if cfg.diskCacheLazy {
			dcOpts = append(dcOpts, diskcache.WithLazyVerify())
		}
		dc, err := diskcache.Wrap(ds.Backend(), cfg.diskCacheDir, cfg.diskCacheBytes, gen, dcOpts...)
		if err != nil {
			return nil, err
		}
		ds.SetBackend(dc)
		r.disk = dc
	}
	if cfg.cacheBytes > 0 {
		c, err := cache.New(cfg.cacheBytes, r.fetchRange)
		if err != nil {
			return nil, err
		}
		r.cache = c
	}
	return r, nil
}

type pcrWriter struct{ w *core.DatasetWriter }

func (w *pcrWriter) append(s Sample) error {
	return w.w.Append(core.Sample{ID: s.ID, Label: s.Label, JPEG: s.JPEG})
}

func (w *pcrWriter) close() error { return w.w.Close() }

// pcrReader reads record prefixes, optionally through the in-memory LRU
// prefix cache and the persistent disk tier beneath it.
type pcrReader struct {
	ds    *core.Dataset
	cache *cache.Cache
	disk  *diskcache.Backend
}

func (r *pcrReader) numImages() int { return r.ds.NumImages() }
func (r *pcrReader) qualities() int { return r.ds.NumGroups }
func (r *pcrReader) close() error   { return r.ds.Close() }

// recordQuality clamps quality q to what record i actually stores (grayscale
// records hold fewer scan groups than the dataset maximum).
func (r *pcrReader) recordQuality(i, q int) (int, error) {
	groups, err := r.ds.RecordGroups(i)
	if err != nil {
		return 0, err
	}
	if q > groups {
		q = groups
	}
	return q, nil
}

func (r *pcrReader) sizeAtQuality(q int) (int64, error) {
	var total int64
	for i := 0; i < r.ds.NumRecords(); i++ {
		gg, err := r.recordQuality(i, q)
		if err != nil {
			return 0, err
		}
		n, err := r.ds.RecordPrefixLen(i, gg)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// fetchRange is the cache's backing fetcher: one ranged read of a record
// through the dataset's storage Backend (local disk or a remote prefix
// server). The cache calls it with offset == 0 on a miss and offset ==
// cached length on a quality upgrade, so reads stay sequential per record
// — and a remote upgrade becomes a single HTTP Range request for only the
// delta bytes.
func (r *pcrReader) fetchRange(record int, offset, length int64) ([]byte, error) {
	return r.ds.ReadRecordRange(record, offset, length)
}

// readPrefix returns the prefix bytes and parsed metadata of record i at
// record-clamped quality gg.
func (r *pcrReader) readPrefix(i, gg int) ([]byte, *core.RecordMeta, error) {
	if r.cache == nil {
		return r.ds.ReadRecordPrefix(i, gg)
	}
	need, err := r.ds.RecordPrefixLen(i, gg)
	if err != nil {
		return nil, nil, err
	}
	prefix, err := r.cache.Get(i, need)
	if err != nil {
		return nil, nil, err
	}
	meta, err := core.ParseRecordMeta(prefix)
	if err != nil {
		return nil, nil, err
	}
	return prefix, meta, nil
}

// readRecord materializes record i's samples (encoded only) at quality q.
func (r *pcrReader) readRecord(i, q int) ([]Sample, error) {
	gg, err := r.recordQuality(i, q)
	if err != nil {
		return nil, err
	}
	prefix, meta, err := r.readPrefix(i, gg)
	if err != nil {
		return nil, err
	}
	out := make([]Sample, 0, len(meta.Samples))
	for si := range meta.Samples {
		stream, err := meta.SampleJPEG(prefix, si, gg)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{
			ID:    meta.Samples[si].ID,
			Label: meta.Samples[si].Label,
			JPEG:  stream,
		})
	}
	return out, nil
}

func (r *pcrReader) scanEncoded(ctx context.Context, q int) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for i := 0; i < r.ds.NumRecords(); i++ {
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			samples, err := r.readRecord(i, q)
			if err != nil {
				yield(Sample{}, err)
				return
			}
			for _, s := range samples {
				if !yield(s, nil) {
					return
				}
			}
		}
	}
}

// selection evaluates pred over record i's side index without touching the
// record file. ok is false when the record predates the side index, in
// which case the caller must read the record and filter afterwards.
func (r *pcrReader) selection(i int, pred Predicate) (sel []bool, nsel int, ok bool) {
	ids, labels, err := r.ds.SampleIndex(i)
	if err != nil {
		return nil, 0, false
	}
	sel, nsel = matchSelection(pred, ids, labels)
	return sel, nsel, true
}

// readRecordFiltered materializes only the samples of record i that the
// predicate selects, at quality q. sel is the side-index selection mask
// (nil when the record has no side index). It returns the selected encoded
// samples in storage order plus exact byte accounting: bytesRead is what
// this read fetched, bytesAvoided is what a full prefix read would have
// fetched on top.
//
// Read-path precedence: with cache tiers mounted, the full prefix is read
// through them (caches are prefix-shaped — a sparse buffer could neither
// fill nor be served from one) and the selection applies afterwards.
// Without caches and with a side index, the read is sparse: only the
// metadata section and the selected samples' slices are fetched, as one
// pushdown request when the backend supports it (remote) or as per-range
// reads (local). Selecting every sample coalesces to the ordinary full
// prefix read.
func (r *pcrReader) readRecordFiltered(i, q int, pred Predicate, sel []bool) (samples []Sample, bytesRead, bytesAvoided int64, err error) {
	gg, err := r.recordQuality(i, q)
	if err != nil {
		return nil, 0, 0, err
	}
	full, err := r.ds.RecordPrefixLen(i, gg)
	if err != nil {
		return nil, 0, 0, err
	}
	if sel == nil || r.cache != nil || r.disk != nil {
		prefix, meta, err := r.readPrefix(i, gg)
		if err != nil {
			return nil, 0, 0, err
		}
		out := make([]Sample, 0, len(meta.Samples))
		for si := range meta.Samples {
			sm := &meta.Samples[si]
			if sel != nil && !sel[si] {
				continue
			}
			if sel == nil && !pred.Matches(sm.ID, sm.Label) {
				continue
			}
			stream, err := meta.SampleJPEG(prefix, si, gg)
			if err != nil {
				return nil, 0, 0, err
			}
			out = append(out, Sample{ID: sm.ID, Label: sm.Label, JPEG: stream})
		}
		return out, full, 0, nil
	}

	ranges, err := r.ds.SampleRanges(i, gg, sel)
	if err != nil {
		return nil, 0, 0, err
	}
	got := core.RangesTotal(ranges)
	var concat []byte
	if sr, ok := r.ds.Backend().(core.SampleReader); ok {
		name, err := r.ds.RecordName(i)
		if err != nil {
			return nil, 0, 0, err
		}
		concat, err = sr.ReadSamples(name, gg, sel)
		if err != nil {
			return nil, 0, 0, err
		}
	} else {
		concat = make([]byte, 0, got)
		for _, rg := range ranges {
			part, err := r.ds.ReadRecordRange(i, rg.Offset, rg.Length)
			if err != nil {
				return nil, 0, 0, err
			}
			concat = append(concat, part...)
		}
	}
	prefix, err := core.ScatterRanges(concat, ranges, full)
	if err != nil {
		return nil, 0, 0, err
	}
	meta, err := core.ParseRecordMeta(prefix)
	if err != nil {
		return nil, 0, 0, err
	}
	out := make([]Sample, 0, len(meta.Samples))
	for si := range meta.Samples {
		if !sel[si] {
			continue
		}
		stream, err := meta.SampleJPEG(prefix, si, gg)
		if err != nil {
			return nil, 0, 0, err
		}
		out = append(out, Sample{ID: meta.Samples[si].ID, Label: meta.Samples[si].Label, JPEG: stream})
	}
	return out, got, full - got, nil
}

// planFilter computes the filtered-scan cost estimate behind
// Dataset.PlanFilter from the side index alone.
func (r *pcrReader) planFilter(pred Predicate, qq int) (FilterPlan, error) {
	var plan FilterPlan
	plan.Records = r.ds.NumRecords()
	for i := 0; i < r.ds.NumRecords(); i++ {
		gg, err := r.recordQuality(i, qq)
		if err != nil {
			return FilterPlan{}, err
		}
		full, err := r.ds.RecordPrefixLen(i, gg)
		if err != nil {
			return FilterPlan{}, err
		}
		plan.FullBytes += full
		ids, labels, err := r.ds.SampleIndex(i)
		if err != nil {
			return FilterPlan{}, err
		}
		plan.Total += len(ids)
		sel, nsel := matchSelection(pred, ids, labels)
		if nsel == 0 {
			plan.RecordsSkipped++
			continue
		}
		plan.Selected += nsel
		ranges, err := r.ds.SampleRanges(i, gg, sel)
		if err != nil {
			return FilterPlan{}, err
		}
		plan.Bytes += core.RangesTotal(ranges)
	}
	return plan, nil
}

// scanEncodedFiltered is scanEncoded with the selection pushed into the
// read plan (see readRecordFiltered).
func (r *pcrReader) scanEncodedFiltered(ctx context.Context, q int, pred Predicate, stats *FilterStats) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for i := 0; i < r.ds.NumRecords(); i++ {
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			sel, nsel, known := r.selection(i, pred)
			if known && nsel == 0 {
				if stats != nil {
					gg, err := r.recordQuality(i, q)
					if err != nil {
						yield(Sample{}, err)
						return
					}
					full, err := r.ds.RecordPrefixLen(i, gg)
					if err != nil {
						yield(Sample{}, err)
						return
					}
					stats.addSamples(0, int64(len(sel)))
					stats.addBytes(0, full)
					atomic.AddInt64(&stats.RecordsSkipped, 1)
				}
				continue
			}
			if !known {
				sel = nil
			}
			samples, bytesRead, bytesAvoided, err := r.readRecordFiltered(i, q, pred, sel)
			if err != nil {
				yield(Sample{}, err)
				return
			}
			if stats != nil {
				total, err := r.ds.RecordSamples(i)
				if err != nil {
					yield(Sample{}, err)
					return
				}
				stats.addSamples(int64(len(samples)), int64(total-len(samples)))
				stats.addBytes(bytesRead, bytesAvoided)
			}
			for _, s := range samples {
				if !yield(s, nil) {
					return
				}
			}
		}
	}
}

// Record-level accessors behind Dataset's PCR-only methods.

func (r *pcrReader) numRecords() int { return r.ds.NumRecords() }

func (r *pcrReader) recordImages(i int) (int, error) { return r.ds.RecordSamples(i) }

func (r *pcrReader) recordPrefixLen(i, q int) (int64, error) {
	gg, err := r.recordQuality(i, q)
	if err != nil {
		return 0, err
	}
	return r.ds.RecordPrefixLen(i, gg)
}

func (r *pcrReader) cacheStats() (cache.Stats, bool) {
	if r.cache == nil {
		return cache.Stats{}, false
	}
	return r.cache.Stats(), true
}

func (r *pcrReader) diskCacheStats() (diskcache.Stats, bool) {
	if r.disk == nil {
		return diskcache.Stats{}, false
	}
	return r.disk.Stats(), true
}

// decode is shared by Dataset.Scan's worker pool.
func decodeJPEG(s *Sample) error {
	img, err := jpegc.Decode(s.JPEG)
	if err != nil {
		return fmt.Errorf("pcr: decoding sample %d: %w", s.ID, err)
	}
	s.Image = img
	return nil
}
