package pcr

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/recordio"
	"repro/internal/wire"
)

// tfrecordFormat stores the dataset as one TFRecord file of framed samples
// (length + masked CRC32C per frame, one frame per image) plus a small meta
// sidecar with the image count. It exposes a single quality level.
type tfrecordFormat struct{}

func (tfrecordFormat) Name() string { return "tfrecord" }

const (
	tfrecordDataFile = "data.tfrecord"
	tfrecordMetaFile = "tfrecord.meta"

	// Frame fields (wire message per sample).
	tfID    = 1
	tfLabel = 2
	tfJPEG  = 3
)

func (tfrecordFormat) create(dir string, cfg *config) (formatWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pcr: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, tfrecordDataFile))
	if err != nil {
		return nil, fmt.Errorf("pcr: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &tfrecordWriter{dir: dir, f: f, bw: bw, rw: recordio.NewWriter(bw)}, nil
}

type tfrecordWriter struct {
	dir   string
	f     *os.File
	bw    *bufio.Writer
	rw    *recordio.Writer
	count int
}

func (w *tfrecordWriter) append(s Sample) error {
	enc := wire.NewEncoder(nil)
	enc.Uint64(tfID, uint64(s.ID))
	enc.Int64(tfLabel, s.Label)
	enc.Bytes(tfJPEG, s.JPEG)
	if err := w.rw.Write(enc.Encode()); err != nil {
		return err
	}
	w.count++
	return nil
}

func (w *tfrecordWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("pcr: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("pcr: %w", err)
	}
	enc := wire.NewEncoder(nil)
	enc.Uint64(1, uint64(w.count))
	enc.Uint64(2, uint64(w.rw.BytesWritten()))
	if err := os.WriteFile(filepath.Join(w.dir, tfrecordMetaFile), enc.Encode(), 0o644); err != nil {
		return fmt.Errorf("pcr: %w", err)
	}
	return nil
}

func (tfrecordFormat) open(dir string, cfg *config) (formatReader, error) {
	backend := core.NewDirBackend(dir)
	rc, err := backend.Open(tfrecordMetaFile)
	if err != nil {
		return nil, fmt.Errorf("pcr: tfrecord metadata missing: %w", err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, fmt.Errorf("pcr: %w", err)
	}
	r := &tfrecordReader{backend: backend}
	if err := parseTFRecordMeta(raw, r); err != nil {
		return nil, fmt.Errorf("pcr: %w: tfrecord metadata: %w", ErrCorrupt, err)
	}
	return r, nil
}

func parseTFRecordMeta(raw []byte, r *tfrecordReader) error {
	d := wire.NewDecoder(raw)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			r.count = int(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			r.bytes = int64(v)
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	return nil
}

type tfrecordReader struct {
	backend core.Backend
	count   int
	bytes   int64
}

func (r *tfrecordReader) numImages() int { return r.count }
func (r *tfrecordReader) qualities() int { return 1 }
func (r *tfrecordReader) close() error   { return r.backend.Close() }

func (r *tfrecordReader) sizeAtQuality(q int) (int64, error) { return r.bytes, nil }

func (r *tfrecordReader) scanEncoded(ctx context.Context, q int) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		f, err := r.backend.Open(tfrecordDataFile)
		if err != nil {
			yield(Sample{}, fmt.Errorf("pcr: %w", err))
			return
		}
		defer f.Close()
		rr := recordio.NewReader(bufio.NewReader(f))
		for {
			if err := ctx.Err(); err != nil {
				yield(Sample{}, err)
				return
			}
			frame, err := rr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if errors.Is(err, recordio.ErrBadCRC) || errors.Is(err, io.ErrUnexpectedEOF) {
					err = fmt.Errorf("pcr: %w: %w", ErrCorrupt, err)
				}
				yield(Sample{}, err)
				return
			}
			s, err := parseTFRecordFrame(frame)
			if !yield(s, err) || err != nil {
				return
			}
		}
	}
}

// parseTFRecordFrame decodes one framed sample. The frame already passed its
// CRC, so any wire-level failure here means we are reading garbage we wrote
// (or a foreign file) — ErrCorrupt either way.
func parseTFRecordFrame(frame []byte) (Sample, error) {
	s, err := parseTFRecordFields(frame)
	if err != nil {
		return s, fmt.Errorf("pcr: %w: tfrecord frame: %w", ErrCorrupt, err)
	}
	return s, nil
}

func parseTFRecordFields(frame []byte) (Sample, error) {
	var s Sample
	d := wire.NewDecoder(frame)
	for !d.Done() {
		field, wtype, err := d.Next()
		if err != nil {
			return s, err
		}
		switch field {
		case tfID:
			v, err := d.Uint64()
			if err != nil {
				return s, err
			}
			s.ID = int64(v)
		case tfLabel:
			v, err := d.Int64()
			if err != nil {
				return s, err
			}
			s.Label = v
		case tfJPEG:
			v, err := d.Bytes()
			if err != nil {
				return s, err
			}
			s.JPEG = append([]byte(nil), v...)
		default:
			if err := d.Skip(wtype); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}
