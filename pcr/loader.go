package pcr

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"sync"
	"time"
)

// Batch is one assembled training batch: BatchSize decoded samples (the
// final batch of an epoch may be shorter unless WithDropRemainder is set).
type Batch struct {
	// Epoch is the epoch this batch belongs to.
	Epoch int
	// Samples have JPEG and Image filled, in the epoch's shuffled order.
	Samples []Sample
}

// EpochStats summarizes one completed Loader epoch — the real-I/O
// counterpart of the paper's Figure-11 quantities.
type EpochStats struct {
	// Epoch is the epoch the stats describe.
	Epoch int
	// Records, Images, and Batches count what the epoch delivered.
	Records, Images, Batches int
	// BytesRead is the record prefix bytes the epoch's reads covered (what
	// a cacheless reader moves; with WithCacheBytes the cache's own
	// counters report the delta actually fetched).
	BytesRead int64
	// MinQuality and MaxQuality bound the resolved qualities used; they
	// differ when the policy changed mid-epoch.
	MinQuality, MaxQuality int
	// Wall is the epoch's duration, including the consumer's compute time
	// between batches.
	Wall time.Duration
	// Stall is the time the consumer spent blocked waiting for the
	// pipeline (the paper's compute-stall time).
	Stall time.Duration
	// ImagesPerSec is Images / Wall.
	ImagesPerSec float64
	// Probes, ProbeBytes, and ProbeWall account the out-of-band probe reads
	// folded into this epoch: every ProbeBatches pass (one per candidate
	// quality of a §4.5 upward probe) run since the previous completed
	// epoch — e.g. at the epoch boundary — is charged to the epoch that
	// follows it. ProbeBytes counts logical record prefix bytes (with a
	// warm disk cache the network moves only the scan-group delta, visible
	// in DiskCacheStats); ProbeBytes is NOT included in BytesRead.
	Probes     int
	ProbeBytes int64
	ProbeWall  time.Duration
	// SkippedImages counts samples the WithLoaderFilter predicate rejected
	// (not delivered, not counted in Images); zero without a filter.
	SkippedImages int
	// BytesAvoided is the record bytes the filter's read plan did not
	// fetch: whole records skipped via the side index plus the unselected
	// slices of sparse reads. BytesRead + BytesAvoided is what an
	// unfiltered epoch at the same qualities would have covered.
	BytesAvoided int64
}

// Checkpoint is a Loader position: everything needed for a restarted
// worker to re-enter training mid-epoch at the same shuffled position.
// Because the shuffle is a pure function of (seed, epoch), the checkpoint
// is tiny — no record lists, just coordinates — and resuming skips the
// already-consumed prefix of the epoch without reading the skipped records
// (their lengths come from the index). Serialize it with encoding/json and
// pair it with WithDiskCache for warm-restart training: the coordinates
// restore the position, the disk cache restores the bytes.
type Checkpoint struct {
	// Epoch is the epoch in flight when the checkpoint was taken.
	Epoch int `json:"epoch"`
	// Batch counts the batches of Epoch fully delivered before the
	// checkpoint; resume re-enters at batch index Batch.
	Batch int `json:"batch"`
	// Seed, BatchSize, Window, Shard, and Shards record the loader
	// configuration the position is meaningful under; WithResume restores
	// them.
	Seed      int64 `json:"seed"`
	BatchSize int   `json:"batch_size"`
	Window    int   `json:"shuffle_window"`
	Shard     int   `json:"shard"`
	Shards    int   `json:"shards"`
}

// Loader is a real-I/O, multi-epoch training input pipeline over a
// record-format Dataset (local or remote): it partitions records across
// distributed workers (WithShard), visits each epoch's records in a
// deterministic seeded windowed-shuffle order (WithShuffleWindow /
// WithLoaderSeed), reads each record's prefix at the quality chosen by a
// QualityPolicy, decodes samples with the dataset's bounded worker pool,
// and assembles fixed-size batches with bounded buffering — the paper's
// Appendix-A.1 loader structure running on real storage.
type Loader struct {
	ds      *Dataset
	batch   int
	shardIx int
	shards  int
	window  int
	seed    int64
	policy  QualityPolicy
	dropRem bool
	filter  Predicate

	records []int // this shard's record indices in storage order

	resume    Checkpoint
	hasResume bool

	mu      sync.Mutex
	last    EpochStats
	hasLast bool
	pos     Checkpoint
	hasPos  bool
	// Probe accounting pending since the last completed epoch, folded into
	// the next epoch's stats; probeSeq numbers probes for deterministic
	// record selection.
	probeSeq          int
	pendingProbes     int
	pendingProbeBytes int64
	pendingProbeWall  time.Duration
}

// loaderConfig collects LoaderOption results.
type loaderConfig struct {
	batch     int
	shardIx   int
	shards    int
	window    int
	seed      int64
	policy    QualityPolicy
	dropRem   bool
	filter    Predicate
	resume    Checkpoint
	hasResume bool
}

// LoaderOption configures NewLoader.
type LoaderOption func(*loaderConfig) error

// WithBatchSize sets the number of samples per batch (default 32).
func WithBatchSize(n int) LoaderOption {
	return func(c *loaderConfig) error {
		if n <= 0 {
			return fmt.Errorf("pcr: batch size must be positive, got %d", n)
		}
		c.batch = n
		return nil
	}
}

// WithShard partitions records across count distributed workers; this
// loader reads only records r with r % count == index. Shards are disjoint,
// cover every record, and are balanced to within one record.
func WithShard(index, count int) LoaderOption {
	return func(c *loaderConfig) error {
		if count <= 0 {
			return fmt.Errorf("pcr: shard count must be positive, got %d", count)
		}
		if index < 0 || index >= count {
			return fmt.Errorf("pcr: shard index %d out of range [0,%d)", index, count)
		}
		c.shardIx, c.shards = index, count
		return nil
	}
}

// WithShuffleWindow sets the windowed-shuffle buffer size in records
// (default 16). Shuffling is at record granularity — the unit of PCR
// sequential I/O — so larger windows trade memory-order locality for better
// mixing; a window of 1 disables shuffling (storage order), and a window of
// at least the shard's record count gives a full uniform shuffle.
func WithShuffleWindow(n int) LoaderOption {
	return func(c *loaderConfig) error {
		if n <= 0 {
			return fmt.Errorf("pcr: shuffle window must be positive, got %d", n)
		}
		c.window = n
		return nil
	}
}

// WithLoaderSeed seeds the shuffle (default 1). The same seed yields the
// same visit order for the same epoch on every run and every re-opened
// loader; different epochs draw different orders from the same seed.
func WithLoaderSeed(seed int64) LoaderOption {
	return func(c *loaderConfig) error {
		c.seed = seed
		return nil
	}
}

// WithQuality fixes the read quality for every record (sugar for
// WithQualityPolicy(FixedQuality(q))).
func WithQuality(q int) LoaderOption {
	return WithQualityPolicy(FixedQuality(q))
}

// WithQualityPolicy installs the policy consulted at each record boundary
// (default FixedQuality(Full)).
func WithQualityPolicy(p QualityPolicy) LoaderOption {
	return func(c *loaderConfig) error {
		if p == nil {
			return fmt.Errorf("pcr: nil quality policy")
		}
		c.policy = p
		return nil
	}
}

// WithResume restores a position saved by Checkpoint: the loader adopts
// the checkpoint's seed, batch size, shuffle window, and shard (its
// coordinates are only meaningful under them — apply WithResume before any
// option that deliberately deviates), and Epoch(ctx, cp.Epoch) skips the
// cp.Batch batches consumed before the restart, re-entering the epoch at
// the same shuffled position. Records wholly inside the skipped prefix are
// never read — their extents come from the index — so resuming deep into
// an epoch costs at most one partial record read. Epochs other than
// cp.Epoch stream in full.
func WithResume(cp Checkpoint) LoaderOption {
	return func(c *loaderConfig) error {
		if cp.Epoch < 0 || cp.Batch < 0 {
			return fmt.Errorf("pcr: checkpoint position (%d,%d) malformed", cp.Epoch, cp.Batch)
		}
		if cp.BatchSize > 0 {
			c.batch = cp.BatchSize
		}
		if cp.Window > 0 {
			c.window = cp.Window
		}
		if cp.Shards > 0 {
			c.shardIx, c.shards = cp.Shard, cp.Shards
		}
		c.seed = cp.Seed
		c.resume, c.hasResume = cp, true
		return nil
	}
}

// WithLoaderFilter restricts every epoch to the samples the predicate
// selects (see WithFilter): records with no matching sample are skipped
// without a read, and — without cache tiers — partially matching records
// are fetched as sparse ranges covering only the selected samples. Batches,
// shuffling, and checkpoints count only selected samples; EpochStats
// reports what the filter skipped and saved. Out-of-band ProbeBatches
// reads stay unfiltered (probes measure the quality trade-off, not the
// subset).
func WithLoaderFilter(pred Predicate) LoaderOption {
	return func(c *loaderConfig) error {
		if pred == nil {
			return fmt.Errorf("pcr: WithLoaderFilter: nil predicate")
		}
		c.filter = pred
		return nil
	}
}

// WithDropRemainder drops an epoch's final short batch instead of yielding
// it (fixed-shape training steps).
func WithDropRemainder() LoaderOption {
	return func(c *loaderConfig) error {
		c.dropRem = true
		return nil
	}
}

// NewLoader builds a Loader over an opened Dataset. The dataset must be a
// record-granular format (PCR, local or remote); baseline formats have no
// record random access and report errors.ErrUnsupported.
func NewLoader(ds *Dataset, opts ...LoaderOption) (*Loader, error) {
	if _, ok := ds.r.(recordAccessor); !ok {
		return nil, fmt.Errorf("pcr: loader on %s format: %w", ds.cfg.format.Name(), errors.ErrUnsupported)
	}
	cfg := &loaderConfig{batch: 32, shards: 1, window: 16, seed: 1, policy: FixedQuality(Full)}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.filter != nil {
		if _, ok := ds.r.(filteredRecordReader); !ok {
			return nil, fmt.Errorf("pcr: loader filter on %s format: %w", ds.cfg.format.Name(), errors.ErrUnsupported)
		}
	}
	if ds.cfg.indexShards > 0 && cfg.shards > 1 {
		return nil, fmt.Errorf("pcr: dataset opened with WithIndexShard(%d,%d) is already one shard; drop the loader's WithShard",
			ds.cfg.indexShard, ds.cfg.indexShards)
	}
	l := &Loader{
		ds:        ds,
		batch:     cfg.batch,
		shardIx:   cfg.shardIx,
		shards:    cfg.shards,
		window:    cfg.window,
		seed:      cfg.seed,
		policy:    cfg.policy,
		dropRem:   cfg.dropRem,
		filter:    cfg.filter,
		resume:    cfg.resume,
		hasResume: cfg.hasResume,
	}
	for r := 0; r < ds.NumRecords(); r++ {
		if r%l.shards == l.shardIx {
			l.records = append(l.records, r)
		}
	}
	if len(l.records) == 0 {
		return nil, fmt.Errorf("pcr: shard %d/%d of a %d-record dataset is empty",
			l.shardIx, l.shards, ds.NumRecords())
	}
	// Ground "Full" for the policy immediately: the dataset's top quality
	// is known at open, so a policy (re)started at a concrete quality below
	// full can still plan upward probes — without this, a restarted
	// ProbePolicy{Start: q} would only ever observe q and never re-ascend.
	if obs, ok := l.policy.(qualityObserver); ok {
		obs.observeQuality(ds.Qualities())
	}
	return l, nil
}

// NumRecords returns the record count of this loader's shard.
func (l *Loader) NumRecords() int { return len(l.records) }

// epochSeed mixes the loader seed with the epoch (splitmix64 finalizer) so
// each epoch draws an independent but reproducible order.
func (l *Loader) epochSeed(epoch int) int64 {
	z := uint64(l.seed) + (uint64(epoch)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// epochOrder returns the record visit order for an epoch: the shard's
// records streamed through a seeded windowed shuffle (the tf.data
// shuffle-buffer structure at record granularity).
func (l *Loader) epochOrder(epoch int) []int {
	rng := rand.New(rand.NewSource(l.epochSeed(epoch)))
	out := make([]int, 0, len(l.records))
	win := make([]int, 0, l.window)
	emit := func() {
		k := rng.Intn(len(win))
		out = append(out, win[k])
		win[k] = win[len(win)-1]
		win = win[:len(win)-1]
	}
	for _, r := range l.records {
		win = append(win, r)
		if len(win) >= l.window {
			emit()
		}
	}
	for len(win) > 0 {
		emit()
	}
	return out
}

// Epoch streams epoch e's batches: records of this loader's shard in the
// epoch's shuffled order, each read at the quality the policy chooses for
// it, decoded concurrently by WithPrefetchWorkers goroutines, assembled
// into WithBatchSize batches. Memory is bounded by the decode pool plus one
// batch plus one record. Iteration stops at the first error; cancelling ctx
// stops it promptly with ctx.Err(); closing the dataset stops it with
// ErrClosed. After a complete epoch, LastEpochStats reports its counters.
func (l *Loader) Epoch(ctx context.Context, epoch int) iter.Seq2[Batch, error] {
	return func(yield func(Batch, error) bool) {
		start := time.Now()
		workers := l.ds.cfg.prefetchWorkers()
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()

		// The producer walks the shuffled record order, resolves each
		// record's quality, reads its prefix, and hands every sample to the
		// shared bounded decode pool; job order preserves the shuffled
		// order. The first job of each record carries the record's read
		// accounting.
		// Resuming into this epoch: the first resume.Batch batches were
		// delivered before the restart. Records wholly inside that prefix
		// are skipped without a read — their image counts come from the
		// index — so only the record straddling the boundary is read and
		// partially discarded.
		base := 0 // completed batches before this run
		if l.hasResume && epoch == l.resume.Epoch {
			base = l.resume.Batch
		}
		skip := base * l.batch // samples to skip

		// Filter accounting lives in producer-local variables; the consumer
		// reads them only after the jobs channel closes (the close
		// happens-after every producer write), so no lock is needed.
		var fSkipped int
		var fAvoided int64
		var fr filteredRecordReader
		if l.filter != nil {
			fr = l.ds.r.(filteredRecordReader) // checked in NewLoader
		}

		jobs := decodePool(ictx, workers, func(emit func(*decodeJob) bool) {
			for _, rec := range l.epochOrder(epoch) {
				// With a filter and a side index, the selection is known
				// before any read: zero-selected records are skipped
				// outright, and the resume skip-shortcut counts selected
				// samples instead of all samples. nsel < 0 means the
				// selection is unknown (dataset predates the side index);
				// the record is then read in full and filtered post-read.
				var sel []bool
				nsel := -1
				if l.filter != nil {
					var known bool
					sel, nsel, known = fr.selection(rec, l.filter)
					if !known {
						sel, nsel = nil, -1
					} else if nsel == 0 {
						n, err := l.ds.RecordImages(rec)
						var avoided int64
						if err == nil {
							avoided, err = l.ds.RecordPrefixLen(rec, l.policy.RecordQuality(epoch, rec))
						}
						if err != nil {
							emit(&decodeJob{err: err})
							return
						}
						fSkipped += n
						fAvoided += avoided
						continue
					}
				}
				if skip > 0 {
					n := nsel
					if l.filter == nil {
						var err error
						n, err = l.ds.RecordImages(rec)
						if err != nil {
							emit(&decodeJob{err: err})
							return
						}
					}
					if n >= 0 && skip >= n {
						skip -= n
						continue
					}
				}
				q := l.policy.RecordQuality(epoch, rec)
				qq, err := l.ds.resolveQuality(q)
				if err == nil {
					if obs, ok := l.policy.(qualityObserver); ok {
						obs.observeQuality(qq)
					}
				}
				var bytes int64
				var samples []Sample
				if l.filter != nil {
					var avoided int64
					if err == nil {
						samples, bytes, avoided, err = fr.readRecordFiltered(rec, qq, l.filter, sel)
					}
					var total int
					if err == nil {
						total, err = l.ds.RecordImages(rec)
					}
					if err == nil {
						fSkipped += total - len(samples)
						fAvoided += avoided
					}
				} else if err == nil {
					bytes, err = l.ds.RecordPrefixLen(rec, q)
					if err == nil {
						samples, err = l.ds.ReadRecordEncoded(rec, q)
					}
				}
				if err != nil {
					emit(&decodeJob{err: err})
					return
				}
				if skip >= len(samples) && (skip > 0 || len(samples) == 0) {
					// Only reachable when the selection was unknown before
					// the read (or nothing survived the filter): consume the
					// record against the resume prefix without emitting.
					skip -= len(samples)
					continue
				}
				first := true
				for si := skip; si < len(samples); si++ {
					j := &decodeJob{s: samples[si]}
					if first {
						j.bytes, j.quality = bytes, qq
						first = false
					}
					if !emit(j) {
						return
					}
				}
				skip = 0
			}
		})

		stats := EpochStats{Epoch: epoch}
		cur := make([]Sample, 0, l.batch)
		flush := func() bool {
			b := Batch{Epoch: epoch, Samples: cur}
			cur = make([]Sample, 0, l.batch)
			stats.Batches++
			// Advance the checkpoint position before handing the batch
			// over: a Checkpoint() taken while the consumer holds batch k
			// resumes at k+1 (take it after finishing work on the batch).
			l.mu.Lock()
			l.pos = Checkpoint{
				Epoch: epoch, Batch: base + stats.Batches,
				Seed: l.seed, BatchSize: l.batch, Window: l.window,
				Shard: l.shardIx, Shards: l.shards,
			}
			l.hasPos = true
			l.mu.Unlock()
			return yield(b, nil)
		}
		var stall time.Duration
		for {
			w := time.Now()
			// Receive with a ctx case so cancellation is prompt even while
			// the producer sits inside a slow (non-cancellable) record read.
			var j *decodeJob
			var ok bool
			select {
			case j, ok = <-jobs:
			case <-ctx.Done():
				yield(Batch{}, ctx.Err())
				return
			}
			if !ok {
				stall += time.Since(w)
				break
			}
			select {
			case <-j.done:
			case <-ctx.Done():
				yield(Batch{}, ctx.Err())
				return
			}
			stall += time.Since(w)
			if err := ctx.Err(); err != nil {
				yield(Batch{}, err)
				return
			}
			if j.err != nil {
				yield(Batch{}, j.err)
				return
			}
			if j.quality > 0 {
				stats.Records++
				stats.BytesRead += j.bytes
				if stats.MinQuality == 0 || j.quality < stats.MinQuality {
					stats.MinQuality = j.quality
				}
				if j.quality > stats.MaxQuality {
					stats.MaxQuality = j.quality
				}
			}
			stats.Images++
			cur = append(cur, j.s)
			if len(cur) == l.batch {
				if !flush() {
					return
				}
			}
		}
		if err := ctx.Err(); err != nil {
			yield(Batch{}, err)
			return
		}
		if len(cur) > 0 && !l.dropRem {
			if !flush() {
				return
			}
		}
		stats.Wall = time.Since(start)
		stats.Stall = stall
		stats.SkippedImages = fSkipped
		stats.BytesAvoided = fAvoided
		if s := stats.Wall.Seconds(); s > 0 {
			stats.ImagesPerSec = float64(stats.Images) / s
		}
		l.mu.Lock()
		stats.Probes, stats.ProbeBytes, stats.ProbeWall =
			l.pendingProbes, l.pendingProbeBytes, l.pendingProbeWall
		l.pendingProbes, l.pendingProbeBytes, l.pendingProbeWall = 0, 0, 0
		l.last, l.hasLast = stats, true
		l.mu.Unlock()
	}
}

// LastEpochStats returns the statistics of the most recently completed
// epoch; ok is false until one epoch has run to completion.
func (l *Loader) LastEpochStats() (stats EpochStats, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last, l.hasLast
}

// Checkpoint returns the loader's current position — the coordinates a
// restarted worker passes to WithResume to re-enter mid-epoch where this
// one left off. Take it after finishing work on a batch: the position
// already points past that batch. ok is false before the first batch of
// the loader's life has been delivered (resume from the epoch start
// instead). The checkpoint is JSON-serializable for persistence alongside
// model weights.
func (l *Loader) Checkpoint() (cp Checkpoint, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos, l.hasPos
}
