package pcr

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"sync"
	"time"

	"repro/internal/autotune"
)

// QualityPolicy chooses the scan-group quality for each record read by a
// Loader. The loader consults the policy at every record boundary — PCR's
// unit of sequential I/O — so a policy that changes its mind mid-epoch
// (see PlateauPolicy) cheapens the epoch in flight: the next record is
// fetched at the new quality without restarting the pipeline.
//
// Implementations must be safe for concurrent use: the loader's producer
// goroutine calls RecordQuality while the training loop may be reporting
// observations.
type QualityPolicy interface {
	// RecordQuality returns the quality (1..Qualities(), or Full) at which
	// the loader should read the given record of the given epoch.
	RecordQuality(epoch, record int) int
}

// FixedQuality is the static policy: every record of every epoch is read at
// the same quality (use Full for the baseline).
type FixedQuality int

// RecordQuality implements QualityPolicy.
func (q FixedQuality) RecordQuality(int, int) int { return int(q) }

// adaptiveState is the descend machinery shared by PlateauPolicy and
// ProbePolicy: the current quality, the resolved dataset top ("Full"), and
// the plateau bookkeeping. Every field — including the plateau cooldown —
// lives on the policy value itself, never on a shared detector, so two
// policies never observe each other's plateau state.
type adaptiveState struct {
	mu       sync.Mutex
	inited   bool
	cur      int
	full     int // resolved Full; 0 until the loader first observes it
	ticks    int
	lastTune int
	losses   []float64
}

func (s *adaptiveState) init(start int) {
	if !s.inited {
		s.cur = start
		s.inited = true
	}
}

// resolvedCur returns the current quality with Full grounded against the
// dataset (0 while still unresolved). Caller holds s.mu.
func (s *adaptiveState) resolvedCur() int {
	if s.cur == Full {
		return s.full
	}
	return s.cur
}

// report appends one observed loss, runs the plateau detector, and steps
// the quality down one level on a plateau (not below min). Caller holds
// s.mu.
func (s *adaptiveState) report(det autotune.PlateauDetector, min int, loss float64) {
	s.losses = append(s.losses, loss)
	// The detector only reads the trailing 2×Window losses; keep the
	// history bounded so a long run doesn't grow it one float per report.
	if keep := 2 * det.EffectiveWindow(); len(s.losses) > 2*keep {
		s.losses = append(s.losses[:0], s.losses[len(s.losses)-keep:]...)
	}
	tick := s.ticks
	s.ticks++
	if det.Plateaued(tick-s.lastTune, s.losses) {
		s.lastTune = tick
		if min <= 0 {
			min = 1
		}
		// Full stays symbolic until the loader resolves it against the
		// dataset (observeQuality); until then a plateau cannot step.
		if cur := s.resolvedCur(); cur > min {
			s.cur = cur - 1
		}
	}
}

// observeQuality tells the policy the dataset-level quality its answers
// resolve against — the dataset's top at NewLoader, then each record's
// resolved answer — so "step down from Full" and "probe up to full" are
// well-defined even for a policy started below full quality.
func (s *adaptiveState) observeQuality(resolved int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if resolved > s.full {
		s.full = resolved
	}
}

// PlateauPolicy adapts quality during training using the loss-plateau
// detector of internal/autotune (the paper's §4.5 heuristic), driven by
// real observed losses instead of the simulator: reading starts at Start
// (Full by default), the training loop feeds observed losses in through
// Report, and each detected plateau steps the quality down one level toward
// Min. Because the Loader re-resolves quality at record boundaries, a
// plateau detected mid-epoch cheapens the rest of that epoch immediately.
//
// PlateauPolicy only descends; ProbePolicy is the bidirectional variant
// that also re-probes upward after learning-rate drops.
type PlateauPolicy struct {
	// Detector configures plateau detection over the reported loss history.
	// Its Window is measured in Report calls (report per epoch for
	// epoch-granular decisions, per batch for mid-epoch ones). The zero
	// value means Window 5, MinImprove 0.02. The detector is a pure value:
	// all plateau state is held per-policy, so handing the same Detector to
	// several policies never couples them.
	Detector autotune.PlateauDetector
	// Start is the initial quality (0 = Full).
	Start int
	// Min is the lowest quality the policy will descend to (default 1).
	Min int

	adaptiveState
}

// Report feeds one observed training loss to the plateau detector; on a
// detected plateau the policy steps down one quality level (not below Min).
// It is safe to call concurrently with a running Loader.
func (p *PlateauPolicy) Report(loss float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	p.report(p.Detector, p.Min, loss)
}

// RecordQuality implements QualityPolicy.
func (p *PlateauPolicy) RecordQuality(int, int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// Quality returns the policy's current quality (Full until the first
// plateau).
func (p *PlateauPolicy) Quality() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// ProbeResult is one candidate's measured outcome from an upward probe: the
// harness trained a few minibatches at Quality and observed Loss, moving
// Bytes of record prefix reads to do it.
type ProbeResult struct {
	// Quality is the dataset-level quality that was probed.
	Quality int
	// Loss is the final probe minibatch's training loss at that quality.
	Loss float64
	// Bytes is the record prefix bytes the probe read (logical; with a warm
	// disk cache the network moves only the scan-group delta).
	Bytes int64
}

// ProbePolicy is the bidirectional §4.5 controller: like PlateauPolicy it
// steps quality down one level on each loss plateau, and additionally it
// re-probes upward on an improvement signal — a reported learning-rate drop
// while below full quality. The probe itself is run by the training harness
// (internal/realtrain): it checkpoints the model, trains ProbeSteps
// minibatches per candidate quality through the Loader's out-of-band
// ProbeBatches reads, hands the measured losses to CompleteProbe, and rolls
// the probe updates back. CompleteProbe picks the cheapest candidate whose
// probe loss is within (1+Tolerance)× of the best — so quality re-ascends
// exactly when the extra scans demonstrably help, and a probe that a warm
// disk cache has already priced costs only the missing scan-group delta
// over the wire.
type ProbePolicy struct {
	// Detector configures plateau detection (see PlateauPolicy.Detector).
	Detector autotune.PlateauDetector
	// Start is the initial quality (0 = Full).
	Start int
	// Min is the lowest quality the policy will descend to (default 1).
	Min int
	// ProbeSteps is the number of probe minibatches trained per candidate
	// quality during an upward probe (default 4).
	ProbeSteps int
	// Tolerance accepts the cheapest candidate whose probe loss is within
	// (1+Tolerance)× of the best candidate's (default 0.05).
	Tolerance float64

	adaptiveState
	probeWanted bool
	probes      int
	probeWins   int
}

// Report feeds one observed training loss in; plateaus descend exactly as
// in PlateauPolicy. Safe to call concurrently with a running Loader.
func (p *ProbePolicy) Report(loss float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	p.report(p.Detector, p.Min, loss)
}

// ReportLRDrop signals an improvement opportunity (the optimizer's learning
// rate just dropped, so the loss landscape is about to shift): if the
// policy is below full quality, the next ProbePlan call requests an upward
// probe.
func (p *ProbePolicy) ReportLRDrop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	if cur := p.resolvedCur(); p.full > 0 && cur > 0 && cur < p.full {
		p.probeWanted = true
	}
}

// ProbePlan returns the pending probe, if any: the candidate qualities to
// measure (the current quality as the baseline, then every level up to
// full) and the minibatch count per candidate. ok is false when no probe is
// pending. The plan stays pending until CompleteProbe retires it, so a
// harness that fails mid-probe re-probes on its next pass.
func (p *ProbePolicy) ProbePlan() (candidates []int, steps int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.probeWanted || p.full == 0 {
		return nil, 0, false
	}
	cur := p.resolvedCur()
	if cur >= p.full {
		p.probeWanted = false
		return nil, 0, false
	}
	for q := cur; q <= p.full; q++ {
		candidates = append(candidates, q)
	}
	steps = p.ProbeSteps
	if steps <= 0 {
		steps = 4
	}
	return candidates, steps, true
}

// CompleteProbe retires the pending probe with its measured results: the
// policy adopts the cheapest (lowest) quality whose probe loss is within
// (1+Tolerance)× of the best result's, and resets its plateau history —
// the probe opened a fresh training regime. Results should come in
// ascending quality order, as ProbePlan listed them.
func (p *ProbePolicy) CompleteProbe(results []ProbeResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probeWanted = false
	if len(results) == 0 {
		return
	}
	p.probes++
	tol := p.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	best := results[0].Loss
	for _, r := range results[1:] {
		if r.Loss < best {
			best = r.Loss
		}
	}
	pick := results[len(results)-1].Quality
	for _, r := range results {
		if r.Loss <= best*(1+tol) {
			pick = r.Quality
			break
		}
	}
	if prev := p.resolvedCur(); pick > prev {
		p.probeWins++
	}
	p.cur = pick
	// The post-probe regime starts fresh: losses observed before the probe
	// must not trigger an immediate plateau against it.
	p.losses = p.losses[:0]
	p.lastTune = p.ticks
}

// RecordQuality implements QualityPolicy.
func (p *ProbePolicy) RecordQuality(int, int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// Quality returns the policy's current quality.
func (p *ProbePolicy) Quality() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// Probes reports how many upward probes completed and how many of them won
// (re-ascended the quality).
func (p *ProbePolicy) Probes() (run, wins int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.probes, p.probeWins
}

// qualityObserver is implemented by policies that want to learn what
// dataset-level quality their answers resolve to (PlateauPolicy uses it to
// ground Full).
type qualityObserver interface {
	observeQuality(resolved int)
}

// Batch is one assembled training batch: BatchSize decoded samples (the
// final batch of an epoch may be shorter unless WithDropRemainder is set).
type Batch struct {
	// Epoch is the epoch this batch belongs to.
	Epoch int
	// Samples have JPEG and Image filled, in the epoch's shuffled order.
	Samples []Sample
}

// EpochStats summarizes one completed Loader epoch — the real-I/O
// counterpart of the paper's Figure-11 quantities.
type EpochStats struct {
	// Epoch is the epoch the stats describe.
	Epoch int
	// Records, Images, and Batches count what the epoch delivered.
	Records, Images, Batches int
	// BytesRead is the record prefix bytes the epoch's reads covered (what
	// a cacheless reader moves; with WithCacheBytes the cache's own
	// counters report the delta actually fetched).
	BytesRead int64
	// MinQuality and MaxQuality bound the resolved qualities used; they
	// differ when the policy changed mid-epoch.
	MinQuality, MaxQuality int
	// Wall is the epoch's duration, including the consumer's compute time
	// between batches.
	Wall time.Duration
	// Stall is the time the consumer spent blocked waiting for the
	// pipeline (the paper's compute-stall time).
	Stall time.Duration
	// ImagesPerSec is Images / Wall.
	ImagesPerSec float64
	// Probes, ProbeBytes, and ProbeWall account the out-of-band probe reads
	// folded into this epoch: every ProbeBatches pass (one per candidate
	// quality of a §4.5 upward probe) run since the previous completed
	// epoch — e.g. at the epoch boundary — is charged to the epoch that
	// follows it. ProbeBytes counts logical record prefix bytes (with a
	// warm disk cache the network moves only the scan-group delta, visible
	// in DiskCacheStats); ProbeBytes is NOT included in BytesRead.
	Probes     int
	ProbeBytes int64
	ProbeWall  time.Duration
}

// Checkpoint is a Loader position: everything needed for a restarted
// worker to re-enter training mid-epoch at the same shuffled position.
// Because the shuffle is a pure function of (seed, epoch), the checkpoint
// is tiny — no record lists, just coordinates — and resuming skips the
// already-consumed prefix of the epoch without reading the skipped records
// (their lengths come from the index). Serialize it with encoding/json and
// pair it with WithDiskCache for warm-restart training: the coordinates
// restore the position, the disk cache restores the bytes.
type Checkpoint struct {
	// Epoch is the epoch in flight when the checkpoint was taken.
	Epoch int `json:"epoch"`
	// Batch counts the batches of Epoch fully delivered before the
	// checkpoint; resume re-enters at batch index Batch.
	Batch int `json:"batch"`
	// Seed, BatchSize, Window, Shard, and Shards record the loader
	// configuration the position is meaningful under; WithResume restores
	// them.
	Seed      int64 `json:"seed"`
	BatchSize int   `json:"batch_size"`
	Window    int   `json:"shuffle_window"`
	Shard     int   `json:"shard"`
	Shards    int   `json:"shards"`
}

// Loader is a real-I/O, multi-epoch training input pipeline over a
// record-format Dataset (local or remote): it partitions records across
// distributed workers (WithShard), visits each epoch's records in a
// deterministic seeded windowed-shuffle order (WithShuffleWindow /
// WithLoaderSeed), reads each record's prefix at the quality chosen by a
// QualityPolicy, decodes samples with the dataset's bounded worker pool,
// and assembles fixed-size batches with bounded buffering — the paper's
// Appendix-A.1 loader structure running on real storage.
type Loader struct {
	ds      *Dataset
	batch   int
	shardIx int
	shards  int
	window  int
	seed    int64
	policy  QualityPolicy
	dropRem bool

	records []int // this shard's record indices in storage order

	resume    Checkpoint
	hasResume bool

	mu      sync.Mutex
	last    EpochStats
	hasLast bool
	pos     Checkpoint
	hasPos  bool
	// Probe accounting pending since the last completed epoch, folded into
	// the next epoch's stats; probeSeq numbers probes for deterministic
	// record selection.
	probeSeq          int
	pendingProbes     int
	pendingProbeBytes int64
	pendingProbeWall  time.Duration
}

// loaderConfig collects LoaderOption results.
type loaderConfig struct {
	batch     int
	shardIx   int
	shards    int
	window    int
	seed      int64
	policy    QualityPolicy
	dropRem   bool
	resume    Checkpoint
	hasResume bool
}

// LoaderOption configures NewLoader.
type LoaderOption func(*loaderConfig) error

// WithBatchSize sets the number of samples per batch (default 32).
func WithBatchSize(n int) LoaderOption {
	return func(c *loaderConfig) error {
		if n <= 0 {
			return fmt.Errorf("pcr: batch size must be positive, got %d", n)
		}
		c.batch = n
		return nil
	}
}

// WithShard partitions records across count distributed workers; this
// loader reads only records r with r % count == index. Shards are disjoint,
// cover every record, and are balanced to within one record.
func WithShard(index, count int) LoaderOption {
	return func(c *loaderConfig) error {
		if count <= 0 {
			return fmt.Errorf("pcr: shard count must be positive, got %d", count)
		}
		if index < 0 || index >= count {
			return fmt.Errorf("pcr: shard index %d out of range [0,%d)", index, count)
		}
		c.shardIx, c.shards = index, count
		return nil
	}
}

// WithShuffleWindow sets the windowed-shuffle buffer size in records
// (default 16). Shuffling is at record granularity — the unit of PCR
// sequential I/O — so larger windows trade memory-order locality for better
// mixing; a window of 1 disables shuffling (storage order), and a window of
// at least the shard's record count gives a full uniform shuffle.
func WithShuffleWindow(n int) LoaderOption {
	return func(c *loaderConfig) error {
		if n <= 0 {
			return fmt.Errorf("pcr: shuffle window must be positive, got %d", n)
		}
		c.window = n
		return nil
	}
}

// WithLoaderSeed seeds the shuffle (default 1). The same seed yields the
// same visit order for the same epoch on every run and every re-opened
// loader; different epochs draw different orders from the same seed.
func WithLoaderSeed(seed int64) LoaderOption {
	return func(c *loaderConfig) error {
		c.seed = seed
		return nil
	}
}

// WithQuality fixes the read quality for every record (sugar for
// WithQualityPolicy(FixedQuality(q))).
func WithQuality(q int) LoaderOption {
	return WithQualityPolicy(FixedQuality(q))
}

// WithQualityPolicy installs the policy consulted at each record boundary
// (default FixedQuality(Full)).
func WithQualityPolicy(p QualityPolicy) LoaderOption {
	return func(c *loaderConfig) error {
		if p == nil {
			return fmt.Errorf("pcr: nil quality policy")
		}
		c.policy = p
		return nil
	}
}

// WithResume restores a position saved by Checkpoint: the loader adopts
// the checkpoint's seed, batch size, shuffle window, and shard (its
// coordinates are only meaningful under them — apply WithResume before any
// option that deliberately deviates), and Epoch(ctx, cp.Epoch) skips the
// cp.Batch batches consumed before the restart, re-entering the epoch at
// the same shuffled position. Records wholly inside the skipped prefix are
// never read — their extents come from the index — so resuming deep into
// an epoch costs at most one partial record read. Epochs other than
// cp.Epoch stream in full.
func WithResume(cp Checkpoint) LoaderOption {
	return func(c *loaderConfig) error {
		if cp.Epoch < 0 || cp.Batch < 0 {
			return fmt.Errorf("pcr: checkpoint position (%d,%d) malformed", cp.Epoch, cp.Batch)
		}
		if cp.BatchSize > 0 {
			c.batch = cp.BatchSize
		}
		if cp.Window > 0 {
			c.window = cp.Window
		}
		if cp.Shards > 0 {
			c.shardIx, c.shards = cp.Shard, cp.Shards
		}
		c.seed = cp.Seed
		c.resume, c.hasResume = cp, true
		return nil
	}
}

// WithDropRemainder drops an epoch's final short batch instead of yielding
// it (fixed-shape training steps).
func WithDropRemainder() LoaderOption {
	return func(c *loaderConfig) error {
		c.dropRem = true
		return nil
	}
}

// NewLoader builds a Loader over an opened Dataset. The dataset must be a
// record-granular format (PCR, local or remote); baseline formats have no
// record random access and report errors.ErrUnsupported.
func NewLoader(ds *Dataset, opts ...LoaderOption) (*Loader, error) {
	if _, ok := ds.r.(recordAccessor); !ok {
		return nil, fmt.Errorf("pcr: loader on %s format: %w", ds.cfg.format.Name(), errors.ErrUnsupported)
	}
	cfg := &loaderConfig{batch: 32, shards: 1, window: 16, seed: 1, policy: FixedQuality(Full)}
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if ds.cfg.indexShards > 0 && cfg.shards > 1 {
		return nil, fmt.Errorf("pcr: dataset opened with WithIndexShard(%d,%d) is already one shard; drop the loader's WithShard",
			ds.cfg.indexShard, ds.cfg.indexShards)
	}
	l := &Loader{
		ds:        ds,
		batch:     cfg.batch,
		shardIx:   cfg.shardIx,
		shards:    cfg.shards,
		window:    cfg.window,
		seed:      cfg.seed,
		policy:    cfg.policy,
		dropRem:   cfg.dropRem,
		resume:    cfg.resume,
		hasResume: cfg.hasResume,
	}
	for r := 0; r < ds.NumRecords(); r++ {
		if r%l.shards == l.shardIx {
			l.records = append(l.records, r)
		}
	}
	if len(l.records) == 0 {
		return nil, fmt.Errorf("pcr: shard %d/%d of a %d-record dataset is empty",
			l.shardIx, l.shards, ds.NumRecords())
	}
	// Ground "Full" for the policy immediately: the dataset's top quality
	// is known at open, so a policy (re)started at a concrete quality below
	// full can still plan upward probes — without this, a restarted
	// ProbePolicy{Start: q} would only ever observe q and never re-ascend.
	if obs, ok := l.policy.(qualityObserver); ok {
		obs.observeQuality(ds.Qualities())
	}
	return l, nil
}

// NumRecords returns the record count of this loader's shard.
func (l *Loader) NumRecords() int { return len(l.records) }

// epochSeed mixes the loader seed with the epoch (splitmix64 finalizer) so
// each epoch draws an independent but reproducible order.
func (l *Loader) epochSeed(epoch int) int64 {
	z := uint64(l.seed) + (uint64(epoch)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// epochOrder returns the record visit order for an epoch: the shard's
// records streamed through a seeded windowed shuffle (the tf.data
// shuffle-buffer structure at record granularity).
func (l *Loader) epochOrder(epoch int) []int {
	rng := rand.New(rand.NewSource(l.epochSeed(epoch)))
	out := make([]int, 0, len(l.records))
	win := make([]int, 0, l.window)
	emit := func() {
		k := rng.Intn(len(win))
		out = append(out, win[k])
		win[k] = win[len(win)-1]
		win = win[:len(win)-1]
	}
	for _, r := range l.records {
		win = append(win, r)
		if len(win) >= l.window {
			emit()
		}
	}
	for len(win) > 0 {
		emit()
	}
	return out
}

// Epoch streams epoch e's batches: records of this loader's shard in the
// epoch's shuffled order, each read at the quality the policy chooses for
// it, decoded concurrently by WithPrefetchWorkers goroutines, assembled
// into WithBatchSize batches. Memory is bounded by the decode pool plus one
// batch plus one record. Iteration stops at the first error; cancelling ctx
// stops it promptly with ctx.Err(); closing the dataset stops it with
// ErrClosed. After a complete epoch, LastEpochStats reports its counters.
func (l *Loader) Epoch(ctx context.Context, epoch int) iter.Seq2[Batch, error] {
	return func(yield func(Batch, error) bool) {
		start := time.Now()
		workers := l.ds.cfg.prefetchWorkers()
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()

		// The producer walks the shuffled record order, resolves each
		// record's quality, reads its prefix, and hands every sample to the
		// shared bounded decode pool; job order preserves the shuffled
		// order. The first job of each record carries the record's read
		// accounting.
		// Resuming into this epoch: the first resume.Batch batches were
		// delivered before the restart. Records wholly inside that prefix
		// are skipped without a read — their image counts come from the
		// index — so only the record straddling the boundary is read and
		// partially discarded.
		base := 0 // completed batches before this run
		if l.hasResume && epoch == l.resume.Epoch {
			base = l.resume.Batch
		}
		skip := base * l.batch // samples to skip

		jobs := decodePool(ictx, workers, func(emit func(*decodeJob) bool) {
			for _, rec := range l.epochOrder(epoch) {
				if skip > 0 {
					n, err := l.ds.RecordImages(rec)
					if err != nil {
						emit(&decodeJob{err: err})
						return
					}
					if skip >= n {
						skip -= n
						continue
					}
				}
				q := l.policy.RecordQuality(epoch, rec)
				qq, err := l.ds.resolveQuality(q)
				if err == nil {
					if obs, ok := l.policy.(qualityObserver); ok {
						obs.observeQuality(qq)
					}
				}
				var bytes int64
				if err == nil {
					bytes, err = l.ds.RecordPrefixLen(rec, q)
				}
				var samples []Sample
				if err == nil {
					samples, err = l.ds.ReadRecordEncoded(rec, q)
				}
				if err != nil {
					emit(&decodeJob{err: err})
					return
				}
				first := true
				for si := skip; si < len(samples); si++ {
					j := &decodeJob{s: samples[si]}
					if first {
						j.bytes, j.quality = bytes, qq
						first = false
					}
					if !emit(j) {
						return
					}
				}
				skip = 0
			}
		})

		stats := EpochStats{Epoch: epoch}
		cur := make([]Sample, 0, l.batch)
		flush := func() bool {
			b := Batch{Epoch: epoch, Samples: cur}
			cur = make([]Sample, 0, l.batch)
			stats.Batches++
			// Advance the checkpoint position before handing the batch
			// over: a Checkpoint() taken while the consumer holds batch k
			// resumes at k+1 (take it after finishing work on the batch).
			l.mu.Lock()
			l.pos = Checkpoint{
				Epoch: epoch, Batch: base + stats.Batches,
				Seed: l.seed, BatchSize: l.batch, Window: l.window,
				Shard: l.shardIx, Shards: l.shards,
			}
			l.hasPos = true
			l.mu.Unlock()
			return yield(b, nil)
		}
		var stall time.Duration
		for {
			w := time.Now()
			// Receive with a ctx case so cancellation is prompt even while
			// the producer sits inside a slow (non-cancellable) record read.
			var j *decodeJob
			var ok bool
			select {
			case j, ok = <-jobs:
			case <-ctx.Done():
				yield(Batch{}, ctx.Err())
				return
			}
			if !ok {
				stall += time.Since(w)
				break
			}
			select {
			case <-j.done:
			case <-ctx.Done():
				yield(Batch{}, ctx.Err())
				return
			}
			stall += time.Since(w)
			if err := ctx.Err(); err != nil {
				yield(Batch{}, err)
				return
			}
			if j.err != nil {
				yield(Batch{}, j.err)
				return
			}
			if j.quality > 0 {
				stats.Records++
				stats.BytesRead += j.bytes
				if stats.MinQuality == 0 || j.quality < stats.MinQuality {
					stats.MinQuality = j.quality
				}
				if j.quality > stats.MaxQuality {
					stats.MaxQuality = j.quality
				}
			}
			stats.Images++
			cur = append(cur, j.s)
			if len(cur) == l.batch {
				if !flush() {
					return
				}
			}
		}
		if err := ctx.Err(); err != nil {
			yield(Batch{}, err)
			return
		}
		if len(cur) > 0 && !l.dropRem {
			if !flush() {
				return
			}
		}
		stats.Wall = time.Since(start)
		stats.Stall = stall
		if s := stats.Wall.Seconds(); s > 0 {
			stats.ImagesPerSec = float64(stats.Images) / s
		}
		l.mu.Lock()
		stats.Probes, stats.ProbeBytes, stats.ProbeWall =
			l.pendingProbes, l.pendingProbeBytes, l.pendingProbeWall
		l.pendingProbes, l.pendingProbeBytes, l.pendingProbeWall = 0, 0, 0
		l.last, l.hasLast = stats, true
		l.mu.Unlock()
	}
}

// LastEpochStats returns the statistics of the most recently completed
// epoch; ok is false until one epoch has run to completion.
func (l *Loader) LastEpochStats() (stats EpochStats, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last, l.hasLast
}

// Checkpoint returns the loader's current position — the coordinates a
// restarted worker passes to WithResume to re-enter mid-epoch where this
// one left off. Take it after finishing work on a batch: the position
// already points past that batch. ok is false before the first batch of
// the loader's life has been delivered (resume from the epoch start
// instead). The checkpoint is JSON-serializable for persistence alongside
// model weights.
func (l *Loader) Checkpoint() (cp Checkpoint, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos, l.hasPos
}

// Probe reserves one deterministic record draw for a §4.5 upward probe.
// Every Batches call on the returned handle — one per candidate quality —
// reads the SAME records in the same order, differing only in how much of
// each record's prefix it fetches, so the candidates' probe losses compare
// quality against quality rather than one random record sample against
// another. Successive Probe calls (and successive ProbeBatches calls)
// advance to fresh draws.
func (l *Loader) Probe() *Probe {
	l.mu.Lock()
	seq := l.probeSeq
	l.probeSeq++
	l.mu.Unlock()
	return &Probe{l: l, seq: seq}
}

// Probe is one reserved probe draw; see Loader.Probe.
type Probe struct {
	l   *Loader
	seq int
}

// ProbeBatches is the single-shot form of Probe().Batches: it reserves a
// fresh record draw and reads it once at quality q. Use a Probe handle
// instead when several candidate qualities must see identical records.
func (l *Loader) ProbeBatches(ctx context.Context, q, n int) (batches []Batch, bytes int64, err error) {
	return l.Probe().Batches(ctx, q, n)
}

// Batches is the out-of-band probe read path of the §4.5 controller: it
// reads enough of this shard's records at quality q to assemble up to n
// batches of the loader's batch size, decoded and ready to train on,
// without disturbing any epoch's visit order, resume position, or byte
// accounting. Record selection is deterministic — a seeded shuffle of the
// shard keyed by (loader seed, probe sequence number) — so probe reads hit
// a representative sample, every candidate quality probed through the same
// handle reads the same records, and a re-run probes the same records.
// Bytes returns the logical record prefix bytes read; with a warm disk
// cache the network moves only each record's missing scan-group delta. The
// probe's bytes and wall time are folded into the NEXT completed epoch's
// EpochStats (Probes/ProbeBytes/ProbeWall). Probe batches carry Epoch -1.
//
// Do not run probe reads concurrently with a running Epoch of the same
// Loader over a policy-driven quality: the probe itself is safe, but the
// interleaved record reads would thrash the cache tiers mid-epoch. The
// intended call site is the epoch boundary (see internal/realtrain).
func (p *Probe) Batches(ctx context.Context, q, n int) (batches []Batch, bytes int64, err error) {
	l := p.l
	if n <= 0 {
		return nil, 0, fmt.Errorf("pcr: probe batch count must be positive, got %d", n)
	}
	if _, err := l.ds.resolveQuality(q); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	// Negative "epochs" index the probe sequence; they can never collide
	// with a real epoch's seed (the splitmix increment is odd, so only
	// epoch -1 maps to the raw seed and no non-negative epoch does).
	rng := rand.New(rand.NewSource(l.epochSeed(-1 - p.seq)))
	order := append([]int(nil), l.records...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	cur := make([]Sample, 0, l.batch)
	for _, rec := range order {
		if len(batches) == n {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, bytes, err
		}
		rb, err := l.ds.RecordPrefixLen(rec, q)
		if err != nil {
			return nil, bytes, err
		}
		samples, err := l.ds.ReadRecordEncoded(rec, q)
		if err != nil {
			return nil, bytes, err
		}
		bytes += rb
		for si := range samples {
			if err := decodeJPEG(&samples[si]); err != nil {
				return nil, bytes, err
			}
			cur = append(cur, samples[si])
			if len(cur) == l.batch {
				batches = append(batches, Batch{Epoch: -1, Samples: cur})
				cur = make([]Sample, 0, l.batch)
				if len(batches) == n {
					break
				}
			}
		}
	}
	// A shard smaller than n full batches yields what it has.
	if len(batches) < n && len(cur) > 0 {
		batches = append(batches, Batch{Epoch: -1, Samples: cur})
	}
	l.mu.Lock()
	l.pendingProbes++
	l.pendingProbeBytes += bytes
	l.pendingProbeWall += time.Since(start)
	l.mu.Unlock()
	return batches, bytes, nil
}
