package pcr_test

import (
	"bytes"
	"context"
	"testing"

	"repro/pcr"
)

// TestLoaderFilterDelivery: a filtered epoch is the unfiltered epoch with
// the predicate applied — same shuffled record order, selected samples
// only, byte-identical streams — and the stats account every sample and
// every byte of the difference.
func TestLoaderFilterDelivery(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	pred, err := pcr.ParseFilter("label IN (0, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	epochOf := func(opts ...pcr.LoaderOption) ([]pcr.Sample, pcr.EpochStats) {
		t.Helper()
		ds, err := pcr.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		l, err := pcr.NewLoader(ds, append([]pcr.LoaderOption{
			pcr.WithBatchSize(4), pcr.WithLoaderSeed(11)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		var out []pcr.Sample
		for b, err := range l.Epoch(ctx, 0) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b.Samples...)
		}
		st, ok := l.LastEpochStats()
		if !ok {
			t.Fatal("no epoch stats")
		}
		return out, st
	}

	all, allStats := epochOf()
	got, st := epochOf(pcr.WithLoaderFilter(pred))

	var want []pcr.Sample
	for _, s := range all {
		if pred.Matches(s.ID, s.Label) {
			want = append(want, s)
		}
	}
	if len(want) == 0 || len(want) == len(all) {
		t.Fatalf("degenerate selection %d/%d; pick a different predicate", len(want), len(all))
	}
	if len(got) != len(want) {
		t.Fatalf("filtered epoch delivered %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Label != want[i].Label {
			t.Fatalf("sample %d is (%d,%d), want (%d,%d)", i, got[i].ID, got[i].Label, want[i].ID, want[i].Label)
		}
		if !bytes.Equal(got[i].JPEG, want[i].JPEG) {
			t.Fatalf("sample %d stream differs from the unfiltered epoch's", i)
		}
	}
	if st.Images != len(want) || st.SkippedImages != len(all)-len(want) {
		t.Fatalf("stats: %d images + %d skipped, want %d + %d",
			st.Images, st.SkippedImages, len(want), len(all)-len(want))
	}
	if st.BytesRead+st.BytesAvoided != allStats.BytesRead {
		t.Fatalf("read %d + avoided %d != unfiltered epoch's %d",
			st.BytesRead, st.BytesAvoided, allStats.BytesRead)
	}
	if st.BytesRead >= allStats.BytesRead {
		t.Fatalf("filtered epoch read %d bytes, unfiltered read %d", st.BytesRead, allStats.BytesRead)
	}
	if allStats.SkippedImages != 0 || allStats.BytesAvoided != 0 {
		t.Fatalf("unfiltered epoch reports filter stats: %+v", allStats)
	}
}

// TestLoaderFilterResume: a checkpoint taken mid-epoch under a filter
// resumes to exactly the uninterrupted epoch's remaining batches — the
// skip-shortcut counts selected samples, not record sizes.
func TestLoaderFilterResume(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8), pcr.WithScanGroups(4))
	pred, err := pcr.ParseFilter("label IN (0, 1, 2) OR id IN [10..20]")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	open := func() (*pcr.Dataset, func()) {
		t.Helper()
		ds, err := pcr.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return ds, func() { ds.Close() }
	}

	// Uninterrupted filtered epoch: the reference batch sequence.
	ds1, close1 := open()
	defer close1()
	l1, err := pcr.NewLoader(ds1, pcr.WithBatchSize(3), pcr.WithLoaderSeed(5), pcr.WithLoaderFilter(pred))
	if err != nil {
		t.Fatal(err)
	}
	var full [][]pcr.Sample
	for b, err := range l1.Epoch(ctx, 1) {
		if err != nil {
			t.Fatal(err)
		}
		full = append(full, b.Samples)
	}
	if len(full) < 3 {
		t.Fatalf("only %d filtered batches; dataset too small for a resume test", len(full))
	}

	// Interrupted run: crash after two batches, checkpoint in hand.
	ds2, close2 := open()
	defer close2()
	l2, err := pcr.NewLoader(ds2, pcr.WithBatchSize(3), pcr.WithLoaderSeed(5), pcr.WithLoaderFilter(pred))
	if err != nil {
		t.Fatal(err)
	}
	var cp pcr.Checkpoint
	n := 0
	for _, err := range l2.Epoch(ctx, 1) {
		if err != nil {
			t.Fatal(err)
		}
		cp, _ = l2.Checkpoint()
		if n++; n == 2 {
			break
		}
	}

	// Restarted worker: same filter, resume coordinates.
	ds3, close3 := open()
	defer close3()
	l3, err := pcr.NewLoader(ds3, pcr.WithResume(cp), pcr.WithLoaderFilter(pred))
	if err != nil {
		t.Fatal(err)
	}
	var tail [][]pcr.Sample
	for b, err := range l3.Epoch(ctx, cp.Epoch) {
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, b.Samples)
	}
	want := full[2:]
	if len(tail) != len(want) {
		t.Fatalf("resumed run delivered %d batches, want %d", len(tail), len(want))
	}
	for i := range tail {
		if len(tail[i]) != len(want[i]) {
			t.Fatalf("batch %d has %d samples, want %d", i, len(tail[i]), len(want[i]))
		}
		for j := range tail[i] {
			if tail[i][j].ID != want[i][j].ID || !bytes.Equal(tail[i][j].JPEG, want[i][j].JPEG) {
				t.Fatalf("batch %d sample %d differs after resume", i, j)
			}
		}
	}
}

func TestWithLoaderFilterValidation(t *testing.T) {
	dir, _ := synthDir(t, pcr.WithImagesPerRecord(8))
	ds, err := pcr.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := pcr.NewLoader(ds, pcr.WithLoaderFilter(nil)); err == nil {
		t.Fatal("nil predicate accepted")
	}
}
