package pcr

import (
	"sync"

	"repro/internal/autotune"
)

// QualityPolicy chooses the scan-group quality for each record read by a
// Loader. The loader consults the policy at every record boundary — PCR's
// unit of sequential I/O — so a policy that changes its mind mid-epoch
// (see PlateauPolicy) cheapens the epoch in flight: the next record is
// fetched at the new quality without restarting the pipeline.
//
// Implementations must be safe for concurrent use: the loader's producer
// goroutine calls RecordQuality while the training loop may be reporting
// observations.
type QualityPolicy interface {
	// RecordQuality returns the quality (1..Qualities(), or Full) at which
	// the loader should read the given record of the given epoch.
	RecordQuality(epoch, record int) int
}

// FixedQuality is the static policy: every record of every epoch is read at
// the same quality (use Full for the baseline).
type FixedQuality int

// RecordQuality implements QualityPolicy.
func (q FixedQuality) RecordQuality(int, int) int { return int(q) }

// adaptiveState is the descend machinery shared by PlateauPolicy and
// ProbePolicy: the current quality, the resolved dataset top ("Full"), and
// the plateau bookkeeping. Every field — including the plateau cooldown —
// lives on the policy value itself, never on a shared detector, so two
// policies never observe each other's plateau state.
type adaptiveState struct {
	mu       sync.Mutex
	inited   bool
	cur      int
	full     int // resolved Full; 0 until the loader first observes it
	ticks    int
	lastTune int
	losses   []float64
}

func (s *adaptiveState) init(start int) {
	if !s.inited {
		s.cur = start
		s.inited = true
	}
}

// resolvedCur returns the current quality with Full grounded against the
// dataset (0 while still unresolved). Caller holds s.mu.
func (s *adaptiveState) resolvedCur() int {
	if s.cur == Full {
		return s.full
	}
	return s.cur
}

// report appends one observed loss, runs the plateau detector, and steps
// the quality down one level on a plateau (not below min). Caller holds
// s.mu.
func (s *adaptiveState) report(det autotune.PlateauDetector, min int, loss float64) {
	s.losses = append(s.losses, loss)
	// The detector only reads the trailing 2×Window losses; keep the
	// history bounded so a long run doesn't grow it one float per report.
	if keep := 2 * det.EffectiveWindow(); len(s.losses) > 2*keep {
		s.losses = append(s.losses[:0], s.losses[len(s.losses)-keep:]...)
	}
	tick := s.ticks
	s.ticks++
	if det.Plateaued(tick-s.lastTune, s.losses) {
		s.lastTune = tick
		if min <= 0 {
			min = 1
		}
		// Full stays symbolic until the loader resolves it against the
		// dataset (observeQuality); until then a plateau cannot step.
		if cur := s.resolvedCur(); cur > min {
			s.cur = cur - 1
		}
	}
}

// observeQuality tells the policy the dataset-level quality its answers
// resolve against — the dataset's top at NewLoader, then each record's
// resolved answer — so "step down from Full" and "probe up to full" are
// well-defined even for a policy started below full quality.
func (s *adaptiveState) observeQuality(resolved int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if resolved > s.full {
		s.full = resolved
	}
}

// PlateauPolicy adapts quality during training using the loss-plateau
// detector of internal/autotune (the paper's §4.5 heuristic), driven by
// real observed losses instead of the simulator: reading starts at Start
// (Full by default), the training loop feeds observed losses in through
// Report, and each detected plateau steps the quality down one level toward
// Min. Because the Loader re-resolves quality at record boundaries, a
// plateau detected mid-epoch cheapens the rest of that epoch immediately.
//
// PlateauPolicy only descends; ProbePolicy is the bidirectional variant
// that also re-probes upward after learning-rate drops.
type PlateauPolicy struct {
	// Detector configures plateau detection over the reported loss history.
	// Its Window is measured in Report calls (report per epoch for
	// epoch-granular decisions, per batch for mid-epoch ones). The zero
	// value means Window 5, MinImprove 0.02. The detector is a pure value:
	// all plateau state is held per-policy, so handing the same Detector to
	// several policies never couples them.
	Detector autotune.PlateauDetector
	// Start is the initial quality (0 = Full).
	Start int
	// Min is the lowest quality the policy will descend to (default 1).
	Min int

	adaptiveState
}

// Report feeds one observed training loss to the plateau detector; on a
// detected plateau the policy steps down one quality level (not below Min).
// It is safe to call concurrently with a running Loader.
func (p *PlateauPolicy) Report(loss float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	p.report(p.Detector, p.Min, loss)
}

// RecordQuality implements QualityPolicy.
func (p *PlateauPolicy) RecordQuality(int, int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// Quality returns the policy's current quality (Full until the first
// plateau).
func (p *PlateauPolicy) Quality() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// ProbeResult is one candidate's measured outcome from an upward probe: the
// harness trained a few minibatches at Quality and observed Loss, moving
// Bytes of record prefix reads to do it.
type ProbeResult struct {
	// Quality is the dataset-level quality that was probed.
	Quality int
	// Loss is the final probe minibatch's training loss at that quality.
	Loss float64
	// Bytes is the record prefix bytes the probe read (logical; with a warm
	// disk cache the network moves only the scan-group delta).
	Bytes int64
}

// ProbePolicy is the bidirectional §4.5 controller: like PlateauPolicy it
// steps quality down one level on each loss plateau, and additionally it
// re-probes upward on an improvement signal — a reported learning-rate drop
// while below full quality. The probe itself is run by the training harness
// (internal/realtrain): it checkpoints the model, trains ProbeSteps
// minibatches per candidate quality through the Loader's out-of-band
// ProbeBatches reads, hands the measured losses to CompleteProbe, and rolls
// the probe updates back. CompleteProbe picks the cheapest candidate whose
// probe loss is within (1+Tolerance)× of the best — so quality re-ascends
// exactly when the extra scans demonstrably help, and a probe that a warm
// disk cache has already priced costs only the missing scan-group delta
// over the wire.
type ProbePolicy struct {
	// Detector configures plateau detection (see PlateauPolicy.Detector).
	Detector autotune.PlateauDetector
	// Start is the initial quality (0 = Full).
	Start int
	// Min is the lowest quality the policy will descend to (default 1).
	Min int
	// ProbeSteps is the number of probe minibatches trained per candidate
	// quality during an upward probe (default 4).
	ProbeSteps int
	// Tolerance accepts the cheapest candidate whose probe loss is within
	// (1+Tolerance)× of the best candidate's (default 0.05).
	Tolerance float64

	adaptiveState
	probeWanted bool
	probes      int
	probeWins   int
}

// Report feeds one observed training loss in; plateaus descend exactly as
// in PlateauPolicy. Safe to call concurrently with a running Loader.
func (p *ProbePolicy) Report(loss float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	p.report(p.Detector, p.Min, loss)
}

// ReportLRDrop signals an improvement opportunity (the optimizer's learning
// rate just dropped, so the loss landscape is about to shift): if the
// policy is below full quality, the next ProbePlan call requests an upward
// probe.
func (p *ProbePolicy) ReportLRDrop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	if cur := p.resolvedCur(); p.full > 0 && cur > 0 && cur < p.full {
		p.probeWanted = true
	}
}

// ProbePlan returns the pending probe, if any: the candidate qualities to
// measure (the current quality as the baseline, then every level up to
// full) and the minibatch count per candidate. ok is false when no probe is
// pending. The plan stays pending until CompleteProbe retires it, so a
// harness that fails mid-probe re-probes on its next pass.
func (p *ProbePolicy) ProbePlan() (candidates []int, steps int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.probeWanted || p.full == 0 {
		return nil, 0, false
	}
	cur := p.resolvedCur()
	if cur >= p.full {
		p.probeWanted = false
		return nil, 0, false
	}
	for q := cur; q <= p.full; q++ {
		candidates = append(candidates, q)
	}
	steps = p.ProbeSteps
	if steps <= 0 {
		steps = 4
	}
	return candidates, steps, true
}

// CompleteProbe retires the pending probe with its measured results: the
// policy adopts the cheapest (lowest) quality whose probe loss is within
// (1+Tolerance)× of the best result's, and resets its plateau history —
// the probe opened a fresh training regime. Results should come in
// ascending quality order, as ProbePlan listed them.
func (p *ProbePolicy) CompleteProbe(results []ProbeResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probeWanted = false
	if len(results) == 0 {
		return
	}
	p.probes++
	tol := p.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	best := results[0].Loss
	for _, r := range results[1:] {
		if r.Loss < best {
			best = r.Loss
		}
	}
	pick := results[len(results)-1].Quality
	for _, r := range results {
		if r.Loss <= best*(1+tol) {
			pick = r.Quality
			break
		}
	}
	if prev := p.resolvedCur(); pick > prev {
		p.probeWins++
	}
	p.cur = pick
	// The post-probe regime starts fresh: losses observed before the probe
	// must not trigger an immediate plateau against it.
	p.losses = p.losses[:0]
	p.lastTune = p.ticks
}

// RecordQuality implements QualityPolicy.
func (p *ProbePolicy) RecordQuality(int, int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// Quality returns the policy's current quality.
func (p *ProbePolicy) Quality() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init(p.Start)
	return p.cur
}

// Probes reports how many upward probes completed and how many of them won
// (re-ascended the quality).
func (p *ProbePolicy) Probes() (run, wins int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.probes, p.probeWins
}

// qualityObserver is implemented by policies that want to learn what
// dataset-level quality their answers resolve to (PlateauPolicy uses it to
// ground Full).
type qualityObserver interface {
	observeQuality(resolved int)
}
