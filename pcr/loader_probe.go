package pcr

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Probe reserves one deterministic record draw for a §4.5 upward probe.
// Every Batches call on the returned handle — one per candidate quality —
// reads the SAME records in the same order, differing only in how much of
// each record's prefix it fetches, so the candidates' probe losses compare
// quality against quality rather than one random record sample against
// another. Successive Probe calls (and successive ProbeBatches calls)
// advance to fresh draws.
func (l *Loader) Probe() *Probe {
	l.mu.Lock()
	seq := l.probeSeq
	l.probeSeq++
	l.mu.Unlock()
	return &Probe{l: l, seq: seq}
}

// Probe is one reserved probe draw; see Loader.Probe.
type Probe struct {
	l   *Loader
	seq int
}

// ProbeBatches is the single-shot form of Probe().Batches: it reserves a
// fresh record draw and reads it once at quality q. Use a Probe handle
// instead when several candidate qualities must see identical records.
func (l *Loader) ProbeBatches(ctx context.Context, q, n int) (batches []Batch, bytes int64, err error) {
	return l.Probe().Batches(ctx, q, n)
}

// Batches is the out-of-band probe read path of the §4.5 controller: it
// reads enough of this shard's records at quality q to assemble up to n
// batches of the loader's batch size, decoded and ready to train on,
// without disturbing any epoch's visit order, resume position, or byte
// accounting. Record selection is deterministic — a seeded shuffle of the
// shard keyed by (loader seed, probe sequence number) — so probe reads hit
// a representative sample, every candidate quality probed through the same
// handle reads the same records, and a re-run probes the same records.
// Bytes returns the logical record prefix bytes read; with a warm disk
// cache the network moves only each record's missing scan-group delta. The
// probe's bytes and wall time are folded into the NEXT completed epoch's
// EpochStats (Probes/ProbeBytes/ProbeWall). Probe batches carry Epoch -1.
//
// Do not run probe reads concurrently with a running Epoch of the same
// Loader over a policy-driven quality: the probe itself is safe, but the
// interleaved record reads would thrash the cache tiers mid-epoch. The
// intended call site is the epoch boundary (see internal/realtrain).
func (p *Probe) Batches(ctx context.Context, q, n int) (batches []Batch, bytes int64, err error) {
	l := p.l
	if n <= 0 {
		return nil, 0, fmt.Errorf("pcr: probe batch count must be positive, got %d", n)
	}
	if _, err := l.ds.resolveQuality(q); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	// Negative "epochs" index the probe sequence; they can never collide
	// with a real epoch's seed (the splitmix increment is odd, so only
	// epoch -1 maps to the raw seed and no non-negative epoch does).
	rng := rand.New(rand.NewSource(l.epochSeed(-1 - p.seq)))
	order := append([]int(nil), l.records...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	cur := make([]Sample, 0, l.batch)
	for _, rec := range order {
		if len(batches) == n {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, bytes, err
		}
		rb, err := l.ds.RecordPrefixLen(rec, q)
		if err != nil {
			return nil, bytes, err
		}
		samples, err := l.ds.ReadRecordEncoded(rec, q)
		if err != nil {
			return nil, bytes, err
		}
		bytes += rb
		for si := range samples {
			if err := decodeJPEG(&samples[si]); err != nil {
				return nil, bytes, err
			}
			cur = append(cur, samples[si])
			if len(cur) == l.batch {
				batches = append(batches, Batch{Epoch: -1, Samples: cur})
				cur = make([]Sample, 0, l.batch)
				if len(batches) == n {
					break
				}
			}
		}
	}
	// A shard smaller than n full batches yields what it has.
	if len(batches) < n && len(cur) > 0 {
		batches = append(batches, Batch{Epoch: -1, Samples: cur})
	}
	l.mu.Lock()
	l.pendingProbes++
	l.pendingProbeBytes += bytes
	l.pendingProbeWall += time.Since(start)
	l.mu.Unlock()
	return batches, bytes, nil
}
